#!/usr/bin/env python
"""Figure 2: why Definition 3 is phrased the way it is.

The paper rejects the "natural" recursive enable rule — *an unsafe node
is enabled iff it has two or more enabled neighbours* — because it is
not well-defined: some configurations admit several consistent
assignments ("double status").  This example reproduces both Figure-2
layouts:

* (a) a block whose nonfaulty sub-block sits at the upper **right**
  corner — the recursive rule has a unique solution (all enabled), and
  Definition 3 finds it;
* (b) the same sub-block at the upper **center** — the recursive rule
  admits both all-enabled and all-disabled, and Definition 3 resolves
  the ambiguity deterministically to disabled (the least fixpoint).

Usage::

    python examples/double_status.py
"""

from repro import Mesh2D, SafetyDefinition
from repro.core import (
    enabled_fixpoint,
    recursive_enable_fixpoints,
    unsafe_fixpoint,
)
from repro.faults import FaultSet
from repro.viz import render_cells
from repro.geometry import CellSet

SHAPE = (7, 6)


def block_with_gap(gap_x: int):
    """A 4x3 faulty rectangle whose top row has a 2-wide nonfaulty gap."""
    return [
        (x, y)
        for x in range(1, 5)
        for y in range(1, 4)
        if not (y == 3 and gap_x <= x < gap_x + 2)
    ]


def show(tag: str, gap_x: int) -> None:
    mesh = Mesh2D(*SHAPE)
    faults = FaultSet.from_coords(SHAPE, block_with_gap(gap_x))
    unsafe, _ = unsafe_fixpoint(mesh, faults.mask, SafetyDefinition.DEF_2B)

    print(f"--- Figure 2({tag}): nonfaulty gap at x={gap_x} ---")
    print("fault pattern ('#' faulty, '@' the nonfaulty gap inside the block):")
    gap = CellSet(unsafe & ~faults.mask)
    print(render_cells(faults.cells, highlight=gap, axes=False))

    solutions = recursive_enable_fixpoints(mesh, faults.mask, unsafe)
    print(f"recursive rule: {len(solutions)} consistent assignment(s)")
    for i, sol in enumerate(solutions):
        gap_states = {c: bool(sol[c]) for c in gap}
        print(f"  solution {i}: gap enabled = {sorted(gap_states.items())}")

    enabled, rounds = enabled_fixpoint(mesh, faults.mask, unsafe)
    verdict = "enabled" if all(enabled[c] for c in gap) else "disabled"
    print(f"Definition 3 (well-defined, {rounds} rounds): gap is {verdict}\n")


def main() -> None:
    show("a", gap_x=3)  # corner gap: unique solution
    show("b", gap_x=2)  # center gap: double status


if __name__ == "__main__":
    main()
