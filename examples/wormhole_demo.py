#!/usr/bin/env python
"""Wormhole switching, virtual channels and deadlock — live.

Three demonstrations on the flit-level simulator, replaying the
classical results the paper's Section 1 builds on:

1. dimension-order (XY) routing moves heavy uniform traffic on a single
   virtual channel without ever deadlocking;
2. cyclic routing on one virtual channel deadlocks four worms in a ring
   (each holds one channel and waits for the next — the watchdog
   catches the silence);
3. the dateline discipline breaks the cycle with just two virtual
   channels — the "relatively few virtual channels" the convex fault
   regions are designed to preserve.

Usage::

    python examples/wormhole_demo.py
"""

import numpy as np

from repro.mesh import Mesh2D
from repro.network import (
    WormholeNetwork,
    WormPacket,
    clockwise_ring_hops,
    dateline_vc_policy,
    uniform_traffic,
    xy_hops,
)
from repro.routing import FaultModelView

RING = [(0, 0), (1, 0), (1, 1), (0, 1)]


def demo_xy() -> None:
    mesh = Mesh2D(8, 8)
    view = FaultModelView(mesh, np.ones(mesh.shape, dtype=bool))
    traffic = uniform_traffic(
        view, 200, np.random.default_rng(1), packet_length=4, injection_rate=1.0
    )
    net = WormholeNetwork(mesh, xy_hops(), num_vcs=1, buffer_depth=2)
    res = net.run(traffic)
    print("1) XY routing, 1 VC, 200 packets at full injection pressure:")
    print(f"   delivered {len(res.delivered)}/200 in {res.cycles} cycles, "
          f"mean latency {res.mean_latency:.1f}, deadlocked: {res.deadlocked}\n")


def ring_worms():
    return [
        WormPacket(i, RING[i], RING[(i + 3) % 4], length=4, inject_cycle=0)
        for i in range(4)
    ]


def demo_ring_deadlock() -> None:
    net = WormholeNetwork(
        Mesh2D(4, 4), clockwise_ring_hops(RING), num_vcs=1, buffer_depth=1,
        watchdog=100,
    )
    res = net.run(ring_worms())
    print("2) four worms chasing each other around a ring, 1 VC:")
    print(f"   delivered {len(res.delivered)}/4, deadlocked: {res.deadlocked} "
          f"(watchdog fired after {res.cycles} cycles)\n")


def demo_dateline() -> None:
    net = WormholeNetwork(
        Mesh2D(4, 4),
        clockwise_ring_hops(RING),
        num_vcs=2,
        buffer_depth=1,
        vc_policy=dateline_vc_policy(RING),
        watchdog=300,
    )
    res = net.run(ring_worms())
    print("3) same worms, 2 VCs with a dateline discipline:")
    print(f"   delivered {len(res.delivered)}/4 in {res.cycles} cycles, "
          f"deadlocked: {res.deadlocked}")


if __name__ == "__main__":
    demo_xy()
    demo_ring_deadlock()
    demo_dateline()
