#!/usr/bin/env python
"""The routing payoff: block model vs the paper's refined model.

Injects clustered faults (the regime where rectangular blocks imprison
many healthy nodes), labels the mesh, then routes the same traffic
under the classic faulty-block view and the refined disabled-region
view, with three routers plus a shortest-path oracle.

Usage::

    python examples/routing_demo.py [mesh_size] [num_faults] [seed]
"""

import sys

import numpy as np

from repro import Mesh2D, label_mesh
from repro.analysis import format_table
from repro.faults import clustered
from repro.routing import (
    BFSRouter,
    FaultModelView,
    MinimalRouter,
    WallRouter,
    XYRouter,
    evaluate_router,
    sample_pairs,
)
from repro.viz import render_result


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    f = int(sys.argv[2]) if len(sys.argv) > 2 else 40
    seed = int(sys.argv[3]) if len(sys.argv) > 3 else 3

    rng = np.random.default_rng(seed)
    mesh = Mesh2D(n, n)
    faults = clustered(mesh.shape, f, rng, clusters=3, spread=2.0)
    result = label_mesh(mesh, faults)

    if n <= 40:
        print(render_result(result))
        print()

    views = {
        "faulty blocks (classic)": FaultModelView.from_blocks(result),
        "disabled regions (paper)": FaultModelView.from_regions(result),
    }
    base_view = views["faulty blocks (classic)"]
    pairs = sample_pairs(base_view, 200, rng)

    rows = []
    for view_name, view in views.items():
        for router_cls in (XYRouter, WallRouter, MinimalRouter, BFSRouter):
            m = evaluate_router(router_cls(view), pairs)
            rows.append(
                [
                    view_name,
                    m.router,
                    view.num_enabled,
                    f"{100 * m.delivery_rate:.1f}%",
                    f"{m.mean_detour:.2f}",
                    f"{100 * m.minimal_fraction:.1f}%",
                ]
            )
    print(
        format_table(
            ["fault model", "router", "enabled", "delivered", "detour", "minimal"],
            rows,
            title=f"{n}x{n} mesh, {f} clustered faults, 200 packets",
        )
    )
    gain = (
        views["disabled regions (paper)"].num_enabled
        - views["faulty blocks (classic)"].num_enabled
    )
    print(f"\nnodes returned to service by the refined model: {gain}")


if __name__ == "__main__":
    main()
