#!/usr/bin/env python
"""Quickstart: label a faulty mesh and inspect the polygons.

Runs the paper's two-phase algorithm on a 100x100 mesh (the size of its
simulation study) with random faults, prints the headline numbers, and
verifies every claim of Section 4 mechanically.

Usage::

    python examples/quickstart.py [num_faults] [seed]
"""

import sys

import numpy as np

from repro import Mesh2D, SafetyDefinition, label_mesh, uniform_random
from repro.core import theorems


def main() -> None:
    num_faults = int(sys.argv[1]) if len(sys.argv) > 1 else 80
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 7

    mesh = Mesh2D(100, 100)
    faults = uniform_random(mesh.shape, num_faults, np.random.default_rng(seed))

    # Phase 1 builds rectangular faulty blocks; phase 2 shrinks them to
    # orthogonal convex polygons by re-enabling nonfaulty nodes.
    result = label_mesh(mesh, faults, SafetyDefinition.DEF_2B)

    print(f"mesh                : {mesh.width}x{mesh.height} (diameter {mesh.diameter})")
    print(f"faults              : {len(faults)}")
    print(f"faulty blocks       : {len(result.blocks)}")
    print(f"disabled regions    : {len(result.regions)}")
    print(f"rounds (phase 1/2)  : {result.rounds_phase1} / {result.rounds_phase2}")
    print(f"imprisoned by blocks: {result.num_unsafe_nonfaulty} nonfaulty nodes")
    print(f"freed by phase 2    : {result.num_activated} "
          f"({100 * result.enabled_ratio:.1f}%)")

    largest = max(result.blocks, key=lambda b: b.rect.area, default=None)
    if largest is not None:
        print(f"largest block       : {largest.rect} "
              f"({largest.num_faults} faults, {largest.num_nonfaulty} nonfaulty)")

    print("\nverifying the paper's claims on this instance:")
    for outcome in theorems.check_all(result):
        mark = "ok " if outcome.holds else "FAIL"
        print(f"  [{mark}] {outcome.claim}" + (f" — {outcome.detail}" if outcome.detail else ""))


if __name__ == "__main__":
    main()
