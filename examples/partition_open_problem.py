#!/usr/bin/env python
"""The open problem: covering faults with several polygons.

Section 4 ends with an open problem conjectured NP-complete: cover a
block's faults with a set of orthogonal convex polygons holding the
minimum number of nonfaulty nodes.  This example builds an instance
where the single disabled-region polygon is provably suboptimal, then
runs the library's heuristics and (since the instance is small) the
exact search.

Usage::

    python examples/partition_open_problem.py
"""

from repro.analysis import format_table
from repro.geometry import CellSet, connect_orthoconvex, shapes
from repro.partition import cluster_cover, exact_cover, guillotine_cover
from repro.viz import render_cells

SHAPE = (18, 12)


def main() -> None:
    # Two fault clusters joined by a lone fault: the disabled region of
    # this pattern is one long polygon, but covering each cluster
    # separately frees the corridor cells between them.
    faults = (
        shapes.rectangle(SHAPE, (1, 1), 2, 3)
        | shapes.rectangle(SHAPE, (12, 7), 3, 2)
        | CellSet.from_coords(SHAPE, [(7, 4)])
    )

    print("fault pattern:")
    print(render_cells(faults, axes=False))
    print()

    single = connect_orthoconvex(faults)
    print("single-polygon cover (the disabled-region baseline):")
    print(render_cells(single, highlight=faults, axes=False))
    print(f"  cells={len(single)}  nonfaulty={len(single) - len(faults)}\n")

    rows = [["single polygon", 1, len(single) - len(faults)]]
    for name, fn in (
        ("cluster heuristic", cluster_cover),
        ("guillotine heuristic", guillotine_cover),
        ("exact search", exact_cover),
    ):
        cover = fn(faults)
        rows.append([name, cover.num_polygons, cover.num_nonfaulty])
        if name == "exact search":
            print("optimal cover:")
            union = CellSet.empty(SHAPE)
            for p in cover.polygons:
                union = union | p
            print(render_cells(union, highlight=faults, axes=False))
            print()

    print(format_table(["strategy", "#polygons", "nonfaulty kept"], rows))


if __name__ == "__main__":
    main()
