#!/usr/bin/env python
"""Figure-1 gallery: blocks and polygons under each definition.

Reproduces the structure of the paper's Figure 1: for one fault
pattern, show the faulty block under Definition 2a, under the enhanced
Definition 2b, and the disabled regions the enable rule carves out of
each.  Renders ASCII to the terminal and writes SVG files next to this
script.

Glyphs: ``#`` faulty, ``x`` disabled, ``+`` activated, ``.`` safe.

Usage::

    python examples/figure1_gallery.py [outdir]
"""

import pathlib
import sys

from repro import Mesh2D, SafetyDefinition, label_mesh
from repro.faults import FaultSet
from repro.viz import render_result, svg_of_result

# A diagonal fault chain with satellites: the block is a large square,
# the disabled regions are thin polygons — the paper's headline effect.
PATTERN = [(2, 2), (3, 3), (4, 4), (5, 5), (8, 3), (3, 8)]
SHAPE = (12, 12)


def main() -> None:
    outdir = pathlib.Path(sys.argv[1]) if len(sys.argv) > 1 else pathlib.Path(
        __file__
    ).parent
    mesh = Mesh2D(*SHAPE)
    faults = FaultSet.from_coords(SHAPE, PATTERN)

    for definition in SafetyDefinition:
        result = label_mesh(mesh, faults, definition)
        banner = (
            f"Definition {definition.value}: "
            f"{len(result.blocks)} block(s), {len(result.regions)} region(s), "
            f"{result.num_activated}/{result.num_unsafe_nonfaulty} nodes activated"
        )
        print("=" * len(banner))
        print(banner)
        print("=" * len(banner))
        print(render_result(result))
        print()

        svg_path = outdir / f"figure1_def{definition.value}.svg"
        svg_path.write_text(svg_of_result(result, scale=24))
        print(f"wrote {svg_path}\n")


if __name__ == "__main__":
    main()
