#!/usr/bin/env python
"""Maintaining the fault model as nodes keep failing.

The paper notes that faulty blocks "can be easily established and
maintained through message exchanges among neighboring nodes".  This
example drives a :class:`repro.core.MaintainedLabeling` through a
sequence of fault injections: each event warm-starts phase 1 from the
existing labels (the change ripples outward from the new fault only)
and re-runs phase 2, and the result is verified against from-scratch
labeling after every step.

Usage::

    python examples/dynamic_faults.py [events] [faults_per_event] [seed]
"""

import sys

import numpy as np

from repro import Mesh2D
from repro.analysis import format_table
from repro.core import MaintainedLabeling, label_mesh
from repro.faults import uniform_random
from repro.viz import render_result


def main() -> None:
    events = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    per_event = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    seed = int(sys.argv[3]) if len(sys.argv) > 3 else 11

    mesh = Mesh2D(24, 24)
    maintained = MaintainedLabeling(mesh)
    rng = np.random.default_rng(seed)

    rows = []
    for event in range(events):
        batch = uniform_random(mesh.shape, per_event, rng)
        report = maintained.inject(batch)
        scratch = label_mesh(mesh, maintained.faults)
        ok = maintained.verify_against_scratch()
        rows.append(
            [
                event,
                len(maintained.faults),
                report.rounds_phase1,
                scratch.rounds_phase1,
                report.newly_unsafe,
                report.newly_disabled,
                "yes" if ok else "NO",
            ]
        )

    print(
        format_table(
            [
                "event",
                "faults",
                "incr rounds",
                "scratch rounds",
                "new unsafe",
                "new disabled",
                "matches scratch",
            ],
            rows,
            title=f"{events} fault events of {per_event} nodes on a 24x24 mesh",
        )
    )
    print()
    print("final state:")
    print(render_result(maintained.snapshot()))


if __name__ == "__main__":
    main()
