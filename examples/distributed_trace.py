#!/usr/bin/env python
"""Watch the distributed protocol converge, round by round.

Runs both labeling phases on the synchronous message-passing fabric
with tracing enabled, then replays each round as an ASCII frame: first
the *unsafe* label spreading outward from the faults (phase 1), then
the *enabled* label eating back into the block from its rim (phase 2).

Usage::

    python examples/distributed_trace.py
"""

from repro import Mesh2D, SafetyDefinition
from repro.core import distributed_enabled, distributed_unsafe
from repro.faults import FaultSet
from repro.geometry import CellSet
from repro.viz import render_cells

SHAPE = (10, 10)
# A diagonal chain: the block grows to a 4x4 square over 3 rounds, then
# phase 2 frees everything except the diagonal staircase itself.
FAULTS = [(3, 3), (4, 4), (5, 5), (6, 6)]


def frame_to_cells(snapshot, predicate):
    return CellSet.from_coords(SHAPE, [c for c, v in snapshot.items() if predicate(v)])


def main() -> None:
    mesh = Mesh2D(*SHAPE)
    faults = FaultSet.from_coords(SHAPE, FAULTS)

    unsafe, stats1, trace1 = distributed_unsafe(
        mesh, faults, SafetyDefinition.DEF_2B, record_trace=True
    )
    print(f"phase 1: {stats1.rounds} changing rounds, "
          f"{stats1.total_messages} messages\n")
    for round_no, snap in trace1.frames():
        marked = frame_to_cells(snap, bool) | faults.cells
        print(f"after round {round_no} — unsafe nodes ('@' = faulty):")
        print(render_cells(marked, highlight=faults.cells, axes=False))
        print()

    enabled, stats2, trace2 = distributed_enabled(
        mesh, faults, unsafe, record_trace=True
    )
    print(f"phase 2: {stats2.rounds} changing rounds, "
          f"{stats2.total_messages} messages\n")
    for round_no, snap in trace2.frames():
        disabled = frame_to_cells(snap, lambda v: not v) | faults.cells
        print(f"after round {round_no} — still disabled ('@' = faulty):")
        print(render_cells(disabled, highlight=faults.cells, axes=False))
        print()

    freed = int((unsafe & enabled).sum())
    print(f"final: {freed} nonfaulty nodes freed from the block; the disabled "
          f"region is the diagonal staircase (the minimal orthogonal convex "
          f"polygon covering the faults).")


if __name__ == "__main__":
    main()
