"""Array-form routing step kernels for the batched traffic engine.

:mod:`repro.routing.fring` routes one packet at a time with Python
recursion; a million-packet traffic campaign cannot afford a Python
call per packet per cycle.  This module re-expresses the hop decision
as *vectorized step kernels*: given parallel numpy columns of packet
positions, destinations and detour state, one :meth:`TrafficKernel.decide`
call produces next-hop proposals for the whole in-flight batch.

Two kernels are provided:

* :class:`XYKernel` — strict dimension-order routing (the array form of
  :class:`~repro.routing.xy.XYRouter`): X first, then Y, drop on the
  first disabled hop.
* :class:`DetourKernel` — the rectangle f-ring detour (the array form
  of :class:`~repro.routing.fring.FRingRouter`): FRing's slide/run
  state machine becomes integer columns ``(on, axis, face, run, rect)``
  and ``_plan``/``_detour_step`` become ``np.where`` selections over
  packet batches.  Obstacles are taken as *bounding rectangles* of the
  view's fault regions, so the kernel works on both the faulty-block
  view and the refined region view (region rims lie outside every
  bounding rectangle, hence on enabled cells).

Determinism contract
--------------------
Every kernel also implements ``decide_one`` — the same decision as pure
scalar Python over one packet.  Both paths share the exact branch order
and tie-breaks (preferred X hop before Y hop; the *low* face wins a
distance tie; first-match rectangle lookup), and both replace FRing's
unbounded recursion by the same bounded replan loop, so the batched
engine and the scalar reference engine in
:mod:`repro.network.batched` agree bit-for-bit.

State is *committed on movement only*: ``decide`` returns a sparse
change-set of detour columns and the engine writes it back just for
packets that actually moved this cycle.  A stalled packet therefore
recomputes an identical decision next cycle from unchanged stored
state, which keeps runs reproducible under any contention
interleaving.  Rows whose state did not transition are absent from the
change-set, so the commit cost scales with detour activity, not with
the in-flight batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import RoutingError
from repro.geometry.rectangles import bounding_rect
from repro.routing.base import FaultModelView

__all__ = [
    "DetourKernel",
    "DetourState",
    "KERNELS",
    "TrafficKernel",
    "XYKernel",
    "make_kernel",
]

_BIG = np.int64(1 << 40)

# Scalar detour state tuple layout: (on, axis, face, run, rect_id).
_IDLE = (False, 0, 0, 0, -1)

#: The sparse state update ``decide`` hands back: subset row indices
#: plus the new (on, axis, face, run, rect) values for those rows.
ChangeSet = Tuple[
    np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray
]


@dataclass
class DetourState:
    """Detour columns for *all* packets of a run (length ``n``)."""

    on: np.ndarray  # bool — detour active?
    axis: np.ndarray  # int8 — blocked travel dimension (0 = x, 1 = y)
    face: np.ndarray  # int32 — cross coordinate of the rim being used
    run: np.ndarray  # int32 — run target along ``axis``
    rect: np.ndarray  # int32 — id of the rectangle being rounded (-1 idle)

    @classmethod
    def idle(cls, n: int) -> "DetourState":
        return cls(
            on=np.zeros(n, dtype=bool),
            axis=np.zeros(n, dtype=np.int8),
            face=np.zeros(n, dtype=np.int32),
            run=np.zeros(n, dtype=np.int32),
            rect=np.full(n, -1, dtype=np.int32),
        )

    def select(self, idx) -> "DetourState":
        """Lanes reordered/filtered by an index array or boolean mask."""
        return DetourState(
            on=self.on[idx],
            axis=self.axis[idx],
            face=self.face[idx],
            run=self.run[idx],
            rect=self.rect[idx],
        )

    def append_idle(self, k: int) -> "DetourState":
        """These lanes plus ``k`` fresh idle lanes."""
        tail = DetourState.idle(k)
        return DetourState(
            on=np.concatenate((self.on, tail.on)),
            axis=np.concatenate((self.axis, tail.axis)),
            face=np.concatenate((self.face, tail.face)),
            run=np.concatenate((self.run, tail.run)),
            rect=np.concatenate((self.rect, tail.rect)),
        )


class TrafficKernel:
    """Shared precomputation: enabled grid, rectangle ids, intersections."""

    name = "kernel"
    stateful = False

    def __init__(self, view: FaultModelView):
        self.view = view
        self.width, self.height = view.topology.shape
        self.enabled = np.ascontiguousarray(view.enabled, dtype=bool)
        rects = [bounding_rect(obs) for obs in view.obstacles if len(obs)]
        self.num_rects = len(rects)
        self._x0 = np.array([r.x0 for r in rects], dtype=np.int32)
        self._x1 = np.array([r.x1 for r in rects], dtype=np.int32)
        self._y0 = np.array([r.y0 for r in rects], dtype=np.int32)
        self._y1 = np.array([r.y1 for r in rects], dtype=np.int32)
        # First-match rectangle id per cell (mirrors FRing._rect_containing):
        # paint in reverse order so earlier obstacles win overlaps.
        self.rect_grid = np.full((self.width, self.height), -1, dtype=np.int32)
        for i in range(self.num_rects - 1, -1, -1):
            self.rect_grid[
                self._x0[i] : self._x1[i] + 1, self._y0[i] : self._y1[i] + 1
            ] = i
        # Flat copies for the hot path: ``take(ix * h + iy, mode="clip")``
        # never faults on the masked-out rows that sit at the mesh edge
        # (their flat index is clamped; the gathered value is unused).
        self._en_flat = self.enabled.ravel()
        self._rg_flat = np.ascontiguousarray(self.rect_grid).ravel()
        if self.num_rects:
            no_x = (self._x1[:, None] < self._x0[None, :]) | (
                self._x1[None, :] < self._x0[:, None]
            )
            no_y = (self._y1[:, None] < self._y0[None, :]) | (
                self._y1[None, :] < self._y0[:, None]
            )
            self.isect = ~(no_x | no_y)
        else:
            self.isect = np.zeros((0, 0), dtype=bool)
        # Bounded replacement for FRing's recursion: one iteration per
        # replan (greedy -> plan, nested plan, detour-complete -> greedy);
        # a chain can visit each rectangle at most once per decision.
        self.max_replans = self.num_rects + 4

    # -- state management ----------------------------------------------------

    def new_state(self, n: int) -> Optional[DetourState]:
        """Per-run detour columns; ``None`` for stateless kernels."""
        return None

    def initial_state_one(self):
        """Scalar twin of :meth:`new_state` (one packet's tuple)."""
        return None

    # -- decision API --------------------------------------------------------

    def decide(
        self,
        px: np.ndarray,
        py: np.ndarray,
        dx: np.ndarray,
        dy: np.ndarray,
        state: Optional[DetourState],
    ):
        """Vector decision for one batch of in-flight lanes.

        ``px/py/dx/dy`` and the ``state`` lanes are parallel columns of
        equal length; ``state`` is read-only here.  Returns
        ``(nx, ny, blocked, changes)``: proposed next cells (valid
        where ``~blocked``), lanes that must drop with ``BLOCKED``, and
        the sparse :data:`ChangeSet` of detour-state transitions to
        commit for lanes that move (``None`` when no state changed).
        Lanes already at their destination (the engine's tombstoned
        dead lanes) come out ``blocked``; the engine ignores them.
        """
        raise NotImplementedError

    def decide_one(self, x: int, y: int, dx: int, dy: int, st):
        """Scalar twin of :meth:`decide` for one packet.

        Returns ``((nx, ny) | None, new_state)``; ``None`` means the
        packet drops with ``BLOCKED``.
        """
        raise NotImplementedError


class XYKernel(TrafficKernel):
    """Dimension-order step: X toward dest, then Y; block on disabled."""

    name = "xy"
    stateful = False

    def decide(self, px, py, dx, dy, state):
        need_x = px != dx
        step_x = ((dx > px) << 1) - 1
        step_y = ((dy > py) << 1) - 1
        nx = np.where(need_x, px + step_x, px)
        ny = np.where(need_x, py, py + step_y)
        ok = self._en_flat.take(nx * self.height + ny, mode="clip")
        # A lane already at its destination "proposes" staying put; the
        # self-link it claims is unique, so it never contends, and the
        # engine retires or ignores it.
        at_dest = ~need_x & (py == dy)
        return nx, ny, ~ok | at_dest, None

    def decide_one(self, x, y, dx, dy, st):
        if x != dx:
            nxt = (x + (1 if dx > x else -1), y)
        else:
            nxt = (x, y + (1 if dy > y else -1))
        if self.enabled[nxt]:
            return nxt, None
        return None, None


class DetourKernel(TrafficKernel):
    """Rectangle f-ring detour step over packet batches."""

    name = "detour"
    stateful = True

    def new_state(self, n: int) -> DetourState:
        return DetourState.idle(n)

    def initial_state_one(self):
        return _IDLE

    # -- vector path ---------------------------------------------------------

    def _plan_vec(self, ax, ay, bx, by, hx, hy, rid):
        """Vectorized ``FRing._plan``: returns ``(ok, axis, face, run)``.

        ``hx/hy`` is the blocked hop cell, ``rid`` the rectangle that
        contains it (all ``>= 0``).
        """
        x0, x1 = self._x0[rid], self._x1[rid]
        y0, y1 = self._y0[rid], self._y1[rid]
        axis = np.where(hy == ay, 0, 1).astype(np.int8)
        # axis == 0: run along x, faces are rows above/below the rect.
        run0 = np.where(
            (x0 <= bx) & (bx <= x1), bx, np.where(bx > ax, x1 + 1, x0 - 1)
        )
        run1 = np.where(
            (y0 <= by) & (by <= y1), by, np.where(by > ay, y1 + 1, y0 - 1)
        )
        run = np.where(axis == 0, run0, run1).astype(np.int32)
        run_limit = np.where(axis == 0, self.width, self.height)
        ok_run = (run >= 0) & (run < run_limit)
        face_lo = np.where(axis == 0, y0 - 1, x0 - 1)
        face_hi = np.where(axis == 0, y1 + 1, x1 + 1)
        face_limit = np.where(axis == 0, self.height, self.width)
        dest_cross = np.where(axis == 0, by, bx)
        ok_lo = (face_lo >= 0) & (face_lo < face_limit)
        ok_hi = (face_hi >= 0) & (face_hi < face_limit)
        d_lo = np.where(ok_lo, np.abs(dest_cross - face_lo), _BIG)
        d_hi = np.where(ok_hi, np.abs(dest_cross - face_hi), _BIG)
        # Tie -> low face, matching ``min(faces, key=...)`` list order.
        face = np.where(d_lo <= d_hi, face_lo, face_hi).astype(np.int32)
        ok = ok_run & (ok_lo | ok_hi)
        return ok, axis, face, run

    def decide(self, px, py, dx, dy, state: DetourState):
        n = px.shape[0]
        hgt = self.height

        # Fast path, full width and gather-free: the preferred greedy
        # hop for every packet at once (garbage on detour rows, masked
        # out below).  This settles the vast majority of the batch; the
        # index-based replan loop below only sees the leftovers, so its
        # per-pass fancy indexing runs over small subsets.
        step_x = ((dx > px) << 1) - 1  # +-1, int8-promoted
        step_y = ((dy > py) << 1) - 1
        hx0 = px + step_x
        hy0 = py + step_y
        ix0 = hx0 * hgt + py  # flat index of the preferred X hop
        iy0 = px * hgt + hy0
        need_x0 = px != dx
        need_y0 = py != dy
        en_x0 = need_x0 & self._en_flat.take(ix0, mode="clip")
        en_y0 = need_y0 & self._en_flat.take(iy0, mode="clip")
        off = ~state.on
        take_x0 = en_x0 & off
        take_y0 = en_y0 & ~en_x0 & off
        nx = np.where(take_x0, hx0, px)
        ny = np.where(take_y0, hy0, py)

        blocked = np.zeros(n, dtype=bool)
        changed = np.zeros(n, dtype=bool)
        # Mutable local copies of the detour lanes (commit-on-move: the
        # caller's ``state`` must stay untouched until winners land).
        on_l = state.on.copy()
        axis_l = state.axis.copy()
        face_l = state.face.copy()
        run_l = state.run.copy()
        rect_l = state.rect.copy()

        work = np.flatnonzero(~(take_x0 | take_y0))
        for _ in range(self.max_replans):
            if work.size == 0:
                break
            w_on = on_l[work]
            stay: List[np.ndarray] = []

            greedy = work[~w_on]
            if greedy.size:
                # Hop candidates and enables were computed full-width in
                # the fast path and stay valid (positions are fixed for
                # the whole decision) — gather, don't recompute.
                ax, ay = px[greedy], py[greedy]
                bx, by = dx[greedy], dy[greedy]
                need_x = need_x0[greedy]
                need_y = need_y0[greedy]
                hx = hx0[greedy]
                hy = hy0[greedy]
                en_x = en_x0[greedy]
                take_x = en_x
                take_y = en_y0[greedy] & ~en_x
                moved = take_x | take_y
                rows = greedy[moved]
                nx[rows] = np.where(take_x[moved], hx[moved], ax[moved])
                ny[rows] = np.where(take_x[moved], ay[moved], hy[moved])

                rest = ~moved
                if rest.any():
                    rx = np.where(
                        need_x & rest,
                        self._rg_flat.take(ix0[greedy], mode="clip"),
                        -1,
                    )
                    ry = np.where(
                        need_y & rest,
                        self._rg_flat.take(iy0[greedy], mode="clip"),
                        -1,
                    )
                    use_x = rx >= 0
                    use_y = (ry >= 0) & ~use_x
                    hit = use_x | use_y
                    blocked[greedy[rest & ~hit]] = True
                    if hit.any():
                        bhx = np.where(use_x[hit], hx[hit], ax[hit])
                        bhy = np.where(use_x[hit], ay[hit], hy[hit])
                        rid = np.where(use_x[hit], rx[hit], ry[hit])
                        ok, axis, face, run = self._plan_vec(
                            ax[hit], ay[hit], bx[hit], by[hit], bhx, bhy, rid
                        )
                        hit_rows = greedy[hit]
                        blocked[hit_rows[~ok]] = True
                        planned = hit_rows[ok]
                        on_l[planned] = True
                        axis_l[planned] = axis[ok]
                        face_l[planned] = face[ok]
                        run_l[planned] = run[ok]
                        rect_l[planned] = rid[ok]
                        changed[planned] = True
                        stay.append(planned)

            detour = work[w_on]
            if detour.size:
                ax, ay = px[detour], py[detour]
                bx, by = dx[detour], dy[detour]
                d_axis = axis_l[detour]
                d_face = face_l[detour]
                d_run = run_l[detour]
                d_rect = rect_l[detour]
                cross = np.where(d_axis == 0, ay, ax)
                sliding = cross != d_face
                sdir = np.where(d_face > cross, 1, -1).astype(np.int32)
                sx = np.where(d_axis == 0, ax, ax + sdir)
                sy = np.where(d_axis == 0, ay + sdir, ay)
                slide_en = self._en_flat.take(sx * hgt + sy, mode="clip")
                slide_ok = sliding & slide_en
                rows = detour[slide_ok]
                nx[rows] = sx[slide_ok]
                ny[rows] = sy[slide_ok]
                blocked[detour[sliding & ~slide_en]] = True

                running = ~sliding
                along = np.where(d_axis == 0, ax, ay)
                done = running & (along == d_run)
                done_rows = detour[done]
                on_l[done_rows] = False
                changed[done_rows] = True
                stay.append(done_rows)  # greedy resumes next pass

                go = running & ~done
                if go.any():
                    rdir = np.where(d_run > along, 1, -1).astype(np.int32)
                    gx = np.where(d_axis == 0, ax + rdir, ax)
                    gy = np.where(d_axis == 0, ay, ay + rdir)
                    run_ok = go & self._en_flat.take(gx * hgt + gy, mode="clip")
                    rows = detour[run_ok]
                    nx[rows] = gx[run_ok]
                    ny[rows] = gy[run_ok]

                    collide = go & ~run_ok
                    if collide.any():
                        other = self._rg_flat.take(gx * hgt + gy, mode="clip")
                        o_safe = np.where(other >= 0, other, 0)
                        r_safe = np.where(d_rect >= 0, d_rect, 0)
                        chain = (
                            collide
                            & (other >= 0)
                            & ~self.isect[o_safe, r_safe]
                        )
                        blocked[detour[collide & ~chain]] = True
                        if chain.any():
                            ok, axis, face, run = self._plan_vec(
                                ax[chain],
                                ay[chain],
                                bx[chain],
                                by[chain],
                                gx[chain],
                                gy[chain],
                                other[chain],
                            )
                            chain_rows = detour[chain]
                            blocked[chain_rows[~ok]] = True
                            nested = chain_rows[ok]
                            axis_l[nested] = axis[ok]
                            face_l[nested] = face[ok]
                            run_l[nested] = run[ok]
                            rect_l[nested] = other[chain][ok]
                            changed[nested] = True
                            stay.append(nested)

            work = (
                np.concatenate(stay) if stay else np.empty(0, dtype=np.int64)
            )
        # Replan budget exhausted without a move proposal: honest drop.
        blocked[work] = True

        rows = np.flatnonzero(changed)
        changes = None
        if rows.size:
            changes = (
                rows,
                on_l[rows],
                axis_l[rows],
                face_l[rows],
                run_l[rows],
                rect_l[rows],
            )
        return nx, ny, blocked, changes

    # -- scalar twin ---------------------------------------------------------

    def _plan_one(self, ax, ay, bx, by, hx, hy, rid):
        x0, x1 = int(self._x0[rid]), int(self._x1[rid])
        y0, y1 = int(self._y0[rid]), int(self._y1[rid])
        axis = 0 if hy == ay else 1
        if axis == 0:
            run = bx if x0 <= bx <= x1 else (x1 + 1 if bx > ax else x0 - 1)
            if not (0 <= run < self.width):
                return None
            faces = [f for f in (y0 - 1, y1 + 1) if 0 <= f < self.height]
            dest_cross = by
        else:
            run = by if y0 <= by <= y1 else (y1 + 1 if by > ay else y0 - 1)
            if not (0 <= run < self.height):
                return None
            faces = [f for f in (x0 - 1, x1 + 1) if 0 <= f < self.width]
            dest_cross = bx
        if not faces:
            return None
        face = min(faces, key=lambda f: abs(dest_cross - f))
        return (True, axis, face, run, int(rid))

    def decide_one(self, x, y, dx, dy, st):
        on, axis, face, run, rect = st
        for _ in range(self.max_replans):
            if not on:
                hops = []
                if x != dx:
                    hops.append((x + (1 if dx > x else -1), y))
                if y != dy:
                    hops.append((x, y + (1 if dy > y else -1)))
                blocked_hop = None
                for hop in hops:
                    if self.enabled[hop]:
                        return hop, _IDLE
                    rid = int(self.rect_grid[hop])
                    if rid >= 0 and blocked_hop is None:
                        blocked_hop = (hop, rid)
                if blocked_hop is None:
                    return None, st
                hop, rid = blocked_hop
                plan = self._plan_one(x, y, dx, dy, hop[0], hop[1], rid)
                if plan is None:
                    return None, st
                on, axis, face, run, rect = plan
                continue
            cross = y if axis == 0 else x
            if cross != face:
                sdir = 1 if face > cross else -1
                nxt = (x, y + sdir) if axis == 0 else (x + sdir, y)
                if not self.enabled[nxt]:
                    return None, st
                return nxt, (on, axis, face, run, rect)
            along = x if axis == 0 else y
            if along == run:
                on, axis, face, run, rect = _IDLE
                continue
            rdir = 1 if run > along else -1
            nxt = (x + rdir, y) if axis == 0 else (x, y + rdir)
            if self.enabled[nxt]:
                return nxt, (on, axis, face, run, rect)
            other = int(self.rect_grid[nxt])
            if other >= 0 and not self.isect[other, rect]:
                plan = self._plan_one(x, y, dx, dy, nxt[0], nxt[1], other)
                if plan is not None:
                    on, axis, face, run, rect = plan
                    continue
            return None, st
        return None, st


KERNELS = {"xy": XYKernel, "detour": DetourKernel}


def make_kernel(name_or_kernel, view: FaultModelView) -> TrafficKernel:
    """Resolve ``"xy"``/``"detour"`` or pass a kernel instance through."""
    if isinstance(name_or_kernel, TrafficKernel):
        return name_or_kernel
    try:
        cls = KERNELS[name_or_kernel]
    except KeyError:
        raise RoutingError(
            f"unknown kernel {name_or_kernel!r}; expected one of {sorted(KERNELS)}"
        ) from None
    return cls(view)
