"""Routing quality metrics over fault-model views.

The benchmark that motivates the whole paper: take one fault pattern,
build the classic faulty-block view and the refined disabled-region
view, run the same router over the same traffic on both, and compare

* **delivery rate** — fraction of packets that arrive,
* **reachability** — fraction of pairs connected at all (BFS oracle),
* **detour overhead** — mean extra hops beyond the Manhattan distance,
* **minimality** — fraction of delivered packets on shortest paths,

plus the number of enabled nodes each view offers.  The refined view is
a superset of the block view's enabled nodes, so every metric can only
improve — the benches quantify by how much.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.routing.base import FaultModelView, Router
from repro.routing.bfs import BFSRouter
from repro.routing.packet import RouteResult
from repro.types import Coord

__all__ = ["RoutingMetrics", "evaluate_router", "sample_pairs"]


@dataclass(frozen=True)
class RoutingMetrics:
    """Aggregated outcome of routing a traffic sample."""

    router: str
    num_pairs: int
    delivered: int
    reachable: int
    total_hops: int
    total_detour: int
    minimal: int
    num_enabled: int

    @property
    def delivery_rate(self) -> float:
        """Delivered / attempted (1.0 for an empty sample)."""
        return self.delivered / self.num_pairs if self.num_pairs else 1.0

    @property
    def reachability(self) -> float:
        """Connected pairs / attempted, per the BFS oracle."""
        return self.reachable / self.num_pairs if self.num_pairs else 1.0

    @property
    def mean_hops(self) -> float:
        """Mean hops of delivered packets."""
        return self.total_hops / self.delivered if self.delivered else float("nan")

    @property
    def mean_detour(self) -> float:
        """Mean extra hops (beyond Manhattan) of delivered packets."""
        return self.total_detour / self.delivered if self.delivered else float("nan")

    @property
    def minimal_fraction(self) -> float:
        """Fraction of delivered packets that travelled a minimal path."""
        return self.minimal / self.delivered if self.delivered else float("nan")


def sample_pairs(
    view: FaultModelView, count: int, rng: np.random.Generator
) -> List[Tuple[Coord, Coord]]:
    """Draw ``count`` random distinct enabled source/destination pairs."""
    return [view.random_enabled_pair(rng) for _ in range(count)]


def evaluate_router(
    router: Router,
    pairs: Sequence[Tuple[Coord, Coord]],
    oracle: Router | None = None,
) -> RoutingMetrics:
    """Route every pair and aggregate the metrics.

    Parameters
    ----------
    router:
        The router under test.
    pairs:
        Traffic sample (source, dest) — endpoints need not be enabled in
        the router's view; disabled endpoints count as failures, which
        is deliberate when comparing views with different enabled sets.
    oracle:
        Reachability oracle; defaults to a BFS router over the same view.
    """
    if oracle is None:
        oracle = BFSRouter(router.view)
    delivered = reachable = total_hops = total_detour = minimal = 0
    for source, dest in pairs:
        res: RouteResult = router.route(source, dest)
        if oracle.route(source, dest).delivered:
            reachable += 1
        if res.delivered:
            delivered += 1
            total_hops += res.hops
            total_detour += res.detour
            if res.is_minimal:
                minimal += 1
    return RoutingMetrics(
        router=router.name,
        num_pairs=len(pairs),
        delivered=delivered,
        reachable=reachable,
        total_hops=total_hops,
        total_detour=total_detour,
        minimal=minimal,
        num_enabled=router.view.num_enabled,
    )
