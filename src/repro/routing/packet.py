"""Packets and routing outcomes.

The routing layer exists because the paper's whole point is a *fault
model for routing*: the fewer nonfaulty nodes a fault region disables,
the more routes survive and the shorter the detours.  A
:class:`RouteResult` records one packet's fate in enough detail for the
metrics module to compute delivery rates, hop counts and detour ratios.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.types import Coord

__all__ = ["DropReason", "RouteResult"]


class DropReason(enum.Enum):
    """Why a packet failed to reach its destination."""

    NONE = "delivered"
    BLOCKED = "blocked"            # no permitted next hop at some node
    BUDGET = "hop budget exhausted"  # possible livelock cut short
    UNREACHABLE = "destination unreachable in the enabled subgraph"
    BAD_ENDPOINT = "source or destination not an enabled node"


@dataclass(frozen=True)
class RouteResult:
    """Outcome of routing one packet.

    Attributes
    ----------
    source, dest:
        The endpoints requested.
    delivered:
        Whether the packet arrived.
    path:
        Nodes visited, starting at ``source``; ends at ``dest`` iff
        delivered.
    reason:
        Drop cause (``DropReason.NONE`` when delivered).
    """

    source: Coord
    dest: Coord
    delivered: bool
    path: Tuple[Coord, ...]
    reason: DropReason = DropReason.NONE

    @property
    def hops(self) -> int:
        """Number of links traversed."""
        return max(0, len(self.path) - 1)

    @property
    def manhattan(self) -> int:
        """The minimal possible hop count in a fault-free mesh."""
        return abs(self.source[0] - self.dest[0]) + abs(self.source[1] - self.dest[1])

    @property
    def detour(self) -> int:
        """Extra hops beyond the Manhattan distance (0 for minimal paths)."""
        return self.hops - self.manhattan

    @property
    def is_minimal(self) -> bool:
        """Whether the packet travelled a minimal (shortest-possible) path."""
        return self.delivered and self.detour == 0


def finish(
    source: Coord, dest: Coord, path: List[Coord], reason: DropReason
) -> RouteResult:
    """Build a result; ``reason == NONE`` marks delivery."""
    return RouteResult(
        source=source,
        dest=dest,
        delivered=reason is DropReason.NONE,
        path=tuple(path),
        reason=reason,
    )
