"""Breadth-first shortest-path routing — the omniscient oracle.

Not a realizable distributed router (it needs global fault knowledge),
but the ground truth the benchmarks measure everything else against:
it delivers iff the destination is reachable in the enabled subgraph,
and its hop count is the true shortest path.  The gap between a local
router and this oracle isolates algorithmic loss from model loss; the
gap between the oracle under the block view and under the region view
is precisely the routing value of the paper's refined fault model.
"""

from __future__ import annotations

from collections import deque
from typing import Dict

from repro.routing.base import Router
from repro.routing.packet import DropReason, RouteResult, finish
from repro.types import Coord

__all__ = ["BFSRouter"]


class BFSRouter(Router):
    """Shortest-path routing over the enabled subgraph (any topology)."""

    name = "bfs-oracle"

    def _route(self, source: Coord, dest: Coord) -> RouteResult:
        parent: Dict[Coord, Coord] = {source: source}
        q = deque([source])
        topo = self.view.topology
        while q:
            at = q.popleft()
            if at == dest:
                break
            for nxt in topo.neighbors(at):
                if nxt not in parent and self.view.is_enabled(nxt):
                    parent[nxt] = at
                    q.append(nxt)
        if dest not in parent:
            return finish(source, dest, [source], DropReason.UNREACHABLE)
        path = [dest]
        while path[-1] != source:
            path.append(parent[path[-1]])
        path.reverse()
        return finish(source, dest, path, DropReason.NONE)
