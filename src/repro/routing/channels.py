"""Channels and virtual channels.

A *channel* is one direction of one physical link; deadlock analysis
works on channels, not links.  Virtual channels multiplex a physical
channel into several logical ones with separate buffers — the mechanism
the paper's Section 1 refers to when noting that convex fault regions
let routing algorithms stay deadlock-free "using relatively few virtual
channels".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import RoutingError
from repro.mesh.topology import Topology
from repro.types import Coord

__all__ = ["Channel", "all_channels"]


@dataclass(frozen=True, order=True)
class Channel:
    """One directed (virtual) channel ``src -> dst`` with a VC index."""

    src: Coord
    dst: Coord
    vc: int = 0

    def __post_init__(self) -> None:
        # Mesh links differ by 1 in one dimension; torus wrap links differ
        # by (extent - 1).  Either way the endpoints must differ in exactly
        # one dimension and must not coincide.
        dx = abs(self.src[0] - self.dst[0])
        dy = abs(self.src[1] - self.dst[1])
        if (dx == 0) == (dy == 0):
            raise RoutingError(f"channel endpoints {self.src}->{self.dst} not adjacent")
        if self.vc < 0:
            raise RoutingError(f"virtual channel index must be >= 0, got {self.vc}")

    @property
    def physical(self) -> "Channel":
        """The underlying physical channel (VC index 0)."""
        return Channel(self.src, self.dst, 0)


def all_channels(topology: Topology, num_vcs: int = 1) -> List[Channel]:
    """Every directed channel of the topology, times ``num_vcs``."""
    if num_vcs < 1:
        raise RoutingError(f"need at least one virtual channel, got {num_vcs}")
    out: List[Channel] = []
    for c in topology.nodes():
        for n in topology.neighbors(c):
            for vc in range(num_vcs):
                out.append(Channel(c, n, vc))
    return out
