"""Fault-ring (f-ring) routing around rectangular faulty blocks.

The classic rectangular-block detour of Boppana and Chalasani: because
phase 1's blocks are *known rectangles*, a blocked packet does not need
blind wall-following — it plans its detour from the block geometry.
When a dimension-order hop would enter a block, the packet

1. picks the block face to travel along — the side whose exit
   row/column is closer to the destination, falling back to the other
   side when the first is walled off by the mesh edge,
2. **slides** along the blocked hop's cross dimension to that face,
3. **runs** along the face until it has passed the block (or reached
   the destination's coordinate), then resumes dimension-order routing.

This is the routing style whose simplicity the paper credits to block
convexity ("the convexity of a rectangle facilitates simple and
efficient ways to route messages around fault regions").  Because the
blocks are disjoint with separation >= 2, every rim cell between or
beside blocks is enabled, so the planned detour only fails at the mesh
boundary — in which case the router honestly reports the drop.

The router requires rectangular obstacles, i.e. a
:meth:`~repro.routing.base.FaultModelView.from_blocks` view; for the
refined polygonal model use :class:`~repro.routing.wall.WallRouter`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.errors import RoutingError
from repro.geometry.rectangles import Rect, bounding_rect, is_rectangle
from repro.routing.base import FaultModelView, Router
from repro.routing.packet import DropReason, RouteResult, finish
from repro.types import Coord

__all__ = ["FRingRouter"]


@dataclass
class _Detour:
    """Active detour state around one rectangle.

    ``axis`` is the blocked travel dimension (0 = x, 1 = y); the packet
    slides along the *other* dimension to ``face`` (the coordinate of
    the clear row/column), then runs along ``axis`` until past
    ``run_target``.
    """

    rect: Rect
    axis: int
    face: int
    run_target: int


class FRingRouter(Router):
    """Deterministic rectangle-rim detour routing.

    Raises
    ------
    RoutingError
        If any obstacle of the view is not a full rectangle.
    """

    name = "f-ring"

    def __init__(self, view: FaultModelView, max_hops: int | None = None):
        super().__init__(view, max_hops)
        self._rects: List[Rect] = []
        for obs in view.obstacles:
            if not is_rectangle(obs):
                raise RoutingError(
                    "FRingRouter needs rectangular obstacles; use the "
                    "faulty-block view (or WallRouter for polygons)"
                )
            self._rects.append(bounding_rect(obs))

    def _route(self, source: Coord, dest: Coord) -> RouteResult:
        path = [source]
        at = source
        detour: Optional[_Detour] = None
        seen: Set[Tuple[Coord, Optional[Tuple[int, int, int]]]] = set()

        while at != dest:
            if len(path) > self.max_hops:
                return finish(source, dest, path, DropReason.BUDGET)
            key = (
                at,
                None
                if detour is None
                else (detour.axis, detour.face, detour.run_target),
            )
            if key in seen:
                return finish(source, dest, path, DropReason.BLOCKED)
            seen.add(key)

            if detour is None:
                nxt, detour = self._greedy_or_start_detour(at, dest)
            else:
                nxt, detour = self._detour_step(at, dest, detour)
            if nxt is None:
                return finish(source, dest, path, DropReason.BLOCKED)
            path.append(nxt)
            at = nxt
        return finish(source, dest, path, DropReason.NONE)

    # -- greedy phase ------------------------------------------------------------

    def _greedy_or_start_detour(
        self, at: Coord, dest: Coord
    ) -> Tuple[Optional[Coord], Optional[_Detour]]:
        blocked_rect: Optional[Tuple[Coord, Rect]] = None
        for hop in self._xy_preferred(at, dest):
            if self.view.is_enabled(hop):
                return hop, None
            rect = self._rect_containing(hop)
            if rect is not None and blocked_rect is None:
                blocked_rect = (hop, rect)
        if blocked_rect is None:
            return None, None  # walled in by the mesh edge or disabled cells
        hop, rect = blocked_rect
        detour = self._plan(at, dest, hop, rect)
        if detour is None:
            return None, None
        return self._detour_step(at, dest, detour)

    def _rect_containing(self, c: Coord) -> Optional[Rect]:
        for r in self._rects:
            if r.contains(c):
                return r
        return None

    # -- detour planning -----------------------------------------------------------

    def _plan(
        self, at: Coord, dest: Coord, blocked: Coord, rect: Rect
    ) -> Optional[_Detour]:
        w, h = self.view.topology.shape
        axis = 0 if blocked[1] == at[1] else 1  # dimension we failed to move in
        if axis == 0:
            faces = [rect.y0 - 1, rect.y1 + 1]
            limit = h
            run_exit = rect.x1 + 1 if dest[0] > at[0] else rect.x0 - 1
            run_target = (
                dest[0]
                if rect.x0 <= dest[0] <= rect.x1
                else run_exit
            )
            if not (0 <= run_target < w):
                return None  # the block reaches the mesh edge we must pass
            dest_cross = dest[1]
        else:
            faces = [rect.x0 - 1, rect.x1 + 1]
            limit = w
            run_exit = rect.y1 + 1 if dest[1] > at[1] else rect.y0 - 1
            run_target = (
                dest[1]
                if rect.y0 <= dest[1] <= rect.y1
                else run_exit
            )
            if not (0 <= run_target < h):
                return None
            dest_cross = dest[0]
        # Prefer the face nearer the destination's cross coordinate.
        faces = [f for f in faces if 0 <= f < limit]
        if not faces:
            return None
        face = min(faces, key=lambda f: abs(dest_cross - f))
        return _Detour(rect=rect, axis=axis, face=face, run_target=run_target)

    def _detour_step(
        self, at: Coord, dest: Coord, detour: _Detour
    ) -> Tuple[Optional[Coord], Optional[_Detour]]:
        """One step of an active detour; may hand off to a nested detour
        when the run collides with a different block."""
        cross = 1 - detour.axis
        if at[cross] != detour.face:
            # Slide phase: move along the cross dimension toward the face.
            direction = 1 if detour.face > at[cross] else -1
            step = list(at)
            step[cross] += direction
            nxt = (step[0], step[1])
            if not self.view.is_enabled(nxt):
                return None, None  # rim interrupted (mesh edge collision)
            return nxt, detour
        # Run phase: move along the blocked dimension toward run_target.
        if at[detour.axis] == detour.run_target:
            return self._greedy_or_start_detour(at, dest)  # detour complete
        direction = 1 if detour.run_target > at[detour.axis] else -1
        step = list(at)
        step[detour.axis] += direction
        nxt = (step[0], step[1])
        if self.view.is_enabled(nxt):
            return nxt, detour
        other = self._rect_containing(nxt)
        if other is not None and not other.intersects(detour.rect):
            # Chained f-ring: a second block interrupts the run.
            nested = self._plan(at, dest, nxt, other)
            if nested is not None:
                return self._detour_step(at, dest, nested)
        return None, None
