"""Channel dependency graphs and deadlock detection.

Dally-Seitz: a deterministic routing function is deadlock-free iff its
*channel dependency graph* (CDG) — channels as vertices, an edge from
channel ``a`` to channel ``b`` whenever some packet may hold ``a`` while
requesting ``b`` — is acyclic.

This module builds the CDG of any :class:`~repro.routing.base.Router`
by enumerating routed paths (exhaustively over all enabled pairs on
small machines, or over a caller-supplied sample) and checks acyclicity
with :mod:`networkx`.  The classic results replay as tests: XY routing
on a fault-free mesh is acyclic; unconstrained wall-following detours
on one virtual channel can create cycles, which is exactly why the
fault-tolerant algorithms the paper supports spend extra virtual
channels.
"""

from __future__ import annotations

from itertools import permutations
from typing import Iterable, List, Optional, Tuple

import networkx as nx

from repro.routing.base import Router
from repro.routing.channels import Channel
from repro.types import Coord

__all__ = [
    "channel_dependency_graph",
    "deadlock_cycles",
    "is_deadlock_free",
    "all_enabled_pairs",
]


def all_enabled_pairs(router: Router) -> List[Tuple[Coord, Coord]]:
    """Every ordered pair of distinct enabled nodes (small machines only)."""
    import numpy as np

    xs, ys = np.nonzero(router.view.enabled)
    nodes = [(int(x), int(y)) for x, y in zip(xs, ys)]
    return list(permutations(nodes, 2))


def channel_dependency_graph(
    router: Router,
    pairs: Optional[Iterable[Tuple[Coord, Coord]]] = None,
) -> nx.DiGraph:
    """Build the CDG induced by the router on the given traffic pairs.

    Each delivered path contributes a dependency between every pair of
    consecutive channels it occupies.  Dropped packets contribute the
    prefix they travelled (they hold those channels too).
    """
    if pairs is None:
        pairs = all_enabled_pairs(router)
    g = nx.DiGraph()
    for source, dest in pairs:
        result = router.route(source, dest)
        path = result.path
        chans = [Channel(path[i], path[i + 1]) for i in range(len(path) - 1)]
        for ch in chans:
            g.add_node(ch)
        for a, b in zip(chans, chans[1:]):
            g.add_edge(a, b)
    return g


def deadlock_cycles(g: nx.DiGraph, limit: int = 10) -> List[List[Channel]]:
    """Up to ``limit`` elementary cycles of a CDG (empty list = deadlock-free)."""
    out: List[List[Channel]] = []
    for cycle in nx.simple_cycles(g):
        out.append(cycle)
        if len(out) >= limit:
            break
    return out


def is_deadlock_free(
    router: Router,
    pairs: Optional[Iterable[Tuple[Coord, Coord]]] = None,
) -> bool:
    """Whether the router's CDG over the given traffic is acyclic."""
    return nx.is_directed_acyclic_graph(channel_dependency_graph(router, pairs))
