"""Minimal (fully adaptive, never-misrouting) routing.

The paper stresses that convex fault regions are "a necessary condition
for progressive routing, where the routing process never backtracks",
which in turn is necessary for *minimal* routing (reference [9]'s
extended-safety-level algorithm delivers minimally whenever possible).

:func:`minimal_feasible` decides, with a dynamic program over the
source-destination rectangle, whether a minimal path of enabled nodes
exists — every hop strictly reduces the distance, so only nodes inside
the rectangle matter.  :class:`MinimalRouter` routes along such a path
when one exists and drops the packet otherwise; comparing its delivery
rate under the block view versus the region view measures how many
source/destination pairs regain *optimal* routes thanks to the paper's
refinement.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.routing.base import FaultModelView, Router
from repro.routing.packet import DropReason, RouteResult, finish
from repro.types import Coord

__all__ = ["minimal_feasible", "MinimalRouter"]


def _oriented_window(view: FaultModelView, source: Coord, dest: Coord):
    """The enabled mask of the src-dst rectangle, oriented so the packet
    always moves toward increasing indices."""
    x0, x1 = sorted((source[0], dest[0]))
    y0, y1 = sorted((source[1], dest[1]))
    window = view.enabled[x0 : x1 + 1, y0 : y1 + 1]
    if dest[0] < source[0]:
        window = window[::-1, :]
    if dest[1] < source[1]:
        window = window[:, ::-1]
    return window  # window[0, 0] is the source, window[-1, -1] the dest


def minimal_feasible(view: FaultModelView, source: Coord, dest: Coord) -> bool:
    """Whether a minimal path of enabled nodes joins ``source`` to ``dest``.

    A minimal path moves monotonically in both dimensions, so it stays
    inside the spanned rectangle and feasibility is the classic monotone
    reachability DP: a cell is reachable iff it is enabled and one of
    its two predecessors is.  Vectorized column by column.
    """
    if not (view.is_enabled(source) and view.is_enabled(dest)):
        return False
    if source == dest:
        return True
    window = _oriented_window(view, source, dest)
    w, h = window.shape
    reach = np.zeros((w, h), dtype=bool)
    reach[0, 0] = True
    # First column/row: straight-line prefixes.
    reach[1:, 0] = np.logical_and.accumulate(window[1:, 0])
    reach[0, 1:] = np.logical_and.accumulate(window[0, 1:])
    for y in range(1, h):
        # reach[x, y] = window[x, y] & (reach[x-1, y] | reach[x, y-1]);
        # the x-recurrence is a prefix "or-chain" solved with accumulate:
        # once reach is True somewhere, it extends right while window holds.
        seed = reach[:, y - 1].copy()
        seed[0] = seed[0] or reach[0, y]
        run = window[:, y]
        # Propagate along +x: standard scan over one column (h columns
        # total keeps this O(w*h)).
        cur = False
        col = reach[:, y]
        for x in range(w):
            cur = run[x] and (seed[x] or cur)
            col[x] = cur
    return bool(reach[-1, -1])


class MinimalRouter(Router):
    """Delivers along a minimal enabled path iff one exists.

    Path construction walks the feasibility DP greedily from the source,
    preferring the X dimension, re-checking feasibility of the suffix at
    each hop — O(path · area) but windows are small in practice.
    """

    name = "minimal"

    def _route(self, source: Coord, dest: Coord) -> RouteResult:
        if not minimal_feasible(self.view, source, dest):
            return finish(source, dest, [source], DropReason.BLOCKED)
        path = [source]
        at = source
        while at != dest:
            nxt = self._pick_hop(at, dest)
            if nxt is None:  # cannot happen when feasibility held; guard anyway
                return finish(source, dest, path, DropReason.BLOCKED)
            path.append(nxt)
            at = nxt
        return finish(source, dest, path, DropReason.NONE)

    def _pick_hop(self, at: Coord, dest: Coord) -> Optional[Coord]:
        for nxt in self._xy_preferred(at, dest):
            if self.view.is_enabled(nxt) and minimal_feasible(self.view, nxt, dest):
                return nxt
        return None
