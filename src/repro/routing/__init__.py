"""Fault-tolerant routing over the paper's fault models.

The application layer the labeling exists for.  A
:class:`~repro.routing.base.FaultModelView` exposes which nodes may
carry traffic under the classic faulty-block model or the paper's
refined disabled-region model; routers (dimension-order XY, boundary
wall-following, minimal-adaptive, and a BFS oracle) run over either
view, and the metrics/CDG modules quantify delivery, detours and
deadlock-freedom.
"""

from repro.routing.base import FaultModelView, Router
from repro.routing.bfs import BFSRouter
from repro.routing.broadcast import BroadcastResult, broadcast
from repro.routing.cdg import (
    all_enabled_pairs,
    channel_dependency_graph,
    deadlock_cycles,
    is_deadlock_free,
)
from repro.routing.channels import Channel, all_channels
from repro.routing.fring import FRingRouter
from repro.routing.metrics import RoutingMetrics, evaluate_router, sample_pairs
from repro.routing.minimal import MinimalRouter, minimal_feasible
from repro.routing.safety_levels import SafetyLevelRouter, safety_levels
from repro.routing.turns import NegativeFirstRouter, WestFirstRouter
from repro.routing.packet import DropReason, RouteResult
from repro.routing.vectorized import (
    DetourKernel,
    TrafficKernel,
    XYKernel,
    make_kernel,
)
from repro.routing.wall import WallRouter
from repro.routing.xy import XYRouter

__all__ = [
    "BFSRouter",
    "DetourKernel",
    "TrafficKernel",
    "XYKernel",
    "make_kernel",
    "BroadcastResult",
    "broadcast",
    "Channel",
    "DropReason",
    "FRingRouter",
    "FaultModelView",
    "MinimalRouter",
    "NegativeFirstRouter",
    "Router",
    "WestFirstRouter",
    "RouteResult",
    "RoutingMetrics",
    "SafetyLevelRouter",
    "WallRouter",
    "XYRouter",
    "safety_levels",
    "all_channels",
    "all_enabled_pairs",
    "channel_dependency_graph",
    "deadlock_cycles",
    "evaluate_router",
    "is_deadlock_free",
    "minimal_feasible",
    "sample_pairs",
]
