"""Router interface and the fault-model view routers operate on.

A :class:`FaultModelView` is what the paper's labeling hands to the
router: the set of *enabled* nodes (the only ones that "participate in
routing activities", Section 3) plus the fault regions as geometry.
Two views of the same machine are compared throughout the benchmarks:

* the **faulty-block view** — enabled = everything outside the
  rectangular blocks (the classic model), and
* the **disabled-region view** — enabled = phase-2 enabled nodes (the
  paper's refined model), which strictly contains the former.

Routers are deterministic functions from (source, dest) to a path
through enabled nodes; they never tunnel through disabled or faulty
nodes.
"""

from __future__ import annotations

import abc
from typing import List, Tuple

import numpy as np

from repro.core.pipeline import LabelingResult
from repro.errors import RoutingError
from repro.geometry.cells import CellSet
from repro.mesh.topology import Topology
from repro.routing.packet import DropReason, RouteResult, finish
from repro.types import BoolGrid, Coord

__all__ = ["FaultModelView", "Router"]


class FaultModelView:
    """A topology plus the enabled-node mask a router is allowed to use.

    Parameters
    ----------
    topology:
        The machine.
    enabled:
        Mask of nodes permitted to carry traffic.
    obstacles:
        The fault regions as cell sets (rectangles for the block model,
        orthogonal convex polygons for the refined model); geometric
        routers use them to plan detours.
    """

    def __init__(
        self,
        topology: Topology,
        enabled: BoolGrid,
        obstacles: Tuple[CellSet, ...] = (),
    ):
        if enabled.shape != topology.shape:
            raise RoutingError(
                f"enabled mask shape {enabled.shape} != topology {topology.shape}"
            )
        self.topology = topology
        self.enabled = enabled
        self.obstacles = tuple(obstacles)

    # -- canonical constructions ---------------------------------------------

    @classmethod
    def from_blocks(cls, result: LabelingResult) -> "FaultModelView":
        """The classic faulty-block model: every unsafe node is disabled."""
        return cls(
            result.topology,
            enabled=~result.labels.unsafe,
            obstacles=tuple(b.cells for b in result.blocks),
        )

    @classmethod
    def from_regions(cls, result: LabelingResult) -> "FaultModelView":
        """The paper's refined model: phase-2 enabled nodes participate."""
        return cls(
            result.topology,
            enabled=result.labels.enabled.copy(),
            obstacles=tuple(r.cells for r in result.regions),
        )

    # -- queries -----------------------------------------------------------------

    def is_enabled(self, c: Coord) -> bool:
        """Whether node ``c`` may carry traffic."""
        return self.topology.contains(c) and bool(self.enabled[c])

    @property
    def num_enabled(self) -> int:
        """How many nodes participate in routing under this view."""
        return int(self.enabled.sum())

    def random_enabled_pair(self, rng: np.random.Generator) -> Tuple[Coord, Coord]:
        """Draw a uniform source/destination pair of distinct enabled nodes.

        Raises
        ------
        RoutingError
            If fewer than two nodes are enabled.
        """
        xs, ys = np.nonzero(self.enabled)
        if len(xs) < 2:
            raise RoutingError("fewer than two enabled nodes")
        i, j = rng.choice(len(xs), size=2, replace=False)
        return (int(xs[i]), int(ys[i])), (int(xs[j]), int(ys[j]))


class Router(abc.ABC):
    """A deterministic unicast router over a :class:`FaultModelView`."""

    #: Human-readable router name for benchmark tables.
    name: str = "router"

    def __init__(self, view: FaultModelView, max_hops: int | None = None):
        self.view = view
        # Generous default: any sane detour fits in 4x the diameter.
        self.max_hops = (
            max_hops if max_hops is not None else 4 * (view.topology.diameter + 1) + 16
        )

    def route(self, source: Coord, dest: Coord) -> RouteResult:
        """Route one packet; never raises for routable inputs.

        Endpoint validation is uniform across routers: both endpoints
        must be enabled nodes, otherwise the packet is dropped with
        ``BAD_ENDPOINT``.
        """
        if not (self.view.is_enabled(source) and self.view.is_enabled(dest)):
            return finish(source, dest, [source], DropReason.BAD_ENDPOINT)
        if source == dest:
            return finish(source, dest, [source], DropReason.NONE)
        return self._route(source, dest)

    @abc.abstractmethod
    def _route(self, source: Coord, dest: Coord) -> RouteResult:
        """Subclass hook; endpoints are validated and distinct."""

    # -- shared helpers ------------------------------------------------------------

    def _xy_preferred(self, at: Coord, dest: Coord) -> List[Coord]:
        """Dimension-order preferred next hops: X first, then Y."""
        hops: List[Coord] = []
        if at[0] != dest[0]:
            hops.append((at[0] + (1 if dest[0] > at[0] else -1), at[1]))
        if at[1] != dest[1]:
            hops.append((at[0], at[1] + (1 if dest[1] > at[1] else -1)))
        return hops
