"""Fault-tolerant broadcast over the enabled subgraph.

Collective communication is the other half of the paper's motivation —
its reference [8] studies multicast on wormhole meshes with faults.
This module implements the baseline every such scheme is measured
against: flooding a message from a root along a breadth-first spanning
tree of the *enabled* nodes, one hop per step (each informed node
forwards to its uninformed enabled neighbours).

The fault-model comparison is direct: under the refined disabled-region
view more nodes are enabled, so a broadcast reaches more of the machine
and — because activated nodes plug holes in the enabled subgraph — can
need fewer steps to cover the same nodes.  The ``bench_broadcast``
benchmark quantifies both effects.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import RoutingError
from repro.routing.base import FaultModelView
from repro.types import Coord

__all__ = ["BroadcastResult", "broadcast"]


@dataclass(frozen=True)
class BroadcastResult:
    """Outcome of one flooding broadcast."""

    root: Coord
    reached: Tuple[Coord, ...]
    steps: int                      # rounds until the last node was informed
    num_enabled: int                # size of the enabled universe

    @property
    def coverage(self) -> float:
        """Fraction of enabled nodes the broadcast reached."""
        return len(self.reached) / self.num_enabled if self.num_enabled else 1.0

    def depth_of(self, node: Coord) -> int | None:
        """Steps after which ``node`` was informed, or None if unreached."""
        return self._depths.get(node)

    # Populated by broadcast(); kept off the dataclass compare/repr.
    @property
    def _depths(self) -> Dict[Coord, int]:
        return object.__getattribute__(self, "_depth_map")


def broadcast(view: FaultModelView, root: Coord) -> BroadcastResult:
    """Flood from ``root`` through enabled nodes, one hop per step.

    Raises
    ------
    RoutingError
        If the root is not an enabled node.
    """
    if not view.is_enabled(root):
        raise RoutingError(f"broadcast root {root} is not an enabled node")
    depths: Dict[Coord, int] = {root: 0}
    q = deque([root])
    topo = view.topology
    last = 0
    while q:
        at = q.popleft()
        d = depths[at]
        for nxt in topo.neighbors(at):
            if nxt not in depths and view.is_enabled(nxt):
                depths[nxt] = d + 1
                last = max(last, d + 1)
                q.append(nxt)
    result = BroadcastResult(
        root=root,
        reached=tuple(sorted(depths)),
        steps=last,
        num_enabled=view.num_enabled,
    )
    object.__setattr__(result, "_depth_map", dict(depths))
    return result
