"""Turn-model routing: west-first and negative-first.

Glass and Ni's turn model is the other classic road to deadlock freedom
on a single virtual channel: instead of ordering dimensions (XY), it
forbids just enough *turns* to break every dependency cycle, leaving
partial adaptivity that helps around fault regions.

* **West-first**: all westward hops must happen before anything else;
  once a packet moves north/south/east it may never turn west.  The two
  forbidden turns (N->W, S->W) kill both abstract cycles.
* **Negative-first**: all negative hops (west, south) first; a packet
  that has moved in a positive direction may never turn negative.

Both are implemented as adaptive routers over a fault-model view: among
the turn-legal hops that make progress, prefer an enabled one; when all
progress hops are disabled, the packet may misroute along legal
non-progress directions (bounded by the hop budget).  The CDG tests
verify the deadlock-freedom of the legal-turn relation exhaustively on
small meshes.
"""

from __future__ import annotations

from typing import List, Optional

from repro.routing.base import Router
from repro.routing.packet import DropReason, RouteResult, finish
from repro.types import Coord

__all__ = ["WestFirstRouter", "NegativeFirstRouter"]


class _TurnModelRouter(Router):
    """Shared scaffolding: route greedily among turn-legal hops."""

    def _route(self, source: Coord, dest: Coord) -> RouteResult:
        path = [source]
        at = source
        prev: Optional[Coord] = None  # 180-degree reversals are illegal turns
        phase_one = True  # still in the restricted first phase
        visited = set()
        while at != dest:
            if len(path) > self.max_hops:
                return finish(source, dest, path, DropReason.BUDGET)
            phase_one = phase_one and self._still_phase_one(at, dest)
            state = (at, prev, phase_one)
            if state in visited:
                return finish(source, dest, path, DropReason.BLOCKED)
            visited.add(state)
            nxt = self._pick(at, dest, phase_one, prev)
            if nxt is None:
                return finish(source, dest, path, DropReason.BLOCKED)
            path.append(nxt)
            prev, at = at, nxt
        return finish(source, dest, path, DropReason.NONE)

    # Subclass hooks -----------------------------------------------------------

    def _still_phase_one(self, at: Coord, dest: Coord) -> bool:
        raise NotImplementedError

    def _pick(
        self, at: Coord, dest: Coord, phase_one: bool, prev: Optional[Coord]
    ) -> Optional[Coord]:
        raise NotImplementedError

    # Helpers --------------------------------------------------------------------

    def _enabled(self, c: Coord) -> bool:
        return self.view.is_enabled(c)

    @staticmethod
    def _east(at: Coord) -> Coord:
        return (at[0] + 1, at[1])

    @staticmethod
    def _west(at: Coord) -> Coord:
        return (at[0] - 1, at[1])

    @staticmethod
    def _north(at: Coord) -> Coord:
        return (at[0], at[1] + 1)

    @staticmethod
    def _south(at: Coord) -> Coord:
        return (at[0], at[1] - 1)


class WestFirstRouter(_TurnModelRouter):
    """West-first turn-model routing.

    Westward correction happens first and exclusively; afterwards the
    packet routes adaptively among east/north/south but never turns
    west again.
    """

    name = "west-first"

    def _still_phase_one(self, at: Coord, dest: Coord) -> bool:
        return dest[0] < at[0]

    def _pick(
        self, at: Coord, dest: Coord, phase_one: bool, prev: Optional[Coord]
    ) -> Optional[Coord]:
        if phase_one:
            # Only westward movement is allowed while west of us remains.
            w = self._west(at)
            return w if self._enabled(w) else None
        # Adaptive among progress hops east/north/south.
        candidates: List[Coord] = []
        if dest[0] > at[0]:
            candidates.append(self._east(at))
        if dest[1] > at[1]:
            candidates.append(self._north(at))
        elif dest[1] < at[1]:
            candidates.append(self._south(at))
        for c in candidates:
            if c != prev and self._enabled(c):
                return c
        # Legal misroutes (never west, never a reversal).
        for c in (self._east(at), self._north(at), self._south(at)):
            if c != prev and self._enabled(c) and c not in candidates:
                return c
        return None


class NegativeFirstRouter(_TurnModelRouter):
    """Negative-first turn-model routing.

    All west/south correction first (adaptively between the two);
    afterwards only east/north hops are legal.
    """

    name = "negative-first"

    def _still_phase_one(self, at: Coord, dest: Coord) -> bool:
        return dest[0] < at[0] or dest[1] < at[1]

    def _pick(
        self, at: Coord, dest: Coord, phase_one: bool, prev: Optional[Coord]
    ) -> Optional[Coord]:
        if phase_one:
            candidates = []
            if dest[0] < at[0]:
                candidates.append(self._west(at))
            if dest[1] < at[1]:
                candidates.append(self._south(at))
            for c in candidates:
                if c != prev and self._enabled(c):
                    return c
            # Legal misroutes in phase one: the other negative direction.
            for c in (self._west(at), self._south(at)):
                if c != prev and self._enabled(c) and c not in candidates:
                    return c
            return None
        candidates = []
        if dest[0] > at[0]:
            candidates.append(self._east(at))
        if dest[1] > at[1]:
            candidates.append(self._north(at))
        for c in candidates:
            if c != prev and self._enabled(c):
                return c
        for c in (self._east(at), self._north(at)):
            if c != prev and self._enabled(c) and c not in candidates:
                return c
        return None
