"""Directional safety levels — limited global information for routing.

The paper's reference [9] (Wu, *extended safety levels*, TPDS 2000)
routes minimally using a per-node summary of where the fault regions
lie, accumulated through neighbour exchanges rather than global
knowledge.  The exact construction belongs to that paper; this module
implements its information core in our framework, documented as a
substitution in DESIGN.md:

for every enabled node and each of the four directions, the **safety
level** is the number of consecutive enabled nodes in that direction
before the first disabled node or the mesh edge.  A node therefore
knows, locally, how far it can run in each direction — one integer per
direction, exactly the kind of bounded state a real router holds.  The
levels are computable distributedly in `max-run` rounds (each node
learns `1 + neighbour's level`); :func:`safety_levels` computes the
identical fixpoint with directional scans.

:class:`SafetyLevelRouter` uses the levels as a *local* minimal-routing
oracle: among the (at most two) profitable hops it prefers one whose
direction can still run at least as far as the remaining offset —
avoiding dead-ends an XY packet would hit — and falls back to the other
profitable hop otherwise.  It never misroutes, so every delivery is
minimal; the benchmarks measure how much of :class:`~repro.routing.minimal.MinimalRouter`'s
(exact, quadratic-cost) feasibility it recovers with O(1) state.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.mesh.coords import Direction
from repro.routing.base import FaultModelView, Router
from repro.routing.packet import DropReason, RouteResult, finish
from repro.types import BoolGrid, Coord, IntGrid

__all__ = ["safety_levels", "SafetyLevelRouter"]


def safety_levels(enabled: BoolGrid) -> Dict[Direction, IntGrid]:
    """Per-direction runs of enabled nodes.

    ``levels[EAST][x, y]`` is the number of consecutive enabled nodes
    strictly east of ``(x, y)`` before a disabled node or the mesh
    edge.  Levels are 0 at and beyond disabled nodes' borders; values
    at disabled nodes themselves are 0 by convention.
    """
    w, h = enabled.shape
    east = np.zeros((w, h), dtype=np.int64)
    west = np.zeros((w, h), dtype=np.int64)
    north = np.zeros((w, h), dtype=np.int64)
    south = np.zeros((w, h), dtype=np.int64)
    for x in range(w - 2, -1, -1):
        east[x, :] = np.where(enabled[x + 1, :], east[x + 1, :] + 1, 0)
    for x in range(1, w):
        west[x, :] = np.where(enabled[x - 1, :], west[x - 1, :] + 1, 0)
    for y in range(h - 2, -1, -1):
        north[:, y] = np.where(enabled[:, y + 1], north[:, y + 1] + 1, 0)
    for y in range(1, h):
        south[:, y] = np.where(enabled[:, y - 1], south[:, y - 1] + 1, 0)
    return {
        Direction.EAST: east,
        Direction.WEST: west,
        Direction.NORTH: north,
        Direction.SOUTH: south,
    }


class SafetyLevelRouter(Router):
    """Minimal adaptive routing steered by directional safety levels.

    At each node the packet considers its profitable hops (toward the
    destination in each dimension).  A hop is *assured* when the
    direction's safety level covers the whole remaining offset in that
    dimension — the packet could run straight to the destination's
    coordinate without hitting a region.  Assured hops are preferred;
    otherwise any enabled profitable hop is taken.  The packet never
    moves away from the destination, so it delivers minimally or not at
    all — trading :class:`MinimalRouter`'s exact feasibility test for
    constant-size local state.
    """

    name = "safety-level"

    def __init__(self, view: FaultModelView, max_hops: int | None = None):
        super().__init__(view, max_hops)
        self._levels = safety_levels(view.enabled)

    def _route(self, source: Coord, dest: Coord) -> RouteResult:
        path = [source]
        at = source
        while at != dest:
            if len(path) > self.max_hops:
                return finish(source, dest, path, DropReason.BUDGET)
            nxt = self._pick(at, dest)
            if nxt is None:
                return finish(source, dest, path, DropReason.BLOCKED)
            path.append(nxt)
            at = nxt
        return finish(source, dest, path, DropReason.NONE)

    def _pick(self, at: Coord, dest: Coord) -> Coord | None:
        options = []
        if at[0] != dest[0]:
            d = Direction.EAST if dest[0] > at[0] else Direction.WEST
            options.append((d, abs(dest[0] - at[0])))
        if at[1] != dest[1]:
            d = Direction.NORTH if dest[1] > at[1] else Direction.SOUTH
            options.append((d, abs(dest[1] - at[1])))
        assured = []
        viable = []
        for d, offset in options:
            hop = (at[0] + d.offset[0], at[1] + d.offset[1])
            if not self.view.is_enabled(hop):
                continue
            viable.append(hop)
            if self._levels[d][at] >= offset:
                assured.append(hop)
        if assured:
            return assured[0]
        if viable:
            return viable[0]
        return None
