"""Fault-region boundary routing: XY with wall-following detours.

The local, distributedly realizable fault-tolerant router: a packet
travels dimension-order until its preferred hop is disabled, then walks
along the fault region's boundary (the *f-ring* of Boppana-Chalasani,
generalised to the polygonal rims of the paper's refined model) until
it can make progress again, Bug2-style: it leaves the wall once it is
strictly closer to the destination than where it hit the region and a
dimension-order hop is free.

The convexity of the regions is what makes this practical — the paper's
Section 1 point that convex regions admit "simple and efficient ways to
route messages around fault regions".  Around *orthogonal convex*
obstacles the rim never doubles back along a line, so detours stay
short; the benchmark harness quantifies this against the BFS oracle.

The router only needs per-node local state (heading + hit-point
distance carried in the packet header) and one bit per neighbour
(enabled or not) — the information the paper's labeling provides.
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

from repro.mesh.coords import Direction
from repro.routing.base import Router
from repro.routing.packet import DropReason, RouteResult, finish
from repro.types import Coord

__all__ = ["WallRouter"]

_DIR_OF = {d.offset: d for d in Direction}


class WallRouter(Router):
    """XY routing with right- or left-hand boundary traversal on blockage.

    Parameters
    ----------
    view, max_hops:
        See :class:`~repro.routing.base.Router`.
    hand:
        ``"right"`` keeps the fault region on the packet's right while
        wall-following (counterclockwise rim traversal), ``"left"`` the
        mirror image.
    """

    name = "wall"

    def __init__(self, view, max_hops: int | None = None, hand: str = "right"):
        super().__init__(view, max_hops)
        if hand not in ("right", "left"):
            raise ValueError(f"hand must be 'right' or 'left', got {hand!r}")
        self.hand = hand
        self.name = f"wall-{hand}"

    def _route(self, source: Coord, dest: Coord) -> RouteResult:
        path = [source]
        at = source
        following = False
        heading: Optional[Direction] = None
        hit_distance = 0
        topo = self.view.topology
        seen_wall_states: Set[Tuple[Coord, Direction]] = set()

        while at != dest:
            if len(path) > self.max_hops:
                return finish(source, dest, path, DropReason.BUDGET)

            if not following:
                moved = False
                for nxt in self._xy_preferred(at, dest):
                    if self.view.is_enabled(nxt):
                        path.append(nxt)
                        at = nxt
                        moved = True
                        break
                if moved:
                    continue
                # Both dimension-order hops blocked (or only one exists and
                # is blocked): start wall-following.
                following = True
                hit_distance = topo.distance(at, dest)
                heading = self._initial_heading(at, dest)
                seen_wall_states.clear()
                if heading is None:
                    return finish(source, dest, path, DropReason.BLOCKED)

            # Wall-following step.
            assert heading is not None
            state = (at, heading)
            if state in seen_wall_states:
                # Walked the whole rim without escaping: the destination
                # is sealed off under this view.
                return finish(source, dest, path, DropReason.BLOCKED)
            seen_wall_states.add(state)

            step = self._wall_step(at, heading)
            if step is None:
                return finish(source, dest, path, DropReason.BLOCKED)
            at, heading = step
            path.append(at)

            # Bug2 leave condition: strictly closer than the hit point and
            # a dimension-order hop is available again.
            if topo.distance(at, dest) < hit_distance:
                for nxt in self._xy_preferred(at, dest):
                    if self.view.is_enabled(nxt):
                        following = False
                        break

        return finish(source, dest, path, DropReason.NONE)

    # -- internals -----------------------------------------------------------

    def _initial_heading(self, at: Coord, dest: Coord) -> Optional[Direction]:
        """Pick the rim-walk heading when the packet first hits the region.

        The blocked preferred hop points into the region; walking
        perpendicular to it with the chosen hand keeps the region on
        that side.  Of the two perpendiculars, prefer one that is itself
        walkable from here.
        """
        preferred = self._xy_preferred(at, dest)
        blocked_dir = _DIR_OF[(preferred[0][0] - at[0], preferred[0][1] - at[1])]
        first = (
            blocked_dir.counterclockwise
            if self.hand == "right"
            else blocked_dir.clockwise
        )
        for cand in (first, first.opposite):
            nxt = (at[0] + cand.offset[0], at[1] + cand.offset[1])
            if self.view.is_enabled(nxt):
                return cand
        # Fully cornered except backwards; head back the way we came.
        back = blocked_dir.opposite
        nxt = (at[0] + back.offset[0], at[1] + back.offset[1])
        return back if self.view.is_enabled(nxt) else None

    def _wall_step(
        self, at: Coord, heading: Direction
    ) -> Optional[Tuple[Coord, Direction]]:
        """One hand-rule step: turn into the wall first, then straight,
        then away, then reverse — taking the first enabled move."""
        if self.hand == "right":
            order = (
                heading.clockwise,          # toward the wall on our right
                heading,
                heading.counterclockwise,
                heading.opposite,
            )
        else:
            order = (
                heading.counterclockwise,
                heading,
                heading.clockwise,
                heading.opposite,
            )
        for d in order:
            nxt = (at[0] + d.offset[0], at[1] + d.offset[1])
            if self.view.is_enabled(nxt):
                return nxt, d
        return None
