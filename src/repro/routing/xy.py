"""Dimension-order (XY) routing — the fault-intolerant baseline.

The packet first corrects its X offset, then its Y offset.  In a
fault-free mesh this is minimal and deadlock-free (the classic e-cube
result, re-verified by the CDG tests); with faults it drops the packet
at the first disabled node on its fixed path, which is exactly why the
fault-tolerant literature the paper belongs to exists.
"""

from __future__ import annotations

from repro.routing.base import Router
from repro.routing.packet import DropReason, RouteResult, finish
from repro.types import Coord

__all__ = ["XYRouter"]


class XYRouter(Router):
    """Deterministic X-then-Y dimension-order routing."""

    name = "xy"

    def _route(self, source: Coord, dest: Coord) -> RouteResult:
        path = [source]
        at = source
        while at != dest:
            if len(path) > self.max_hops:
                return finish(source, dest, path, DropReason.BUDGET)
            preferred = self._xy_preferred(at, dest)
            nxt = preferred[0]  # strict dimension order: X before Y
            if not self.view.is_enabled(nxt):
                return finish(source, dest, path, DropReason.BLOCKED)
            path.append(nxt)
            at = nxt
        return finish(source, dest, path, DropReason.NONE)
