"""repro — distributed formation of orthogonal convex polygons in meshes.

A production-quality reproduction of Jie Wu, *"A Distributed Formation
of Orthogonal Convex Polygons in Mesh-Connected Multicomputers"*
(IPPS 2001): the two-phase safe/unsafe + enabled/disabled labeling that
shrinks rectangular faulty blocks to minimal orthogonal convex fault
polygons, together with the substrates the paper sits on — a 2-D
mesh/torus model, a synchronous message-passing fabric, rectilinear
geometry, fault models, fault-tolerant routing, and the experiment
harness that regenerates the paper's Figure 5.

Quickstart
----------
>>> import numpy as np
>>> from repro import Mesh2D, label_mesh, uniform_random
>>> mesh = Mesh2D(100, 100)
>>> faults = uniform_random(mesh.shape, 60, np.random.default_rng(7))
>>> result = label_mesh(mesh, faults)
>>> from repro.core import theorems
>>> all(c.holds for c in theorems.check_all(result))
True
"""

from repro._version import __version__
from repro.core import (
    DisabledRegion,
    FaultyBlock,
    LabelGrid,
    LabelingResult,
    NodeStatus,
    SafetyDefinition,
    label_mesh,
)
from repro.faults import FaultSet, clustered, shaped, uniform_random
from repro.geometry import (
    CellSet,
    Rect,
    is_orthoconvex,
    orthoconvex_closure,
)
from repro.mesh import Mesh2D, Torus2D

__all__ = [
    "CellSet",
    "DisabledRegion",
    "FaultSet",
    "FaultyBlock",
    "LabelGrid",
    "LabelingResult",
    "Mesh2D",
    "NodeStatus",
    "Rect",
    "SafetyDefinition",
    "Torus2D",
    "__version__",
    "clustered",
    "is_orthoconvex",
    "label_mesh",
    "orthoconvex_closure",
    "shaped",
    "uniform_random",
]
