"""Exception hierarchy for :mod:`repro`.

Every exception raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library errors without
accidentally swallowing programming mistakes such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all exceptions raised by the :mod:`repro` library."""


class TopologyError(ReproError):
    """A coordinate or shape is invalid for the topology it was used with.

    Raised e.g. for out-of-range node addresses on a mesh, non-positive
    dimensions, or mixing grids of different shapes.
    """


class FaultModelError(ReproError):
    """A fault specification is invalid (out of range, overlapping, too many
    faults for the requested region, ...)."""


class ProtocolError(ReproError):
    """A distributed node program violated the fabric engine's contract,
    e.g. sent a message to a non-neighbour or emitted malformed payloads."""


class ConvergenceError(ReproError):
    """An iterative fixpoint failed to converge within its round budget.

    The labeling fixpoints of the paper are monotone over a finite lattice
    and therefore always converge; hitting this error indicates either a
    corrupted label grid or a bug, so it is never silently ignored.
    """


class GeometryError(ReproError):
    """A geometric precondition was violated (empty cell set where one is
    required, mismatched grid shapes, malformed rectangle, ...)."""


class RoutingError(ReproError):
    """A routing request is unsatisfiable or malformed, e.g. the source or
    destination node is faulty/disabled."""


class PartitionError(ReproError):
    """A disabled-region partition request is malformed or infeasible."""


class ObservabilityError(ReproError):
    """A telemetry artefact is malformed: an event violating its schema,
    an unreadable JSONL trace, or a Chrome-trace file the strict loader
    rejects."""


class ServiceError(ReproError):
    """A labeling-service request is malformed or failed: an unknown op,
    missing/ill-typed request fields, or an error response received by
    the client."""


class ServiceOverloadedError(ServiceError):
    """The server shed a request because its in-flight bound was reached.

    Retryable by construction: the request was rejected *before* any
    state change, so a client may back off and resend the same payload.
    """


class DurabilityError(ReproError):
    """The write-ahead log or a snapshot is unusable: an unreadable WAL
    directory, a snapshot whose checksum does not match, a replay that
    diverges from its recorded versions, or recovered state that fails
    the bit-for-bit check against from-scratch labeling."""
