"""Rolling-window SLO evaluation over service request outcomes.

An SLO here is the pair of objectives a serving stack is typically held
to:

* a **latency objective** — "p99 update latency stays under X µs";
* an **availability objective** — "at least Y of requests succeed",
  tracked as an *error budget*: a window of ``n`` requests at target
  availability ``a`` may spend ``(1 - a) * n`` errors before the budget
  is exhausted.

:class:`SLOTracker` keeps a bounded rolling window of ``(ok,
latency_us)`` outcomes — every request the server answers *or rejects*
(oversized frames, deadline hits, load shedding) is recorded, so the
error budget sees the failures clients see.  :func:`evaluate_outcomes`
is the pure evaluation core, reused by ``repro obs summarize`` to grade
a recorded trace's ``service_request`` events against the same config
offline.

The evaluation surfaces in three places: ``LabelingService.stats()``
(the ``stats`` op and ``/varz``), the admin plane, and the summarize
report — one definition of "healthy", three vantage points.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Iterable, Tuple

__all__ = ["SLOConfig", "SLOTracker", "evaluate_outcomes"]


@dataclass(frozen=True)
class SLOConfig:
    """The objectives a request window is graded against.

    Defaults suit the interactive update path of a mesh a few hundred
    nodes on a side; pass explicit objectives for benches or CI.
    """

    #: The latency objective in microseconds, applied at
    #: :attr:`latency_quantile`.
    latency_objective_us: float = 50_000.0
    #: Which quantile the latency objective constrains (0 < q <= 1).
    latency_quantile: float = 0.99
    #: Target success fraction; the error budget is its complement.
    availability_target: float = 0.999
    #: Rolling-window size in requests.
    window: int = 1024

    def __post_init__(self) -> None:
        if not 0.0 < self.latency_quantile <= 1.0:
            raise ValueError(
                f"latency_quantile must be in (0, 1], got {self.latency_quantile}"
            )
        if not 0.0 < self.availability_target <= 1.0:
            raise ValueError(
                "availability_target must be in (0, 1], got "
                f"{self.availability_target}"
            )
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if self.latency_objective_us <= 0:
            raise ValueError(
                "latency_objective_us must be positive, got "
                f"{self.latency_objective_us}"
            )


def evaluate_outcomes(
    outcomes: Iterable[Tuple[bool, float]], config: SLOConfig
) -> Dict[str, Any]:
    """Grade a window of ``(ok, latency_us)`` outcomes against ``config``.

    Returns a JSON-ready dict:

    ``count`` / ``errors``
        Window size and failures in it.
    ``availability`` / ``availability_ok``
        Observed success fraction vs the target (vacuously met on an
        empty window).
    ``error_budget_total`` / ``error_budget_spent`` / ``error_budget_remaining``
        The window's error allowance ``(1 - target) * count`` and how
        much of it the observed errors consume; ``remaining`` floors at
        0.  A budget of 0 (small window, tight target) means any error
        breaks availability.
    ``latency_quantile_us`` / ``latency_ok``
        The configured quantile of *successful* request latencies
        (nearest rank) vs the objective — rejected requests are
        answered in constant time and would flatter the percentile.
    ``ok``
        Both objectives met.
    """
    oks: list = []
    errors = 0
    for ok, latency_us in outcomes:
        if ok:
            oks.append(float(latency_us))
        else:
            errors += 1
    count = len(oks) + errors
    availability = 1.0 if count == 0 else len(oks) / count
    budget_total = (1.0 - config.availability_target) * count
    budget_remaining = max(0.0, budget_total - errors)
    availability_ok = count == 0 or availability >= config.availability_target
    if oks:
        oks.sort()
        rank = min(
            len(oks) - 1,
            max(0, math.ceil(config.latency_quantile * len(oks)) - 1),
        )
        quantile_us = oks[rank]
    else:
        quantile_us = 0.0
    latency_ok = quantile_us <= config.latency_objective_us
    return {
        "config": {
            "latency_objective_us": config.latency_objective_us,
            "latency_quantile": config.latency_quantile,
            "availability_target": config.availability_target,
            "window": config.window,
        },
        "count": count,
        "errors": errors,
        "availability": availability,
        "availability_ok": availability_ok,
        "error_budget_total": budget_total,
        "error_budget_spent": float(errors),
        "error_budget_remaining": budget_remaining,
        "latency_quantile_us": quantile_us,
        "latency_ok": latency_ok,
        "ok": availability_ok and latency_ok,
    }


class SLOTracker:
    """Thread-safe rolling window of request outcomes.

    The server's handler threads :meth:`record` concurrently with the
    admin thread's :meth:`evaluate`; one lock covers both (the window is
    bounded, so evaluation is O(window) worst case, far off the request
    hot path).
    """

    def __init__(self, config: SLOConfig = SLOConfig()):
        self.config = config
        self._outcomes: Deque[Tuple[bool, float]] = deque(maxlen=config.window)
        self._lock = threading.Lock()
        self._total = 0
        self._total_errors = 0

    def record(self, ok: bool, latency_us: float) -> None:
        """Add one request outcome (answered or rejected) to the window."""
        with self._lock:
            self._outcomes.append((bool(ok), float(latency_us)))
            self._total += 1
            if not ok:
                self._total_errors += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._outcomes)

    def evaluate(self) -> Dict[str, Any]:
        """Grade the current window; adds lifetime ``total`` /
        ``total_errors`` alongside the windowed figures."""
        with self._lock:
            outcomes = list(self._outcomes)
            total, total_errors = self._total, self._total_errors
        result = evaluate_outcomes(outcomes, self.config)
        result["total"] = total
        result["total_errors"] = total_errors
        return result
