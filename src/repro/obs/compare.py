"""Cross-run regression reports: ``repro obs compare A B``.

Two runs of the same pipeline — a stored ``BENCH_perf.json`` and a
fresh one, or two ``obs summarize --json`` exports — are compared
metric by metric.  Each artifact is flattened to its numeric leaves
(dotted paths: ``incremental.durable.updates_per_sec``), paths present
in both are paired, and each pair becomes a delta with a direction
verdict:

* paths whose last component looks like a latency/duration/overhead
  (``*_s``, ``*_us``, ``p50``/``p90``/``p99``/``max``, ``*_overhead``,
  ``errors``, ``dropped``) are **lower-is-better**;
* paths that look like a rate or speedup (``*updates_per_sec``,
  ``*speedup*``, ``*relative*``, ``*vs_serial*``, ``availability``)
  are **higher-is-better**;
* everything else is informational — reported, never flagged.

A pair regresses when it moves beyond ``threshold`` (relative) in its
bad direction.  This is deliberately heuristic — it is a *report*, the
first piece of ROADMAP item 5's cross-run story, not a statistics
engine; the CI invocation runs it in report-only mode and the
``--fail-on-regression`` flag exists for curated same-shape artifact
pairs.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import ObservabilityError

__all__ = [
    "MetricDelta",
    "compare_runs",
    "flatten_numeric",
    "format_compare",
    "load_run_artifact",
]

#: Last-component suffixes/names where smaller values are better.
_LOWER_BETTER_SUFFIXES = ("_s", "_us", "_ms", "_overhead", "_bytes")
_LOWER_BETTER_NAMES = frozenset(
    {"p50", "p90", "p99", "max", "min", "errors", "dropped", "duplicated",
     "error_budget_spent", "total_errors"}
)
#: Path fragments where larger values are better.
_HIGHER_BETTER_FRAGMENTS = (
    "updates_per_sec", "speedup", "vs_serial", "relative", "availability",
    "error_budget_remaining",
)


@dataclass(frozen=True)
class MetricDelta:
    """One compared metric: values from both runs and the verdict."""

    path: str
    a: float
    b: float
    #: ``"lower"`` / ``"higher"`` is better, or ``None`` (informational).
    direction: Optional[str]
    #: Relative change (b - a) / |a|; ``None`` when ``a`` is 0.
    relative: Optional[float]
    #: Moved beyond threshold in the bad direction.
    regressed: bool
    #: Moved beyond threshold in the good direction.
    improved: bool


def flatten_numeric(obj: Any, prefix: str = "") -> Dict[str, float]:
    """All numeric leaves of a nested JSON object as ``{path: value}``.

    Paths are dotted; list elements use their index as a component.
    Booleans and non-numeric leaves are skipped.
    """
    out: Dict[str, float] = {}
    if isinstance(obj, Mapping):
        items = [(str(k), v) for k, v in obj.items()]
    elif isinstance(obj, (list, tuple)):
        items = [(str(i), v) for i, v in enumerate(obj)]
    else:
        if isinstance(obj, (int, float)) and not isinstance(obj, bool):
            value = float(obj)
            if math.isfinite(value):
                out[prefix] = value
        return out
    for key, value in items:
        path = f"{prefix}.{key}" if prefix else key
        out.update(flatten_numeric(value, path))
    return out


def metric_direction(path: str) -> Optional[str]:
    """Infer which way a metric should move, from its path."""
    lowered = path.lower()
    for fragment in _HIGHER_BETTER_FRAGMENTS:
        if fragment in lowered:
            return "higher"
    last = lowered.rsplit(".", 1)[-1]
    if last in _LOWER_BETTER_NAMES:
        return "lower"
    for suffix in _LOWER_BETTER_SUFFIXES:
        if last.endswith(suffix):
            return "lower"
    return None


def load_run_artifact(path: str) -> Dict[str, Any]:
    """Load a JSON run artifact (``BENCH_perf.json``, ``obs summarize
    --json`` output, a metrics snapshot...).

    Raises :class:`~repro.errors.ObservabilityError` on unreadable or
    non-object JSON, so the CLI can turn it into a one-line error.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ObservabilityError(f"cannot load run artifact {path}: {exc}") from exc
    if not isinstance(data, Mapping):
        raise ObservabilityError(
            f"{path}: run artifact must be a JSON object, got "
            f"{type(data).__name__}"
        )
    return dict(data)


def compare_runs(
    a: Mapping[str, Any],
    b: Mapping[str, Any],
    threshold: float = 0.10,
) -> List[MetricDelta]:
    """Pair the numeric leaves of two run artifacts into deltas.

    Only paths present in both artifacts are compared (two artifacts of
    different shapes simply share fewer paths).  ``threshold`` is the
    relative change beyond which a directional metric counts as a
    regression/improvement.
    """
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold}")
    flat_a = flatten_numeric(a)
    flat_b = flatten_numeric(b)
    deltas: List[MetricDelta] = []
    for path in sorted(set(flat_a) & set(flat_b)):
        va, vb = flat_a[path], flat_b[path]
        direction = metric_direction(path)
        relative = (vb - va) / abs(va) if va != 0 else None
        regressed = improved = False
        if direction is not None and relative is not None:
            bad = relative > threshold if direction == "lower" else relative < -threshold
            good = relative < -threshold if direction == "lower" else relative > threshold
            regressed, improved = bad, good
        deltas.append(
            MetricDelta(
                path=path,
                a=va,
                b=vb,
                direction=direction,
                relative=relative,
                regressed=regressed,
                improved=improved,
            )
        )
    return deltas


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.4g}"


def format_compare(
    deltas: List[MetricDelta],
    label_a: str = "A",
    label_b: str = "B",
    show_all: bool = False,
) -> str:
    """The plain-text report ``repro obs compare`` prints.

    By default only directional metrics are listed (plus a summary
    line); ``show_all`` includes the informational ones.
    """
    regressions = [d for d in deltas if d.regressed]
    improvements = [d for d in deltas if d.improved]
    lines = [
        f"compared {len(deltas)} shared metrics "
        f"({label_a} -> {label_b}): "
        f"{len(regressions)} regressed, {len(improvements)} improved",
    ]
    shown = [
        d
        for d in deltas
        if show_all or d.direction is not None
    ]
    if shown:
        lines.append("")
        width = max(len(d.path) for d in shown)
        for d in shown:
            rel = "n/a" if d.relative is None else f"{100 * d.relative:+.1f}%"
            flag = "  REGRESSED" if d.regressed else ("  improved" if d.improved else "")
            arrow = {"lower": "v better", "higher": "^ better", None: "info"}[
                d.direction
            ]
            lines.append(
                f"  {d.path:<{width}}  {_fmt(d.a):>12} -> {_fmt(d.b):>12}  "
                f"{rel:>8}  [{arrow}]{flag}"
            )
    if not deltas:
        lines.append("  (no shared numeric metrics)")
    return "\n".join(lines)
