"""Nested wall-clock spans, exportable as Chrome ``trace_event`` JSON.

A :class:`SpanRecorder` measures named stretches of work —
``label_mesh`` > ``phase1`` > ``engine_round`` — with
:func:`time.perf_counter_ns`.  Spans nest by lexical scoping (the
``with`` statement), and the export uses the Chrome trace-event
*complete* form (``"ph": "X"`` with microsecond ``ts``/``dur``), which
``chrome://tracing`` and Perfetto render as a nested flame graph from
timestamp containment alone.

:func:`load_chrome_trace` is the strict loader the CI ``obs`` job runs
over every exported trace: it rejects files Chrome would silently
misrender (missing ``dur``, non-numeric timestamps, unknown phase
letters).

Distributed requests span *two* recorders — the client's and the
server's.  Each recorder stamps its export with a wall-clock origin and
a process name, and :func:`stitch_chrome_traces` merges several exports
onto one timeline (distinct ``pid`` rows, timestamps rebased via the
wall-clock origins), so a client→server round trip renders as a single
nested trace in Perfetto.  :meth:`SpanRecorder.context` binds extra
``args`` (a trace id, a retry attempt) onto every span recorded inside
it, which is how the server threads a request's trace context down
through ``service_update`` into the engine spans without passing it
through every signature.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional

from repro.errors import ObservabilityError
from repro.obs.events import jsonable

__all__ = ["SpanRecorder", "load_chrome_trace", "stitch_chrome_traces"]

#: Phase letters the strict loader accepts ("X" complete, "B"/"E"
#: begin/end, "M" metadata, "i" instant).
_VALID_PHASES = frozenset({"X", "B", "E", "M", "i"})


class SpanRecorder:
    """Collects completed spans; one recorder per profiled run.

    ``name`` labels the recorder's process row in a stitched trace
    (``"client"``, ``"server"``, ...).  The wall-clock origin captured
    at construction rides along in the export so
    :func:`stitch_chrome_traces` can rebase several recorders onto one
    timeline.
    """

    __slots__ = ("name", "_origin_ns", "_origin_unix", "_events", "_depth", "_local")

    def __init__(self, name: str = "repro") -> None:
        self.name = name
        # Both origins are read back-to-back so the wall-clock anchor of
        # the monotonic timeline is accurate to well under a span width.
        self._origin_ns = time.perf_counter_ns()
        self._origin_unix = time.time()
        self._events: List[Dict[str, Any]] = []
        self._depth = 0
        self._local = threading.local()

    @contextmanager
    def context(self, **args: Any) -> Iterator[None]:
        """Bind extra ``args`` onto every span recorded inside.

        Bindings are per-thread (a threaded server traces concurrent
        requests without cross-talk) and nest: inner bindings shadow
        outer ones for the duration of the inner block.  Explicit
        ``span(..., **args)`` arguments win over bound ones.
        """
        outer = getattr(self._local, "bound", None)
        merged = dict(outer) if outer else {}
        merged.update(args)
        self._local.bound = merged
        try:
            yield
        finally:
            self._local.bound = outer

    @contextmanager
    def span(self, name: str, **args: Any) -> Iterator[None]:
        """Measure one nested stretch of work.

        ``args`` become the trace event's ``args`` mapping (JSON-coerced
        at export).  Exceptions propagate; the span still closes, so a
        failed phase shows its true duration.
        """
        start_ns = time.perf_counter_ns()
        self._depth += 1
        try:
            yield
        finally:
            self._depth -= 1
            end_ns = time.perf_counter_ns()
            bound = getattr(self._local, "bound", None)
            if bound:
                args = {**bound, **args}
            self._events.append(
                {
                    "name": name,
                    "ph": "X",
                    "ts": (start_ns - self._origin_ns) / 1000.0,
                    "dur": (end_ns - start_ns) / 1000.0,
                    "pid": 0,
                    "tid": 0,
                    "args": {k: jsonable(v) for k, v in args.items()},
                }
            )

    def __len__(self) -> int:
        return len(self._events)

    def to_chrome_trace(self) -> Dict[str, Any]:
        """The Chrome trace-event JSON object for all closed spans.

        Events are sorted by start time (Chrome tolerates any order;
        sorting makes the artefact diffable).  A ``process_name``
        metadata event carries the recorder's name, and the top-level
        ``originUnix`` anchors the monotonic timeline to the wall clock
        for :func:`stitch_chrome_traces`.
        """
        meta = {
            "name": "process_name",
            "ph": "M",
            "ts": 0,
            "pid": 0,
            "tid": 0,
            "args": {"name": self.name},
        }
        return {
            "traceEvents": [meta] + sorted(self._events, key=lambda e: e["ts"]),
            "displayTimeUnit": "ms",
            "originUnix": self._origin_unix,
        }

    def write(self, path: str) -> None:
        """Export :meth:`to_chrome_trace` to a file."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_chrome_trace(), fh, indent=2)
            fh.write("\n")


def load_chrome_trace(path: str) -> Dict[str, Any]:
    """Strictly load and validate a Chrome trace-event JSON file.

    Returns the decoded object.  Accepts the object form
    (``{"traceEvents": [...]}``) only — the bare-array legacy form is
    rejected, as are events missing required keys.

    Raises
    ------
    ObservabilityError
        On unparseable JSON or any malformed trace event.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise ObservabilityError(f"cannot load chrome trace {path}: {exc}") from exc
    if not isinstance(data, Mapping) or "traceEvents" not in data:
        raise ObservabilityError(
            f"{path}: expected an object with a 'traceEvents' array"
        )
    events = data["traceEvents"]
    if not isinstance(events, list):
        raise ObservabilityError(f"{path}: 'traceEvents' is not an array")
    for i, ev in enumerate(events):
        _check_trace_event(ev, f"{path}: traceEvents[{i}]")
    return data


def _check_trace_event(ev: Any, where: str) -> None:
    if not isinstance(ev, Mapping):
        raise ObservabilityError(f"{where}: not an object")
    for key in ("name", "ph", "ts", "pid", "tid"):
        if key not in ev:
            raise ObservabilityError(f"{where}: missing {key!r}")
    if ev["ph"] not in _VALID_PHASES:
        raise ObservabilityError(f"{where}: unknown phase {ev['ph']!r}")
    if not _is_number(ev["ts"]):
        raise ObservabilityError(f"{where}: non-numeric ts {ev['ts']!r}")
    if ev["ph"] == "X":
        if "dur" not in ev or not _is_number(ev["dur"]) or ev["dur"] < 0:
            raise ObservabilityError(
                f"{where}: complete event needs a non-negative numeric 'dur'"
            )
    if "args" in ev and not isinstance(ev["args"], Mapping):
        raise ObservabilityError(f"{where}: 'args' is not an object")


def _is_number(v: Any) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def stitch_chrome_traces(traces: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
    """Merge several Chrome trace exports into one stitched trace.

    Each input (the :meth:`SpanRecorder.to_chrome_trace` /
    :func:`load_chrome_trace` object form) becomes its own ``pid`` row.
    When every input carries the ``originUnix`` wall-clock anchor, the
    timestamps are rebased onto the earliest origin's timeline, so a
    client span *contains* the server work it caused — nested flame
    rows in one picture.  Traces without an anchor keep their own
    timestamps (rows still merge, containment is not meaningful).

    Raises
    ------
    ObservabilityError
        On an input without a ``traceEvents`` array, or no inputs.
    """
    inputs = list(traces)
    if not inputs:
        raise ObservabilityError("stitch_chrome_traces needs at least one trace")
    for i, trace in enumerate(inputs):
        if not isinstance(trace, Mapping) or not isinstance(
            trace.get("traceEvents"), list
        ):
            raise ObservabilityError(
                f"trace {i}: expected an object with a 'traceEvents' array"
            )
    origins = [trace.get("originUnix") for trace in inputs]
    anchored = all(_is_number(o) for o in origins)
    base = min(origins) if anchored else 0.0
    merged: List[Dict[str, Any]] = []
    for pid, trace in enumerate(inputs):
        shift_us = 1e6 * (origins[pid] - base) if anchored else 0.0
        for ev in trace["traceEvents"]:
            out = dict(ev)
            out["pid"] = pid
            if out.get("ph") != "M" and _is_number(out.get("ts")):
                out["ts"] = out["ts"] + shift_us
            merged.append(out)
    merged.sort(key=lambda e: (e.get("ph") != "M", e.get("ts", 0.0)))
    return {"traceEvents": merged, "displayTimeUnit": "ms"}
