"""Nested wall-clock spans, exportable as Chrome ``trace_event`` JSON.

A :class:`SpanRecorder` measures named stretches of work —
``label_mesh`` > ``phase1`` > ``engine_round`` — with
:func:`time.perf_counter_ns`.  Spans nest by lexical scoping (the
``with`` statement), and the export uses the Chrome trace-event
*complete* form (``"ph": "X"`` with microsecond ``ts``/``dur``), which
``chrome://tracing`` and Perfetto render as a nested flame graph from
timestamp containment alone.

:func:`load_chrome_trace` is the strict loader the CI ``obs`` job runs
over every exported trace: it rejects files Chrome would silently
misrender (missing ``dur``, non-numeric timestamps, unknown phase
letters).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Mapping, Optional

from repro.errors import ObservabilityError
from repro.obs.events import jsonable

__all__ = ["SpanRecorder", "load_chrome_trace"]

#: Phase letters the strict loader accepts ("X" complete, "B"/"E"
#: begin/end, "M" metadata, "i" instant).
_VALID_PHASES = frozenset({"X", "B", "E", "M", "i"})


class SpanRecorder:
    """Collects completed spans; one recorder per profiled run."""

    __slots__ = ("_origin_ns", "_events", "_depth")

    def __init__(self) -> None:
        self._origin_ns = time.perf_counter_ns()
        self._events: List[Dict[str, Any]] = []
        self._depth = 0

    @contextmanager
    def span(self, name: str, **args: Any) -> Iterator[None]:
        """Measure one nested stretch of work.

        ``args`` become the trace event's ``args`` mapping (JSON-coerced
        at export).  Exceptions propagate; the span still closes, so a
        failed phase shows its true duration.
        """
        start_ns = time.perf_counter_ns()
        self._depth += 1
        try:
            yield
        finally:
            self._depth -= 1
            end_ns = time.perf_counter_ns()
            self._events.append(
                {
                    "name": name,
                    "ph": "X",
                    "ts": (start_ns - self._origin_ns) / 1000.0,
                    "dur": (end_ns - start_ns) / 1000.0,
                    "pid": 0,
                    "tid": 0,
                    "args": {k: jsonable(v) for k, v in args.items()},
                }
            )

    def __len__(self) -> int:
        return len(self._events)

    def to_chrome_trace(self) -> Dict[str, Any]:
        """The Chrome trace-event JSON object for all closed spans.

        Events are sorted by start time (Chrome tolerates any order;
        sorting makes the artefact diffable).
        """
        return {
            "traceEvents": sorted(self._events, key=lambda e: e["ts"]),
            "displayTimeUnit": "ms",
        }

    def write(self, path: str) -> None:
        """Export :meth:`to_chrome_trace` to a file."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_chrome_trace(), fh, indent=2)
            fh.write("\n")


def load_chrome_trace(path: str) -> Dict[str, Any]:
    """Strictly load and validate a Chrome trace-event JSON file.

    Returns the decoded object.  Accepts the object form
    (``{"traceEvents": [...]}``) only — the bare-array legacy form is
    rejected, as are events missing required keys.

    Raises
    ------
    ObservabilityError
        On unparseable JSON or any malformed trace event.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise ObservabilityError(f"cannot load chrome trace {path}: {exc}") from exc
    if not isinstance(data, Mapping) or "traceEvents" not in data:
        raise ObservabilityError(
            f"{path}: expected an object with a 'traceEvents' array"
        )
    events = data["traceEvents"]
    if not isinstance(events, list):
        raise ObservabilityError(f"{path}: 'traceEvents' is not an array")
    for i, ev in enumerate(events):
        _check_trace_event(ev, f"{path}: traceEvents[{i}]")
    return data


def _check_trace_event(ev: Any, where: str) -> None:
    if not isinstance(ev, Mapping):
        raise ObservabilityError(f"{where}: not an object")
    for key in ("name", "ph", "ts", "pid", "tid"):
        if key not in ev:
            raise ObservabilityError(f"{where}: missing {key!r}")
    if ev["ph"] not in _VALID_PHASES:
        raise ObservabilityError(f"{where}: unknown phase {ev['ph']!r}")
    if not _is_number(ev["ts"]):
        raise ObservabilityError(f"{where}: non-numeric ts {ev['ts']!r}")
    if ev["ph"] == "X":
        if "dur" not in ev or not _is_number(ev["dur"]) or ev["dur"] < 0:
            raise ObservabilityError(
                f"{where}: complete event needs a non-negative numeric 'dur'"
            )
    if "args" in ev and not isinstance(ev["args"], Mapping):
        raise ObservabilityError(f"{where}: 'args' is not an object")


def _is_number(v: Any) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)
