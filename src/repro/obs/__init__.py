"""Observability: structured events, metrics, and span profiling.

The paper's empirical story is entirely about *measuring* the
distributed labeling protocol (Figure 5: rounds and enabled ratios as
functions of the fault count), and the dynamic-fault work of this
repository made the runs worth measuring even richer: epochs, channel
loss, heartbeat repair.  This package turns the previously ad-hoc
instrumentation into one subsystem with three legs:

* **structured events** (:mod:`repro.obs.events`,
  :mod:`repro.obs.sinks`) — typed, timestamped records (``round_start``,
  ``node_flip``, ``crash_batch``, ``message_dropped``, ``heartbeat``,
  ``epoch_end``, ``phase_transition``, ...) emitted by both fabric
  engines, the channel model, the labeling pipeline and the sweep
  harness, fanned out to pluggable sinks (in-memory ring buffer, JSONL
  file, null);
* a **metrics registry** (:mod:`repro.obs.metrics`) — labeled counters,
  gauges and histograms whose snapshot agrees bit-for-bit with the
  engines' :class:`~repro.fabric.stats.RunStats` (property tested);
* **span profiling** (:mod:`repro.obs.spans`) — nested wall-clock spans
  around phases, kernels, engine rounds and sweep cells, exportable as
  Chrome ``trace_event`` JSON viewable in ``chrome://tracing`` or
  Perfetto, and stitchable across processes (client + server of one
  request on one timeline).

On top of those sit the *live* legs added for the serving stack:
**metrics exposition** (:mod:`repro.obs.exposition`) — Prometheus
text-format rendering plus the ``/metrics`` / ``/healthz`` / ``/readyz``
/ ``/varz`` admin endpoint; **SLO evaluation** (:mod:`repro.obs.slo`) —
rolling-window latency/error-budget grading of request outcomes; and
**cross-run comparison** (:mod:`repro.obs.compare`) — regression
reports between two run artifacts (``repro obs compare``).

The :class:`~repro.obs.telemetry.Telemetry` facade bundles the three
legs; every instrumented call site is guarded by a ``telemetry is not
None`` check, so the disabled path is a no-op (the perf baseline pins
the telemetry-off pipeline to < 2% overhead).  See
``docs/observability.md`` for schemas and the export how-to.
"""

from repro.obs.compare import (
    MetricDelta,
    compare_runs,
    flatten_numeric,
    format_compare,
    load_run_artifact,
)
from repro.obs.events import (
    EVENT_SCHEMAS,
    Event,
    snapshot_event,
    validate_event,
    validate_event_dict,
    validate_jsonl,
)
from repro.obs.exposition import AdminServer, parse_prometheus, render_prometheus
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.sinks import EventSink, JSONLSink, MemorySink, NullSink
from repro.obs.slo import SLOConfig, SLOTracker, evaluate_outcomes
from repro.obs.spans import SpanRecorder, load_chrome_trace, stitch_chrome_traces
from repro.obs.summarize import (
    EpochReport,
    TraceSummary,
    latency_percentiles,
    summarize_trace,
)
from repro.obs.telemetry import Telemetry

__all__ = [
    "AdminServer",
    "Counter",
    "EVENT_SCHEMAS",
    "EpochReport",
    "Event",
    "EventSink",
    "Gauge",
    "Histogram",
    "JSONLSink",
    "MemorySink",
    "MetricDelta",
    "MetricsRegistry",
    "NullSink",
    "SLOConfig",
    "SLOTracker",
    "SpanRecorder",
    "Telemetry",
    "TraceSummary",
    "compare_runs",
    "evaluate_outcomes",
    "flatten_numeric",
    "format_compare",
    "latency_percentiles",
    "load_chrome_trace",
    "load_run_artifact",
    "parse_prometheus",
    "render_prometheus",
    "snapshot_event",
    "stitch_chrome_traces",
    "summarize_trace",
    "validate_event",
    "validate_event_dict",
    "validate_jsonl",
]
