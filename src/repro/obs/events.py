"""Typed, timestamped event records and their schemas.

An :class:`Event` is one observation from an instrumented component:
an engine starting a round, a node flipping status, a crash batch
striking, the channel dropping a message.  Events are plain data — a
name, a wall-clock timestamp, a severity level and a flat field
mapping — so every sink (ring buffer, JSONL file, a
:class:`~repro.fabric.trace.RoundTrace`) consumes the same records.

:data:`EVENT_SCHEMAS` declares, per event name, which fields are
required; :func:`validate_event` / :func:`validate_jsonl` enforce the
schema strictly (unknown names and missing fields are errors, extra
fields are allowed so emitters can attach context labels).  The CI
``obs`` job validates every traced run's JSONL against these schemas.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterator, Mapping, Tuple

from repro.errors import ObservabilityError

__all__ = [
    "EVENT_SCHEMAS",
    "LEVELS",
    "Event",
    "jsonable",
    "snapshot_event",
    "validate_event",
    "validate_event_dict",
    "validate_jsonl",
]

#: Severity levels, least to most important.  A telemetry configured at
#: level L discards events below L.
LEVELS: Tuple[str, ...] = ("debug", "info")

#: Required fields per event name.  Extra fields are permitted (bound
#: context labels such as ``engine``/``phase`` ride along); missing
#: required fields or unknown event names are validation errors.
EVENT_SCHEMAS: Dict[str, FrozenSet[str]] = {
    # engine lifecycle
    "run_start": frozenset({"engine", "nodes", "faulty"}),
    "run_end": frozenset(
        {"rounds", "executed_rounds", "messages", "heartbeats", "dropped", "duplicated"}
    ),
    "round_start": frozenset({"round", "clock", "delivered"}),
    "node_flip": frozenset({"node", "clock"}),
    "crash_batch": frozenset({"time", "nodes"}),
    "heartbeat": frozenset({"seq", "clock"}),
    "epoch_end": frozenset(
        {
            "epoch",
            "at_time",
            "crashed",
            "rounds",
            "executed_rounds",
            "messages",
            "dropped",
            "duplicated",
        }
    ),
    # channel
    "message_dropped": frozenset({"sender", "dest"}),
    "message_duplicated": frozenset({"sender", "dest"}),
    # pipeline
    "phase_transition": frozenset({"phase", "status"}),
    # sharded fixpoints (tile-sharded halo-exchange execution)
    "shard_plan": frozenset(
        {
            "phase",
            "tiles_x",
            "tiles_y",
            "tile_width",
            "tile_height",
            "jobs",
            "active",
        }
    ),
    "shard_round": frozenset({"phase", "round", "tiles", "exchanges"}),
    # sweeps
    "sweep_plan": frozenset({"jobs", "parallel", "chunk"}),
    "sweep_cell": frozenset({"value", "trial", "ok"}),
    # incremental labeling service
    "service_update": frozenset(
        {"injected", "repaired", "rounds1", "rounds2", "latency_us"}
    ),
    "service_request": frozenset({"op", "ok", "latency_us"}),
    # durability (WAL + snapshots + recovery + client retries)
    "wal_append": frozenset({"version", "bytes", "latency_us"}),
    "snapshot_write": frozenset({"version", "faults", "bytes", "latency_us"}),
    "recovery_replay": frozenset(
        {"snapshot_version", "replayed", "version", "clean", "latency_us"}
    ),
    "request_retry": frozenset({"op", "attempt", "reason"}),
    # full-state snapshots routed to RoundTrace sinks
    "snapshot": frozenset({"key"}),
    # batched traffic engine (injection-rate sweeps)
    "traffic_sweep": frozenset(
        {
            "view",
            "kernel",
            "pattern",
            "rate",
            "packets",
            "delivered",
            "dropped",
            "stuck",
            "cycles",
            "throughput",
            "p50",
            "p95",
            "p99",
        }
    ),
    "saturation_point": frozenset(
        {"view", "kernel", "pattern", "rate", "throughput"}
    ),
}

#: Events too chatty for the default level.
_DEBUG_EVENTS = frozenset(
    {"node_flip", "message_dropped", "message_duplicated", "wal_append"}
)


def default_level(name: str) -> str:
    """The severity an event of this name is emitted at."""
    return "debug" if name in _DEBUG_EVENTS else "info"


@dataclass(frozen=True)
class Event:
    """One structured observation.

    Attributes
    ----------
    name:
        Event type, a key of :data:`EVENT_SCHEMAS`.
    t:
        Wall-clock timestamp (``time.time()`` seconds).
    level:
        Severity, one of :data:`LEVELS`.
    fields:
        The event's payload, including any bound context labels.
    """

    name: str
    t: float
    level: str
    fields: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable view of the event."""
        return {
            "name": self.name,
            "t": self.t,
            "level": self.level,
            "fields": {k: jsonable(v) for k, v in self.fields.items()},
        }


def jsonable(value: Any) -> Any:
    """Coerce a field value into plain JSON types.

    Coordinates are tuples and crash batches are frozensets; JSON knows
    neither, so containers become (sorted, for sets) lists and NumPy
    scalars become Python numbers.  Mapping keys are stringified.
    """
    if isinstance(value, (str, bool, int, float)) or value is None:
        return value
    if isinstance(value, (frozenset, set)):
        return [jsonable(v) for v in sorted(value)]
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): jsonable(v) for k, v in value.items()}
    if hasattr(value, "item"):  # NumPy scalar
        return value.item()
    return str(value)


def snapshot_event(key: int, snapshot: Mapping[Any, Any]) -> Event:
    """The full-state snapshot event the engines route to trace sinks.

    Carries the raw ``{coord: state}`` mapping (not JSON-coerced): it is
    consumed in-process by :class:`~repro.fabric.trace.RoundTrace`, never
    serialized — file sinks receive only the light engine events.
    """
    return Event(
        name="snapshot",
        t=time.time(),
        level="debug",
        fields={"key": int(key), "snapshot": dict(snapshot)},
    )


def validate_event(event: Event) -> None:
    """Check one :class:`Event` against :data:`EVENT_SCHEMAS`.

    Raises
    ------
    ObservabilityError
        On an unknown name, an invalid level, or a missing required
        field.
    """
    _check(event.name, event.level, event.t, event.fields, context=repr(event))


def validate_event_dict(record: Mapping[str, Any]) -> None:
    """Check one decoded JSONL record (the :meth:`Event.to_dict` shape)."""
    for key in ("name", "t", "level", "fields"):
        if key not in record:
            raise ObservabilityError(f"event record missing {key!r}: {record!r}")
    if not isinstance(record["fields"], Mapping):
        raise ObservabilityError(f"event 'fields' must be a mapping: {record!r}")
    _check(
        record["name"], record["level"], record["t"], record["fields"],
        context=repr(record),
    )


def _check(name: Any, level: Any, t: Any, fields: Mapping, context: str) -> None:
    schema = EVENT_SCHEMAS.get(name)
    if schema is None:
        raise ObservabilityError(f"unknown event name {name!r} in {context}")
    if level not in LEVELS:
        raise ObservabilityError(f"invalid event level {level!r} in {context}")
    if not isinstance(t, (int, float)) or isinstance(t, bool):
        raise ObservabilityError(f"non-numeric event timestamp {t!r} in {context}")
    missing = schema - set(fields)
    if missing:
        raise ObservabilityError(
            f"event {name!r} missing required fields {sorted(missing)} in {context}"
        )


def validate_jsonl(path: str) -> int:
    """Strictly validate an event-log JSONL file; return the event count.

    Raises
    ------
    ObservabilityError
        On the first malformed line or schema violation (with the line
        number in the message).
    """
    count = 0
    for lineno, record in _iter_jsonl(path):
        try:
            validate_event_dict(record)
        except ObservabilityError as exc:
            raise ObservabilityError(f"{path}:{lineno}: {exc}") from exc
        count += 1
    return count


def _iter_jsonl(path: str) -> Iterator[Tuple[int, Any]]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    yield lineno, json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ObservabilityError(
                        f"{path}:{lineno}: not JSON: {exc}"
                    ) from exc
    except UnicodeDecodeError as exc:
        # A binary or mis-encoded file is a trace problem, not a crash:
        # surface it through the same error type the CLI turns into a
        # one-line message.
        raise ObservabilityError(f"{path}: not UTF-8 text: {exc}") from exc
