"""Event sinks: where emitted events go.

A sink is anything with an ``emit(event)`` method; the telemetry facade
fans every accepted event out to all of its sinks.  Three are provided:

* :class:`NullSink` — discards everything; used to measure the cost of
  the emit path itself (the perf baseline's telemetry-null-sink leg);
* :class:`MemorySink` — a bounded ring buffer for tests and in-process
  consumers;
* :class:`JSONLSink` — one JSON object per line, the on-disk trace
  format ``repro obs summarize`` and ``repro obs validate`` read.

:class:`~repro.fabric.trace.RoundTrace` is a fourth, specialised sink
living with the fabric: it keeps only ``snapshot`` events, as full
per-round state frames.
"""

from __future__ import annotations

import abc
import json
from collections import deque
from typing import IO, List, Optional

from repro.obs.events import Event

__all__ = ["EventSink", "JSONLSink", "MemorySink", "NullSink"]


class EventSink(abc.ABC):
    """Receives every event the telemetry accepts."""

    @abc.abstractmethod
    def emit(self, event: Event) -> None:
        """Consume one event."""

    def close(self) -> None:
        """Flush and release resources; further emits are undefined."""


class NullSink(EventSink):
    """Accepts and discards every event."""

    def emit(self, event: Event) -> None:
        pass


class MemorySink(EventSink):
    """A ring buffer of the most recent ``capacity`` events."""

    def __init__(self, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._buffer: deque = deque(maxlen=capacity)

    def emit(self, event: Event) -> None:
        self._buffer.append(event)

    def events(self, name: Optional[str] = None) -> List[Event]:
        """Buffered events in emission order, optionally one name only."""
        if name is None:
            return list(self._buffer)
        return [e for e in self._buffer if e.name == name]

    def __len__(self) -> int:
        return len(self._buffer)


class JSONLSink(EventSink):
    """Writes each event as one JSON line to a file.

    ``snapshot`` events are skipped: their payload is the full node
    state of the machine, meant for in-process
    :class:`~repro.fabric.trace.RoundTrace` consumers, not for disk.
    """

    def __init__(self, path: str):
        self._path = path
        self._fh: Optional[IO[str]] = open(path, "w", encoding="utf-8")
        self.written = 0

    @property
    def path(self) -> str:
        """Where the trace is being written."""
        return self._path

    def emit(self, event: Event) -> None:
        if self._fh is None:
            raise ValueError(f"JSONLSink({self._path!r}) is closed")
        if event.name == "snapshot":
            return
        self._fh.write(json.dumps(event.to_dict(), separators=(",", ":")))
        self._fh.write("\n")
        self.written += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JSONLSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
