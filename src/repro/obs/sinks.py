"""Event sinks: where emitted events go.

A sink is anything with an ``emit(event)`` method; the telemetry facade
fans every accepted event out to all of its sinks.  Three are provided:

* :class:`NullSink` — discards everything; used to measure the cost of
  the emit path itself (the perf baseline's telemetry-null-sink leg);
* :class:`MemorySink` — a bounded ring buffer for tests and in-process
  consumers;
* :class:`JSONLSink` — one JSON object per line, the on-disk trace
  format ``repro obs summarize`` and ``repro obs validate`` read.

:class:`~repro.fabric.trace.RoundTrace` is a fourth, specialised sink
living with the fabric: it keeps only ``snapshot`` events, as full
per-round state frames.
"""

from __future__ import annotations

import abc
import json
import threading
from collections import deque
from typing import IO, List, Optional

from repro.obs.events import Event

__all__ = ["EventSink", "JSONLSink", "MemorySink", "NullSink"]


class EventSink(abc.ABC):
    """Receives every event the telemetry accepts."""

    @abc.abstractmethod
    def emit(self, event: Event) -> None:
        """Consume one event."""

    def close(self) -> None:
        """Flush and release resources; further emits are undefined."""


class NullSink(EventSink):
    """Accepts and discards every event."""

    def emit(self, event: Event) -> None:
        pass


class MemorySink(EventSink):
    """A ring buffer of the most recent ``capacity`` events."""

    def __init__(self, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._buffer: deque = deque(maxlen=capacity)

    def emit(self, event: Event) -> None:
        self._buffer.append(event)

    def events(self, name: Optional[str] = None) -> List[Event]:
        """Buffered events in emission order, optionally one name only."""
        if name is None:
            return list(self._buffer)
        return [e for e in self._buffer if e.name == name]

    def __len__(self) -> int:
        return len(self._buffer)


class JSONLSink(EventSink):
    """Writes each event as one JSON line to a file.

    ``snapshot`` events are skipped: their payload is the full node
    state of the machine, meant for in-process
    :class:`~repro.fabric.trace.RoundTrace` consumers, not for disk.

    ``flush_every=N`` flushes the file every N written events, so a
    long-running server's trace stays readable (and scrapeable) while
    the process lives; ``None`` leaves flushing to the runtime and
    :meth:`close`.  :meth:`close` and :meth:`flush` are idempotent and
    safe to call from any thread — a SIGTERM drain and an admin thread
    may both try to finalize the same sink.
    """

    def __init__(self, path: str, flush_every: Optional[int] = None):
        if flush_every is not None and flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        self._path = path
        self._fh: Optional[IO[str]] = open(path, "w", encoding="utf-8")
        self._flush_every = flush_every
        self._lock = threading.Lock()
        self.written = 0

    @property
    def path(self) -> str:
        """Where the trace is being written."""
        return self._path

    def emit(self, event: Event) -> None:
        if event.name == "snapshot":
            return
        line = json.dumps(event.to_dict(), separators=(",", ":"))
        with self._lock:
            if self._fh is None:
                raise ValueError(f"JSONLSink({self._path!r}) is closed")
            self._fh.write(line)
            self._fh.write("\n")
            self.written += 1
            if self._flush_every is not None and self.written % self._flush_every == 0:
                self._fh.flush()

    def flush(self) -> None:
        """Push buffered lines to disk; a no-op once closed."""
        with self._lock:
            if self._fh is not None:
                self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "JSONLSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
