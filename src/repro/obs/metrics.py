"""A small labeled-series metrics registry.

Counters, gauges and histograms in the Prometheus mold: a *metric* is a
name plus a label set, and each distinct ``(name, labels)`` pair is its
own series.  The registry hands out series objects on first use;
emitters keep a reference and update it in their hot loop, so the
per-round cost is one attribute increment, not a dict lookup.

The engines update their series at exactly the points where
:class:`~repro.fabric.stats.RunStats` is updated, so a run's metrics
snapshot agrees *bit for bit* with its ``RunStats`` — a property test
holds the two together across engines, channels and fault schedules.
Integer-valued series stay integers (no float drift).

:meth:`MetricsRegistry.snapshot` returns plain nested dicts ready for
``json.dump``; series keys are rendered Prometheus-style:
``name{label="value",...}``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Tuple, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

Number = Union[int, float]

#: A series key: (name, sorted (label, value) pairs).
SeriesKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _series_key(name: str, labels: Dict[str, Any]) -> SeriesKey:
    return name, tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_key(key: SeriesKey) -> str:
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount


class Gauge:
    """A value that can go up and down (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def dec(self, amount: Number = 1) -> None:
        self.value -= amount


class Histogram:
    """Streaming count/sum/min/max of observed values.

    Enough to reconstruct per-round aggregates exactly (``sum`` over a
    ``messages_per_round`` histogram equals
    :attr:`~repro.fabric.stats.RunStats.total_messages`; ``count``
    equals the executed-round count) without storing every sample.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count: int = 0
        self.total: Number = 0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None

    def observe(self, value: Number) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def observe_many(self, values) -> None:
        """Absorb a whole batch of samples (numpy array or sequence).

        The batched traffic engine observes one array per cycle; folding
        it here keeps the hot loop free of per-sample Python calls.
        Aggregates stay integers when the samples are integers.
        """
        n = len(values)
        if n == 0:
            return
        if hasattr(values, "min"):  # numpy array: one C reduction each
            lo = values.min().item()
            hi = values.max().item()
            total = values.sum().item()
        else:
            lo = min(values)
            hi = max(values)
            total = sum(values)
        self.count += n
        self.total += total
        if self.min is None or lo < self.min:
            self.min = lo
        if self.max is None or hi > self.max:
            self.max = hi


class MetricsRegistry:
    """Get-or-create home of every metric series.

    Asking for the same ``(name, labels)`` twice returns the same series
    object; asking for an existing name with a different *kind* raises.
    """

    __slots__ = ("_series", "_kinds")

    def __init__(self) -> None:
        self._series: Dict[SeriesKey, object] = {}
        self._kinds: Dict[str, type] = {}

    def counter(self, name: str, **labels: Any) -> Counter:
        """The counter series for ``(name, labels)``."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """The gauge series for ``(name, labels)``."""
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        """The histogram series for ``(name, labels)``."""
        return self._get(Histogram, name, labels)

    def _get(self, kind: type, name: str, labels: Dict[str, Any]):
        known = self._kinds.get(name)
        if known is not None and known is not kind:
            raise ValueError(
                f"metric {name!r} is a {known.__name__}, not a {kind.__name__}"
            )
        key = _series_key(name, labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = kind()
            self._kinds[name] = kind
        return series

    def series(self):
        """All series as ``(name, labels, series)`` triples, sorted by
        key — ``labels`` is the sorted ``((label, value), ...)`` tuple.

        This is the structured view :mod:`repro.obs.exposition` renders
        to Prometheus text; :meth:`snapshot` is the flat JSON view.
        """
        return [
            (key[0], key[1], self._series[key]) for key in sorted(self._series)
        ]

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """All series as plain JSON-ready dicts, keyed by rendered name.

        Shape: ``{"counters": {key: value}, "gauges": {key: value},
        "histograms": {key: {"count", "sum", "min", "max"}}}``.
        """
        out: Dict[str, Dict[str, Any]] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        for key in sorted(self._series):
            series = self._series[key]
            rendered = _render_key(key)
            if isinstance(series, Counter):
                out["counters"][rendered] = series.value
            elif isinstance(series, Gauge):
                out["gauges"][rendered] = series.value
            else:
                out["histograms"][rendered] = {
                    "count": series.count,
                    "sum": series.total,
                    "min": series.min,
                    "max": series.max,
                }
        return out

    def write(self, path: str) -> None:
        """Dump :meth:`snapshot` as indented JSON."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.snapshot(), fh, indent=2, sort_keys=True)
            fh.write("\n")
