"""Live metrics exposition: Prometheus text rendering and the admin
HTTP endpoint.

PR 3's telemetry was post-hoc — metrics and spans only became visible
after the process exited and artefacts were written.  This module makes
a running process *watchable*:

* :func:`render_prometheus` turns a
  :class:`~repro.obs.metrics.MetricsRegistry` into Prometheus
  text-format exposition (version 0.0.4).  Counters and gauges render
  one sample per labeled series; histograms render as summaries
  (``_count``/``_sum``) plus ``_min``/``_max`` gauges, which preserves
  every field of the registry's streaming histograms.  The rendering is
  lossless: :func:`parse_prometheus` round-trips it back into the
  :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` value mapping,
  and a test pins scrape == snapshot exactly.

* :class:`AdminServer` is a stdlib ``http.server`` running in a daemon
  thread beside the workload (``repro serve --admin-port``, or an
  in-process sweep's telemetry).  Endpoints:

  - ``/metrics`` — Prometheus exposition of the attached registry;
  - ``/healthz`` — liveness (200 as long as the thread breathes);
  - ``/readyz``  — readiness, gated on a caller-supplied probe (the
    serving stack gates on recovery's bit-for-bit verification having
    passed and the server not draining);
  - ``/varz``    — a JSON status document from a caller-supplied
    callable (``LabelingService.stats()`` for the serving stack).

The admin plane deliberately reads shared state instead of owning any:
scrapes never mutate the registry, so the exposition stays bit-for-bit
the same registry the ``RunStats`` property tests pin.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import ObservabilityError
from repro.obs.metrics import Counter, Gauge, MetricsRegistry, _render_key

__all__ = ["AdminServer", "parse_prometheus", "render_prometheus"]

#: The content type Prometheus scrapers expect from a text endpoint.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in labels)
    return "{" + inner + "}"


def _format_value(value: Any) -> str:
    # Integers stay integers — the registry guarantees no float drift,
    # and the round-trip test compares against the snapshot exactly.
    if isinstance(value, bool):  # pragma: no cover - registry never stores bools
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render the registry as Prometheus text-format exposition.

    Series are grouped per metric name under one ``# TYPE`` header, in
    sorted order, so the output is diffable.  Histogram series expand to
    ``name_count`` / ``name_sum`` (a Prometheus summary without
    quantiles) plus ``name_min`` / ``name_max`` gauges; empty histogram
    min/max render as ``NaN``, the Prometheus idiom for "no samples".
    """
    counters: Dict[str, list] = {}
    gauges: Dict[str, list] = {}
    summaries: Dict[str, list] = {}
    for name, labels, series in registry.series():
        rendered = _render_labels(labels)
        if isinstance(series, Counter):
            counters.setdefault(name, []).append((rendered, series.value))
        elif isinstance(series, Gauge):
            gauges.setdefault(name, []).append((rendered, series.value))
        else:
            summaries.setdefault(name, []).append((rendered, series))
    lines = []
    for name in sorted(counters):
        lines.append(f"# TYPE {name} counter")
        for rendered, value in counters[name]:
            lines.append(f"{name}{rendered} {_format_value(value)}")
    for name in sorted(gauges):
        lines.append(f"# TYPE {name} gauge")
        for rendered, value in gauges[name]:
            lines.append(f"{name}{rendered} {_format_value(value)}")
    for name in sorted(summaries):
        lines.append(f"# TYPE {name} summary")
        for rendered, h in summaries[name]:
            lines.append(f"{name}_count{rendered} {_format_value(h.count)}")
            lines.append(f"{name}_sum{rendered} {_format_value(h.total)}")
        lines.append(f"# TYPE {name}_min gauge")
        for rendered, h in summaries[name]:
            value = "NaN" if h.min is None else _format_value(h.min)
            lines.append(f"{name}_min{rendered} {value}")
        lines.append(f"# TYPE {name}_max gauge")
        for rendered, h in summaries[name]:
            value = "NaN" if h.max is None else _format_value(h.max)
            lines.append(f"{name}_max{rendered} {value}")
    return "\n".join(lines) + "\n" if lines else ""


def _parse_number(token: str, where: str) -> float:
    try:
        return float(token)
    except ValueError as exc:
        raise ObservabilityError(f"{where}: bad sample value {token!r}") from exc


def _parse_sample_name(line: str, where: str) -> Tuple[str, str]:
    """Split ``name{labels} value`` into the rendered key and the value
    token, validating brace/quote structure."""
    brace = line.find("{")
    if brace == -1:
        parts = line.rsplit(None, 1)
        if len(parts) != 2:
            raise ObservabilityError(f"{where}: expected 'name value'")
        return parts[0], parts[1]
    close = line.rfind("}")
    if close == -1 or close < brace:
        raise ObservabilityError(f"{where}: unbalanced label braces")
    key = line[: close + 1]
    value = line[close + 1 :].strip()
    if not value or " " in value:
        raise ObservabilityError(f"{where}: expected one value after labels")
    return key, value


def parse_prometheus(text: str) -> Dict[str, Dict[str, float]]:
    """Parse text exposition back into ``{kind: {rendered_key: value}}``.

    The inverse of :func:`render_prometheus` for the subset it emits
    (``# TYPE`` headers, one sample per line).  ``summary`` metrics come
    back under ``"summaries"`` keyed the same way the snapshot renders
    histogram keys, with their ``_count``/``_sum``/``_min``/``_max``
    components reassembled.  Used by the CI scrape check to assert a
    live ``/metrics`` response agrees exactly with the registry
    snapshot.

    Raises
    ------
    ObservabilityError
        On a malformed line, an unknown ``# TYPE``, or a sample without
        a preceding type header.
    """
    kinds: Dict[str, str] = {}
    out: Dict[str, Dict[str, Any]] = {
        "counters": {},
        "gauges": {},
        "summaries": {},
    }
    summary_parts: Dict[str, Dict[str, float]] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        where = f"line {lineno}"
        if not line:
            continue
        if line.startswith("#"):
            fields = line.split()
            if len(fields) >= 2 and fields[1] == "HELP":
                continue
            if len(fields) != 4 or fields[1] != "TYPE":
                raise ObservabilityError(f"{where}: malformed comment {line!r}")
            kind = fields[3]
            if kind not in ("counter", "gauge", "summary"):
                raise ObservabilityError(f"{where}: unknown metric type {kind!r}")
            kinds[fields[2]] = kind
            continue
        key, token = _parse_sample_name(line, where)
        name = key.split("{", 1)[0]
        base, suffix = name, None
        for candidate in ("_count", "_sum", "_min", "_max"):
            stem = name[: -len(candidate)]
            if name.endswith(candidate) and kinds.get(stem) == "summary":
                base, suffix = stem, candidate[1:]
                break
        kind = kinds.get(name) if suffix is None else "summary"
        if kind is None:
            raise ObservabilityError(f"{where}: sample {name!r} has no # TYPE")
        value = _parse_number(token, where)
        if kind == "counter":
            out["counters"][key] = value
        elif kind == "gauge" and suffix is None:
            out["gauges"][key] = value
        else:
            rendered_base = base + key[len(name):]
            entry = summary_parts.setdefault(rendered_base, {})
            field = {"count": "count", "sum": "sum", "min": "min", "max": "max"}[
                suffix or "count"
            ]
            entry[field] = value
    for key, entry in summary_parts.items():
        out["summaries"][key] = {
            "count": entry.get("count", 0.0),
            "sum": entry.get("sum", 0.0),
            "min": entry.get("min"),
            "max": entry.get("max"),
        }
    return out


class _AdminHandler(BaseHTTPRequestHandler):
    """GET-only routing over the admin surface; never raises."""

    server_version = "repro-admin"
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        admin: "AdminServer" = self.server.admin  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                registry = admin.metrics
                body = render_prometheus(registry) if registry is not None else ""
                self._reply(200, body, CONTENT_TYPE)
            elif path == "/healthz":
                self._reply(200, "ok\n", "text/plain; charset=utf-8")
            elif path == "/readyz":
                ready, detail = admin.readiness()
                self._reply(
                    200 if ready else 503,
                    f"{detail}\n",
                    "text/plain; charset=utf-8",
                )
            elif path == "/varz":
                payload = admin.varz() if admin.varz is not None else {}
                self._reply(
                    200,
                    json.dumps(payload, indent=2, sort_keys=True, default=str)
                    + "\n",
                    "application/json; charset=utf-8",
                )
            else:
                self._reply(404, "not found\n", "text/plain; charset=utf-8")
        except Exception as exc:  # noqa: BLE001 - admin must never kill serving
            try:
                self._reply(
                    500,
                    f"{type(exc).__name__}: {exc}\n",
                    "text/plain; charset=utf-8",
                )
            except OSError:  # pragma: no cover - peer gone mid-error
                pass

    def _reply(self, status: int, body: str, content_type: str) -> None:
        encoded = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(encoded)))
        self.end_headers()
        self.wfile.write(encoded)

    def log_message(self, *args: Any) -> None:  # noqa: D102 - silence stderr
        pass


class AdminServer:
    """The observability endpoint beside a running workload.

    Parameters
    ----------
    metrics:
        Registry exposed at ``/metrics`` (``None`` serves an empty
        exposition — liveness/readiness still work).
    varz:
        Zero-argument callable returning the ``/varz`` JSON document;
        the callable owns any locking its reads need.
    ready:
        Zero-argument readiness probe for ``/readyz``; ``None`` means
        always ready.  Exceptions count as not ready.
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (see
        :attr:`address` after :meth:`start`).
    """

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        varz: Optional[Callable[[], Dict[str, Any]]] = None,
        ready: Optional[Callable[[], bool]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.metrics = metrics
        self.varz = varz
        self.ready = ready
        self._httpd = ThreadingHTTPServer((host, port), _AdminHandler)
        self._httpd.daemon_threads = True
        self._httpd.admin = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)``."""
        return self._httpd.server_address[:2]

    def readiness(self) -> Tuple[bool, str]:
        """Evaluate the readiness probe into ``(ready, detail)``."""
        if self.ready is None:
            return True, "ready"
        try:
            ready = bool(self.ready())
        except Exception as exc:  # noqa: BLE001 - a broken probe is "not ready"
            return False, f"not ready: probe failed: {exc}"
        return (True, "ready") if ready else (False, "not ready")

    def start(self) -> Tuple[str, int]:
        """Serve on a daemon thread; returns the bound address."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                kwargs={"poll_interval": 0.1},
                daemon=True,
                name="repro-admin",
            )
            self._thread.start()
        return self.address

    def close(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        thread, self._thread = self._thread, None
        if thread is not None:
            self._httpd.shutdown()
            thread.join(timeout=5)
        self._httpd.server_close()

    def __enter__(self) -> "AdminServer":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


# _render_key is re-exported for callers that need to key scraped
# samples the same way MetricsRegistry.snapshot does.
_RENDER_KEY = _render_key
