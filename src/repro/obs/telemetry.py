"""The telemetry facade instrumented components talk to.

One :class:`Telemetry` bundles the three observability legs — an event
log (level-filtered fan-out to sinks), a metrics registry, and a span
recorder — behind a handful of cheap calls.  Any leg may be absent:
``Telemetry(sinks=[JSONLSink(...)])`` records events only,
``Telemetry(metrics=MetricsRegistry())`` metrics only.

**The disabled path is no path at all.**  Instrumented code takes
``telemetry: Optional[Telemetry] = None`` and guards every site with
``if telemetry is not None`` (or a cached series reference), so a run
without telemetry executes exactly the pre-instrumentation code plus a
handful of predictable branches — the perf baseline pins the pipeline
regression below 2%.

Context labels: :meth:`Telemetry.child` returns a view with extra bound
labels (e.g. ``engine="sync"``, ``phase="unsafe"``).  Bound labels ride
on every emitted event's fields and on every metric series created
through the child, so one registry can hold both phases of a pipeline
run without ambiguity.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from typing import Any, ContextManager, Dict, Iterable, Optional

from repro.obs.events import LEVELS, Event, default_level
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.sinks import EventSink, NullSink
from repro.obs.spans import SpanRecorder

__all__ = ["Telemetry"]

_NULL_CONTEXT: ContextManager[None] = nullcontext()


class Telemetry:
    """Bundle of event sinks, a metrics registry and a span recorder.

    Parameters
    ----------
    sinks:
        Event sinks; empty means events are dropped before construction.
    metrics:
        A :class:`~repro.obs.metrics.MetricsRegistry`, or ``None`` for
        no metrics.
    spans:
        A :class:`~repro.obs.spans.SpanRecorder`, or ``None`` for no
        profiling.
    log_level:
        Minimum event severity kept (``"debug"`` keeps everything,
        ``"info"`` drops per-node chatter such as ``node_flip``).
    labels:
        Context labels bound to every event and metric series.
    """

    __slots__ = ("_sinks", "metrics", "spans", "labels", "_min_level")

    def __init__(
        self,
        sinks: Iterable[EventSink] = (),
        metrics: Optional[MetricsRegistry] = None,
        spans: Optional[SpanRecorder] = None,
        log_level: str = "info",
        labels: Optional[Dict[str, Any]] = None,
    ):
        if log_level not in LEVELS:
            raise ValueError(f"log_level must be one of {LEVELS}, got {log_level!r}")
        self._sinks = tuple(sinks)
        self.metrics = metrics
        self.spans = spans
        self.labels: Dict[str, Any] = dict(labels or {})
        self._min_level = LEVELS.index(log_level)

    @classmethod
    def null(cls, log_level: str = "debug") -> "Telemetry":
        """A telemetry that exercises the full emit path into a
        :class:`~repro.obs.sinks.NullSink` — the benchmark configuration
        for measuring instrumentation overhead."""
        return cls(sinks=(NullSink(),), log_level=log_level)

    def child(self, **labels: Any) -> "Telemetry":
        """A view sharing sinks/metrics/spans with extra bound labels."""
        merged = dict(self.labels)
        merged.update(labels)
        out = Telemetry.__new__(Telemetry)
        out._sinks = self._sinks
        out.metrics = self.metrics
        out.spans = self.spans
        out.labels = merged
        out._min_level = self._min_level
        return out

    # -- events ---------------------------------------------------------------

    def wants(self, level: str) -> bool:
        """Whether events at ``level`` reach any sink."""
        return bool(self._sinks) and LEVELS.index(level) >= self._min_level

    def emit(self, name: str, level: Optional[str] = None, **fields: Any) -> None:
        """Emit one event to every sink (after level filtering).

        Bound labels are merged under the event's explicit fields.
        """
        lvl = level if level is not None else default_level(name)
        if not self._sinks or LEVELS.index(lvl) < self._min_level:
            return
        if self.labels:
            merged = dict(self.labels)
            merged.update(fields)
            fields = merged
        event = Event(name=name, t=time.time(), level=lvl, fields=fields)
        for sink in self._sinks:
            sink.emit(event)

    def close(self) -> None:
        """Close every sink (flushes file sinks)."""
        for sink in self._sinks:
            sink.close()

    # -- metrics (bound-label conveniences) -----------------------------------

    def counter(self, name: str, **labels: Any) -> Optional[Counter]:
        """The counter for ``name`` under the bound labels, or ``None``
        when no registry is attached.  Emitters cache the returned
        series and update it directly in hot loops."""
        if self.metrics is None:
            return None
        return self.metrics.counter(name, **{**self.labels, **labels})

    def gauge(self, name: str, **labels: Any) -> Optional[Gauge]:
        """The gauge for ``name`` under the bound labels (or ``None``)."""
        if self.metrics is None:
            return None
        return self.metrics.gauge(name, **{**self.labels, **labels})

    def histogram(self, name: str, **labels: Any) -> Optional[Histogram]:
        """The histogram for ``name`` under the bound labels (or ``None``)."""
        if self.metrics is None:
            return None
        return self.metrics.histogram(name, **{**self.labels, **labels})

    # -- spans ----------------------------------------------------------------

    def span(self, name: str, **args: Any) -> ContextManager[None]:
        """A profiling span, or a shared no-op context without a recorder."""
        if self.spans is None:
            return _NULL_CONTEXT
        return self.spans.span(name, **args)

    def span_context(self, **args: Any) -> ContextManager[None]:
        """Bind ``args`` onto every span recorded inside (see
        :meth:`SpanRecorder.context`); a no-op context without a
        recorder.  This is how a request's trace id reaches the engine
        spans it causes without threading through every signature."""
        if self.spans is None or not args:
            return _NULL_CONTEXT
        return self.spans.context(**args)
