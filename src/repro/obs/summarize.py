"""Reconstruct run reports from an on-disk event trace.

``repro obs summarize <trace.jsonl>`` reads a JSONL event log written
by :class:`~repro.obs.sinks.JSONLSink`, validates every record against
the event schemas, and rebuilds the per-epoch recovery report — the
same numbers the engines record in
:class:`~repro.fabric.stats.RunStats.epochs`, but recovered purely from
the trace.  A test pins the two views of a dynamic run to exact
agreement, which is what makes the trace trustworthy for post-mortem
debugging of runs whose in-memory stats are gone.

Runs are keyed by their bound context labels (``engine``, ``phase``),
so one trace file may hold both phases of a pipeline run, or many sweep
cells, without ambiguity.
"""

from __future__ import annotations

import math
from collections import Counter as TallyCounter
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import ObservabilityError
from repro.obs.events import validate_event_dict, _iter_jsonl
from repro.obs.slo import SLOConfig, evaluate_outcomes

__all__ = [
    "EpochReport",
    "RunReport",
    "TraceSummary",
    "latency_percentiles",
    "summarize_trace",
]

#: Labels that identify which instrumented run an event belongs to.
_RUN_LABELS = ("engine", "phase")


@dataclass(frozen=True)
class EpochReport:
    """One convergence epoch, reconstructed from an ``epoch_end`` event.

    Field meanings match :class:`~repro.fabric.stats.EpochStats`.
    """

    epoch: int
    at_time: int
    crashed: Tuple[Tuple[int, int], ...]
    rounds: int
    executed_rounds: int
    messages: int
    dropped: int
    duplicated: int


@dataclass
class RunReport:
    """Everything reconstructed about one engine run in the trace."""

    key: Tuple[Tuple[str, str], ...]  # sorted (label, value) pairs
    epochs: List[EpochReport] = field(default_factory=list)
    rounds: Optional[int] = None
    executed_rounds: Optional[int] = None
    messages: Optional[int] = None
    heartbeats: Optional[int] = None
    dropped: Optional[int] = None
    duplicated: Optional[int] = None

    @property
    def recovery_rounds(self) -> int:
        """Changing rounds in epochs after the first (recovery cost)."""
        return sum(e.rounds for e in self.epochs[1:])

    def label(self) -> str:
        """Human-readable run key, e.g. ``engine=sync phase=unsafe``."""
        if not self.key:
            return "(unlabeled)"
        return " ".join(f"{k}={v}" for k, v in self.key)


@dataclass
class TraceSummary:
    """The full reconstruction of one trace file."""

    path: str
    events_total: int
    by_name: Dict[str, int]
    runs: List[RunReport]
    #: Wall-clock seconds per pipeline phase, rebuilt from paired
    #: ``phase_transition`` start/end timestamps — this is what
    #: attributes kernel vs ``extract_blocks`` / ``extract_regions``
    #: time for a traced run.  Empty when the trace holds no pipeline
    #: events.
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: Per-op request latency percentiles (µs), rebuilt from
    #: ``service_request`` events of a traced ``repro serve`` run.
    #: Keys are ops (``update``, ``query``, ...); values hold ``count``,
    #: ``errors``, ``p50``, ``p90``, ``p99`` and ``max``.  Empty when
    #: the trace holds no service events.
    service_latency: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Durability accounting, rebuilt from ``wal_append`` /
    #: ``snapshot_write`` / ``recovery_replay`` / ``request_retry``
    #: events of a durable ``repro serve`` run.  ``wal_append`` and
    #: ``snapshot_write`` entries carry latency percentiles (µs) plus
    #: total ``bytes``; ``recovery_replay`` carries ``count``,
    #: ``replayed`` records and how many recoveries found the
    #: clean-shutdown marker; ``request_retry`` carries the retry
    #: ``count``.  Empty when the trace holds no durability events.
    durability: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: SLO grading of the trace's ``service_request`` outcomes (the
    #: :func:`repro.obs.slo.evaluate_outcomes` dict), present when the
    #: trace holds service events.
    slo: Optional[Dict[str, Any]] = None
    #: Sharded-execution accounting per phase, rebuilt from
    #: ``shard_plan`` / ``shard_round`` events of a ``shard=`` run:
    #: ``tiles`` (the tiling's tile count), ``rounds`` (halo-exchange
    #: generations), ``tile_solves`` (total per-tile fixpoint solves)
    #: and ``halo_exchanges`` (rim-change signals to neighbouring
    #: tiles).  Keys are phases (``unsafe``, ``enable``); empty when
    #: the trace holds no sharding events.
    sharding: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Batched traffic-campaign accounting, rebuilt from
    #: ``traffic_sweep`` / ``saturation_point`` events.  Keys are
    #: ``view/kernel/pattern`` triples; each entry carries the swept
    #: ``points``, total ``offered`` and ``delivered`` packets, the
    #: ``peak_throughput`` over the curve (packets/cycle), the worst
    #: ``p99`` latency seen, and — once the sweep's
    #: ``saturation_point`` event lands — ``saturation_rate`` and
    #: ``saturation_throughput`` (rate ``-1`` means even the lowest
    #: swept rate saturated).  Empty when the trace holds no traffic
    #: events.
    routing: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready view (``repro obs summarize --json``) whose
        numeric leaves feed :func:`repro.obs.compare.compare_runs`."""
        return {
            "path": self.path,
            "events_total": self.events_total,
            "by_name": dict(self.by_name),
            "phase_seconds": dict(self.phase_seconds),
            "service_latency": {
                op: dict(pct) for op, pct in self.service_latency.items()
            },
            "durability": {
                name: dict(entry) for name, entry in self.durability.items()
            },
            "sharding": {
                phase: dict(entry) for phase, entry in self.sharding.items()
            },
            "routing": {
                key: dict(entry) for key, entry in self.routing.items()
            },
            "slo": dict(self.slo) if self.slo is not None else None,
            "runs": [
                {
                    "label": r.label(),
                    "epochs": len(r.epochs),
                    "recovery_rounds": r.recovery_rounds,
                    "rounds": r.rounds,
                    "executed_rounds": r.executed_rounds,
                    "messages": r.messages,
                    "heartbeats": r.heartbeats,
                    "dropped": r.dropped,
                    "duplicated": r.duplicated,
                }
                for r in self.runs
            ],
        }

    def run(self, **labels: Any) -> RunReport:
        """The unique run whose labels include ``labels``.

        Raises :class:`~repro.errors.ObservabilityError` when no run or
        more than one run matches.
        """
        wanted = {(str(k), str(v)) for k, v in labels.items()}
        matches = [r for r in self.runs if wanted <= set(r.key)]
        if len(matches) != 1:
            raise ObservabilityError(
                f"{len(matches)} runs match {labels!r} in {self.path} "
                f"(runs: {[r.label() for r in self.runs]})"
            )
        return matches[0]


def summarize_trace(
    path: str, slo_config: Optional[SLOConfig] = None
) -> TraceSummary:
    """Read, validate, and summarize an event-log JSONL file.

    ``slo_config`` grades the trace's ``service_request`` outcomes into
    :attr:`TraceSummary.slo` (defaults to :class:`SLOConfig`'s
    defaults); traces without service events get ``slo=None``.
    """
    tally: TallyCounter = TallyCounter()
    reports: Dict[Tuple[Tuple[str, str], ...], RunReport] = {}
    phase_started: Dict[str, float] = {}
    phase_seconds: Dict[str, float] = {}
    request_latencies: Dict[str, List[float]] = {}
    request_errors: TallyCounter = TallyCounter()
    request_outcomes: List[Tuple[bool, float]] = []
    durable_latencies: Dict[str, List[float]] = {}
    durable_bytes: TallyCounter = TallyCounter()
    recoveries: List[Mapping[str, Any]] = []
    sharding: Dict[str, Dict[str, float]] = {}
    routing: Dict[str, Dict[str, float]] = {}
    retries = 0
    total = 0
    for lineno, record in _iter_jsonl(path):
        try:
            validate_event_dict(record)
            _absorb_record(
                record,
                phase_started=phase_started,
                phase_seconds=phase_seconds,
                request_latencies=request_latencies,
                request_errors=request_errors,
                request_outcomes=request_outcomes,
                durable_latencies=durable_latencies,
                durable_bytes=durable_bytes,
                recoveries=recoveries,
                sharding=sharding,
                routing=routing,
                reports=reports,
            )
        except ObservabilityError as exc:
            raise ObservabilityError(f"{path}:{lineno}: {exc}") from exc
        except (TypeError, ValueError) as exc:
            # Schema validation checks presence, not types; a trace with
            # e.g. a string where a number belongs dies here with the
            # offending line, not a traceback.
            raise ObservabilityError(
                f"{path}:{lineno}: bad field value in "
                f"{record['name']!r} event: {exc}"
            ) from exc
        total += 1
        tally[record["name"]] += 1
        if record["name"] == "request_retry":
            retries += 1
    for report in reports.values():
        report.epochs.sort(key=lambda e: e.epoch)
        _check_consistency(path, report)
    runs = [reports[k] for k in sorted(reports)]
    service_latency = {
        op: latency_percentiles(samples, errors=request_errors[op])
        for op, samples in sorted(request_latencies.items())
    }
    durability: Dict[str, Dict[str, float]] = {
        name: {
            **latency_percentiles(samples),
            "bytes": float(durable_bytes[name]),
        }
        for name, samples in sorted(durable_latencies.items())
    }
    if recoveries:
        durability["recovery_replay"] = {
            "count": float(len(recoveries)),
            "replayed": float(sum(int(r["replayed"]) for r in recoveries)),
            "clean": float(sum(1 for r in recoveries if r["clean"])),
        }
    if retries:
        durability["request_retry"] = {"count": float(retries)}
    slo = (
        evaluate_outcomes(request_outcomes, slo_config or SLOConfig())
        if request_outcomes
        else None
    )
    return TraceSummary(
        path=path,
        events_total=total,
        by_name=dict(tally),
        runs=runs,
        phase_seconds=phase_seconds,
        service_latency=service_latency,
        durability=durability,
        slo=slo,
        sharding=sharding,
        routing=routing,
    )


def _absorb_record(
    record: Mapping[str, Any],
    *,
    phase_started: Dict[str, float],
    phase_seconds: Dict[str, float],
    request_latencies: Dict[str, List[float]],
    request_errors: TallyCounter,
    request_outcomes: List[Tuple[bool, float]],
    durable_latencies: Dict[str, List[float]],
    durable_bytes: TallyCounter,
    recoveries: List[Mapping[str, Any]],
    sharding: Dict[str, Dict[str, float]],
    routing: Dict[str, Dict[str, float]],
    reports: Dict[Tuple[Tuple[str, str], ...], RunReport],
) -> None:
    """Fold one validated record into the accumulators.

    Raises plain ``ValueError``/``TypeError`` on mis-typed fields; the
    caller rewraps them with the line number.
    """
    name = record["name"]
    fields = record["fields"]
    if name == "phase_transition":
        phase = str(fields["phase"])
        if fields["status"] == "start":
            phase_started[phase] = float(record["t"])
        elif phase in phase_started:
            elapsed = float(record["t"]) - phase_started.pop(phase)
            phase_seconds[phase] = phase_seconds.get(phase, 0.0) + elapsed
        return
    if name == "service_request":
        op = str(fields["op"])
        latency_us = float(fields["latency_us"])
        ok = bool(fields["ok"])
        request_latencies.setdefault(op, []).append(latency_us)
        request_outcomes.append((ok, latency_us))
        if not ok:
            request_errors[op] += 1
        return
    if name in ("wal_append", "snapshot_write"):
        durable_latencies.setdefault(name, []).append(
            float(fields["latency_us"])
        )
        durable_bytes[name] += int(fields["bytes"])
        return
    if name == "recovery_replay":
        recoveries.append(fields)
        return
    if name in ("shard_plan", "shard_round"):
        entry = sharding.setdefault(
            str(fields["phase"]),
            {
                "tiles": 0.0,
                "rounds": 0.0,
                "tile_solves": 0.0,
                "halo_exchanges": 0.0,
            },
        )
        if name == "shard_plan":
            entry["tiles"] = float(int(fields["tiles_x"]) * int(fields["tiles_y"]))
        else:
            entry["rounds"] += 1.0
            entry["tile_solves"] += float(int(fields["tiles"]))
            entry["halo_exchanges"] += float(int(fields["exchanges"]))
        return
    if name in ("traffic_sweep", "saturation_point"):
        key = (
            f"{fields['view']}/{fields['kernel']}/{fields['pattern']}"
        )
        entry = routing.setdefault(
            key,
            {
                "points": 0.0,
                "offered": 0.0,
                "delivered": 0.0,
                "peak_throughput": 0.0,
                "worst_p99": 0.0,
            },
        )
        if name == "traffic_sweep":
            entry["points"] += 1.0
            entry["offered"] += float(int(fields["packets"]))
            entry["delivered"] += float(int(fields["delivered"]))
            entry["peak_throughput"] = max(
                entry["peak_throughput"], float(fields["throughput"])
            )
            p99 = float(fields["p99"])
            if not math.isnan(p99):
                entry["worst_p99"] = max(entry["worst_p99"], p99)
        else:
            entry["saturation_rate"] = float(fields["rate"])
            entry["saturation_throughput"] = float(fields["throughput"])
        return
    if name not in ("epoch_end", "run_end"):
        return
    key = _run_key(fields)
    report = reports.get(key)
    if report is None:
        report = reports[key] = RunReport(key=key)
    if name == "epoch_end":
        report.epochs.append(
            EpochReport(
                epoch=int(fields["epoch"]),
                at_time=int(fields["at_time"]),
                crashed=tuple((int(x), int(y)) for x, y in fields["crashed"]),
                rounds=int(fields["rounds"]),
                executed_rounds=int(fields["executed_rounds"]),
                messages=int(fields["messages"]),
                dropped=int(fields["dropped"]),
                duplicated=int(fields["duplicated"]),
            )
        )
    else:
        report.rounds = int(fields["rounds"])
        report.executed_rounds = int(fields["executed_rounds"])
        report.messages = int(fields["messages"])
        report.heartbeats = int(fields["heartbeats"])
        report.dropped = int(fields["dropped"])
        report.duplicated = int(fields["duplicated"])


def latency_percentiles(
    samples: List[float], errors: int = 0
) -> Dict[str, float]:
    """Nearest-rank percentile summary of a latency sample set (µs)."""
    ordered = sorted(samples)
    n = len(ordered)

    def rank(q: float) -> float:
        if n == 0:
            return 0.0
        return ordered[min(n - 1, max(0, math.ceil(q * n) - 1))]

    return {
        "count": float(n),
        "errors": float(errors),
        "p50": rank(0.50),
        "p90": rank(0.90),
        "p99": rank(0.99),
        "max": ordered[-1] if n else 0.0,
    }


def _run_key(fields: Mapping[str, Any]) -> Tuple[Tuple[str, str], ...]:
    return tuple(
        (k, str(fields[k])) for k in _RUN_LABELS if k in fields
    )


def _check_consistency(path: str, report: RunReport) -> None:
    """Epoch message sums must agree with the run total when both exist.

    Only ``messages`` is cross-checked: executed-round accounting differs
    by engine (the asynchronous engine reports a single aggregate entry
    in ``changes_per_round`` while its epochs count per-delivery steps),
    so round sums are engine-specific and not an invariant of the trace.
    """
    if report.messages is None or not report.epochs:
        return
    epoch_messages = sum(e.messages for e in report.epochs)
    if epoch_messages != report.messages:
        raise ObservabilityError(
            f"{path}: run {report.label()} is inconsistent: epochs sum to "
            f"{epoch_messages} messages but run_end reports {report.messages}"
        )


def format_summary(summary: TraceSummary) -> str:
    """The plain-text report ``repro obs summarize`` prints."""
    lines: List[str] = [
        f"{summary.path}: {summary.events_total} events",
        "",
    ]
    for name in sorted(summary.by_name):
        lines.append(f"  {name:>18}: {summary.by_name[name]}")
    if summary.phase_seconds:
        lines.append("")
        lines.append("phase timings:")
        for phase in sorted(summary.phase_seconds):
            lines.append(
                f"  {phase:>18}: {1e3 * summary.phase_seconds[phase]:.2f} ms"
            )
    if summary.service_latency:
        lines.append("")
        lines.append("service request latency (us):")
        for op, pct in summary.service_latency.items():
            lines.append(
                f"  {op:>18}: n={int(pct['count'])} errors={int(pct['errors'])} "
                f"p50={pct['p50']:.1f} p90={pct['p90']:.1f} "
                f"p99={pct['p99']:.1f} max={pct['max']:.1f}"
            )
    if summary.slo is not None:
        s = summary.slo
        cfg = s["config"]
        lines.append("")
        lines.append(f"slo: {'OK' if s['ok'] else 'VIOLATED'}")
        lines.append(
            f"  availability: {s['availability']:.4f} "
            f"(target {cfg['availability_target']}) "
            f"[{'ok' if s['availability_ok'] else 'VIOLATED'}]"
        )
        lines.append(
            f"  error budget: {s['error_budget_spent']:.1f} spent of "
            f"{s['error_budget_total']:.1f} "
            f"({int(s['errors'])} errors in {int(s['count'])} requests)"
        )
        lines.append(
            f"  latency p{100 * cfg['latency_quantile']:g}: "
            f"{s['latency_quantile_us']:.1f} us "
            f"(objective {cfg['latency_objective_us']:g} us) "
            f"[{'ok' if s['latency_ok'] else 'VIOLATED'}]"
        )
    if summary.sharding:
        lines.append("")
        lines.append("sharding:")
        for phase in sorted(summary.sharding):
            entry = summary.sharding[phase]
            lines.append(
                f"  {phase:>18}: {int(entry['tiles'])} tiles, "
                f"{int(entry['rounds'])} tile rounds, "
                f"{int(entry['tile_solves'])} tile solves, "
                f"{int(entry['halo_exchanges'])} halo exchanges"
            )
    if summary.routing:
        lines.append("")
        lines.append("routing (traffic campaigns):")
        for key in sorted(summary.routing):
            entry = summary.routing[key]
            sat = entry.get("saturation_rate")
            sat_txt = (
                "unsaturated"
                if sat is None
                else ("saturated at lowest rate" if sat < 0 else f"sat@{sat:g}/cyc")
            )
            lines.append(
                f"  {key}: {int(entry['points'])} points, "
                f"{int(entry['delivered'])}/{int(entry['offered'])} delivered, "
                f"peak {entry['peak_throughput']:.2f} pkt/cyc, "
                f"worst p99 {entry['worst_p99']:.0f} cyc, {sat_txt}"
            )
    if summary.durability:
        lines.append("")
        lines.append("durability:")
        for name, entry in summary.durability.items():
            if "p50" in entry:
                lines.append(
                    f"  {name:>18}: n={int(entry['count'])} "
                    f"p50={entry['p50']:.1f} p99={entry['p99']:.1f} "
                    f"max={entry['max']:.1f} us, "
                    f"{int(entry['bytes'])} bytes"
                )
            else:
                parts = " ".join(
                    f"{k}={int(v)}" for k, v in sorted(entry.items())
                )
                lines.append(f"  {name:>18}: {parts}")
    for report in summary.runs:
        lines.append("")
        header = f"run [{report.label()}]"
        if report.rounds is not None:
            header += (
                f": {report.rounds} rounds, {report.messages} messages, "
                f"{report.heartbeats} heartbeats, {report.dropped} dropped, "
                f"{report.duplicated} duplicated"
            )
        lines.append(header)
        if report.epochs:
            lines.append(
                f"  {len(report.epochs)} epochs, "
                f"{report.recovery_rounds} recovery rounds:"
            )
            for ep in report.epochs:
                crashed = (
                    "initial"
                    if not ep.crashed
                    else "crash " + " ".join(f"{x},{y}" for x, y in ep.crashed)
                )
                lines.append(
                    f"    epoch {ep.epoch} t={ep.at_time:>4} {crashed}: "
                    f"{ep.rounds} rounds, {ep.messages} messages, "
                    f"{ep.dropped} dropped"
                )
    return "\n".join(lines)
