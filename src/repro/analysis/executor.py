"""Amortized parallel cell execution for sweeps.

The naive per-sweep ``ProcessPoolExecutor`` made ``jobs=2`` *slower*
than serial for the benchmark-sized sweeps: pool spawn plus one
inter-process round trip per cell cost more than the cells themselves.
This module fixes both ends of that trade:

* **Warm pools** — one process pool per worker count is kept alive in a
  module registry and reused across sweep calls, so only the first
  parallel sweep of a process pays the spawn cost.  A pool poisoned by
  a worker crash (``BrokenProcessPool``) is discarded and lazily
  respawned.

* **Calibrated chunking** — the first cell is evaluated in the parent
  and timed; the measured per-cell cost sizes the chunks handed to
  workers (one pickle round trip per *chunk*, not per cell) and feeds
  the amortization decision below.

* **Serial fallback** — parallel execution saves roughly
  ``est_total * (1 - 1/jobs)`` and costs a pool spawn (when cold) plus
  a dispatch round trip per chunk.  When the estimated savings cannot
  cover that overhead the remaining cells run serially in the parent,
  so ``jobs > 1`` is never slower than serial by more than the one
  timed cell.

Scheduling never changes results: cells must be pure functions of their
task tuples (each sweep cell derives its generator from its grid
position), so serial, chunked, and retried executions are bit-identical.

Crash semantics match the old per-sweep executor: a chunk interrupted
by ``BrokenProcessPool`` is retried on a fresh pool a bounded number of
times, then re-run cell by cell to isolate the poison cell, which is
recorded via ``broken_marker`` while every healthy cell still returns
its real result.

For workloads whose cells share large numpy planes (the sharded
fixpoints of :mod:`repro.core.sharded`), :class:`SharedArena` owns
``multiprocessing.shared_memory`` segments with a guaranteed-unlink
lifecycle: tasks carry only tiny :class:`SharedBlock` tokens, workers
map the segments via :func:`attach_block` (cached per process), and the
parent unlinks every segment on exit from the arena's ``with`` block —
including the poison-cell and ``BrokenProcessPool`` retry paths, where
the crashed worker's mapping dies with the worker and the parent's
``finally`` still reaches the unlink.  A process-exit hook sweeps any
arena a caller leaked outside ``with``, so no ``/dev/shm`` segment ever
outlives the parent.
"""

from __future__ import annotations

import atexit
import os
import secrets
import time
import weakref
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.telemetry import Telemetry

__all__ = [
    "ExecutionReport",
    "SharedArena",
    "SharedBlock",
    "WarmPoolRegistry",
    "attach_block",
    "run_cells",
    "shared_pools",
]

#: Estimated cost of spawning a fresh process pool (fork + first-task
#: import amortization).  Deliberately conservative: falling back to
#: serial on a borderline sweep costs almost nothing, spawning a pool
#: for one that cannot amortize it costs a visible stall.
_POOL_SPAWN_COST_S = 0.15

#: Estimated per-chunk dispatch cost on a warm pool (pickle + queue
#: round trip; measured ~0.4 ms on the reference box).
_DISPATCH_COST_S = 0.0005

#: Target wall-clock duration of one chunk.  Large enough to amortize
#: the dispatch round trip, small enough to load-balance.
_TARGET_CHUNK_S = 0.05

#: Hard bounds on the calibrated chunk size.
_MAX_CHUNK = 256

#: Fresh pools tried after a worker crash before the failing chunk is
#: re-run cell by cell (and, at chunk size one, before the poison cell
#: is marked failed).
_BROKEN_POOL_RETRIES = 2


@dataclass(frozen=True)
class ExecutionReport:
    """How one :func:`run_cells` call actually executed."""

    cells: int
    jobs: int
    parallel: bool
    chunk_size: int
    #: Measured seconds for the calibration cell (0.0 when nothing was
    #: calibrated: empty task list or explicit chunk size).
    calibrated_cell_s: float
    #: Whether a warm pool from a previous call was available.
    pool_was_warm: bool


class WarmPoolRegistry:
    """Process pools kept alive across calls, keyed by worker count."""

    def __init__(self) -> None:
        self._pools: Dict[int, ProcessPoolExecutor] = {}

    def warm(self, jobs: int) -> bool:
        """Whether a pool for ``jobs`` workers is already running."""
        return jobs in self._pools

    def get(self, jobs: int) -> ProcessPoolExecutor:
        """The warm pool for ``jobs`` workers, spawning it if needed."""
        pool = self._pools.get(jobs)
        if pool is None:
            pool = self._pools[jobs] = ProcessPoolExecutor(max_workers=jobs)
        return pool

    def discard(self, jobs: int) -> None:
        """Drop (and shut down) a poisoned pool so the next
        :meth:`get` spawns a fresh one."""
        pool = self._pools.pop(jobs, None)
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def shutdown(self) -> None:
        """Shut every pool down (process exit, or tests)."""
        for jobs in list(self._pools):
            pool = self._pools.pop(jobs)
            pool.shutdown(wait=False, cancel_futures=True)


#: The default registry shared by all sweeps in the process.
shared_pools = WarmPoolRegistry()
atexit.register(shared_pools.shutdown)


#: Prefix of every segment this module creates — what the hygiene tests
#: scan ``/dev/shm`` for.
_SHM_PREFIX = "repro-arena"


@dataclass(frozen=True)
class SharedBlock:
    """Picklable token naming one shared-memory numpy plane.

    Tasks sent to workers carry these instead of arrays, so dispatching
    a tile costs a few bytes of pickle regardless of the plane size.
    """

    name: str
    shape: Tuple[int, ...]
    dtype: str


class SharedArena:
    """Owner of shared-memory numpy planes with guaranteed unlink.

    The creating (parent) process allocates segments through
    :meth:`ndarray` and is the only unlinker; workers attach read-write
    views via :func:`attach_block`.  Use as a context manager::

        with SharedArena() as arena:
            plane, block = arena.ndarray((w, h), np.bool_)
            ... dispatch tasks carrying ``block`` ...
        # every segment closed and unlinked, whatever happened above

    ``close`` is idempotent and per-segment fault-tolerant (a segment
    already gone is not an error), so crash-retry paths that tear down
    half-initialized arenas stay clean.  Arenas never left via ``with``
    are swept by an ``atexit`` hook — ``/dev/shm`` hygiene does not
    depend on the caller's discipline.
    """

    def __init__(self) -> None:
        self._segments: List[shared_memory.SharedMemory] = []
        self._finalizer = weakref.finalize(self, _close_segments, self._segments)

    def ndarray(
        self, shape: Tuple[int, ...], dtype: "np.dtype | type" = np.bool_
    ) -> Tuple[np.ndarray, SharedBlock]:
        """Allocate a zeroed shared plane; returns ``(view, token)``.

        The view stays valid until the arena closes; the token is what
        tasks carry to workers.
        """
        dt = np.dtype(dtype)
        nbytes = max(1, int(np.prod(shape)) * dt.itemsize)
        name = f"{_SHM_PREFIX}-{os.getpid()}-{secrets.token_hex(4)}"
        seg = shared_memory.SharedMemory(name=name, create=True, size=nbytes)
        self._segments.append(seg)
        view = np.ndarray(shape, dtype=dt, buffer=seg.buf)
        view.fill(0)
        return view, SharedBlock(name=seg.name, shape=tuple(shape), dtype=dt.str)

    def close(self) -> None:
        """Close and unlink every segment (idempotent)."""
        self._finalizer()

    def __enter__(self) -> "SharedArena":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _close_segments(segments: List[shared_memory.SharedMemory]) -> None:
    """Module-level so ``weakref.finalize`` never keeps the arena alive."""
    while segments:
        seg = segments.pop()
        try:
            seg.close()
        except OSError:  # pragma: no cover - buffer already torn down
            pass
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass


#: Worker-side cache of attached segments.  Keyed by segment name; one
#: mmap per segment per worker process for the lifetime of the worker,
#: so repeated tile dispatches re-use the mapping.
_ATTACHED: Dict[str, Tuple[shared_memory.SharedMemory, memoryview]] = {}


def attach_block(block: SharedBlock) -> np.ndarray:
    """Map a :class:`SharedBlock` into this process as a numpy view.

    Safe to call in the parent too, but meant for pool workers.  On
    Python < 3.13 an attach re-registers the segment with the shared
    resource tracker; that is harmless here — the tracker's cache is a
    per-name set, the fork family shares one tracker, and the owning
    arena's ``unlink`` retires the single entry — so no unregister
    work-around is needed, and none is attempted (a worker-side
    unregister would strip the *parent's* entry and make the parent's
    unlink racy).
    """
    cached = _ATTACHED.get(block.name)
    if cached is None:
        seg = shared_memory.SharedMemory(name=block.name)
        cached = _ATTACHED[block.name] = (seg, seg.buf)
    seg, buf = cached
    return np.ndarray(block.shape, dtype=np.dtype(block.dtype), buffer=buf)


def _usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1


def _run_chunk(payload):
    """Worker-side: evaluate one chunk of cells in order."""
    cell_fn, cells = payload
    return [cell_fn(cell) for cell in cells]


def _progress_meters(
    telemetry: Optional[Telemetry], n: int
) -> Optional[Callable[[int], None]]:
    """A live-progress callback over the telemetry's registry, or
    ``None`` without one.

    The executor advances an ``executor_cells_done`` counter and drains
    an ``executor_cells_pending`` gauge *as chunks finish*, so an admin
    endpoint (:class:`repro.obs.exposition.AdminServer`) scraping the
    same registry watches a long sweep move instead of seeing totals
    appear only at the end.
    """
    if telemetry is None or telemetry.metrics is None:
        return None
    done = telemetry.counter("executor_cells_done")
    pending = telemetry.gauge("executor_cells_pending")
    pending.inc(n)

    def advance(k: int) -> None:
        done.inc(k)
        pending.dec(k)

    return advance


def run_cells(
    cell_fn: Callable[[object], object],
    tasks: Sequence[object],
    jobs: int,
    broken_marker: Optional[Callable[[], object]] = None,
    chunk_size: Optional[int] = None,
    registry: Optional[WarmPoolRegistry] = None,
    telemetry: Optional[Telemetry] = None,
):
    """Evaluate ``cell_fn`` over ``tasks``, amortizing pool costs.

    Parameters
    ----------
    cell_fn:
        Module-level (picklable) pure function of one task tuple.
    tasks:
        The cells, in result order.
    jobs:
        Worker processes; ``jobs <= 1`` runs serially in the parent.
    broken_marker:
        Zero-argument factory for the placeholder recorded when a cell
        keeps killing workers (``BrokenProcessPool`` after all
        retries).  ``None`` re-raises instead — for callers with no
        partial-failure concept.
    chunk_size:
        Explicit cells-per-dispatch, skipping calibration *and* the
        serial fallback (the caller has decided to go parallel).
        ``None`` calibrates from the first cell's runtime.
    registry:
        Warm-pool registry; defaults to the process-wide
        :data:`shared_pools`.
    telemetry:
        Optional; with a metrics registry attached the executor keeps
        live ``executor_cells_done`` / ``executor_cells_pending``
        series updated per finished chunk, scrapeable through an
        in-process admin endpoint while the sweep runs.

    Returns
    -------
    (rows, report)
        ``rows`` matches ``[cell_fn(t) for t in tasks]`` exactly —
        scheduling never leaks into results; ``report`` says how the
        call executed.
    """
    pools = shared_pools if registry is None else registry
    n = len(tasks)
    advance = _progress_meters(telemetry, n)
    if n == 0 or jobs <= 1:
        if advance is None:
            rows = [cell_fn(t) for t in tasks]
        else:
            rows = []
            for t in tasks:
                rows.append(cell_fn(t))
                advance(1)
        return rows, ExecutionReport(
            cells=n,
            jobs=jobs,
            parallel=False,
            chunk_size=1,
            calibrated_cell_s=0.0,
            pool_was_warm=pools.warm(jobs),
        )

    was_warm = pools.warm(jobs)
    if chunk_size is not None:
        chunk = max(1, int(chunk_size))
        rows = _map_chunked(
            cell_fn, list(tasks), jobs, chunk, broken_marker, pools, advance
        )
        return rows, ExecutionReport(
            cells=n,
            jobs=jobs,
            parallel=True,
            chunk_size=chunk,
            calibrated_cell_s=0.0,
            pool_was_warm=was_warm,
        )

    # Calibrate: run the first cell in the parent and time it.  Cells
    # are pure functions of their tasks, so computing it here is
    # bit-identical to computing it in a worker.
    t0 = time.perf_counter()
    first = cell_fn(tasks[0])
    per_cell = time.perf_counter() - t0
    if advance is not None:
        advance(1)

    rest = list(tasks[1:])
    chunk = _chunk_size(per_cell, len(rest), jobs)
    n_chunks = -(-len(rest) // chunk) if rest else 0
    est_total = per_cell * len(rest)
    overhead = (0.0 if was_warm else _POOL_SPAWN_COST_S)
    overhead += n_chunks * _DISPATCH_COST_S
    # Worker processes beyond the CPUs we may schedule on cannot add
    # throughput — on a single-CPU box, jobs=2 is pure overhead.
    speedup = 1.0 - 1.0 / min(jobs, _usable_cpus())
    parallel = bool(rest) and est_total * speedup > overhead

    if parallel:
        rows = [first] + _map_chunked(
            cell_fn, rest, jobs, chunk, broken_marker, pools, advance
        )
    else:
        serial_rest = []
        for t in rest:
            serial_rest.append(cell_fn(t))
            if advance is not None:
                advance(1)
        rows = [first] + serial_rest
    return rows, ExecutionReport(
        cells=n,
        jobs=jobs,
        parallel=parallel,
        chunk_size=chunk,
        calibrated_cell_s=per_cell,
        pool_was_warm=was_warm,
    )


def _chunk_size(per_cell: float, n: int, jobs: int) -> int:
    """Cells per dispatch: aim for ``_TARGET_CHUNK_S`` chunks, but keep
    at least ~4 chunks per worker for load balance."""
    if n == 0:
        return 1
    if per_cell <= 0.0:
        by_cost = _MAX_CHUNK
    else:
        by_cost = int(_TARGET_CHUNK_S / per_cell) + 1
    by_balance = -(-n // (4 * jobs))
    return max(1, min(by_cost, by_balance, _MAX_CHUNK))


def _map_chunked(
    cell_fn: Callable[[object], object],
    tasks: List[object],
    jobs: int,
    chunk: int,
    broken_marker: Optional[Callable[[], object]],
    pools: WarmPoolRegistry,
    advance: Optional[Callable[[int], None]] = None,
) -> List[object]:
    """Ordered chunked map on a warm pool, surviving worker crashes.

    A ``BrokenProcessPool`` (worker killed by the OS, segfault in a
    native extension, ...) poisons the whole executor, so the poisoned
    pool is discarded and the batch resumed on a fresh one from the
    first unfinished chunk.  That chunk is first *retried* — the crash
    may have been transient — and once it has crashed
    ``_BROKEN_POOL_RETRIES`` fresh pools it is re-run cell by cell to
    isolate the poison cell, which is recorded via ``broken_marker``
    while the chunk's healthy cells still contribute their results.
    """
    rows: List[object] = []
    crashes_at: Dict[int, int] = {}
    while len(rows) < len(tasks):
        start = len(rows)
        try:
            pool = pools.get(jobs)
            payloads = [
                (cell_fn, tasks[i : i + chunk])
                for i in range(start, len(tasks), chunk)
            ]
            for chunk_rows in pool.map(_run_chunk, payloads):
                rows.extend(chunk_rows)
                if advance is not None:
                    advance(len(chunk_rows))
        except BrokenProcessPool:
            pools.discard(jobs)
            pos = len(rows)
            crashes_at[pos] = crashes_at.get(pos, 0) + 1
            if crashes_at[pos] <= _BROKEN_POOL_RETRIES:
                continue
            if broken_marker is None:
                raise
            if chunk == 1:
                rows.append(broken_marker())
                if advance is not None:
                    advance(1)
            else:
                # Isolate the poison cell(s) inside the failing chunk.
                # The recursive call reports its own progress.
                failing = tasks[pos : pos + chunk]
                rows.extend(
                    _map_chunked(
                        cell_fn, failing, jobs, 1, broken_marker, pools, advance
                    )
                )
    return rows
