"""Generic parameter sweeps.

A convenience wrapper used by the ablation benchmarks: evaluate a
metric function over a grid of parameter values with per-point trial
replication, returning rows ready for
:func:`repro.analysis.tables.format_table`.

``jobs > 1`` distributes the (value, trial) grid over a process pool.
Every cell's generator is derived from ``(seed, value_index,
trial_index)`` alone, so results are bit-identical to a serial sweep
regardless of scheduling; aggregation happens in deterministic (value,
trial) order either way.  The metric function must be picklable (a
module-level function) when ``jobs > 1``.

Sweeps degrade gracefully: a cell whose metric function raises does not
abort the sweep.  The cell contributes no samples and is recorded as a
:class:`CellFailure` on its value's :class:`SweepPoint`, so long
multi-hour sweeps report partial results plus a precise account of what
went wrong instead of dying on the last trial.  A worker process dying
outright (``BrokenProcessPool``) is retried on a fresh pool a bounded
number of times before the affected cells are marked failed.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.experiment import trial_rng
from repro.analysis.stats import Summary, summarize
from repro.obs.telemetry import Telemetry

__all__ = ["CellFailure", "SweepPoint", "sweep"]

#: Decorrelates the per-value root seeds (same constant as always).
_VALUE_SEED_STRIDE = 104729

#: Fresh pools tried after a worker crash before giving up on the
#: remaining cells of a batch.
_BROKEN_POOL_RETRIES = 2

MetricFn = Callable[[object, np.random.Generator], Dict[str, float]]


@dataclass(frozen=True)
class CellFailure:
    """One (value, trial) cell whose metric function did not produce
    metrics: the exception's type and message, for the sweep report."""

    value: object
    trial: int
    error: str


@dataclass(frozen=True)
class SweepPoint:
    """Aggregated metrics of one parameter value.

    ``metrics`` summarises the trials that succeeded; ``failures``
    records the ones that did not (empty on a clean sweep).
    """

    value: object
    metrics: Dict[str, Summary]
    failures: Tuple[CellFailure, ...] = ()


class _CellError:
    """Picklable marker for a failed cell (crosses the pool boundary)."""

    __slots__ = ("error",)

    def __init__(self, error: str):
        self.error = error


def _eval_cell(task: Tuple[MetricFn, object, int, int, int, int]):
    fn, value, vi, ti, trials, seed = task
    rng = trial_rng(trials, seed + _VALUE_SEED_STRIDE * vi, ti)
    try:
        return fn(value, rng)
    except BaseException as exc:  # worker-side: report, don't kill the sweep
        if isinstance(exc, (KeyboardInterrupt, SystemExit)):
            raise
        return _CellError(f"{type(exc).__name__}: {exc}")


def _eval_parallel(tasks: List[tuple], jobs: int) -> List[object]:
    """Evaluate cells on a process pool, surviving worker crashes.

    A ``BrokenProcessPool`` (worker killed by the OS, segfault in a
    native extension, ...) poisons the whole executor, so the batch is
    resumed on a fresh pool from the first unfinished cell.  A cell is
    first *retried* — the crash may have been a healthy cell caught in
    another cell's blast radius, or a transient OOM kill — and only
    marked failed once it has crashed ``_BROKEN_POOL_RETRIES`` fresh
    pools from the same resume position.
    """
    rows: List[object] = []
    crashes_at: Dict[int, int] = {}
    while len(rows) < len(tasks):
        start = len(rows)
        try:
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                for row in pool.map(_eval_cell, tasks[start:]):
                    rows.append(row)
        except BrokenProcessPool:
            pos = len(rows)
            crashes_at[pos] = crashes_at.get(pos, 0) + 1
            if crashes_at[pos] > _BROKEN_POOL_RETRIES:
                rows.append(
                    _CellError(
                        "worker lost: BrokenProcessPool "
                        f"(after {_BROKEN_POOL_RETRIES} pool retries)"
                    )
                )
    return rows


def sweep(
    values: Sequence[object],
    fn: MetricFn,
    trials: int = 10,
    seed: int = 0,
    jobs: int = 1,
    telemetry: Optional[Telemetry] = None,
) -> List[SweepPoint]:
    """Evaluate ``fn(value, rng) -> {metric: number}`` over a value grid.

    Each (value, trial) combination receives an independent spawned
    generator; metrics are summarised per value.  Metric keys may vary
    between trials (missing keys are simply absent from that sample).
    ``jobs > 1`` evaluates the grid on a process pool with identical
    results (see module docstring).  A raising cell is recorded on its
    point's ``failures`` instead of aborting the sweep — identically in
    serial and parallel runs.

    ``telemetry`` (optional) profiles the evaluation (a ``sweep_cell``
    span per cell serially, one ``sweep_eval`` span per pool batch),
    counts ``sweep_cells_total`` / ``sweep_cell_failures_total``, and
    emits one ``sweep_cell`` event per cell — carrying the cell's
    metrics, or the captured :class:`CellFailure` error when the metric
    function raised.  Events are emitted during the deterministic
    aggregation pass in the parent process, so a traced parallel sweep
    logs in exactly the serial (value, trial) order.
    """
    if trials < 1:
        raise ValueError(f"need at least one trial, got {trials}")
    tasks = [
        (fn, value, vi, ti, trials, seed)
        for vi, value in enumerate(values)
        for ti in range(trials)
    ]
    tel = telemetry
    spans_on = tel is not None and tel.spans is not None
    if jobs <= 1:
        if spans_on:
            rows = []
            for task in tasks:
                with tel.spans.span("sweep_cell", value=task[1], trial=task[3]):
                    rows.append(_eval_cell(task))
        else:
            rows = [_eval_cell(task) for task in tasks]
    elif spans_on:
        with tel.spans.span("sweep_eval", jobs=jobs, cells=len(tasks)):
            rows = _eval_parallel(tasks, jobs)
    else:
        rows = _eval_parallel(tasks, jobs)

    events_on = tel is not None and tel.wants("info")
    cells_meter = tel.counter("sweep_cells_total") if tel is not None else None
    fails_meter = (
        tel.counter("sweep_cell_failures_total") if tel is not None else None
    )
    points: List[SweepPoint] = []
    for vi, value in enumerate(values):
        samples: Dict[str, List[float]] = {}
        failures: List[CellFailure] = []
        for ti, row in enumerate(rows[vi * trials : (vi + 1) * trials]):
            if cells_meter is not None:
                cells_meter.inc()
            if isinstance(row, _CellError):
                failures.append(CellFailure(value=value, trial=ti, error=row.error))
                if fails_meter is not None:
                    fails_meter.inc()
                if events_on:
                    tel.emit(
                        "sweep_cell",
                        value=value,
                        trial=ti,
                        ok=False,
                        error=row.error,
                    )
                continue
            if events_on:
                tel.emit("sweep_cell", value=value, trial=ti, ok=True, metrics=row)
            for key, num in row.items():
                samples.setdefault(key, []).append(float(num))
        points.append(
            SweepPoint(
                value=value,
                metrics={k: summarize(v) for k, v in samples.items()},
                failures=tuple(failures),
            )
        )
    return points
