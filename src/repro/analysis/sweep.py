"""Generic parameter sweeps.

A convenience wrapper used by the ablation benchmarks: evaluate a
metric function over a grid of parameter values with per-point trial
replication, returning rows ready for
:func:`repro.analysis.tables.format_table`.

``jobs > 1`` distributes the (value, trial) grid over the amortized
chunked executor of :mod:`repro.analysis.executor`: a warm process pool
shared across sweeps, chunk sizes calibrated from the first cell's
measured cost, and an automatic serial fallback when the sweep is too
small to amortize the pool — so ``jobs > 1`` is never slower than
serial.  Every cell's generator is derived from ``(seed, value_index,
trial_index)`` alone, so results are bit-identical to a serial sweep
regardless of scheduling, chunking, or fallback; aggregation happens in
deterministic (value, trial) order either way.  The metric function
must be picklable (a module-level function) when ``jobs > 1``.  Note
that the fallback evaluates cells in the parent process; pass an
explicit ``chunk_size`` to force worker isolation for metrics that may
crash their process.

Metric functions may themselves label through the tile-sharded
fixpoints (``label_mesh(..., shard=...)``, see :mod:`repro.core.sharded`):
inside a parallel sweep's worker processes the sharded driver detects
the nesting and solves its tiles serially instead of spawning a pool
inside a pool, so a sharded metric is safe at any ``jobs`` and still
bit-identical to its serial evaluation — the (value, trial) grid stays
the single source of process parallelism.

Sweeps degrade gracefully: a cell whose metric function raises does not
abort the sweep.  The cell contributes no samples and is recorded as a
:class:`CellFailure` on its value's :class:`SweepPoint`, so long
multi-hour sweeps report partial results plus a precise account of what
went wrong instead of dying on the last trial.  A worker process dying
outright (``BrokenProcessPool``) is retried on a fresh pool a bounded
number of times before the poison cell is isolated and marked failed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.executor import _BROKEN_POOL_RETRIES, run_cells
from repro.analysis.experiment import trial_rng
from repro.analysis.stats import Summary, summarize
from repro.obs.telemetry import Telemetry

__all__ = ["CellFailure", "SweepPoint", "sweep"]

#: Decorrelates the per-value root seeds (same constant as always).
_VALUE_SEED_STRIDE = 104729

MetricFn = Callable[[object, np.random.Generator], Dict[str, float]]


@dataclass(frozen=True)
class CellFailure:
    """One (value, trial) cell whose metric function did not produce
    metrics: the exception's type and message, for the sweep report."""

    value: object
    trial: int
    error: str


@dataclass(frozen=True)
class SweepPoint:
    """Aggregated metrics of one parameter value.

    ``metrics`` summarises the trials that succeeded; ``failures``
    records the ones that did not (empty on a clean sweep).
    """

    value: object
    metrics: Dict[str, Summary]
    failures: Tuple[CellFailure, ...] = ()


class _CellError:
    """Picklable marker for a failed cell (crosses the pool boundary)."""

    __slots__ = ("error",)

    def __init__(self, error: str):
        self.error = error


def _eval_cell(task: Tuple[MetricFn, object, int, int, int, int]):
    fn, value, vi, ti, trials, seed = task
    rng = trial_rng(trials, seed + _VALUE_SEED_STRIDE * vi, ti)
    try:
        return fn(value, rng)
    except BaseException as exc:  # worker-side: report, don't kill the sweep
        if isinstance(exc, (KeyboardInterrupt, SystemExit)):
            raise
        return _CellError(f"{type(exc).__name__}: {exc}")


def _broken_cell() -> "_CellError":
    """The placeholder for a cell that kept killing its workers."""
    return _CellError(
        "worker lost: BrokenProcessPool "
        f"(after {_BROKEN_POOL_RETRIES} pool retries)"
    )


def sweep(
    values: Sequence[object],
    fn: MetricFn,
    trials: int = 10,
    seed: int = 0,
    jobs: int = 1,
    telemetry: Optional[Telemetry] = None,
    chunk_size: Optional[int] = None,
) -> List[SweepPoint]:
    """Evaluate ``fn(value, rng) -> {metric: number}`` over a value grid.

    Each (value, trial) combination receives an independent spawned
    generator; metrics are summarised per value.  Metric keys may vary
    between trials (missing keys are simply absent from that sample).
    ``jobs > 1`` evaluates the grid on the warm chunked executor with
    identical results (see module docstring); ``chunk_size`` overrides
    the calibrated cells-per-dispatch and forces parallel execution
    even when the amortization estimate would fall back to serial.  A
    raising cell is recorded on its point's ``failures`` instead of
    aborting the sweep — identically in serial and parallel runs.

    ``telemetry`` (optional) profiles the evaluation (a ``sweep_cell``
    span per cell serially, one ``sweep_eval`` span per pool batch),
    counts ``sweep_cells_total`` / ``sweep_cell_failures_total``, and
    emits one ``sweep_cell`` event per cell — carrying the cell's
    metrics, or the captured :class:`CellFailure` error when the metric
    function raised.  Events are emitted during the deterministic
    aggregation pass in the parent process, so a traced parallel sweep
    logs in exactly the serial (value, trial) order.  With a metrics
    registry attached, the executor additionally keeps live
    ``executor_cells_done`` / ``executor_cells_pending`` series updated
    while the sweep runs — scrapeable through an in-process
    :class:`repro.obs.exposition.AdminServer` over the same registry.
    """
    if trials < 1:
        raise ValueError(f"need at least one trial, got {trials}")
    tasks = [
        (fn, value, vi, ti, trials, seed)
        for vi, value in enumerate(values)
        for ti in range(trials)
    ]
    tel = telemetry
    spans_on = tel is not None and tel.spans is not None
    events_on = tel is not None and tel.wants("info")
    if jobs <= 1:
        if spans_on:
            rows = []
            for task in tasks:
                with tel.spans.span("sweep_cell", value=task[1], trial=task[3]):
                    rows.append(_eval_cell(task))
        else:
            rows = [_eval_cell(task) for task in tasks]
    else:
        if spans_on:
            with tel.spans.span("sweep_eval", jobs=jobs, cells=len(tasks)):
                rows, plan = run_cells(
                    _eval_cell,
                    tasks,
                    jobs,
                    broken_marker=_broken_cell,
                    chunk_size=chunk_size,
                    telemetry=tel,
                )
        else:
            rows, plan = run_cells(
                _eval_cell,
                tasks,
                jobs,
                broken_marker=_broken_cell,
                chunk_size=chunk_size,
                telemetry=tel,
            )
        if events_on:
            tel.emit(
                "sweep_plan",
                jobs=jobs,
                parallel=plan.parallel,
                chunk=plan.chunk_size,
                pool_was_warm=plan.pool_was_warm,
            )
    cells_meter = tel.counter("sweep_cells_total") if tel is not None else None
    fails_meter = (
        tel.counter("sweep_cell_failures_total") if tel is not None else None
    )
    points: List[SweepPoint] = []
    for vi, value in enumerate(values):
        samples: Dict[str, List[float]] = {}
        failures: List[CellFailure] = []
        for ti, row in enumerate(rows[vi * trials : (vi + 1) * trials]):
            if cells_meter is not None:
                cells_meter.inc()
            if isinstance(row, _CellError):
                failures.append(CellFailure(value=value, trial=ti, error=row.error))
                if fails_meter is not None:
                    fails_meter.inc()
                if events_on:
                    tel.emit(
                        "sweep_cell",
                        value=value,
                        trial=ti,
                        ok=False,
                        error=row.error,
                    )
                continue
            if events_on:
                tel.emit("sweep_cell", value=value, trial=ti, ok=True, metrics=row)
            for key, num in row.items():
                samples.setdefault(key, []).append(float(num))
        points.append(
            SweepPoint(
                value=value,
                metrics={k: summarize(v) for k, v in samples.items()},
                failures=tuple(failures),
            )
        )
    return points
