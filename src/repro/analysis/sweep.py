"""Generic parameter sweeps.

A convenience wrapper used by the ablation benchmarks: evaluate a
metric function over a grid of parameter values with per-point trial
replication, returning rows ready for
:func:`repro.analysis.tables.format_table`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.analysis.experiment import trial_rngs
from repro.analysis.stats import Summary, summarize

__all__ = ["SweepPoint", "sweep"]


@dataclass(frozen=True)
class SweepPoint:
    """Aggregated metrics of one parameter value."""

    value: object
    metrics: Dict[str, Summary]


def sweep(
    values: Sequence[object],
    fn: Callable[[object, np.random.Generator], Dict[str, float]],
    trials: int = 10,
    seed: int = 0,
) -> List[SweepPoint]:
    """Evaluate ``fn(value, rng) -> {metric: number}`` over a value grid.

    Each (value, trial) combination receives an independent spawned
    generator; metrics are summarised per value.  Metric keys may vary
    between trials (missing keys are simply absent from that sample).
    """
    points: List[SweepPoint] = []
    for vi, value in enumerate(values):
        samples: Dict[str, List[float]] = {}
        for rng in trial_rngs(trials, seed + 104729 * vi):
            for key, num in fn(value, rng).items():
                samples.setdefault(key, []).append(float(num))
        points.append(
            SweepPoint(
                value=value,
                metrics={k: summarize(v) for k, v in samples.items()},
            )
        )
    return points
