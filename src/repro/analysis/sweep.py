"""Generic parameter sweeps.

A convenience wrapper used by the ablation benchmarks: evaluate a
metric function over a grid of parameter values with per-point trial
replication, returning rows ready for
:func:`repro.analysis.tables.format_table`.

``jobs > 1`` distributes the (value, trial) grid over a process pool.
Every cell's generator is derived from ``(seed, value_index,
trial_index)`` alone, so results are bit-identical to a serial sweep
regardless of scheduling; aggregation happens in deterministic (value,
trial) order either way.  The metric function must be picklable (a
module-level function) when ``jobs > 1``.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.analysis.experiment import trial_rng, trial_rngs
from repro.analysis.stats import Summary, summarize

__all__ = ["SweepPoint", "sweep"]

#: Decorrelates the per-value root seeds (same constant as always).
_VALUE_SEED_STRIDE = 104729

MetricFn = Callable[[object, np.random.Generator], Dict[str, float]]


@dataclass(frozen=True)
class SweepPoint:
    """Aggregated metrics of one parameter value."""

    value: object
    metrics: Dict[str, Summary]


def _eval_cell(task: Tuple[MetricFn, object, int, int, int, int]) -> Dict[str, float]:
    fn, value, vi, ti, trials, seed = task
    rng = trial_rng(trials, seed + _VALUE_SEED_STRIDE * vi, ti)
    return fn(value, rng)


def sweep(
    values: Sequence[object],
    fn: MetricFn,
    trials: int = 10,
    seed: int = 0,
    jobs: int = 1,
) -> List[SweepPoint]:
    """Evaluate ``fn(value, rng) -> {metric: number}`` over a value grid.

    Each (value, trial) combination receives an independent spawned
    generator; metrics are summarised per value.  Metric keys may vary
    between trials (missing keys are simply absent from that sample).
    ``jobs > 1`` evaluates the grid on a process pool with identical
    results (see module docstring).
    """
    if trials < 1:
        raise ValueError(f"need at least one trial, got {trials}")
    if jobs <= 1:
        rows = [
            fn(value, rng)
            for vi, value in enumerate(values)
            for rng in trial_rngs(trials, seed + _VALUE_SEED_STRIDE * vi)
        ]
    else:
        tasks = [
            (fn, value, vi, ti, trials, seed)
            for vi, value in enumerate(values)
            for ti in range(trials)
        ]
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            rows = list(pool.map(_eval_cell, tasks))

    points: List[SweepPoint] = []
    for vi, value in enumerate(values):
        samples: Dict[str, List[float]] = {}
        for row in rows[vi * trials : (vi + 1) * trials]:
            for key, num in row.items():
                samples.setdefault(key, []).append(float(num))
        points.append(
            SweepPoint(
                value=value,
                metrics={k: summarize(v) for k, v in samples.items()},
            )
        )
    return points
