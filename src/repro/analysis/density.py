"""Fault-density study: where the block model starts to break down.

The paper observes that its high enabled ratios are "in part due to the
fact that a random distribution tends to generate a set of small faulty
blocks" — a density effect.  This module quantifies the regime change:
as fault density grows, blocks merge, the largest block swallows an
outsized share of healthy nodes (a percolation-flavoured transition),
and the enabled subgraph eventually fragments.  The density benchmark
uses these metrics to map where the paper's refinement buys the most.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.analysis.experiment import trial_rngs
from repro.analysis.stats import Summary, summarize
from repro.core.pipeline import label_mesh
from repro.core.status import SafetyDefinition
from repro.faults.generators import uniform_random
from repro.geometry.cells import CellSet
from repro.geometry.components import connected_components
from repro.mesh.topology import Topology

__all__ = ["DensityPoint", "density_study"]


@dataclass(frozen=True)
class DensityPoint:
    """Aggregates for one fault density."""

    density: float
    f: int
    largest_block: Summary          # cells in the largest faulty block
    imprisoned_fraction: Summary    # nonfaulty-in-blocks / nonfaulty
    freed_fraction: Summary         # activated / nonfaulty-in-blocks
    enabled_components: Summary     # components of the enabled subgraph
    largest_enabled_fraction: Summary  # biggest component / enabled nodes


def _enabled_subgraph_stats(enabled: np.ndarray) -> tuple[int, float]:
    comps = connected_components(CellSet(enabled), connectivity=4)
    if not comps:
        return 0, 0.0
    sizes = sorted((len(c) for c in comps), reverse=True)
    return len(sizes), sizes[0] / sum(sizes)


def density_study(
    topology: Topology,
    densities: Sequence[float],
    trials: int = 10,
    definition: SafetyDefinition = SafetyDefinition.DEF_2B,
    seed: int = 0,
) -> List[DensityPoint]:
    """Sweep fault density and measure block growth and fragmentation.

    Parameters
    ----------
    topology:
        The machine under study.
    densities:
        Fault fractions (0..1) to sweep.
    trials:
        Independent patterns per density.
    definition:
        Phase-1 unsafe rule.
    seed:
        Root seed for reproducibility.
    """
    total = topology.num_nodes
    points: List[DensityPoint] = []
    for di, density in enumerate(densities):
        if not 0.0 <= density <= 1.0:
            raise ValueError(f"density must be in [0, 1], got {density}")
        f = int(round(density * total))
        largest: List[float] = []
        imprisoned: List[float] = []
        freed: List[float] = []
        n_comps: List[float] = []
        big_comp: List[float] = []
        for rng in trial_rngs(trials, seed + 7 * di):
            faults = uniform_random(topology.shape, f, rng)
            result = label_mesh(topology, faults, definition)
            nonfaulty = total - f
            blocks = result.blocks
            largest.append(float(max((len(b.cells) for b in blocks), default=0)))
            in_blocks = result.num_unsafe_nonfaulty
            imprisoned.append(in_blocks / nonfaulty if nonfaulty else 0.0)
            freed.append(
                result.num_activated / in_blocks if in_blocks else 1.0
            )
            ncomp, frac = _enabled_subgraph_stats(result.labels.enabled)
            n_comps.append(float(ncomp))
            big_comp.append(frac)
        points.append(
            DensityPoint(
                density=density,
                f=f,
                largest_block=summarize(largest),
                imprisoned_fraction=summarize(imprisoned),
                freed_fraction=summarize(freed),
                enabled_components=summarize(n_comps),
                largest_enabled_fraction=summarize(big_comp),
            )
        )
    return points
