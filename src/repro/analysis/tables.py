"""Plain-text table rendering for benchmark output.

The benchmarks print the same series the paper plots; a fixed-width
table keeps them diffable and readable in CI logs without any plotting
dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table"]


def _fmt(v: object) -> str:
    if isinstance(v, float):
        return f"{v:.3f}"
    return str(v)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned monospace table.

    Floats are formatted to three decimals; everything else with
    ``str``.  Returns the table as one string (no trailing newline).
    """
    str_rows: List[List[str]] = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
