"""Reproduction driver for the paper's Figure 5.

The paper's simulation study (Section 5): on a 100x100 mesh with ``f``
faults drawn uniformly at random, ``0 <= f <= 100``,

* **Figure 5 (a)/(b)** — the averages of the maximum numbers of rounds
  needed to determine the faulty blocks, and then the disabled regions,
  as functions of ``f``;
* **Figure 5 (c)/(d)** — for each faulty block that can be reduced
  (i.e. holds at least one nonfaulty node), the average percentage of
  enabled nodes among its unsafe-but-nonfaulty nodes.

The global rounds-to-quiescence of one labeling run *is* the maximum
over its blocks of the per-block round count (blocks converge
independently), so :attr:`~repro.core.pipeline.LabelingResult.rounds_phase1`
/ ``rounds_phase2`` are exactly the paper's per-trial maxima.

The paper shows two panels per metric without labelling the pair; both
Definition 2a and 2b appear in its Section 3, so this driver sweeps the
definition (and optionally the topology) and reports every combination.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

import numpy as np

from repro.analysis.executor import run_cells
from repro.analysis.experiment import trial_rng
from repro.analysis.stats import Summary, summarize
from repro.analysis.tables import format_table
from repro.core.pipeline import label_mesh
from repro.core.status import SafetyDefinition
from repro.faults.generators import uniform_random
from repro.mesh.topology import Mesh2D, Topology

__all__ = ["Fig5Point", "Fig5Curve", "run_fig5", "DEFAULT_F_VALUES"]

#: The paper sweeps 0 <= f <= 100 on a 100x100 mesh.
DEFAULT_F_VALUES: Tuple[int, ...] = tuple(range(0, 101, 10))


@dataclass(frozen=True)
class Fig5Point:
    """Aggregates of one ``f`` value across trials."""

    f: int
    rounds_fb: Summary        # Fig 5 (a)/(b), faulty-block curve
    rounds_dr: Summary        # Fig 5 (a)/(b), disabled-region curve
    enabled_ratio: Summary    # Fig 5 (c)/(d), per reducible block
    num_blocks: Summary
    num_regions: Summary


@dataclass(frozen=True)
class Fig5Curve:
    """One full sweep (one panel of the figure)."""

    definition: SafetyDefinition
    topology: Topology
    trials: int
    seed: int
    points: Tuple[Fig5Point, ...]

    def as_table(self) -> str:
        """The panel as a plain-text table (what the bench prints)."""
        rows = []
        for p in self.points:
            rows.append(
                [
                    p.f,
                    p.rounds_fb.mean,
                    p.rounds_dr.mean,
                    100.0 * p.enabled_ratio.mean,
                    p.num_blocks.mean,
                    p.num_regions.mean,
                ]
            )
        title = (
            f"Figure 5 — {type(self.topology).__name__} "
            f"{self.topology.width}x{self.topology.height}, "
            f"Definition {self.definition.value}, {self.trials} trials"
        )
        return format_table(
            ["f", "rounds(FB)", "rounds(DR)", "enabled %", "#blocks", "#regions"],
            rows,
            title=title,
        )


#: Decorrelates the per-f root seeds (same constant as always).
_F_SEED_STRIDE = 7919

#: One trial's contribution: (rounds1, rounds2, per-block ratios, #blocks, #regions).
_TrialRow = Tuple[float, float, List[float], float, float]


def _fig5_trial(
    task: Tuple[
        Topology, SafetyDefinition, str, str, "str | None", int, int, int, int, int
    ],
) -> _TrialRow:
    topo, definition, method, geometry_backend, shard, f, fi, ti, trials, seed = task
    rng = trial_rng(trials, seed + _F_SEED_STRIDE * fi, ti)
    faults = uniform_random(topo.shape, f, rng)
    result = label_mesh(
        topo,
        faults,
        definition,
        backend="vectorized",
        method=method,
        geometry_backend=geometry_backend,
        shard=shard,
    )
    return (
        float(result.rounds_phase1),
        float(result.rounds_phase2),
        result.per_block_enabled_ratios(),
        float(len(result.blocks)),
        float(len(result.regions)),
    )


def run_fig5(
    definition: SafetyDefinition = SafetyDefinition.DEF_2B,
    topology: Topology | None = None,
    f_values: Sequence[int] = DEFAULT_F_VALUES,
    trials: int = 20,
    seed: int = 20010423,
    method: str = "auto",
    jobs: int = 1,
    geometry_backend: str = "vectorized",
    shard: "str | None" = None,
) -> Fig5Curve:
    """Run the Figure-5 sweep for one definition/topology combination.

    Parameters
    ----------
    definition:
        Phase-1 unsafe rule for this panel.
    topology:
        Defaults to the paper's 100x100 mesh.
    f_values:
        Fault counts to sweep.
    trials:
        Independent fault patterns per ``f``.
    seed:
        Root seed; each (f, trial) pair gets its own spawned stream.
    method:
        Vectorized labeling kernel (see
        :func:`repro.core.pipeline.label_mesh`).
    jobs:
        Worker processes for the (f, trial) grid, dispatched through
        the warm chunked executor of :mod:`repro.analysis.executor`;
        any value yields identical results because every cell's
        generator is derived from its grid position, not the schedule.
    geometry_backend:
        Block/region extraction backend (see
        :func:`repro.core.pipeline.label_mesh`).
    shard:
        Optional tile spec (``"KxK"`` / ``"auto"``): every trial labels
        through the sharded fixpoints.  Labels are identical; the
        rounds columns then count tile rounds.  Inside parallel sweep
        workers the tile solves run serially (the sharded driver
        refuses to nest process pools), so ``jobs`` here stays the one
        source of process parallelism.
    """
    topo = topology if topology is not None else Mesh2D(100, 100)
    if trials < 1:
        raise ValueError(f"need at least one trial, got {trials}")
    tasks = [
        (topo, definition, method, geometry_backend, shard, f, fi, ti, trials, seed)
        for fi, f in enumerate(f_values)
        for ti in range(trials)
    ]
    rows, _ = run_cells(_fig5_trial, tasks, jobs)

    points: List[Fig5Point] = []
    for fi, f in enumerate(f_values):
        rounds_fb: List[float] = []
        rounds_dr: List[float] = []
        ratios: List[float] = []
        blocks: List[float] = []
        regions: List[float] = []
        for r1, r2, block_ratios, nb, nr in rows[fi * trials : (fi + 1) * trials]:
            rounds_fb.append(r1)
            rounds_dr.append(r2)
            ratios.extend(block_ratios)
            blocks.append(nb)
            regions.append(nr)
        points.append(
            Fig5Point(
                f=f,
                rounds_fb=summarize(rounds_fb),
                rounds_dr=summarize(rounds_dr),
                enabled_ratio=summarize(ratios),
                num_blocks=summarize(blocks),
                num_regions=summarize(regions),
            )
        )
    return Fig5Curve(
        definition=definition,
        topology=topo,
        trials=trials,
        seed=seed,
        points=tuple(points),
    )
