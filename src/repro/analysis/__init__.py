"""Experiment harness: seeded trials, sweeps, statistics and tables.

:mod:`repro.analysis.fig5` is the driver that regenerates the paper's
Figure 5; the rest is the generic machinery the benchmarks share.
"""

from repro.analysis.density import DensityPoint, density_study
from repro.analysis.experiment import run_trials, trial_rng, trial_rngs
from repro.analysis.fig5 import DEFAULT_F_VALUES, Fig5Curve, Fig5Point, run_fig5
from repro.analysis.stats import Summary, summarize
from repro.analysis.sweep import CellFailure, SweepPoint, sweep
from repro.analysis.tables import format_table

__all__ = [
    "DEFAULT_F_VALUES",
    "DensityPoint",
    "density_study",
    "Fig5Curve",
    "Fig5Point",
    "Summary",
    "CellFailure",
    "SweepPoint",
    "format_table",
    "run_fig5",
    "run_trials",
    "summarize",
    "sweep",
    "trial_rng",
    "trial_rngs",
]
