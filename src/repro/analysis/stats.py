"""Summary statistics for experiment aggregation.

Deliberately tiny: the experiments report means with standard errors
and normal-approximation confidence intervals, which is all the paper's
averaged curves need.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

__all__ = ["Summary", "summarize"]


@dataclass(frozen=True)
class Summary:
    """Mean/dispersion summary of one metric across trials."""

    n: int
    mean: float
    std: float

    @property
    def stderr(self) -> float:
        """Standard error of the mean (0 for n <= 1)."""
        return self.std / math.sqrt(self.n) if self.n > 1 else 0.0

    @property
    def ci95(self) -> Tuple[float, float]:
        """Normal-approximation 95% confidence interval for the mean."""
        half = 1.96 * self.stderr
        return (self.mean - half, self.mean + half)

    def __str__(self) -> str:
        return f"{self.mean:.3f} ± {self.stderr:.3f} (n={self.n})"


def summarize(values: Sequence[float]) -> Summary:
    """Summarise a sample; an empty sample yields NaNs with n=0."""
    n = len(values)
    if n == 0:
        return Summary(0, float("nan"), float("nan"))
    mean = sum(values) / n
    if n == 1:
        return Summary(1, mean, 0.0)
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    return Summary(n, mean, math.sqrt(var))
