"""Trial orchestration: seeded, reproducible experiment runs.

Every experiment in this library is "run T independent trials of a
function of an RNG, then aggregate".  :func:`run_trials` implements
that once, with the seeding discipline the HPC guides prescribe: a
single root :class:`numpy.random.SeedSequence` is spawned into one
child per trial, so trials are independent, reproducible from the
root seed alone, and insensitive to the number of trials requested
before them.

Parallelism: ``jobs > 1`` fans the trials out over a
:class:`~concurrent.futures.ProcessPoolExecutor`.  Each worker
reconstructs its trial's generator from ``(seed, trial_index)`` alone,
so the random streams — and therefore the results — are identical to a
serial run no matter how the scheduler interleaves the work.  The trial
function must be picklable (a module-level function, not a lambda or
closure) when ``jobs > 1``.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Tuple, TypeVar

import numpy as np

__all__ = ["run_trials", "trial_rngs", "trial_rng"]

T = TypeVar("T")


def trial_rngs(trials: int, seed: int) -> List[np.random.Generator]:
    """One independent generator per trial, spawned from a root seed."""
    if trials < 1:
        raise ValueError(f"need at least one trial, got {trials}")
    root = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(trials)]


def trial_rng(trials: int, seed: int, index: int) -> np.random.Generator:
    """The ``index``-th generator of ``trial_rngs(trials, seed)``.

    Spawned-child streams depend only on the root seed and the child's
    position, so a worker process can rebuild exactly the generator a
    serial run would have used for that trial — the key to
    scheduling-independent parallel sweeps.
    """
    if not 0 <= index < trials:
        raise ValueError(f"trial index {index} outside [0, {trials})")
    return np.random.default_rng(np.random.SeedSequence(seed).spawn(trials)[index])


def _run_one(task: Tuple[Callable[[np.random.Generator], T], int, int, int]) -> T:
    fn, trials, seed, index = task
    return fn(trial_rng(trials, seed, index))


def run_trials(
    fn: Callable[[np.random.Generator], T],
    trials: int,
    seed: int,
    jobs: int = 1,
) -> List[T]:
    """Run ``fn`` once per trial with its own child generator.

    Results are returned in trial order regardless of ``jobs``; with
    ``jobs > 1`` the trials run in worker processes and ``fn`` must be
    picklable.
    """
    if jobs <= 1:
        return [fn(rng) for rng in trial_rngs(trials, seed)]
    if trials < 1:
        raise ValueError(f"need at least one trial, got {trials}")
    tasks = [(fn, trials, seed, i) for i in range(trials)]
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(_run_one, tasks))
