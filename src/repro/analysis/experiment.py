"""Trial orchestration: seeded, reproducible experiment runs.

Every experiment in this library is "run T independent trials of a
function of an RNG, then aggregate".  :func:`run_trials` implements
that once, with the seeding discipline the HPC guides prescribe: a
single root :class:`numpy.random.SeedSequence` is spawned into one
child per trial, so trials are independent, reproducible from the
root seed alone, and insensitive to the number of trials requested
before them.
"""

from __future__ import annotations

from typing import Callable, List, TypeVar

import numpy as np

__all__ = ["run_trials", "trial_rngs"]

T = TypeVar("T")


def trial_rngs(trials: int, seed: int) -> List[np.random.Generator]:
    """One independent generator per trial, spawned from a root seed."""
    if trials < 1:
        raise ValueError(f"need at least one trial, got {trials}")
    root = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(trials)]


def run_trials(
    fn: Callable[[np.random.Generator], T],
    trials: int,
    seed: int,
) -> List[T]:
    """Run ``fn`` once per trial with its own child generator."""
    return [fn(rng) for rng in trial_rngs(trials, seed)]
