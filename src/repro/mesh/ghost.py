"""Explicit ghost-frame materialisation for boundary-uniform algorithms.

Section 3 of the paper adds four extra lines of *ghost* nodes adjacent
to the mesh boundary so that boundary nodes can be treated exactly like
interior nodes.  Ghost nodes are permanently safe and enabled and never
participate in routing or labeling.

The vectorized fixpoints in :mod:`repro.core` do not need the frame to
exist — :meth:`repro.mesh.topology.Topology.shifted` injects the ghost
label as a fill value.  This module materialises the frame for the two
places that *do* want it concrete:

* the distributed fabric protocols, where boundary nodes simply see one
  constant pseudo-message per missing neighbour, and
* visualisation/debugging, where showing the frame makes boundary
  behaviour visible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import TopologyError
from repro.types import BoolGrid, Coord

__all__ = ["GhostFrame"]


@dataclass(frozen=True)
class GhostFrame:
    """A ``(width+2) x (height+2)`` view of a grid with a one-node ghost ring.

    Interior coordinates are shifted by ``(+1, +1)`` relative to the bare
    grid: bare node ``(x, y)`` lives at framed position ``(x+1, y+1)``.

    Parameters
    ----------
    width, height:
        The dimensions of the *bare* (ghost-free) grid.
    """

    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise TopologyError(
                f"dimensions must be positive, got {self.width}x{self.height}"
            )

    @property
    def framed_shape(self) -> Tuple[int, int]:
        """Shape of the framed grid, ``(width+2, height+2)``."""
        return (self.width + 2, self.height + 2)

    def to_framed(self, c: Coord) -> Coord:
        """Map a bare node address to its framed position."""
        return (c[0] + 1, c[1] + 1)

    def to_bare(self, c: Coord) -> Coord:
        """Map a framed position back to the bare address.

        Raises
        ------
        TopologyError
            If ``c`` is a ghost position.
        """
        x, y = c[0] - 1, c[1] - 1
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise TopologyError(f"framed position {c} is a ghost node")
        return (x, y)

    def is_ghost(self, c: Coord) -> bool:
        """Whether framed position ``c`` lies on the ghost ring."""
        x, y = c
        return x == 0 or y == 0 or x == self.width + 1 or y == self.height + 1

    def frame(self, grid: BoolGrid, ghost_value: bool) -> BoolGrid:
        """Embed a bare label grid into a framed grid.

        The ghost ring is filled with ``ghost_value`` — ``False`` when the
        label means *unsafe* or *disabled* (ghosts are safe and enabled),
        ``True`` when the label means *safe* or *enabled*.
        """
        if grid.shape != (self.width, self.height):
            raise TopologyError(
                f"grid shape {grid.shape} != bare shape {(self.width, self.height)}"
            )
        framed = np.full(self.framed_shape, bool(ghost_value), dtype=bool)
        framed[1:-1, 1:-1] = grid
        return framed

    def unframe(self, framed: BoolGrid) -> BoolGrid:
        """Extract the bare interior of a framed grid (a copy)."""
        if framed.shape != self.framed_shape:
            raise TopologyError(
                f"framed shape {framed.shape} != expected {self.framed_shape}"
            )
        return framed[1:-1, 1:-1].copy()
