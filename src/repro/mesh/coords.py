"""Coordinates, directions and quadrants on the 2-D grid.

The paper addresses a node ``u`` as ``(u_x, u_y)``; two nodes are
neighbours when their addresses differ by exactly 1 in exactly one
dimension.  This module provides the direction algebra used by both the
distributed protocols (per-node neighbour enumeration) and the
vectorized fixpoints (mask shifting), plus the quadrant machinery of
Lemmas 2 and 3.
"""

from __future__ import annotations

import enum
from typing import Iterator, Tuple

from repro.types import Coord

__all__ = [
    "Dimension",
    "Direction",
    "Quadrant",
    "DIRECTIONS",
    "add",
    "sub",
    "neighbors4",
    "neighbors8",
    "chebyshev",
]


class Dimension(enum.IntEnum):
    """The two mesh dimensions; ``X`` is horizontal, ``Y`` vertical."""

    X = 0
    Y = 1

    @property
    def other(self) -> "Dimension":
        """The perpendicular dimension."""
        return Dimension.Y if self is Dimension.X else Dimension.X


class Direction(enum.Enum):
    """The four mesh link directions.

    The value of each member is its unit offset ``(dx, dy)``.
    ``EAST``/``WEST`` move along :attr:`Dimension.X`;
    ``NORTH``/``SOUTH`` along :attr:`Dimension.Y` (north = +y).
    """

    EAST = (1, 0)
    WEST = (-1, 0)
    NORTH = (0, 1)
    SOUTH = (0, -1)

    @property
    def offset(self) -> Coord:
        """Unit offset ``(dx, dy)`` of this direction."""
        return self.value

    @property
    def dimension(self) -> Dimension:
        """The dimension this direction moves along."""
        return Dimension.X if self.value[1] == 0 else Dimension.Y

    @property
    def opposite(self) -> "Direction":
        """The 180-degree reverse of this direction."""
        return _OPPOSITE[self]

    @property
    def clockwise(self) -> "Direction":
        """The direction 90 degrees clockwise from this one."""
        return _CLOCKWISE[self]

    @property
    def counterclockwise(self) -> "Direction":
        """The direction 90 degrees counterclockwise from this one."""
        return _CLOCKWISE[_OPPOSITE[self]]


_OPPOSITE = {
    Direction.EAST: Direction.WEST,
    Direction.WEST: Direction.EAST,
    Direction.NORTH: Direction.SOUTH,
    Direction.SOUTH: Direction.NORTH,
}

# Clockwise with north up: N -> E -> S -> W -> N.
_CLOCKWISE = {
    Direction.NORTH: Direction.EAST,
    Direction.EAST: Direction.SOUTH,
    Direction.SOUTH: Direction.WEST,
    Direction.WEST: Direction.NORTH,
}

#: The four directions in deterministic (E, W, N, S) order.
DIRECTIONS: Tuple[Direction, ...] = (
    Direction.EAST,
    Direction.WEST,
    Direction.NORTH,
    Direction.SOUTH,
)


class Quadrant(enum.Enum):
    """One of the four closed quadrants around an origin node.

    Lemma 2 of the paper divides the plane around a node ``u`` into
    quadrants ``(+,+), (+,-), (-,+), (-,-)``; each quadrant *includes*
    its bounding half-axes and the origin (the quadrants overlap on the
    axes).  The member value holds the sign pair ``(sx, sy)``.
    """

    PP = (1, 1)
    PN = (1, -1)
    NP = (-1, 1)
    NN = (-1, -1)

    def contains(self, origin: Coord, point: Coord) -> bool:
        """Whether ``point`` lies in this closed quadrant around ``origin``."""
        sx, sy = self.value
        dx, dy = point[0] - origin[0], point[1] - origin[1]
        return (dx * sx >= 0) and (dy * sy >= 0)


def add(c: Coord, d: Coord) -> Coord:
    """Component-wise coordinate addition."""
    return (c[0] + d[0], c[1] + d[1])


def sub(c: Coord, d: Coord) -> Coord:
    """Component-wise coordinate subtraction."""
    return (c[0] - d[0], c[1] - d[1])


def neighbors4(c: Coord) -> Iterator[Coord]:
    """The four edge-adjacent (mesh-link) neighbours of ``c``, unbounded."""
    x, y = c
    yield (x + 1, y)
    yield (x - 1, y)
    yield (x, y + 1)
    yield (x, y - 1)


def neighbors8(c: Coord) -> Iterator[Coord]:
    """The eight king-move neighbours of ``c``, unbounded.

    Used for disabled-region components: the paper treats diagonally
    touching disabled nodes as part of one region (their closed unit
    squares share a corner point).
    """
    x, y = c
    for dx in (-1, 0, 1):
        for dy in (-1, 0, 1):
            if dx or dy:
                yield (x + dx, y + dy)


def chebyshev(u: Coord, v: Coord) -> int:
    """Chebyshev (king-move) distance between two addresses."""
    return max(abs(u[0] - v[0]), abs(u[1] - v[1]))
