"""2-D mesh and torus topologies.

A :class:`Topology` answers the structural questions both execution
backends need:

* per-node neighbour enumeration (used by the distributed protocols on
  the fabric engine), and
* whole-grid *shifted views* of boolean label grids (used by the
  vectorized fixpoints) with topology-appropriate boundary handling —
  ghost fill values on the mesh, wrap-around on the torus.

The ghost-node convention follows Section 3 of the paper: the mesh is
conceptually surrounded by one extra ring of *ghost* nodes that are
permanently safe and enabled but never participate in any activity.
Rather than materialising the ring, :meth:`Topology.shifted` takes the
ghost label as a ``fill`` value, which keeps grids at their natural
``(width, height)`` shape and lets the fixpoints stay allocation-light.
"""

from __future__ import annotations

import abc
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.errors import TopologyError
from repro.mesh.coords import DIRECTIONS, Dimension, Direction
from repro.types import BoolGrid, Coord

__all__ = ["Topology", "Mesh2D", "Torus2D"]


class Topology(abc.ABC):
    """Abstract 2-D grid topology of ``width x height`` nodes.

    Subclasses differ only in boundary behaviour; all interior structure
    is shared.  Instances are immutable and hashable.
    """

    __slots__ = ("_width", "_height")

    def __init__(self, width: int, height: int):
        if width < 1 or height < 1:
            raise TopologyError(f"dimensions must be positive, got {width}x{height}")
        self._width = int(width)
        self._height = int(height)

    # -- basic structure ---------------------------------------------------

    @property
    def width(self) -> int:
        """Number of nodes along dimension X."""
        return self._width

    @property
    def height(self) -> int:
        """Number of nodes along dimension Y."""
        return self._height

    @property
    def shape(self) -> Tuple[int, int]:
        """Grid shape ``(width, height)`` — the shape of all label grids."""
        return (self._width, self._height)

    @property
    def num_nodes(self) -> int:
        """Total number of (non-ghost) nodes."""
        return self._width * self._height

    @property
    @abc.abstractmethod
    def diameter(self) -> int:
        """Network diameter: the maximum distance between any two nodes."""

    @property
    @abc.abstractmethod
    def wraps(self) -> bool:
        """Whether links wrap around the boundary (torus) or not (mesh)."""

    def contains(self, c: Coord) -> bool:
        """Whether ``c`` is a valid node address of this topology."""
        return 0 <= c[0] < self._width and 0 <= c[1] < self._height

    def check(self, c: Coord) -> Coord:
        """Validate ``c``, returning it; raise :class:`TopologyError` if invalid."""
        if not self.contains(c):
            raise TopologyError(f"node {c} outside {self!r}")
        return c

    def nodes(self) -> Iterator[Coord]:
        """Iterate all node addresses in row-major ``(x, y)`` order."""
        for x in range(self._width):
            for y in range(self._height):
                yield (x, y)

    # -- neighbourhoods ----------------------------------------------------

    @abc.abstractmethod
    def neighbor(self, c: Coord, d: Direction) -> Coord | None:
        """The neighbour of ``c`` in direction ``d``, or ``None`` if the link
        leaves the topology (mesh boundary).  Torus links never return None."""

    def neighbors(self, c: Coord) -> List[Coord]:
        """All existing neighbours of ``c`` in deterministic (E,W,N,S) order."""
        out = []
        for d in DIRECTIONS:
            n = self.neighbor(c, d)
            if n is not None:
                out.append(n)
        return out

    def neighbors_in_dim(self, c: Coord, dim: Dimension) -> List[Coord]:
        """Existing neighbours of ``c`` along one dimension (at most two)."""
        dirs = (
            (Direction.EAST, Direction.WEST)
            if dim is Dimension.X
            else (Direction.NORTH, Direction.SOUTH)
        )
        out = []
        for d in dirs:
            n = self.neighbor(c, d)
            if n is not None:
                out.append(n)
        return out

    def degree(self, c: Coord) -> int:
        """Number of links incident to ``c`` (2-4 on a mesh, always 4 on a torus)."""
        return len(self.neighbors(c))

    @abc.abstractmethod
    def distance(self, u: Coord, v: Coord) -> int:
        """Length of a shortest path between ``u`` and ``v``."""

    # -- vectorized views ----------------------------------------------------

    @abc.abstractmethod
    def shifted(self, grid: BoolGrid, d: Direction, fill: bool) -> BoolGrid:
        """Neighbour-view of a label grid.

        Returns an array ``s`` with ``s[c] = grid[neighbor(c, d)]`` for every
        node ``c``.  On a mesh, nodes whose ``d``-neighbour is a ghost get
        ``fill`` — the ghost ring's label (``False`` for *unsafe*, ``True``
        for *enabled*).  On a torus the view wraps and ``fill`` is ignored.

        This is the single primitive the vectorized fixpoints are built on.
        """

    def neighbor_views(
        self, grid: BoolGrid, fill: bool
    ) -> Tuple[BoolGrid, BoolGrid, BoolGrid, BoolGrid]:
        """Shifted views in (E, W, N, S) order; see :meth:`shifted`."""
        return (
            self.shifted(grid, Direction.EAST, fill),
            self.shifted(grid, Direction.WEST, fill),
            self.shifted(grid, Direction.NORTH, fill),
            self.shifted(grid, Direction.SOUTH, fill),
        )

    # -- misc ---------------------------------------------------------------

    def empty_grid(self, fill: bool = False) -> BoolGrid:
        """A fresh boolean grid of this topology's shape."""
        return np.full(self.shape, bool(fill), dtype=bool)

    def grid_from_coords(self, coords: Sequence[Coord]) -> BoolGrid:
        """Boolean grid that is True exactly at the given node addresses."""
        g = self.empty_grid()
        for c in coords:
            self.check(c)
            g[c] = True
        return g

    def __eq__(self, other: object) -> bool:
        return (
            type(self) is type(other)
            and self.shape == other.shape  # type: ignore[attr-defined]
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.shape))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self._width}, {self._height})"


class Mesh2D(Topology):
    """A 2-D mesh: no wrap-around; boundary nodes have degree 2 or 3.

    The conceptual ghost ring (Section 3 of the paper) is represented by
    the ``fill`` argument of :meth:`shifted`; ghost nodes are permanently
    safe/enabled and never change status.
    """

    __slots__ = ()

    @property
    def diameter(self) -> int:
        """``(width-1) + (height-1)`` — the paper's ``2(n-1)`` for square meshes."""
        return (self._width - 1) + (self._height - 1)

    @property
    def wraps(self) -> bool:
        return False

    def neighbor(self, c: Coord, d: Direction) -> Coord | None:
        x, y = c[0] + d.offset[0], c[1] + d.offset[1]
        if 0 <= x < self._width and 0 <= y < self._height:
            return (x, y)
        return None

    def distance(self, u: Coord, v: Coord) -> int:
        return abs(u[0] - v[0]) + abs(u[1] - v[1])

    def shifted(self, grid: BoolGrid, d: Direction, fill: bool) -> BoolGrid:
        if grid.shape != self.shape:
            raise TopologyError(f"grid shape {grid.shape} != topology shape {self.shape}")
        out = np.full(self.shape, bool(fill), dtype=bool)
        if d is Direction.EAST:  # s[x, y] = grid[x+1, y]
            out[:-1, :] = grid[1:, :]
        elif d is Direction.WEST:
            out[1:, :] = grid[:-1, :]
        elif d is Direction.NORTH:  # s[x, y] = grid[x, y+1]
            out[:, :-1] = grid[:, 1:]
        else:  # SOUTH
            out[:, 1:] = grid[:, :-1]
        return out


class Torus2D(Topology):
    """A 2-D torus: wrap-around links, every node has degree 4.

    The boundary problem of the mesh "does not exist in a 2-D torus with
    wraparound connections" (paper, Section 3 footnote), so ``fill`` is
    ignored by :meth:`shifted`.
    """

    __slots__ = ()

    @property
    def diameter(self) -> int:
        return self._width // 2 + self._height // 2

    @property
    def wraps(self) -> bool:
        return True

    def neighbor(self, c: Coord, d: Direction) -> Coord:
        return (
            (c[0] + d.offset[0]) % self._width,
            (c[1] + d.offset[1]) % self._height,
        )

    def distance(self, u: Coord, v: Coord) -> int:
        dx = abs(u[0] - v[0])
        dy = abs(u[1] - v[1])
        return min(dx, self._width - dx) + min(dy, self._height - dy)

    def shifted(self, grid: BoolGrid, d: Direction, fill: bool = False) -> BoolGrid:
        if grid.shape != self.shape:
            raise TopologyError(f"grid shape {grid.shape} != topology shape {self.shape}")
        # s[c] = grid[c + d]  <=>  roll by -d along the axis.
        axis = 0 if d.dimension is Dimension.X else 1
        amount = -d.offset[axis]
        return np.roll(grid, amount, axis=axis)
