"""Grid topology substrate: 2-D meshes and tori, coordinates, ghost frames.

This package models the interconnection network of a mesh-connected
multicomputer at the level the paper needs: node addresses, per-dimension
neighbourhoods, boundary (ghost-node) handling, and vectorized
neighbour views of label grids.
"""

from repro.mesh.coords import (
    DIRECTIONS,
    Dimension,
    Direction,
    Quadrant,
    add,
    chebyshev,
    neighbors4,
    neighbors8,
    sub,
)
from repro.mesh.ghost import GhostFrame
from repro.mesh.tiling import Tile, Tiling, gather_framed, parse_shard_spec
from repro.mesh.topology import Mesh2D, Topology, Torus2D

__all__ = [
    "DIRECTIONS",
    "Dimension",
    "Direction",
    "GhostFrame",
    "Mesh2D",
    "Quadrant",
    "Tile",
    "Tiling",
    "Topology",
    "Torus2D",
    "add",
    "chebyshev",
    "gather_framed",
    "neighbors4",
    "neighbors8",
    "parse_shard_spec",
    "sub",
]
