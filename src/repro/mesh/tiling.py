"""Tile decomposition of a 2-D grid with one-cell halos.

The sharded fixpoints (:mod:`repro.core.sharded`) cut the mesh into a
``tiles_x x tiles_y`` grid of rectangular tiles and solve each tile on a
*framed* local copy — the tile interior plus a one-cell halo ring, the
same ``(+1, +1)`` coordinate convention as
:class:`~repro.mesh.ghost.GhostFrame`.  This module owns the coordinate
arithmetic: where each tile sits, how its framed view is gathered from a
global label plane (ghost fill on a mesh edge, modular wrap on a torus),
and which tile owns the cells on the far side of each halo.

Tiles never share interior cells, so tile writes are disjoint; halos are
read-only copies of neighbouring interiors.  Uneven divisions are fine —
the last tile of a dimension simply comes up short — and a dimension may
degenerate to a single tile, in which case a torus halo wraps around to
the tile's own opposite rim (self-exchange).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import TopologyError
from repro.mesh.ghost import GhostFrame
from repro.types import BoolGrid

__all__ = ["Tile", "Tiling", "gather_framed", "parse_shard_spec"]

#: Rim sides in the label-grid direction convention of
#: :meth:`repro.mesh.topology.Mesh2D.shifted`: EAST is ``+x``, NORTH is
#: ``+y``.  A change on a tile's EAST rim is a halo update for the tile
#: at ``(ix + 1, iy)``, and so on.
SIDES: Tuple[str, ...] = ("east", "west", "north", "south")

#: Tile-grid offset per side, matching :data:`SIDES`.
_SIDE_OFFSETS: Tuple[Tuple[int, int], ...] = ((1, 0), (-1, 0), (0, 1), (0, -1))

#: Default tile side of ``"auto"`` sharding: a 512x512 bool tile plus its
#: frame is ~260 KB — comfortably inside a per-core L2 — while keeping
#: the per-tile dispatch cost negligible against the tile solve.
_AUTO_TILE_SIDE = 512

#: ``"auto"`` halves the tile side (down to this floor) until the tiling
#: has enough tiles to keep every worker busy.
_AUTO_MIN_SIDE = 64


@dataclass(frozen=True)
class Tile:
    """One tile: grid position plus its half-open interior rectangle.

    ``x0 <= x < x1``, ``y0 <= y < y1`` in global grid coordinates.  The
    framed local view has shape ``(width + 2, height + 2)`` with the
    interior at ``[1:-1, 1:-1]`` — exactly the
    :class:`~repro.mesh.ghost.GhostFrame` convention.
    """

    ix: int
    iy: int
    x0: int
    y0: int
    x1: int
    y1: int

    @property
    def width(self) -> int:
        return self.x1 - self.x0

    @property
    def height(self) -> int:
        return self.y1 - self.y0

    @property
    def rect(self) -> Tuple[int, int, int, int]:
        """The interior rectangle ``(x0, y0, x1, y1)`` — the picklable
        hand-off to shard workers."""
        return (self.x0, self.y0, self.x1, self.y1)

    @property
    def frame(self) -> GhostFrame:
        """The ghost frame describing this tile's framed local view."""
        return GhostFrame(self.width, self.height)


class Tiling:
    """A ``tiles_x x tiles_y`` decomposition of a ``(width, height)`` grid.

    Parameters
    ----------
    shape:
        The global grid shape ``(width, height)``.
    tile_width, tile_height:
        Requested tile dimensions.  They need not divide the grid — the
        last tile per dimension takes the remainder — and are clamped to
        the grid, so oversized requests yield a single tile.
    """

    __slots__ = ("shape", "tile_width", "tile_height", "tiles_x", "tiles_y")

    def __init__(self, shape: Tuple[int, int], tile_width: int, tile_height: int):
        width, height = int(shape[0]), int(shape[1])
        if width < 1 or height < 1:
            raise TopologyError(f"grid dimensions must be positive, got {shape}")
        if tile_width < 1 or tile_height < 1:
            raise TopologyError(
                f"tile dimensions must be positive, got {tile_width}x{tile_height}"
            )
        self.shape = (width, height)
        self.tile_width = min(int(tile_width), width)
        self.tile_height = min(int(tile_height), height)
        self.tiles_x = -(-width // self.tile_width)
        self.tiles_y = -(-height // self.tile_height)

    @property
    def num_tiles(self) -> int:
        return self.tiles_x * self.tiles_y

    def tile(self, ix: int, iy: int) -> Tile:
        """The tile at grid position ``(ix, iy)``."""
        if not (0 <= ix < self.tiles_x and 0 <= iy < self.tiles_y):
            raise TopologyError(
                f"tile ({ix}, {iy}) outside {self.tiles_x}x{self.tiles_y} tiling"
            )
        width, height = self.shape
        x0 = ix * self.tile_width
        y0 = iy * self.tile_height
        return Tile(
            ix=ix,
            iy=iy,
            x0=x0,
            y0=y0,
            x1=min(x0 + self.tile_width, width),
            y1=min(y0 + self.tile_height, height),
        )

    def tiles(self) -> List[Tile]:
        """All tiles in row-major ``(ix, iy)`` order (the flat-index order)."""
        return [
            self.tile(ix, iy)
            for ix in range(self.tiles_x)
            for iy in range(self.tiles_y)
        ]

    def index(self, ix: int, iy: int) -> int:
        """Flat row-major index of tile ``(ix, iy)``."""
        return ix * self.tiles_y + iy

    def neighbor_index(self, tidx: int, side: int, wraps: bool) -> Optional[int]:
        """Flat index of the tile across ``side`` (a :data:`SIDES` position).

        On a mesh, ``None`` when the halo on that side is the ghost ring.
        On a torus the tile grid wraps; a dimension with a single tile
        wraps onto itself (the tile is its own east/west or north/south
        neighbour), which is how wrap-around propagation happens through
        repeated self-exchanges.
        """
        ix, iy = divmod(tidx, self.tiles_y)
        dx, dy = _SIDE_OFFSETS[side]
        nx, ny = ix + dx, iy + dy
        if wraps:
            return self.index(nx % self.tiles_x, ny % self.tiles_y)
        if 0 <= nx < self.tiles_x and 0 <= ny < self.tiles_y:
            return self.index(nx, ny)
        return None

    def __repr__(self) -> str:
        return (
            f"Tiling(shape={self.shape}, tile={self.tile_width}x"
            f"{self.tile_height}, grid={self.tiles_x}x{self.tiles_y})"
        )


def gather_framed(
    plane: BoolGrid,
    rect: Tuple[int, int, int, int],
    wraps: bool,
    fill: bool,
) -> BoolGrid:
    """Copy one tile's framed view out of a global label plane.

    ``rect`` is the tile interior ``(x0, y0, x1, y1)``; the result has
    shape ``(x1 - x0 + 2, y1 - y0 + 2)`` with the interior at
    ``[1:-1, 1:-1]`` and the one-cell halo around it.  On a torus the
    halo wraps (``fill`` is ignored); on a mesh, halo cells beyond the
    grid take the ghost label ``fill`` — ``False`` for unsafe planes,
    ``True`` for enabled planes, per Section 3's permanently
    safe-and-enabled ghost ring.
    """
    x0, y0, x1, y1 = rect
    width, height = plane.shape
    if wraps:
        xs = np.arange(x0 - 1, x1 + 1) % width
        ys = np.arange(y0 - 1, y1 + 1) % height
        return plane[np.ix_(xs, ys)]
    framed = np.full((x1 - x0 + 2, y1 - y0 + 2), bool(fill), dtype=bool)
    sx0, sx1 = max(x0 - 1, 0), min(x1 + 1, width)
    sy0, sy1 = max(y0 - 1, 0), min(y1 + 1, height)
    framed[
        sx0 - (x0 - 1) : sx1 - (x0 - 1), sy0 - (y0 - 1) : sy1 - (y0 - 1)
    ] = plane[sx0:sx1, sy0:sy1]
    return framed


def parse_shard_spec(
    spec: str, shape: Tuple[int, int], jobs: int = 1
) -> Tiling:
    """Build a :class:`Tiling` from a CLI-style shard spec.

    ``"KxK"`` (e.g. ``"256x256"``, width x height) requests explicit
    tile dimensions; ``"auto"`` picks a cache-sized square tile
    (:data:`_AUTO_TILE_SIDE`), halved until there are at least
    ``4 * jobs`` tiles so a worker pool has slack to load-balance —
    never below :data:`_AUTO_MIN_SIDE`.  Small grids may still end up
    as a single tile, which is valid (one local solve).
    """
    text = spec.strip().lower()
    if text == "auto":
        side = _AUTO_TILE_SIDE
        while side > _AUTO_MIN_SIDE:
            t = Tiling(shape, side, side)
            if t.num_tiles >= 4 * max(1, jobs):
                return t
            side //= 2
        return Tiling(shape, side, side)
    parts = text.split("x")
    if len(parts) != 2:
        raise ValueError(
            f"shard spec must be 'WIDTHxHEIGHT' or 'auto', got {spec!r}"
        )
    try:
        tile_w, tile_h = int(parts[0]), int(parts[1])
    except ValueError:
        raise ValueError(
            f"shard spec must be 'WIDTHxHEIGHT' or 'auto', got {spec!r}"
        ) from None
    if tile_w < 1 or tile_h < 1:
        raise ValueError(f"shard tile dimensions must be positive, got {spec!r}")
    return Tiling(shape, tile_w, tile_h)
