"""Per-node programs and their execution context.

The paper's algorithms are specified as identical programs running on
every nonfaulty node, exchanging status with neighbours in synchronous
rounds ("each round of exchange and update is done in a lock-step
mode").  A :class:`NodeProgram` is such a program; a
:class:`NodeContext` gives it its local view of the machine: its own
address, its live and faulty neighbours, and the mesh boundary
information needed to treat missing neighbours as ghost nodes.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, List, Mapping, Tuple

from repro.mesh.coords import Dimension
from repro.mesh.topology import Topology
from repro.types import Coord

__all__ = ["NodeContext", "NodeProgram"]


class NodeContext:
    """A node's local view of the machine.

    The context deliberately exposes only information a physical node
    would have: its address, which of its links exist (mesh boundary),
    and which neighbours are faulty — the paper assumes "each nonfaulty
    node knows the status of its neighbors only".
    """

    __slots__ = ("coord", "_live", "_faulty", "_live_by_dim", "_missing_by_dim")

    def __init__(self, topology: Topology, coord: Coord, faulty: frozenset[Coord]):
        self.coord = coord
        live: List[Coord] = []
        fau: List[Coord] = []
        live_by_dim: Dict[Dimension, List[Coord]] = {Dimension.X: [], Dimension.Y: []}
        missing_by_dim: Dict[Dimension, int] = {Dimension.X: 0, Dimension.Y: 0}
        for dim in (Dimension.X, Dimension.Y):
            present = topology.neighbors_in_dim(coord, dim)
            missing_by_dim[dim] = 2 - len(present)
            for n in present:
                if n in faulty:
                    fau.append(n)
                else:
                    live.append(n)
                    live_by_dim[dim].append(n)
        self._live = tuple(live)
        self._faulty = tuple(fau)
        self._live_by_dim = {d: tuple(v) for d, v in live_by_dim.items()}
        self._missing_by_dim = missing_by_dim

    @property
    def live_neighbors(self) -> Tuple[Coord, ...]:
        """Nonfaulty neighbours this node can exchange messages with."""
        return self._live

    @property
    def faulty_neighbors(self) -> Tuple[Coord, ...]:
        """Neighbours known (by local link-level detection) to be faulty."""
        return self._faulty

    def live_neighbors_in_dim(self, dim: Dimension) -> Tuple[Coord, ...]:
        """Nonfaulty neighbours along one dimension."""
        return self._live_by_dim[dim]

    def missing_in_dim(self, dim: Dimension) -> int:
        """How many of the node's two ``dim``-links leave the mesh.

        The absent neighbours are the paper's *ghost* nodes: permanently
        safe and enabled.  Always 0 on a torus.
        """
        return self._missing_by_dim[dim]

    def faulty_in_dim(self, dim: Dimension) -> int:
        """Number of faulty neighbours along one dimension."""
        return sum(1 for n in self._faulty if _same_dim(self.coord, n, dim))

    def mark_faulty(self, n: Coord) -> bool:
        """Record that live neighbour ``n`` has crashed mid-run.

        Called by the engines when a :class:`~repro.faults.schedule.FaultSchedule`
        event strikes: the node's local fault-detection hardware notices
        the dead link and the context's view shifts accordingly —
        ``n`` leaves :attr:`live_neighbors` and joins
        :attr:`faulty_neighbors`.  On degenerate tori a neighbour can be
        reached over two links (both wrap-around directions); every copy
        moves, keeping per-dimension counts consistent with the
        vectorized backend's shifted views.

        Returns True when the view changed, False when ``n`` was not a
        live neighbour (already faulty, or not adjacent) — callers may
        apply crash batches without tracking adjacency themselves.
        """
        copies = self._live.count(n)
        if copies == 0:
            return False
        self._live = tuple(v for v in self._live if v != n)
        self._faulty = self._faulty + (n,) * copies
        self._live_by_dim = {
            d: tuple(v for v in vs if v != n) for d, vs in self._live_by_dim.items()
        }
        return True


def _same_dim(u: Coord, v: Coord, dim: Dimension) -> bool:
    # Neighbours differ in exactly one coordinate; they are dim-neighbours
    # when the *other* coordinate matches.
    other = 1 - int(dim)
    return u[other] == v[other]


class NodeProgram(abc.ABC):
    """A distributed program replicated on every nonfaulty node.

    Lifecycle, per the engine's lock-step schedule:

    1. :meth:`start` — once, before round 1; returns the messages the
       node sends in round 1 (typically its initial status to every live
       neighbour).
    2. :meth:`on_round` — once per round; receives the payloads that
       arrived this round keyed by sender, updates local state, and
       returns ``(outgoing, changed)`` where *outgoing* maps neighbour
       addresses to payloads and *changed* reports whether externally
       visible state changed (the engine stops when no node changes).
    3. :meth:`snapshot` — the node's externally visible state, collected
       by the driver after convergence.
    """

    def __init__(self, ctx: NodeContext):
        self.ctx = ctx

    @abc.abstractmethod
    def start(self) -> Mapping[Coord, Any]:
        """Messages to send in the first round."""

    @abc.abstractmethod
    def on_round(
        self, inbox: Mapping[Coord, Any]
    ) -> Tuple[Mapping[Coord, Any], bool]:
        """Process one round of received payloads; see class docstring."""

    @abc.abstractmethod
    def snapshot(self) -> Any:
        """Externally visible state for result collection."""

    def resend(self) -> Mapping[Coord, Any]:
        """Heartbeat: re-announce the node's current state to neighbours.

        The engines call this when the network drains while dropped
        messages are outstanding — the retransmission that makes the
        protocols self-stabilizing over lossy-but-fair channels.  The
        default delegates to :meth:`start`, which for status-exchange
        protocols already means "current status to every live
        neighbour"; override only if ``start`` carries one-shot setup
        that must not repeat.
        """
        return self.start()
