"""Link behaviour models for the fabric engines.

The engines' default links are perfect: every message sent to a live
neighbour arrives exactly once, after one round (synchronous) or one
random bounded delay (asynchronous).  A :class:`ChannelModel` injects
the failure modes real interconnects exhibit — message loss,
duplication, and extra delivery jitter — at the engines' posting
boundary, from a seeded generator so every degraded run is
reproducible.

:meth:`ChannelModel.reliable` (and passing no channel at all) is
bit-for-bit the historical behaviour: it consumes no randomness and
delivers every message exactly once with no extra delay.

Fairness
--------
The self-stabilization guarantee (converged labels equal the
from-scratch fixpoint on the final fault set) needs the channel to be
*lossy but fair*: drops must eventually stop, or lost status updates
must be repaired by the engines' status-change heartbeat
(:meth:`~repro.fabric.program.NodeProgram.resend`, triggered whenever
the network drains while dropped messages are outstanding).  A finite
``max_drops`` budget makes fairness unconditional — after the budget is
spent the channel behaves reliably — which is how the property suite
exercises adversarial loss while keeping termination guaranteed.  An
unbounded lossy channel (``max_drops=None``) still converges with
probability 1 for ``drop_prob < 1``; the engines' round/event budgets
turn the measure-zero residue into a :class:`~repro.errors.ProtocolError`.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["ChannelModel"]

#: The single on-time copy a reliable link delivers.
_ON_TIME: Tuple[int, ...] = (0,)


class ChannelModel:
    """Seeded per-message delivery model shared by both engines.

    Parameters
    ----------
    drop_prob:
        Probability in ``[0, 1]`` that a message's on-time copy is lost.
    dup_prob:
        Probability that a late duplicate copy is injected (the
        duplicate is delivered at least one time unit after the
        original would have been).
    jitter:
        Maximum extra delivery delay, in rounds (synchronous) or time
        units (asynchronous), drawn uniformly from ``[0, jitter]`` per
        delivered copy.
    rng:
        Seeded generator; required unless the channel is reliable.
    max_drops:
        Optional total drop budget.  Once spent, the channel stops
        dropping — the "drops eventually stop" fairness assumption in
        deterministic form.  ``None`` means unbounded loss.
    """

    __slots__ = (
        "_drop",
        "_dup",
        "_jitter",
        "_rng",
        "_max_drops",
        "_telemetry",
        "drops",
        "duplicates",
    )

    def __init__(
        self,
        drop_prob: float = 0.0,
        dup_prob: float = 0.0,
        jitter: int = 0,
        rng: Optional[np.random.Generator] = None,
        max_drops: Optional[int] = None,
    ):
        if not 0.0 <= drop_prob <= 1.0:
            raise ValueError(f"drop_prob must be in [0, 1], got {drop_prob}")
        if not 0.0 <= dup_prob <= 1.0:
            raise ValueError(f"dup_prob must be in [0, 1], got {dup_prob}")
        if jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {jitter}")
        if max_drops is not None and max_drops < 0:
            raise ValueError(f"max_drops must be >= 0, got {max_drops}")
        self._drop = float(drop_prob)
        self._dup = float(dup_prob)
        self._jitter = int(jitter)
        self._rng = rng
        self._max_drops = max_drops
        #: Messages dropped so far (cumulative over the channel's life;
        #: engines track deltas, so one channel may serve several runs).
        self.drops = 0
        #: Duplicate copies injected so far.
        self.duplicates = 0
        #: Optional telemetry for per-message loss events; see
        #: :meth:`bind_telemetry`.
        self._telemetry = None
        if not self.is_reliable and rng is None:
            raise ValueError("a lossy channel needs a seeded rng")

    @classmethod
    def reliable(cls) -> "ChannelModel":
        """The perfect link: every message delivered once, on time.

        Consumes no randomness, so runs with ``reliable()`` are
        bit-for-bit identical to runs with no channel at all.
        """
        return cls()

    @property
    def is_reliable(self) -> bool:
        """True when the channel can never deviate from perfect links."""
        return self._drop == 0.0 and self._dup == 0.0 and self._jitter == 0

    @property
    def is_fair(self) -> bool:
        """True when loss provably stops (no drops, or a finite budget)."""
        return self._drop == 0.0 or self._max_drops is not None

    @property
    def drop_budget(self) -> Optional[int]:
        """The ``max_drops`` bound (``None`` when loss is unbounded).

        Engines size their round/event budgets from this: every drop
        can cost one heartbeat repair cycle, so a fair channel's repair
        work is proportional to its drop budget.
        """
        return self._max_drops

    @property
    def max_jitter(self) -> int:
        """The upper bound on per-copy extra delivery delay."""
        return self._jitter

    def bind_telemetry(self, telemetry) -> None:
        """Attach a :class:`~repro.obs.telemetry.Telemetry` (or ``None``).

        A bound channel emits a ``message_dropped`` /
        ``message_duplicated`` event (debug level) per affected message
        when the engine passes sender/destination context to
        :meth:`copies`.  Binding never touches the rng stream, so
        telemetry cannot perturb a seeded degraded run.
        """
        self._telemetry = telemetry

    def copies(self, sender=None, dest=None) -> Tuple[int, ...]:
        """Delay offsets of the copies of one message that arrive.

        ``()`` means the message was dropped outright; ``(0,)`` one
        on-time copy; an extra entry ``>= 1`` is a late duplicate.  The
        reliable channel returns ``(0,)`` without touching the rng.
        ``sender``/``dest`` are optional context for telemetry events
        and do not affect delivery.
        """
        if self.is_reliable:
            return _ON_TIME
        offsets = []
        dropped = False
        if self._drop > 0.0 and self._rng.random() < self._drop:
            if self._max_drops is None or self.drops < self._max_drops:
                dropped = True
                self.drops += 1
                if self._telemetry is not None:
                    self._telemetry.emit(
                        "message_dropped", sender=sender, dest=dest
                    )
        if not dropped:
            offsets.append(self._jitter_draw())
        if self._dup > 0.0 and self._rng.random() < self._dup:
            self.duplicates += 1
            if self._telemetry is not None:
                self._telemetry.emit(
                    "message_duplicated", sender=sender, dest=dest
                )
            offsets.append(1 + self._jitter_draw())
        return tuple(offsets)

    def _jitter_draw(self) -> int:
        if self._jitter == 0:
            return 0
        return int(self._rng.integers(0, self._jitter + 1))

    def __repr__(self) -> str:
        if self.is_reliable:
            return "ChannelModel.reliable()"
        return (
            f"ChannelModel(drop_prob={self._drop}, dup_prob={self._dup}, "
            f"jitter={self._jitter}, max_drops={self._max_drops})"
        )
