"""Distributed execution substrate: a synchronous message-passing fabric.

The paper's algorithms are distributed protocols driven by iterative
message exchanges among mesh neighbours, executed in lock-step rounds.
This package simulates exactly that execution model: per-node programs
(:class:`~repro.fabric.program.NodeProgram`) run on a
:class:`~repro.fabric.engine.SynchronousEngine` that delivers messages
round by round, detects quiescence, and records round/message
statistics — the quantities Figure 5 (a)/(b) of the paper reports.
"""

from repro.fabric.async_engine import AsynchronousEngine
from repro.fabric.channel import ChannelModel
from repro.fabric.engine import EngineResult, SynchronousEngine, build_neighbor_sets
from repro.fabric.message import Message
from repro.fabric.program import NodeContext, NodeProgram
from repro.fabric.stats import EpochStats, RunStats
from repro.fabric.trace import RoundTrace

__all__ = [
    "AsynchronousEngine",
    "ChannelModel",
    "EngineResult",
    "EpochStats",
    "Message",
    "NodeContext",
    "NodeProgram",
    "RoundTrace",
    "RunStats",
    "SynchronousEngine",
    "build_neighbor_sets",
]
