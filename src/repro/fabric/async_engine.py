"""Asynchronous execution of the labeling protocols.

The paper assumes synchronous lock-step rounds "to simplify our
discussion" — real machines are not synchronous.  This engine executes
the same per-node programs under an adversarial asynchronous schedule:
messages sit in flight for arbitrary (bounded, randomly drawn) delays
and nodes take steps whenever something arrives, one node at a time.

The labeling protocols tolerate this because their update rules are
**monotone** (safe→unsafe, disabled→enabled only) and depend only on
the *latest heard* neighbour status: any delivery order drives the
system to the same least fixpoint the synchronous engine reaches.
``tests/properties/test_async_props.py`` pins the two engines to
identical final labels across random schedules — the self-stabilization
property that makes the algorithm deployable on real hardware.

Scheduling model
----------------
Every message is assigned an integer delivery time ``send_time + d``
with delay ``d`` drawn uniformly from ``[1, max_delay]``.  At each
virtual time step, all messages due for a node are handed to it in one
:meth:`~repro.fabric.program.NodeProgram.on_round` call (the program
API is delivery-batch based, so it serves both engines unchanged).
Execution ends when no messages are in flight — for quiescently
terminating protocols such as the labeling rules this coincides with
the fixpoint.

Dynamic faults and lossy channels
---------------------------------
As in :class:`~repro.fabric.engine.SynchronousEngine`, a
:class:`~repro.faults.schedule.FaultSchedule` crashes nodes at points
of the virtual clock: a crash at time *t* strikes before any delivery
at *t*; in-flight traffic to the dead node is discarded (its own
earlier sends, already in the network, are still delivered), surviving
neighbours observe the change via
:meth:`~repro.fabric.program.NodeContext.mark_faulty` and take an
immediate wake-up step so rules that now fire on the dead link do fire.
If the network drains while crash events remain, the clock jumps to the
next event.  A lossy :class:`~repro.fabric.channel.ChannelModel` drops,
duplicates or delays copies at the posting boundary; when the queue
drains with unrepaired drops outstanding, every program's
:meth:`~repro.fabric.program.NodeProgram.resend` heartbeat re-announces
current state.  With no schedule and a reliable channel the engine is
bit-for-bit its historical self.
"""

from __future__ import annotations

import heapq
from collections import deque
from itertools import count
from typing import Any, Dict, List, Mapping, Optional, Set, Tuple

import numpy as np

from repro.errors import ProtocolError
from repro.fabric.channel import ChannelModel
from repro.fabric.engine import (
    EngineResult,
    ProgramFactory,
    _EngineMeters,
    build_neighbor_sets,
)
from repro.fabric.program import NodeContext
from repro.fabric.stats import EpochStats, RunStats
from repro.fabric.trace import RoundTrace
from repro.faults.schedule import FaultSchedule
from repro.mesh.topology import Topology
from repro.obs.events import snapshot_event
from repro.obs.telemetry import Telemetry
from repro.types import Coord

__all__ = ["AsynchronousEngine"]


class AsynchronousEngine:
    """Event-driven executor with randomly delayed message delivery.

    Parameters
    ----------
    topology, faulty, factory:
        As for :class:`~repro.fabric.engine.SynchronousEngine`.
    rng:
        Source of message delays; pass a seeded generator for
        reproducible schedules.
    max_delay:
        Upper bound (inclusive) on per-message delivery delay.  1 makes
        the schedule synchronous-like (but still serialised per node).
    max_events:
        Safety budget on delivery events.
    schedule:
        Optional mid-run crash schedule on the virtual clock.
    channel:
        Optional lossy/duplicating/jittering link model; ``None`` or a
        reliable channel keeps perfect links (and the historical rng
        stream).
    record_trace:
        When True, snapshot every node after initialisation and after
        each processed event, as a
        :class:`~repro.fabric.trace.RoundTrace` whose frames are keyed
        by the delivery-event count — the async analogue of the
        synchronous engine's per-round frames.
    telemetry:
        Optional :class:`~repro.obs.telemetry.Telemetry`; see
        :class:`~repro.fabric.engine.SynchronousEngine`.  ``round_start``
        events and ``engine_round`` spans correspond to *delivery
        events* here (``stats.rounds`` already counts state-changing
        deliveries).  ``None`` disables all instrumentation.
    """

    def __init__(
        self,
        topology: Topology,
        faulty: frozenset | set,
        factory: ProgramFactory,
        rng: np.random.Generator,
        max_delay: int = 5,
        max_events: int | None = None,
        schedule: Optional[FaultSchedule] = None,
        channel: Optional[ChannelModel] = None,
        record_trace: bool = False,
        telemetry: Optional[Telemetry] = None,
    ):
        if max_delay < 1:
            raise ProtocolError(f"max_delay must be >= 1, got {max_delay}")
        self._topology = topology
        self._faulty: Set[Coord] = set(faulty)
        for f in self._faulty:
            topology.check(f)
        self._events_in: deque = deque()
        if schedule is not None:
            for t, batch in schedule.batches():
                for c in batch:
                    topology.check(c)
                self._events_in.append((t, batch))
        self._channel = channel if channel is not None and not channel.is_reliable else None
        self._dynamic = bool(self._events_in) or self._channel is not None
        self._rng = rng
        self._max_delay = int(max_delay)
        # Generous: every node can flip once, each flip fans out <= 4
        # messages, each message may trigger a (non-flipping) step.
        if max_events is None:
            max_events = (40 * topology.num_nodes * self._max_delay + 1000) * (
                len(self._events_in) + 1
            )
            if self._channel is not None and self._channel.drop_budget is not None:
                # Every drop can cost one heartbeat repair cycle, whose
                # resends fan out ~4 messages (plus duplicates) per node.
                max_events += (self._channel.drop_budget + 1) * (
                    8 * topology.num_nodes
                )
        self._max_events = max_events
        self._record_trace = bool(record_trace)
        self._telemetry = (
            telemetry.child(engine="async") if telemetry is not None else None
        )
        self._programs = {}
        for c in topology.nodes():
            if c not in self._faulty:
                ctx = NodeContext(topology, c, frozenset(self._faulty))
                self._programs[c] = factory(ctx)
        # Cached once; post() used to rebuild a set per message batch.
        self._neighbor_sets = build_neighbor_sets(topology, self._programs)

    def run(self) -> EngineResult:
        """Drive the system until no messages remain in flight.

        Returns an :class:`~repro.fabric.engine.EngineResult` whose
        ``stats.rounds`` holds the number of *delivery events that
        changed some node's state* (the async analogue of changing
        rounds; not comparable to synchronous round counts).
        """
        stats = RunStats()
        channel = self._channel
        crash_events = self._events_in
        trace = RoundTrace() if self._record_trace else None
        tel = self._telemetry
        events_on = tel is not None and tel.wants("info")
        debug_on = tel is not None and tel.wants("debug")
        spans_on = tel is not None and tel.spans is not None
        meters = (
            _EngineMeters(tel) if tel is not None and tel.metrics is not None else None
        )
        deliveries = (
            tel.counter("engine_delivery_events_total") if meters is not None else None
        )
        epoch_idx = 0
        if tel is not None and channel is not None:
            channel.bind_telemetry(tel)
        if events_on:
            tel.emit(
                "run_start",
                nodes=len(self._programs),
                faulty=len(self._faulty),
                dynamic=self._dynamic,
            )
        # Priority queue of (deliver_at, tiebreak, recipient); the
        # payload map per (time, recipient) keeps only the latest
        # message per sender, like a real link that overwrites status.
        queue: list[Tuple[int, int, Coord]] = []
        pending: Dict[Tuple[int, Coord], Dict[Coord, Any]] = {}
        tiebreak = count()

        def post(sender: Coord, outgoing: Mapping[Coord, Any], now: int) -> None:
            neighbors = self._neighbor_sets[sender]
            for dest, payload in outgoing.items():
                if dest not in neighbors:
                    raise ProtocolError(f"node {sender} sent to non-neighbour {dest}")
                if dest in self._faulty:
                    continue
                if channel is None:
                    offsets = (0,)
                else:
                    offsets = channel.copies(sender, dest)
                for offset in offsets:
                    at = (
                        now
                        + int(self._rng.integers(1, self._max_delay + 1))
                        + offset
                    )
                    key = (at, dest)
                    if key not in pending:
                        pending[key] = {}
                        heapq.heappush(queue, (at, next(tiebreak), dest))
                    pending[key][sender] = payload

        # Baselines first: drops during the initial announcements below
        # must count (and be heartbeat-repaired) like any later loss.
        drops_base = channel.drops if channel is not None else 0
        dups_base = channel.duplicates if channel is not None else 0
        drops_acked = drops_base
        epoch_drop_base, epoch_dup_base = drops_base, dups_base
        if self._dynamic:
            stats.epochs.append(EpochStats())

        for coord, prog in self._programs.items():
            post(coord, prog.start(), now=0)

        events = 0
        changing_events = 0
        messages = 0
        now = 0

        def bump_budget() -> None:
            nonlocal events
            events += 1
            if events > self._max_events:
                raise ProtocolError(
                    f"async engine exceeded {self._max_events} delivery events"
                )

        def step(coord: Coord, inbox: Mapping[Coord, Any], at: int) -> None:
            nonlocal changing_events
            outgoing, changed = self._programs[coord].on_round(inbox)
            if changed:
                changing_events += 1
                if self._dynamic:
                    stats.epochs[-1].rounds += 1
                if meters is not None:
                    meters.rounds.inc()
                if debug_on:
                    tel.emit("node_flip", node=coord, clock=at)
            post(coord, outgoing, now=at)

        def apply_crashes(batch, at: int) -> None:
            nonlocal epoch_drop_base, epoch_dup_base, epoch_idx
            applied: List[Coord] = []
            for c in sorted(batch):
                if c not in self._programs:
                    continue  # faulty from the start, or crashed earlier
                del self._programs[c]
                self._faulty.add(c)
                applied.append(c)
            if self._dynamic:
                ep = stats.epochs[-1]
                ep.dropped = (channel.drops if channel else 0) - epoch_drop_base
                ep.duplicated = (channel.duplicates if channel else 0) - epoch_dup_base
                epoch_drop_base = channel.drops if channel else 0
                epoch_dup_base = channel.duplicates if channel else 0
                if events_on:
                    tel.emit("epoch_end", epoch=epoch_idx, **ep.to_dict())
                if meters is not None and epoch_idx >= 1:
                    meters.recovery_rounds.inc(ep.rounds)
                epoch_idx += 1
                stats.epochs.append(EpochStats(crashed=tuple(applied), at_time=at))
            if events_on:
                tel.emit("crash_batch", time=at, nodes=applied)
            # Surviving neighbours notice the dead links and take one
            # immediate wake-up step: rules counting faulty links may
            # now fire without any message arriving.
            woken: Set[Coord] = set()
            for c in applied:
                for n in self._neighbor_sets[c]:
                    prog = self._programs.get(n)
                    if prog is not None and prog.ctx.mark_faulty(c):
                        woken.add(n)
            for n in sorted(woken):
                bump_budget()
                if self._dynamic:
                    stats.epochs[-1].executed_rounds += 1
                step(n, {}, at)

        # Initial local wake-up: unlike the synchronous engine, where
        # every node steps every round, an event-driven node only steps
        # on delivery — but a rule can fire from static knowledge alone
        # (ghost links and faulty neighbours count toward the enable
        # threshold without any message ever arriving).  One empty-inbox
        # step per node evaluates those static conditions; everything
        # dynamic afterwards arrives as messages.
        for coord in list(self._programs):
            step(coord, {}, 0)
        if trace is not None:
            trace.emit(
                snapshot_event(
                    0, {c: p.snapshot() for c, p in self._programs.items()}
                )
            )
        while True:
            # Crash batches strike before any delivery at their time;
            # a drained network fast-forwards to the next batch.
            if crash_events and (
                not queue or crash_events[0][0] <= queue[0][0]
            ):
                t, batch = crash_events.popleft()
                now = max(now, t)
                apply_crashes(batch, t)
                continue
            if not queue:
                if channel is not None and channel.drops > drops_acked:
                    # Heartbeat: repair lost status updates.
                    stats.heartbeats += 1
                    if stats.heartbeats > self._max_events:
                        raise ProtocolError(
                            f"channel kept dropping: {stats.heartbeats} "
                            "heartbeats without draining the network "
                            "(is the channel fair?)"
                        )
                    drops_acked = channel.drops
                    if events_on:
                        tel.emit("heartbeat", seq=stats.heartbeats, clock=now)
                    if meters is not None:
                        meters.heartbeats.inc()
                    for coord, prog in self._programs.items():
                        post(coord, prog.resend(), now)
                    continue
                break
            bump_budget()
            at, _, dest = heapq.heappop(queue)
            now = at
            inbox = pending.pop((at, dest))
            if dest not in self._programs:
                continue  # crashed while the messages were in flight
            messages += len(inbox)
            if self._dynamic:
                ep = stats.epochs[-1]
                ep.executed_rounds += 1
                ep.messages += len(inbox)
            if meters is not None:
                meters.messages.inc(len(inbox))
            if events_on:
                tel.emit(
                    "round_start", round=events, clock=at, delivered=len(inbox)
                )
            if spans_on:
                with tel.spans.span("engine_round", round=events):
                    step(dest, inbox, at)
            else:
                step(dest, inbox, at)
            if trace is not None:
                trace.emit(
                    snapshot_event(
                        events,
                        {c: p.snapshot() for c, p in self._programs.items()},
                    )
                )

        if self._dynamic:
            ep = stats.epochs[-1]
            ep.dropped = (channel.drops if channel else 0) - epoch_drop_base
            ep.duplicated = (channel.duplicates if channel else 0) - epoch_dup_base
            if events_on:
                tel.emit("epoch_end", epoch=epoch_idx, **ep.to_dict())
            if meters is not None and epoch_idx >= 1:
                meters.recovery_rounds.inc(ep.rounds)
        if channel is not None:
            stats.dropped_messages = channel.drops - drops_base
            stats.duplicated_messages = channel.duplicates - dups_base
        stats.rounds = changing_events
        stats.messages_per_round = [messages]
        stats.changes_per_round = [changing_events]
        if meters is not None:
            meters.executed.inc(stats.executed_rounds)
            meters.messages_hist.observe(messages)
            meters.flips.observe(changing_events)
            meters.dropped.inc(stats.dropped_messages)
            meters.duplicated.inc(stats.duplicated_messages)
            deliveries.inc(events)
        if events_on:
            tel.emit(
                "run_end",
                rounds=stats.rounds,
                executed_rounds=stats.executed_rounds,
                messages=stats.total_messages,
                heartbeats=stats.heartbeats,
                dropped=stats.dropped_messages,
                duplicated=stats.duplicated_messages,
            )
        snapshots = {c: p.snapshot() for c, p in self._programs.items()}
        return EngineResult(snapshots, stats, trace)
