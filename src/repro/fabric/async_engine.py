"""Asynchronous execution of the labeling protocols.

The paper assumes synchronous lock-step rounds "to simplify our
discussion" — real machines are not synchronous.  This engine executes
the same per-node programs under an adversarial asynchronous schedule:
messages sit in flight for arbitrary (bounded, randomly drawn) delays
and nodes take steps whenever something arrives, one node at a time.

The labeling protocols tolerate this because their update rules are
**monotone** (safe→unsafe, disabled→enabled only) and depend only on
the *latest heard* neighbour status: any delivery order drives the
system to the same least fixpoint the synchronous engine reaches.
``tests/properties/test_async_props.py`` pins the two engines to
identical final labels across random schedules — the self-stabilization
property that makes the algorithm deployable on real hardware.

Scheduling model
----------------
Every message is assigned an integer delivery time ``send_time + d``
with delay ``d`` drawn uniformly from ``[1, max_delay]``.  At each
virtual time step, all messages due for a node are handed to it in one
:meth:`~repro.fabric.program.NodeProgram.on_round` call (the program
API is delivery-batch based, so it serves both engines unchanged).
Execution ends when no messages are in flight — for quiescently
terminating protocols such as the labeling rules this coincides with
the fixpoint.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Dict, Mapping, Tuple

import numpy as np

from repro.errors import ProtocolError
from repro.fabric.engine import EngineResult, ProgramFactory
from repro.fabric.program import NodeContext
from repro.fabric.stats import RunStats
from repro.mesh.topology import Topology
from repro.types import Coord

__all__ = ["AsynchronousEngine"]


class AsynchronousEngine:
    """Event-driven executor with randomly delayed message delivery.

    Parameters
    ----------
    topology, faulty, factory:
        As for :class:`~repro.fabric.engine.SynchronousEngine`.
    rng:
        Source of message delays; pass a seeded generator for
        reproducible schedules.
    max_delay:
        Upper bound (inclusive) on per-message delivery delay.  1 makes
        the schedule synchronous-like (but still serialised per node).
    max_events:
        Safety budget on delivery events.
    """

    def __init__(
        self,
        topology: Topology,
        faulty: frozenset[Coord] | set[Coord],
        factory: ProgramFactory,
        rng: np.random.Generator,
        max_delay: int = 5,
        max_events: int | None = None,
    ):
        if max_delay < 1:
            raise ProtocolError(f"max_delay must be >= 1, got {max_delay}")
        self._topology = topology
        self._faulty = frozenset(faulty)
        for f in self._faulty:
            topology.check(f)
        self._rng = rng
        self._max_delay = int(max_delay)
        # Generous: every node can flip once, each flip fans out <= 4
        # messages, each message may trigger a (non-flipping) step.
        self._max_events = (
            max_events
            if max_events is not None
            else 40 * topology.num_nodes * self._max_delay + 1000
        )
        self._programs = {}
        for c in topology.nodes():
            if c not in self._faulty:
                ctx = NodeContext(topology, c, self._faulty)
                self._programs[c] = factory(ctx)

    def run(self) -> EngineResult:
        """Drive the system until no messages remain in flight.

        Returns an :class:`~repro.fabric.engine.EngineResult` whose
        ``stats.rounds`` holds the number of *delivery events that
        changed some node's state* (the async analogue of changing
        rounds; not comparable to synchronous round counts).
        """
        stats = RunStats()
        # Priority queue of (deliver_at, tiebreak, recipient); the
        # payload map per (time, recipient) keeps only the latest
        # message per sender, like a real link that overwrites status.
        queue: list[Tuple[int, int, Coord]] = []
        pending: Dict[Tuple[int, Coord], Dict[Coord, Any]] = {}
        tiebreak = count()

        def post(sender: Coord, outgoing: Mapping[Coord, Any], now: int) -> None:
            neighbors = set(self._topology.neighbors(sender))
            for dest, payload in outgoing.items():
                if dest not in neighbors:
                    raise ProtocolError(f"node {sender} sent to non-neighbour {dest}")
                if dest in self._faulty:
                    continue
                at = now + int(self._rng.integers(1, self._max_delay + 1))
                key = (at, dest)
                if key not in pending:
                    pending[key] = {}
                    heapq.heappush(queue, (at, next(tiebreak), dest))
                pending[key][sender] = payload

        for coord, prog in self._programs.items():
            post(coord, prog.start(), now=0)

        events = 0
        changing_events = 0
        messages = 0

        # Initial local wake-up: unlike the synchronous engine, where
        # every node steps every round, an event-driven node only steps
        # on delivery — but a rule can fire from static knowledge alone
        # (ghost links and faulty neighbours count toward the enable
        # threshold without any message ever arriving).  One empty-inbox
        # step per node evaluates those static conditions; everything
        # dynamic afterwards arrives as messages.
        for coord, prog in self._programs.items():
            outgoing, changed = prog.on_round({})
            if changed:
                changing_events += 1
            post(coord, outgoing, now=0)
        while queue:
            events += 1
            if events > self._max_events:
                raise ProtocolError(
                    f"async engine exceeded {self._max_events} delivery events"
                )
            at, _, dest = heapq.heappop(queue)
            inbox = pending.pop((at, dest))
            messages += len(inbox)
            outgoing, changed = self._programs[dest].on_round(inbox)
            if changed:
                changing_events += 1
            post(dest, outgoing, now=at)

        stats.rounds = changing_events
        stats.messages_per_round = [messages]
        stats.changes_per_round = [changing_events]
        snapshots = {c: p.snapshot() for c, p in self._programs.items()}
        return EngineResult(snapshots, stats, None)
