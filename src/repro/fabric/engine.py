"""The synchronous lock-step execution engine.

Runs one :class:`~repro.fabric.program.NodeProgram` per nonfaulty node
in strict rounds: all messages emitted in round *r* are delivered at the
start of round *r + 1*; every node then takes exactly one update step.
Faulty nodes "just cease to work" (paper Section 2): they host no
program, send nothing, and silently drop anything addressed to them.

Convergence: the engine stops after the first round in which no node
reports a state change.  The labeling protocols are monotone, so this
is a true fixpoint, and the number of *changing* rounds matches the
iteration count of the paper's ``repeat ... until no status change``
loops (and, by construction, the Jacobi iteration count of the
vectorized fixpoints in :mod:`repro.core` — a property test holds the
two backends to that).

Active-set stepping
-------------------
By default the engine only *steps* nodes that either received a message
this round or changed state last round; everyone else is skipped.  For
any protocol where a quiet node (no change last round) with an empty
inbox is a no-op — true of every monotone status protocol in this
repository, whose update rules are deterministic functions of the
node's own status and its last-heard neighbour statuses — skipping is
**exact**: the skipped node would have reported no change and sent
nothing, so round counts, per-round change counts, message statistics
and final snapshots are all identical to full stepping (property
tested).  The win is asymptotic: once a labeling wave has passed, the
quiescent interior costs nothing, so a round's cost tracks the wave
front instead of the node count.  ``active_set=False`` restores literal
full stepping; ``debug_full_check=True`` steps the skipped nodes too
and raises if any of them was *not* a no-op, which is how the property
suite certifies new protocols for active-set execution.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping

from repro.errors import ProtocolError
from repro.fabric.program import NodeContext, NodeProgram
from repro.fabric.stats import RunStats
from repro.fabric.trace import RoundTrace
from repro.mesh.topology import Topology
from repro.types import Coord

__all__ = ["SynchronousEngine", "EngineResult"]

#: Builds the per-node program from its context.
ProgramFactory = Callable[[NodeContext], NodeProgram]

_EMPTY_INBOX: Dict[Coord, Any] = {}


class EngineResult:
    """Outcome of a completed engine run: final snapshots plus statistics."""

    __slots__ = ("snapshots", "stats", "trace")

    def __init__(
        self,
        snapshots: Dict[Coord, Any],
        stats: RunStats,
        trace: RoundTrace | None,
    ):
        self.snapshots = snapshots
        self.stats = stats
        self.trace = trace


class SynchronousEngine:
    """Lock-step round executor over a topology with a fault set.

    Parameters
    ----------
    topology:
        The mesh or torus the programs run on.
    faulty:
        Addresses of faulty nodes; these host no program.
    factory:
        Called once per nonfaulty node with its :class:`NodeContext`.
    max_rounds:
        Safety budget.  ``None`` uses the node count + 4 — a true upper
        bound for monotone status protocols, where every changing round
        flips at least one node.
    record_trace:
        When True, snapshot every node after every round (expensive;
        meant for debugging and the examples' visualisations).
    active_set:
        When True (default), only step nodes with a pending message or a
        state change last round — exact for quiescent-stable protocols;
        see the module docstring.  Round 1 always steps every node (a
        rule may fire on faulty/ghost links alone, before any message
        arrives).
    debug_full_check:
        Cross-check mode: additionally step every skipped node with an
        empty inbox and raise :class:`~repro.errors.ProtocolError` if it
        changed state or emitted a deliverable message — i.e. if
        active-set execution would have diverged from full stepping.
    """

    def __init__(
        self,
        topology: Topology,
        faulty: frozenset[Coord] | set[Coord],
        factory: ProgramFactory,
        max_rounds: int | None = None,
        record_trace: bool = False,
        active_set: bool = True,
        debug_full_check: bool = False,
    ):
        self._topology = topology
        self._faulty = frozenset(faulty)
        for f in self._faulty:
            topology.check(f)
        if max_rounds is None:
            max_rounds = topology.num_nodes + 4
        self._max_rounds = int(max_rounds)
        self._record_trace = bool(record_trace)
        self._active_set = bool(active_set)
        self._debug_full_check = bool(debug_full_check)
        self._programs: Dict[Coord, NodeProgram] = {}
        for c in topology.nodes():
            if c not in self._faulty:
                ctx = NodeContext(topology, c, self._faulty)
                self._programs[c] = factory(ctx)
        # Neighbour sets are immutable for the run; computing them once
        # here keeps _post() from rebuilding a set per message batch.
        self._neighbor_sets: Dict[Coord, frozenset[Coord]] = {
            c: frozenset(topology.neighbors(c)) for c in self._programs
        }

    @property
    def topology(self) -> Topology:
        """The topology this engine runs on."""
        return self._topology

    def run(self) -> EngineResult:
        """Execute rounds until quiescence; return snapshots and stats.

        Raises
        ------
        ProtocolError
            If a program addresses a non-neighbour or a faulty/ghost
            node is given a program, or the round budget is exhausted
            (which, for the monotone labeling protocols, indicates a
            bug rather than slow convergence), or ``debug_full_check``
            catches a skipped node that was not a no-op.
        """
        stats = RunStats()
        trace = RoundTrace() if self._record_trace else None

        # Round 1's inboxes come from start().  Inbox dicts are created
        # on demand, so a quiescent network carries no per-node state.
        pending: Dict[Coord, Dict[Coord, Any]] = {}
        for coord, prog in self._programs.items():
            self._post(coord, prog.start(), pending)

        if trace is not None:
            trace.record(0, {c: p.snapshot() for c, p in self._programs.items()})

        # Round 1 steps everyone: a rule can fire on the initial state
        # alone (e.g. a node surrounded by faulty links), with no inbox.
        active = set(self._programs)
        for round_no in range(1, self._max_rounds + 1):
            delivered = sum(len(v) for v in pending.values())
            if self._active_set:
                step_coords = sorted(active | pending.keys())
            else:
                step_coords = list(self._programs)
            nxt: Dict[Coord, Dict[Coord, Any]] = {}
            changes = 0
            changed_now: set[Coord] = set()
            for coord in step_coords:
                inbox = pending.get(coord, _EMPTY_INBOX)
                outgoing, changed = self._programs[coord].on_round(inbox)
                if changed:
                    changes += 1
                    changed_now.add(coord)
                self._post(coord, outgoing, nxt)
            if self._active_set and self._debug_full_check:
                self._check_skipped(step_coords)
            pending = nxt
            active = changed_now
            stats.messages_per_round.append(delivered)
            stats.changes_per_round.append(changes)
            if trace is not None:
                trace.record(
                    round_no, {c: p.snapshot() for c, p in self._programs.items()}
                )
            if changes == 0:
                snapshots = {c: p.snapshot() for c, p in self._programs.items()}
                stats.rounds = round_no - 1
                return EngineResult(snapshots, stats, trace)

        raise ProtocolError(
            f"engine did not quiesce within {self._max_rounds} rounds"
        )

    def _check_skipped(self, stepped) -> None:
        """Assert every node skipped this round was a genuine no-op."""
        stepped_set = set(stepped)
        for coord, prog in self._programs.items():
            if coord in stepped_set:
                continue
            outgoing, changed = prog.on_round(_EMPTY_INBOX)
            deliverable = outgoing and any(
                d not in self._faulty for d in outgoing
            )
            if changed or deliverable:
                raise ProtocolError(
                    f"active-set invariant violated: skipped node {coord} "
                    f"changed={bool(changed)}, sent={dict(outgoing)!r} on an "
                    "empty inbox; run this protocol with active_set=False"
                )

    def _post(
        self,
        sender: Coord,
        outgoing: Mapping[Coord, Any],
        boxes: Dict[Coord, Dict[Coord, Any]],
    ) -> None:
        """Validate and enqueue one node's outgoing messages."""
        if not outgoing:
            return
        neighbors = self._neighbor_sets[sender]
        for dest, payload in outgoing.items():
            if dest not in neighbors:
                raise ProtocolError(
                    f"node {sender} sent to non-neighbour {dest}"
                )
            if dest in self._faulty:
                continue  # faulty nodes silently drop traffic
            box = boxes.get(dest)
            if box is None:
                box = boxes[dest] = {}
            box[sender] = payload
