"""The synchronous lock-step execution engine.

Runs one :class:`~repro.fabric.program.NodeProgram` per nonfaulty node
in strict rounds: all messages emitted in round *r* are delivered at the
start of round *r + 1*; every node then takes exactly one update step.
Faulty nodes "just cease to work" (paper Section 2): they host no
program, send nothing, and silently drop anything addressed to them.

Convergence: the engine stops after the first round in which no node
reports a state change.  The labeling protocols are monotone, so this
is a true fixpoint, and the number of *changing* rounds matches the
iteration count of the paper's ``repeat ... until no status change``
loops (and, by construction, the Jacobi iteration count of the
vectorized fixpoints in :mod:`repro.core` — a property test holds the
two backends to that).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping

from repro.errors import ProtocolError
from repro.fabric.program import NodeContext, NodeProgram
from repro.fabric.stats import RunStats
from repro.fabric.trace import RoundTrace
from repro.mesh.topology import Topology
from repro.types import Coord

__all__ = ["SynchronousEngine", "EngineResult"]

#: Builds the per-node program from its context.
ProgramFactory = Callable[[NodeContext], NodeProgram]


class EngineResult:
    """Outcome of a completed engine run: final snapshots plus statistics."""

    __slots__ = ("snapshots", "stats", "trace")

    def __init__(
        self,
        snapshots: Dict[Coord, Any],
        stats: RunStats,
        trace: RoundTrace | None,
    ):
        self.snapshots = snapshots
        self.stats = stats
        self.trace = trace


class SynchronousEngine:
    """Lock-step round executor over a topology with a fault set.

    Parameters
    ----------
    topology:
        The mesh or torus the programs run on.
    faulty:
        Addresses of faulty nodes; these host no program.
    factory:
        Called once per nonfaulty node with its :class:`NodeContext`.
    max_rounds:
        Safety budget.  ``None`` uses the node count + 4 — a true upper
        bound for monotone status protocols, where every changing round
        flips at least one node.
    record_trace:
        When True, snapshot every node after every round (expensive;
        meant for debugging and the examples' visualisations).
    """

    def __init__(
        self,
        topology: Topology,
        faulty: frozenset[Coord] | set[Coord],
        factory: ProgramFactory,
        max_rounds: int | None = None,
        record_trace: bool = False,
    ):
        self._topology = topology
        self._faulty = frozenset(faulty)
        for f in self._faulty:
            topology.check(f)
        if max_rounds is None:
            max_rounds = topology.num_nodes + 4
        self._max_rounds = int(max_rounds)
        self._record_trace = bool(record_trace)
        self._programs: Dict[Coord, NodeProgram] = {}
        for c in topology.nodes():
            if c not in self._faulty:
                ctx = NodeContext(topology, c, self._faulty)
                self._programs[c] = factory(ctx)

    @property
    def topology(self) -> Topology:
        """The topology this engine runs on."""
        return self._topology

    def run(self) -> EngineResult:
        """Execute rounds until quiescence; return snapshots and stats.

        Raises
        ------
        ProtocolError
            If a program addresses a non-neighbour or a faulty/ghost
            node is given a program, or the round budget is exhausted
            (which, for the monotone labeling protocols, indicates a
            bug rather than slow convergence).
        """
        stats = RunStats()
        trace = RoundTrace() if self._record_trace else None

        # Round 1's inboxes come from start().
        pending: Dict[Coord, Dict[Coord, Any]] = {c: {} for c in self._programs}
        for coord, prog in self._programs.items():
            self._post(coord, prog.start(), pending)

        if trace is not None:
            trace.record(0, {c: p.snapshot() for c, p in self._programs.items()})

        for round_no in range(1, self._max_rounds + 1):
            delivered = sum(len(v) for v in pending.values())
            nxt: Dict[Coord, Dict[Coord, Any]] = {c: {} for c in self._programs}
            changes = 0
            for coord, prog in self._programs.items():
                outgoing, changed = prog.on_round(pending[coord])
                if changed:
                    changes += 1
                self._post(coord, outgoing, nxt)
            pending = nxt
            stats.messages_per_round.append(delivered)
            stats.changes_per_round.append(changes)
            if trace is not None:
                trace.record(
                    round_no, {c: p.snapshot() for c, p in self._programs.items()}
                )
            if changes == 0:
                snapshots = {c: p.snapshot() for c, p in self._programs.items()}
                stats.rounds = round_no - 1
                return EngineResult(snapshots, stats, trace)

        raise ProtocolError(
            f"engine did not quiesce within {self._max_rounds} rounds"
        )

    def _post(
        self,
        sender: Coord,
        outgoing: Mapping[Coord, Any],
        boxes: Dict[Coord, Dict[Coord, Any]],
    ) -> None:
        """Validate and enqueue one node's outgoing messages."""
        if not outgoing:
            return
        neighbors = set(self._topology.neighbors(sender))
        for dest, payload in outgoing.items():
            if dest not in neighbors:
                raise ProtocolError(
                    f"node {sender} sent to non-neighbour {dest}"
                )
            if dest in self._faulty:
                continue  # faulty nodes silently drop traffic
            boxes[dest][sender] = payload
