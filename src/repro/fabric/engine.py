"""The synchronous lock-step execution engine.

Runs one :class:`~repro.fabric.program.NodeProgram` per nonfaulty node
in strict rounds: all messages emitted in round *r* are delivered at the
start of round *r + 1*; every node then takes exactly one update step.
Faulty nodes "just cease to work" (paper Section 2): they host no
program, send nothing, and silently drop anything addressed to them.

Convergence: the engine stops after the first round in which no node
reports a state change.  The labeling protocols are monotone, so this
is a true fixpoint, and the number of *changing* rounds matches the
iteration count of the paper's ``repeat ... until no status change``
loops (and, by construction, the Jacobi iteration count of the
vectorized fixpoints in :mod:`repro.core` — a property test holds the
two backends to that).

Active-set stepping
-------------------
By default the engine only *steps* nodes that either received a message
this round or changed state last round; everyone else is skipped.  For
any protocol where a quiet node (no change last round) with an empty
inbox is a no-op — true of every monotone status protocol in this
repository, whose update rules are deterministic functions of the
node's own status and its last-heard neighbour statuses — skipping is
**exact**: the skipped node would have reported no change and sent
nothing, so round counts, per-round change counts, message statistics
and final snapshots are all identical to full stepping (property
tested).  The win is asymptotic: once a labeling wave has passed, the
quiescent interior costs nothing, so a round's cost tracks the wave
front instead of the node count.  ``active_set=False`` restores literal
full stepping; ``debug_full_check=True`` steps the skipped nodes too
and raises if any of them was *not* a no-op, which is how the property
suite certifies new protocols for active-set execution.

Dynamic faults and lossy channels
---------------------------------
A :class:`~repro.faults.schedule.FaultSchedule` lets nodes crash
mid-run: a crash at time *t* strikes before round *t* executes — the
node's program is dropped, pending traffic addressed to it is
discarded, and each surviving neighbour's
:class:`~repro.fabric.program.NodeContext` is updated and the
neighbour re-activated (active-set exact: only the crash neighbourhood
can have new rule inputs).  When the network is quiescent but crash
events remain, the engine fast-forwards the clock to the next event
instead of executing idle rounds, so statistics stay dense.

A :class:`~repro.fabric.channel.ChannelModel` degrades the links at the
posting boundary: dropped copies never arrive, duplicates and jittered
copies arrive in later rounds.  Whenever the network drains while drops
are outstanding, the engine fires a *heartbeat* — every program's
:meth:`~repro.fabric.program.NodeProgram.resend` re-announces current
state — which repairs lost updates; over any lossy-but-fair channel the
protocols therefore converge to exactly the from-scratch fixpoint on
the final fault set (property tested).  ``schedule=None`` with a
reliable (or absent) channel is bit-for-bit the historical behaviour.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Set, Tuple

from contextlib import nullcontext

from repro.errors import ProtocolError
from repro.fabric.channel import ChannelModel
from repro.faults.schedule import FaultSchedule
from repro.fabric.program import NodeContext, NodeProgram
from repro.fabric.stats import EpochStats, RunStats
from repro.fabric.trace import RoundTrace
from repro.mesh.topology import Topology
from repro.obs.events import snapshot_event
from repro.obs.telemetry import Telemetry
from repro.types import Coord

__all__ = ["SynchronousEngine", "EngineResult", "build_neighbor_sets"]

#: Builds the per-node program from its context.
ProgramFactory = Callable[[NodeContext], NodeProgram]

_EMPTY_INBOX: Dict[Coord, Any] = {}

#: Per-destination inboxes keyed by sender.
Boxes = Dict[Coord, Dict[Coord, Any]]

#: Shared no-op context for rounds profiled without a span recorder.
_NULL_SPAN = nullcontext()


class _EngineMeters:
    """The metric series one engine run updates (resolved once per run).

    Series resolution involves dict lookups and label merging; doing it
    per round would put that on the hot path.  Field-for-field, the
    updates mirror :class:`~repro.fabric.stats.RunStats`, which is what
    lets a property test demand bit-for-bit agreement between a metrics
    snapshot and the run's stats.
    """

    __slots__ = (
        "rounds",
        "executed",
        "messages",
        "flips",
        "messages_hist",
        "heartbeats",
        "recovery_rounds",
        "dropped",
        "duplicated",
    )

    def __init__(self, tel: Telemetry):
        self.rounds = tel.counter("engine_rounds_total")
        self.executed = tel.counter("engine_rounds_executed_total")
        self.messages = tel.counter("engine_messages_total")
        self.flips = tel.histogram("engine_flips_per_round")
        self.messages_hist = tel.histogram("engine_messages_per_round")
        self.heartbeats = tel.counter("engine_heartbeats_total")
        self.recovery_rounds = tel.counter("engine_recovery_rounds_total")
        self.dropped = tel.counter("channel_dropped_total")
        self.duplicated = tel.counter("channel_duplicated_total")


def build_neighbor_sets(
    topology: Topology, coords: Iterable[Coord]
) -> Dict[Coord, frozenset]:
    """Frozen neighbour sets for the given nodes, computed once.

    Topology neighbourhoods are immutable for a run (crashes change the
    *fault view*, not the wiring), so both engines precompute these at
    construction instead of rebuilding a set per posted message batch.
    """
    return {c: frozenset(topology.neighbors(c)) for c in coords}


class EngineResult:
    """Outcome of a completed engine run: final snapshots plus statistics."""

    __slots__ = ("snapshots", "stats", "trace")

    def __init__(
        self,
        snapshots: Dict[Coord, Any],
        stats: RunStats,
        trace: RoundTrace | None,
    ):
        self.snapshots = snapshots
        self.stats = stats
        self.trace = trace


class SynchronousEngine:
    """Lock-step round executor over a topology with a fault set.

    Parameters
    ----------
    topology:
        The mesh or torus the programs run on.
    faulty:
        Addresses of nodes faulty from the start; these host no program.
    factory:
        Called once per nonfaulty node with its :class:`NodeContext`.
    max_rounds:
        Safety budget on executed rounds.  ``None`` uses the node count
        + 4 per epoch (idle stretches between crash events are
        compressed, so the budget scales with the work actually done).
    record_trace:
        When True, snapshot every node after every round (expensive;
        meant for debugging and the examples' visualisations).
    active_set:
        When True (default), only step nodes with a pending message or a
        state change last round — exact for quiescent-stable protocols;
        see the module docstring.  Round 1 always steps every node (a
        rule may fire on faulty/ghost links alone, before any message
        arrives).
    debug_full_check:
        Cross-check mode: additionally step every skipped node with an
        empty inbox and raise :class:`~repro.errors.ProtocolError` if it
        changed state or emitted a deliverable message — i.e. if
        active-set execution would have diverged from full stepping.
    schedule:
        Optional :class:`~repro.faults.schedule.FaultSchedule` of
        mid-run crashes; see the module docstring.  ``None`` or an
        empty schedule means the fault set is static.
    channel:
        Optional :class:`~repro.fabric.channel.ChannelModel` applied to
        every posted message.  ``None`` (or a reliable channel) keeps
        perfect links and consumes no randomness.
    telemetry:
        Optional :class:`~repro.obs.telemetry.Telemetry`.  When given,
        the engine emits structured events (``run_start``,
        ``round_start``, ``node_flip``, ``crash_batch``, ``heartbeat``,
        ``epoch_end``, ``run_end``), updates metric series that agree
        bit-for-bit with the returned ``RunStats``, and profiles rounds
        as spans.  ``None`` (the default) is a strict no-op: every
        telemetry site is behind a ``None`` check.
    """

    def __init__(
        self,
        topology: Topology,
        faulty: frozenset | set,
        factory: ProgramFactory,
        max_rounds: int | None = None,
        record_trace: bool = False,
        active_set: bool = True,
        debug_full_check: bool = False,
        schedule: Optional["FaultSchedule"] = None,
        channel: Optional[ChannelModel] = None,
        telemetry: Optional[Telemetry] = None,
    ):
        self._topology = topology
        self._faulty: Set[Coord] = set(faulty)
        for f in self._faulty:
            topology.check(f)
        self._events: deque = deque()
        if schedule is not None:
            for t, batch in schedule.batches():
                for c in batch:
                    topology.check(c)
                self._events.append((t, batch))
        self._channel = channel if channel is not None and not channel.is_reliable else None
        # Dynamic runs record per-epoch stats; static reliable runs keep
        # their statistics bit-for-bit as before.
        self._dynamic = bool(self._events) or self._channel is not None
        if max_rounds is None:
            max_rounds = (topology.num_nodes + 4) * (len(self._events) + 1)
            if self._channel is not None and self._channel.drop_budget is not None:
                # Every drop can cost one heartbeat repair cycle, and a
                # cycle executes an on-time round plus the deferred tail
                # of duplicates/jitter; size the budget accordingly so a
                # fair-but-persistent channel converges within it.
                max_rounds += (self._channel.drop_budget + 1) * (
                    self._channel.max_jitter + 3
                )
        self._max_rounds = int(max_rounds)
        self._telemetry = (
            telemetry.child(engine="sync") if telemetry is not None else None
        )
        self._record_trace = bool(record_trace)
        self._active_set = bool(active_set)
        self._debug_full_check = bool(debug_full_check)
        self._programs: Dict[Coord, NodeProgram] = {}
        for c in topology.nodes():
            if c not in self._faulty:
                ctx = NodeContext(topology, c, frozenset(self._faulty))
                self._programs[c] = factory(ctx)
        # Neighbour sets are immutable for the run; computing them once
        # here keeps _post() from rebuilding a set per message batch.
        self._neighbor_sets = build_neighbor_sets(topology, self._programs)

    @property
    def topology(self) -> Topology:
        """The topology this engine runs on."""
        return self._topology

    def run(self) -> EngineResult:
        """Execute rounds until quiescence; return snapshots and stats.

        Quiescence means: a round changed no state, no delayed copies or
        crash events remain, and no dropped message is unrepaired.

        Raises
        ------
        ProtocolError
            If a program addresses a non-neighbour or a faulty/ghost
            node is given a program, or the round budget is exhausted
            (which, for the monotone labeling protocols, indicates a
            bug rather than slow convergence), or ``debug_full_check``
            catches a skipped node that was not a no-op, or an unfair
            channel keeps dropping heartbeats forever.
        """
        stats = RunStats()
        trace = RoundTrace() if self._record_trace else None
        channel = self._channel
        events = self._events
        tel = self._telemetry
        events_on = tel is not None and tel.wants("info")
        debug_on = tel is not None and tel.wants("debug")
        spans_on = tel is not None and tel.spans is not None
        meters = (
            _EngineMeters(tel) if tel is not None and tel.metrics is not None else None
        )
        epoch_idx = 0
        if tel is not None and channel is not None:
            channel.bind_telemetry(tel)
        if events_on:
            tel.emit(
                "run_start",
                nodes=len(self._programs),
                faulty=len(self._faulty),
                dynamic=self._dynamic,
            )

        # Baselines first: drops during the initial announcements below
        # must count (and be heartbeat-repaired) like any later loss.
        drops_base = channel.drops if channel is not None else 0
        dups_base = channel.duplicates if channel is not None else 0
        drops_acked = drops_base  # drops repaired by (or predating) a heartbeat
        epoch_drop_base, epoch_dup_base = drops_base, dups_base

        # Round 1's inboxes come from start().  Inbox dicts are created
        # on demand, so a quiescent network carries no per-node state.
        pending: Boxes = {}
        deferred: Dict[int, Boxes] = {}  # delivery clock -> boxes (lossy only)
        for coord, prog in self._programs.items():
            self._post(coord, prog.start(), pending, deferred, clock=0)

        if trace is not None:
            trace.emit(
                snapshot_event(0, {c: p.snapshot() for c, p in self._programs.items()})
            )
        if self._dynamic:
            stats.epochs.append(EpochStats())

        # Round 1 steps everyone: a rule can fire on the initial state
        # alone (e.g. a node surrounded by faulty links), with no inbox.
        active: Set[Coord] = set(self._programs)
        clock = 0      # virtual round number (crash times live on this axis)
        executed = 0   # rounds actually stepped (stats index, budget)
        while True:
            # -- pick the clock tick of the next executed round ------------
            if pending or active:
                tick = clock + 1
            else:
                candidates = []
                if deferred:
                    candidates.append(min(deferred))
                if events:
                    # idle until the next crash strikes (compressed)
                    candidates.append(max(events[0][0], clock + 1))
                if candidates:
                    tick = min(candidates)
                elif channel is not None and channel.drops > drops_acked:
                    # Heartbeat: the network drained but some status
                    # update was lost — re-announce everyone's state.
                    stats.heartbeats += 1
                    if stats.heartbeats > self._max_rounds:
                        raise ProtocolError(
                            f"channel kept dropping: {stats.heartbeats} "
                            "heartbeats without reaching quiescence "
                            "(is the channel fair?)"
                        )
                    drops_acked = channel.drops
                    if meters is not None:
                        meters.heartbeats.inc()
                    if events_on:
                        tel.emit("heartbeat", seq=stats.heartbeats, clock=clock)
                    for coord, prog in self._programs.items():
                        self._post(coord, prog.resend(), pending, deferred, clock)
                    continue
                else:
                    break  # truly quiescent

            if executed >= self._max_rounds:
                raise ProtocolError(
                    f"engine did not quiesce within {self._max_rounds} rounds"
                )

            # -- crashes scheduled at or before this tick strike first -----
            if events and events[0][0] <= tick:
                batch: List[Coord] = []
                while events and events[0][0] <= tick:
                    batch.extend(events.popleft()[1])
                applied, woken = self._apply_crashes(sorted(batch), pending, deferred)
                active -= set(applied)
                active |= woken
                if events_on:
                    tel.emit("crash_batch", time=tick, nodes=applied)
                if self._dynamic:
                    ep = stats.epochs[-1]
                    ep.dropped = (channel.drops if channel else 0) - epoch_drop_base
                    ep.duplicated = (
                        channel.duplicates if channel else 0
                    ) - epoch_dup_base
                    epoch_drop_base = channel.drops if channel else 0
                    epoch_dup_base = channel.duplicates if channel else 0
                    if events_on:
                        tel.emit("epoch_end", epoch=epoch_idx, **ep.to_dict())
                    if meters is not None and epoch_idx >= 1:
                        meters.recovery_rounds.inc(ep.rounds)
                    epoch_idx += 1
                    stats.epochs.append(
                        EpochStats(crashed=tuple(applied), at_time=tick)
                    )

            # -- delayed copies due now join the round's inboxes -----------
            if deferred:
                for t in sorted(k for k in deferred if k <= tick):
                    for dest, box in deferred.pop(t).items():
                        if dest in self._faulty:
                            continue
                        target = pending.setdefault(dest, {})
                        for sender, payload in box.items():
                            # an on-time copy beats a late duplicate
                            target.setdefault(sender, payload)

            # -- execute one round at clock = tick -------------------------
            delivered = sum(len(v) for v in pending.values())
            if self._active_set:
                step_coords = sorted(active | pending.keys())
            else:
                step_coords = list(self._programs)
            if events_on:
                tel.emit(
                    "round_start",
                    round=executed + 1,
                    clock=tick,
                    delivered=delivered,
                    stepped=len(step_coords),
                )
            nxt: Boxes = {}
            changes = 0
            changed_now: Set[Coord] = set()
            round_span = (
                tel.spans.span("engine_round", round=executed + 1)
                if spans_on
                else _NULL_SPAN
            )
            with round_span:
                for coord in step_coords:
                    inbox = pending.get(coord, _EMPTY_INBOX)
                    outgoing, changed = self._programs[coord].on_round(inbox)
                    if changed:
                        changes += 1
                        changed_now.add(coord)
                        if debug_on:
                            tel.emit("node_flip", node=coord, clock=tick)
                    self._post(coord, outgoing, nxt, deferred, clock=tick)
                if self._active_set and self._debug_full_check:
                    self._check_skipped(step_coords)
            pending = nxt
            active = changed_now
            clock = tick
            executed += 1
            stats.messages_per_round.append(delivered)
            stats.changes_per_round.append(changes)
            if changes:
                stats.rounds += 1
            if meters is not None:
                meters.executed.inc()
                meters.messages.inc(delivered)
                meters.messages_hist.observe(delivered)
                meters.flips.observe(changes)
                if changes:
                    meters.rounds.inc()
            if self._dynamic:
                ep = stats.epochs[-1]
                ep.executed_rounds += 1
                ep.messages += delivered
                if changes:
                    ep.rounds += 1
            if trace is not None:
                trace.emit(
                    snapshot_event(
                        executed,
                        {c: p.snapshot() for c, p in self._programs.items()},
                    )
                )
            if (
                changes == 0
                and not deferred
                and not events
                and not (channel is not None and channel.drops > drops_acked)
            ):
                break

        if self._dynamic:
            ep = stats.epochs[-1]
            ep.dropped = (channel.drops if channel else 0) - epoch_drop_base
            ep.duplicated = (channel.duplicates if channel else 0) - epoch_dup_base
            if events_on:
                tel.emit("epoch_end", epoch=epoch_idx, **ep.to_dict())
            if meters is not None and epoch_idx >= 1:
                meters.recovery_rounds.inc(ep.rounds)
        if channel is not None:
            stats.dropped_messages = channel.drops - drops_base
            stats.duplicated_messages = channel.duplicates - dups_base
        if meters is not None:
            meters.dropped.inc(stats.dropped_messages)
            meters.duplicated.inc(stats.duplicated_messages)
        if events_on:
            tel.emit(
                "run_end",
                rounds=stats.rounds,
                executed_rounds=stats.executed_rounds,
                messages=stats.total_messages,
                heartbeats=stats.heartbeats,
                dropped=stats.dropped_messages,
                duplicated=stats.duplicated_messages,
            )
        snapshots = {c: p.snapshot() for c, p in self._programs.items()}
        return EngineResult(snapshots, stats, trace)

    def _apply_crashes(
        self,
        batch: List[Coord],
        pending: Boxes,
        deferred: Dict[int, Boxes],
    ) -> Tuple[List[Coord], Set[Coord]]:
        """Kill the nodes in ``batch``; return (applied, neighbours to wake).

        Crashing an already-dead node is a no-op.  In-flight traffic
        *to* a crashed node is discarded; traffic it sent earlier is
        already in the network and still delivered (its payloads are
        stale-but-valid statuses, which monotone receivers absorb
        safely).
        """
        applied: List[Coord] = []
        for c in batch:
            if c not in self._programs:
                continue  # faulty from the start, or crashed earlier
            del self._programs[c]
            self._faulty.add(c)
            pending.pop(c, None)
            for boxes in deferred.values():
                boxes.pop(c, None)
            applied.append(c)
        woken: Set[Coord] = set()
        for c in applied:
            for n in self._neighbor_sets[c]:
                prog = self._programs.get(n)
                if prog is not None and prog.ctx.mark_faulty(c):
                    woken.add(n)
        return applied, woken

    def _check_skipped(self, stepped) -> None:
        """Assert every node skipped this round was a genuine no-op."""
        stepped_set = set(stepped)
        for coord, prog in self._programs.items():
            if coord in stepped_set:
                continue
            outgoing, changed = prog.on_round(_EMPTY_INBOX)
            deliverable = outgoing and any(
                d not in self._faulty for d in outgoing
            )
            if changed or deliverable:
                raise ProtocolError(
                    f"active-set invariant violated: skipped node {coord} "
                    f"changed={bool(changed)}, sent={dict(outgoing)!r} on an "
                    "empty inbox; run this protocol with active_set=False"
                )

    def _post(
        self,
        sender: Coord,
        outgoing: Mapping[Coord, Any],
        boxes: Boxes,
        deferred: Dict[int, Boxes],
        clock: int,
    ) -> None:
        """Validate one node's outgoing messages and enqueue the copies
        the channel lets through (every copy, exactly on time, for
        reliable links)."""
        if not outgoing:
            return
        neighbors = self._neighbor_sets[sender]
        channel = self._channel
        for dest, payload in outgoing.items():
            if dest not in neighbors:
                raise ProtocolError(
                    f"node {sender} sent to non-neighbour {dest}"
                )
            if dest in self._faulty:
                continue  # faulty nodes silently drop traffic
            if channel is None:
                box = boxes.get(dest)
                if box is None:
                    box = boxes[dest] = {}
                box[sender] = payload
            else:
                for offset in channel.copies(sender, dest):
                    if offset == 0:
                        boxes.setdefault(dest, {})[sender] = payload
                    else:
                        deferred.setdefault(clock + 1 + offset, {}).setdefault(
                            dest, {}
                        )[sender] = payload
