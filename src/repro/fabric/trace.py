"""Optional round-by-round tracing of fabric runs.

Used by the examples to animate how unsafe/disabled labels spread and
recede, and by tests that assert intermediate monotonicity.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.types import Coord

__all__ = ["RoundTrace"]


class RoundTrace:
    """A sequence of per-round snapshots ``{coord: state}``.

    Entry 0 is the state after :meth:`~repro.fabric.program.NodeProgram.start`
    but before any exchange; entry *r* is the state after round *r*.
    """

    __slots__ = ("_frames",)

    def __init__(self) -> None:
        self._frames: List[Tuple[int, Dict[Coord, Any]]] = []

    def record(self, round_no: int, snapshot: Dict[Coord, Any]) -> None:
        """Append one frame; called by the engine."""
        self._frames.append((round_no, dict(snapshot)))

    def __len__(self) -> int:
        return len(self._frames)

    def __getitem__(self, i: int) -> Tuple[int, Dict[Coord, Any]]:
        return self._frames[i]

    def frames(self) -> List[Tuple[int, Dict[Coord, Any]]]:
        """All recorded ``(round_no, snapshot)`` frames in order."""
        return list(self._frames)
