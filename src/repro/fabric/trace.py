"""Optional round-by-round tracing of fabric runs.

Used by the examples to animate how unsafe/disabled labels spread and
recede, and by tests that assert intermediate monotonicity.

Since the observability subsystem landed, :class:`RoundTrace` is a thin
:class:`~repro.obs.sinks.EventSink`: both engines record frames by
routing ``snapshot`` events (built by
:func:`repro.obs.events.snapshot_event`) through the event-log API, and
the trace simply keeps the frames those events carry.  Frame keys are
round numbers on the synchronous engine and delivery-event counts on
the asynchronous one.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.obs.events import Event
from repro.obs.sinks import EventSink
from repro.types import Coord

__all__ = ["RoundTrace"]


class RoundTrace(EventSink):
    """A sequence of per-round snapshots ``{coord: state}``.

    Entry 0 is the state after :meth:`~repro.fabric.program.NodeProgram.start`
    but before any exchange; entry *r* is the state after round *r* (or,
    on the asynchronous engine, after the *r*-th processed event).
    """

    __slots__ = ("_frames",)

    def __init__(self) -> None:
        self._frames: List[Tuple[int, Dict[Coord, Any]]] = []

    def emit(self, event: Event) -> None:
        """Sink interface: keep ``snapshot`` events, ignore the rest."""
        if event.name == "snapshot":
            self.record(event.fields["key"], event.fields["snapshot"])

    def record(self, round_no: int, snapshot: Dict[Coord, Any]) -> None:
        """Append one frame; called by the engine (via :meth:`emit`)."""
        self._frames.append((round_no, dict(snapshot)))

    def __len__(self) -> int:
        return len(self._frames)

    def __getitem__(self, i: int) -> Tuple[int, Dict[Coord, Any]]:
        return self._frames[i]

    def frames(self) -> List[Tuple[int, Dict[Coord, Any]]]:
        """All recorded ``(round_no, snapshot)`` frames in order."""
        return list(self._frames)
