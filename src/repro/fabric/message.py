"""Message envelopes for the synchronous fabric.

A message is what one node hands to a directly connected neighbour
during one lock-step round.  Payloads are opaque to the engine; the
labeling protocols of :mod:`repro.core.protocols` send small status
enums, but any picklable value works.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.types import Coord

__all__ = ["Message"]


@dataclass(frozen=True)
class Message:
    """A single neighbour-to-neighbour message.

    Attributes
    ----------
    sender:
        Address of the sending node.
    recipient:
        Address of the receiving node; must be a topology neighbour of
        the sender (the engine enforces this — there is no multi-hop
        delivery in the fabric, exactly as in the paper's model where
        nodes only exchange status with neighbours).
    round_no:
        The round in which the message was sent (delivered at the start
        of the next round).
    payload:
        Application data.
    """

    sender: Coord
    recipient: Coord
    round_no: int
    payload: Any
