"""Execution statistics for fabric runs.

The paper's Figure 5 (a)/(b) plots the number of rounds the distributed
labeling needs; :class:`RunStats` is where the engine records that,
along with message counts that characterise the protocol's communication
cost (not plotted in the paper but routinely reported for such
algorithms).

Dynamic runs — a :class:`~repro.faults.schedule.FaultSchedule` injecting
crashes mid-protocol, or a lossy
:class:`~repro.fabric.channel.ChannelModel` — additionally record one
:class:`EpochStats` per convergence epoch: the stretch of execution
between consecutive crash batches.  Epoch entries make recovery cost
directly measurable (how many extra rounds and messages each fault
event triggered).  Static, reliable runs leave ``epochs`` empty, so
their statistics are bit-for-bit what they always were.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.types import Coord

__all__ = ["EpochStats", "RunStats"]


@dataclass
class EpochStats:
    """Cost of one convergence epoch of a dynamic run.

    An epoch starts when a crash batch strikes (or at round 1 for the
    first epoch) and ends at the next batch or at final quiescence.

    Attributes
    ----------
    crashed:
        The nodes whose crash opened this epoch (empty for the first).
    at_time:
        The engine clock when the crashes struck: a round number for
        the synchronous engine, a virtual time for the asynchronous
        one.  0 for the first epoch.
    rounds:
        State-changing rounds (synchronous) or state-changing delivery
        events (asynchronous) within the epoch — the recovery cost in
        the same unit as :attr:`RunStats.rounds`.
    executed_rounds:
        Rounds executed (synchronous) or deliveries processed
        (asynchronous) within the epoch.
    messages:
        Messages delivered within the epoch.
    dropped, duplicated:
        Channel losses and duplicate injections charged to the epoch.
    """

    crashed: Tuple[Coord, ...] = ()
    at_time: int = 0
    rounds: int = 0
    executed_rounds: int = 0
    messages: int = 0
    dropped: int = 0
    duplicated: int = 0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready view; coordinates become ``[x, y]`` lists.

        This is the machine-readable stats format shared by
        ``--stats-out`` runs, sweep results, and the ``epoch_end``
        telemetry events (so ``repro obs summarize`` reconstructs
        exactly these fields from a trace).
        """
        return {
            "crashed": [[int(x), int(y)] for x, y in self.crashed],
            "at_time": self.at_time,
            "rounds": self.rounds,
            "executed_rounds": self.executed_rounds,
            "messages": self.messages,
            "dropped": self.dropped,
            "duplicated": self.duplicated,
        }


@dataclass
class RunStats:
    """Statistics of one engine run.

    Attributes
    ----------
    rounds:
        Number of exchange-and-update rounds in which at least one node
        changed its externally visible state — the paper's "repeat ...
        until there is no status change" iteration count.  A run whose
        very first round changes nothing reports 0.  (The asynchronous
        engine reports state-changing delivery events instead.)
    messages_per_round:
        Messages delivered in each executed round (including the final,
        quiescent round that detected convergence).
    changes_per_round:
        Number of nodes that reported a state change in each round.
    epochs:
        Per-epoch recovery statistics; populated only by dynamic runs
        (a fault schedule or a non-reliable channel), empty otherwise.
    dropped_messages, duplicated_messages:
        Channel loss/duplication totals for this run (0 on reliable
        links).
    heartbeats:
        Status-change heartbeats the engine fired to repair message
        loss (0 on reliable links).
    """

    rounds: int = 0
    messages_per_round: List[int] = field(default_factory=list)
    changes_per_round: List[int] = field(default_factory=list)
    epochs: List[EpochStats] = field(default_factory=list)
    dropped_messages: int = 0
    duplicated_messages: int = 0
    heartbeats: int = 0

    @property
    def total_messages(self) -> int:
        """Messages delivered across the whole run."""
        return sum(self.messages_per_round)

    @property
    def executed_rounds(self) -> int:
        """Rounds the engine actually executed, including the quiescent one."""
        return len(self.changes_per_round)

    @property
    def recovery_rounds(self) -> int:
        """Changing rounds spent re-converging after crashes (epochs 2+)."""
        return sum(e.rounds for e in self.epochs[1:])

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready view including the derived totals.

        The derived fields (``total_messages``, ``executed_rounds``,
        ``recovery_rounds``) are included so downstream consumers need
        no knowledge of how they are computed.
        """
        return {
            "rounds": self.rounds,
            "messages_per_round": list(self.messages_per_round),
            "changes_per_round": list(self.changes_per_round),
            "epochs": [e.to_dict() for e in self.epochs],
            "dropped_messages": self.dropped_messages,
            "duplicated_messages": self.duplicated_messages,
            "heartbeats": self.heartbeats,
            "total_messages": self.total_messages,
            "executed_rounds": self.executed_rounds,
            "recovery_rounds": self.recovery_rounds,
        }
