"""Execution statistics for fabric runs.

The paper's Figure 5 (a)/(b) plots the number of rounds the distributed
labeling needs; :class:`RunStats` is where the engine records that,
along with message counts that characterise the protocol's communication
cost (not plotted in the paper but routinely reported for such
algorithms).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

__all__ = ["RunStats"]


@dataclass
class RunStats:
    """Statistics of one synchronous-engine run.

    Attributes
    ----------
    rounds:
        Number of exchange-and-update rounds in which at least one node
        changed its externally visible state — the paper's "repeat ...
        until there is no status change" iteration count.  A run whose
        very first round changes nothing reports 0.
    messages_per_round:
        Messages delivered in each executed round (including the final,
        quiescent round that detected convergence).
    changes_per_round:
        Number of nodes that reported a state change in each round.
    """

    rounds: int = 0
    messages_per_round: List[int] = field(default_factory=list)
    changes_per_round: List[int] = field(default_factory=list)

    @property
    def total_messages(self) -> int:
        """Messages delivered across the whole run."""
        return sum(self.messages_per_round)

    @property
    def executed_rounds(self) -> int:
        """Rounds the engine actually executed, including the quiescent one."""
        return len(self.changes_per_round)
