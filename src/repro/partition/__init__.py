"""The paper's open problem: partitioning fault covers further.

Section 4 closes with an open problem, conjectured NP-complete: cover a
faulty block's faults with a set of orthogonal convex polygons holding
the minimum number of nonfaulty nodes.  This package provides two
polynomial heuristics (proximity clustering and guillotine cuts), an
exhaustive exact search for small instances, and the cover evaluation
machinery; the ``bench_partition`` benchmark scores them against the
single-polygon disabled-region baseline.
"""

from repro.partition.clusters import cluster_cover
from repro.partition.cuts import guillotine_cover
from repro.partition.evaluate import FaultCover
from repro.partition.exact import exact_cover

__all__ = ["FaultCover", "cluster_cover", "exact_cover", "guillotine_cover"]
