"""Evaluation of fault-cover partitions.

The paper's open problem (Section 4, conjectured NP-complete): given a
faulty block, find a set of orthogonal convex polygons covering all its
faults with a *minimum* number of nonfaulty nodes.  A
:class:`FaultCover` is one candidate solution — a family of pairwise
disjoint orthogonal convex polygons whose union contains every fault —
and knows its own cost.  The heuristics in :mod:`repro.partition.cuts`
and :mod:`repro.partition.clusters` produce covers; the exact search in
:mod:`repro.partition.exact` certifies optimality on small instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import PartitionError
from repro.geometry.cells import CellSet
from repro.geometry.orthoconvex import is_orthoconvex

__all__ = ["FaultCover"]


@dataclass(frozen=True)
class FaultCover:
    """A family of disjoint orthoconvex polygons covering a fault set.

    Attributes
    ----------
    faults:
        The faults that must be covered.
    polygons:
        The covering polygons.
    """

    faults: CellSet
    polygons: Tuple[CellSet, ...]

    @classmethod
    def build(cls, faults: CellSet, polygons: Sequence[CellSet]) -> "FaultCover":
        """Validate and build a cover.

        Raises
        ------
        PartitionError
            If polygons overlap, are not orthoconvex, or miss a fault.
        """
        if not faults:
            raise PartitionError("no faults to cover")
        union = np.zeros(faults.shape, dtype=bool)
        for k, p in enumerate(polygons):
            if not is_orthoconvex(p, require_connected=True):
                raise PartitionError(f"cover polygon {k} is not orthoconvex")
            if np.any(union & p.mask):
                raise PartitionError(f"cover polygon {k} overlaps another")
            union |= p.mask
        if np.any(faults.mask & ~union):
            missing = CellSet(faults.mask & ~union).coords()[:3]
            raise PartitionError(f"faults not covered, e.g. {missing}")
        return cls(faults=faults, polygons=tuple(polygons))

    @property
    def total_cells(self) -> int:
        """Total cells across all polygons."""
        return sum(len(p) for p in self.polygons)

    @property
    def num_nonfaulty(self) -> int:
        """The objective: nonfaulty cells imprisoned by the cover."""
        return self.total_cells - len(self.faults)

    @property
    def num_polygons(self) -> int:
        """How many polygons the cover uses."""
        return len(self.polygons)

    def improvement_over(self, baseline: "FaultCover") -> int:
        """How many nonfaulty nodes this cover frees relative to another."""
        return baseline.num_nonfaulty - self.num_nonfaulty

    def separation(self) -> int:
        """Minimum pairwise Manhattan distance between cover polygons.

        The builders promise at least 2 (matching the disabled-region
        guarantee) so covers stay drop-in fault regions for routing.
        Returns a large sentinel for single-polygon covers.
        """
        from repro.geometry.components import set_distance

        if len(self.polygons) < 2:
            return 10**9
        return min(
            set_distance(self.polygons[i], self.polygons[j])
            for i in range(len(self.polygons))
            for j in range(i + 1, len(self.polygons))
        )
