"""Exact minimum-nonfaulty cover for small instances.

The open problem is conjectured NP-complete (paper Section 4, citing
D. Z. Chen), so no polynomial exact algorithm is expected; for small
fault sets, however, exhaustive search over set partitions is feasible
and gives the ground truth the heuristics are scored against.

Search space reduction: 4-adjacent faults must share a polygon (two
polygons at Manhattan distance 1 would violate the separation
requirement), so the search enumerates partitions of the *4-connected
fault components* rather than of individual faults; each part is then
covered by its minimal connected orthoconvex polygon.  Partitions whose
polygons overlap or come closer than the separation floor are rejected.

Note the per-part polygon is itself a (tight) heuristic — the true
optimum could in principle use a non-minimal polygon to dodge a
separation conflict — so the result is exact over the "minimal polygon
per part" family, which covers every instance we have encountered and
all the paper's examples.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

from repro.errors import PartitionError
from repro.geometry.cells import CellSet
from repro.geometry.components import connected_components, set_distance
from repro.geometry.staircase import connect_orthoconvex
from repro.partition.evaluate import FaultCover

__all__ = ["exact_cover"]


def _set_partitions(n: int) -> Iterator[List[List[int]]]:
    """All set partitions of ``range(n)`` via restricted growth strings."""
    if n == 0:
        yield []
        return
    a = [0] * n

    def rec(i: int, m: int) -> Iterator[List[List[int]]]:
        if i == n:
            parts: List[List[int]] = [[] for _ in range(m + 1)]
            for idx, p in enumerate(a):
                parts[p].append(idx)
            yield parts
            return
        for p in range(m + 2):
            a[i] = p
            yield from rec(i + 1, max(m, p))

    yield from rec(1, 0)


def exact_cover(
    faults: CellSet,
    min_separation: int = 2,
    max_atoms: int = 9,
) -> FaultCover:
    """Exhaustive-search cover of a small fault set.

    Parameters
    ----------
    faults:
        The fault set (its 4-connected components are the search atoms).
    min_separation:
        Required pairwise polygon distance (2 matches disabled regions).
    max_atoms:
        Refuse instances with more components than this — the partition
        count is the Bell number, which explodes quickly.

    Raises
    ------
    PartitionError
        If ``faults`` is empty or too large for exhaustive search.
    """
    if not faults:
        raise PartitionError("no faults to cover")
    atoms = connected_components(faults, connectivity=4)
    if len(atoms) > max_atoms:
        raise PartitionError(
            f"{len(atoms)} fault components exceed exact-search limit {max_atoms}"
        )

    best: FaultCover | None = None
    for parts in _set_partitions(len(atoms)):
        polygons: List[CellSet] = []
        for part in parts:
            group = atoms[part[0]]
            for k in part[1:]:
                group = group.union(atoms[k])
            polygons.append(connect_orthoconvex(group))
        if not _valid(polygons, min_separation):
            continue
        cover = FaultCover.build(faults, polygons)
        if best is None or cover.num_nonfaulty < best.num_nonfaulty:
            best = cover
    if best is None:  # the single-polygon partition is always valid
        raise PartitionError("no valid cover found — separation floor too strict?")
    return best


def _valid(polygons: Sequence[CellSet], min_separation: int) -> bool:
    for i in range(len(polygons)):
        for j in range(i + 1, len(polygons)):
            if not polygons[i].isdisjoint(polygons[j]):
                return False
            if set_distance(polygons[i], polygons[j]) < min_separation:
                return False
    return True
