"""Fault-clustering heuristic for the open partition problem.

Groups the faults by transitive proximity (Chebyshev distance at most a
threshold ``t``), builds the minimal orthoconvex polygon of each group,
and repairs separation violations by merging offending groups.  Sweeping
``t`` over all useful values and keeping the cheapest valid cover gives
a strong, fast heuristic: small thresholds favour many tight polygons,
large thresholds converge to the single-polygon baseline.

Covers respect the same guarantee the paper proves for disabled
regions — pairwise Manhattan separation of at least 2 — so they remain
drop-in fault regions for the routing layer.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import PartitionError
from repro.geometry.cells import CellSet
from repro.geometry.components import set_distance
from repro.geometry.staircase import connect_orthoconvex
from repro.partition.evaluate import FaultCover
from repro.types import Coord

__all__ = ["cluster_cover"]


def _group_by_threshold(coords: List[Coord], t: int) -> List[List[Coord]]:
    """Transitive closure of 'Chebyshev distance <= t' as fault groups."""
    n = len(coords)
    parent = list(range(n))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    for i in range(n):
        for j in range(i + 1, n):
            dx = abs(coords[i][0] - coords[j][0])
            dy = abs(coords[i][1] - coords[j][1])
            if max(dx, dy) <= t:
                parent[find(i)] = find(j)
    groups: dict[int, List[Coord]] = {}
    for i, c in enumerate(coords):
        groups.setdefault(find(i), []).append(c)
    return list(groups.values())


def _polygons_for_groups(
    shape, groups: Sequence[Sequence[Coord]], min_separation: int
) -> List[CellSet]:
    """Build per-group polygons, merging groups until separation holds."""
    parts = [list(g) for g in groups]
    while True:
        polys = [
            connect_orthoconvex(CellSet.from_coords(shape, g)) for g in parts
        ]
        # Find the first violating pair (overlap or too close) and merge it.
        merged = False
        for i in range(len(polys)):
            for j in range(i + 1, len(polys)):
                too_close = (
                    not polys[i].isdisjoint(polys[j])
                    or set_distance(polys[i], polys[j]) < min_separation
                )
                if too_close:
                    parts[i] = parts[i] + parts[j]
                    del parts[j]
                    merged = True
                    break
            if merged:
                break
        if not merged:
            return polys


def cluster_cover(faults: CellSet, min_separation: int = 2) -> FaultCover:
    """Best proximity-clustering cover of a fault set.

    Sweeps the clustering threshold over every distinct pairwise
    Chebyshev distance (plus the single-cluster baseline) and returns
    the cover with the fewest nonfaulty nodes.

    Raises
    ------
    PartitionError
        If ``faults`` is empty.
    """
    if not faults:
        raise PartitionError("no faults to cover")
    coords = faults.coords()
    xs = np.array([c[0] for c in coords])
    ys = np.array([c[1] for c in coords])
    cheb = np.maximum(
        np.abs(xs[:, None] - xs[None, :]), np.abs(ys[:, None] - ys[None, :])
    )
    thresholds = sorted(set(cheb[np.triu_indices(len(coords), k=1)].tolist()))
    # t=0 means "every fault its own group"; the repair loop will merge
    # whatever violates separation, so it is always a valid starting point.
    candidates = [0] + [int(t) for t in thresholds]

    best: FaultCover | None = None
    for t in candidates:
        groups = _group_by_threshold(coords, t)
        polys = _polygons_for_groups(faults.shape, groups, min_separation)
        cover = FaultCover.build(faults, polys)
        if best is None or cover.num_nonfaulty < best.num_nonfaulty:
            best = cover
    assert best is not None
    return best
