"""Guillotine-cut heuristic for the open partition problem.

Recursively splits the fault set along the widest fault-free axis gap:
if some band of ``min_separation - 1`` or more consecutive columns (or
rows) inside the fault bounding box contains no fault, the faults on
either side can be covered by separate polygons whose bounding boxes —
and hence the polygons themselves — stay at least ``min_separation``
apart.  Leaves are covered by their minimal connected orthoconvex
polygon.

Guillotine cuts are the natural dual of the paper's Figure 1 (c)/(d)
remark that some disabled regions "can be further partitioned": a
region with an internal fault-free band is exactly such a case.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import PartitionError
from repro.geometry.cells import CellSet
from repro.geometry.staircase import connect_orthoconvex
from repro.partition.evaluate import FaultCover

__all__ = ["guillotine_cover"]


def _best_gap(mask: np.ndarray, axis: int, need: int) -> tuple[int, int] | None:
    """Widest internal run of fault-free lines along ``axis``.

    Returns ``(start, length)`` of the run (in occupied-bounding-box
    coordinates) or None if no run of length >= ``need`` exists.
    """
    occupied = mask.any(axis=1 - axis)
    idx = np.nonzero(occupied)[0]
    lo, hi = int(idx[0]), int(idx[-1])
    best: tuple[int, int] | None = None
    run_start = None
    for pos in range(lo + 1, hi + 1):
        if not occupied[pos]:
            if run_start is None:
                run_start = pos
        else:
            if run_start is not None:
                length = pos - run_start
                if length >= need and (best is None or length > best[1]):
                    best = (run_start, length)
                run_start = None
    return best


def _split(cells: CellSet, min_separation: int) -> List[CellSet]:
    """Recursive guillotine decomposition of a fault set."""
    need = max(1, min_separation - 1)
    mask = cells.mask
    for axis in (0, 1):
        gap = _best_gap(mask, axis, need)
        if gap is None:
            continue
        start, length = gap
        low = mask.copy()
        high = mask.copy()
        if axis == 0:
            low[start:, :] = False
            high[: start + length, :] = False
        else:
            low[:, start:] = False
            high[:, : start + length] = False
        return _split(CellSet(low), min_separation) + _split(
            CellSet(high), min_separation
        )
    return [cells]


def guillotine_cover(faults: CellSet, min_separation: int = 2) -> FaultCover:
    """Cover a fault set via recursive fault-free-band splitting.

    Raises
    ------
    PartitionError
        If ``faults`` is empty.
    """
    if not faults:
        raise PartitionError("no faults to cover")
    parts = _split(faults, min_separation)
    polygons = [connect_orthoconvex(p) for p in parts]
    return FaultCover.build(faults, polygons)
