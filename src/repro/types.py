"""Shared type aliases and tiny value helpers used across subpackages.

The library standardises on the paper's addressing convention: a node
``u`` has address ``(u_x, u_y)`` with ``x`` the horizontal dimension
(dimension 0) and ``y`` the vertical dimension (dimension 1).  All NumPy
grids are therefore indexed ``grid[x, y]`` and have shape
``(width, height)``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import numpy.typing as npt

#: A node address ``(x, y)`` in a 2-D mesh or torus.
Coord = Tuple[int, int]

#: A boolean label grid of shape ``(width, height)`` indexed ``[x, y]``.
BoolGrid = npt.NDArray[np.bool_]

#: An integer grid of shape ``(width, height)`` indexed ``[x, y]``.
IntGrid = npt.NDArray[np.int64]


def manhattan(u: Coord, v: Coord) -> int:
    """Manhattan (L1) distance between two mesh addresses.

    This is the paper's ``d(u, v) = |u_x - v_x| + |u_y - v_y|``.
    """
    return abs(u[0] - v[0]) + abs(u[1] - v[1])


def as_bool_grid(arr: npt.ArrayLike, shape: Tuple[int, int] | None = None) -> BoolGrid:
    """Coerce ``arr`` to a C-contiguous boolean grid, optionally checking shape.

    Raises
    ------
    ValueError
        If ``shape`` is given and does not match.
    """
    out = np.ascontiguousarray(arr, dtype=bool)
    if shape is not None and out.shape != tuple(shape):
        raise ValueError(f"expected grid of shape {tuple(shape)}, got {out.shape}")
    return out
