"""The two-phase labeling pipeline: faults -> blocks -> polygons.

:func:`label_mesh` is the library's main entry point.  Given a topology
and a fault set it runs

* **phase 1** — safe/unsafe labeling (Definition 2a or 2b) and faulty
  block extraction, then
* **phase 2** — enabled/disabled labeling (Definition 3) and disabled
  region (orthogonal convex polygon) extraction,

on either execution backend:

* ``"vectorized"`` (default) — NumPy Jacobi fixpoints; fast, used by the
  large Figure-5 sweeps;
* ``"distributed"`` — per-node programs on the synchronous fabric; the
  faithful reproduction of the paper's protocol, also reporting message
  statistics.

Both produce identical labels and round counts (property-tested).  The
returned :class:`LabelingResult` carries the label planes, the blocks,
the regions, round counts and the Figure-5 ratio.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import List, Literal, Optional, Tuple

import numpy as np

from repro.core.blocks import FaultyBlock, extract_blocks
from repro.core.distributed import distributed_enabled, distributed_unsafe
from repro.core.enabling import enabled_fixpoint
from repro.core.frontier import enabled_fixpoint_sparse, unsafe_fixpoint_sparse
from repro.core.regions import DisabledRegion, extract_regions
from repro.core.safety import unsafe_fixpoint
from repro.core.sharded import enabled_fixpoint_sharded, unsafe_fixpoint_sharded
from repro.core.status import LabelGrid, SafetyDefinition
from repro.fabric.channel import ChannelModel
from repro.fabric.stats import RunStats
from repro.faults.faultset import FaultSet
from repro.faults.schedule import FaultSchedule
from repro.mesh.tiling import parse_shard_spec
from repro.mesh.topology import Topology
from repro.obs.telemetry import Telemetry

__all__ = ["LabelingResult", "assemble_result", "label_mesh"]

#: Shared no-op context for the telemetry-off span sites.
_NULL_SPAN = nullcontext()

Backend = Literal["vectorized", "distributed"]
Method = Literal["dense", "frontier", "auto"]
GeometryBackend = Literal["vectorized", "reference"]

#: ``auto`` picks the frontier kernel when the cells that can change are
#: at most this fraction of the grid; denser instances stay on the dense
#: Jacobi kernel, whose whole-grid passes amortise better.
_AUTO_SPARSITY = 8


def _resolve_method(method: str, topology: Topology, active_cells: int) -> str:
    """Pick the vectorized kernel for one phase.

    ``active_cells`` is the number of cells that could possibly change
    in the phase (faulty cells for phase 1, unsafe nonfaulty cells for
    phase 2) — the quantity the frontier's work actually scales with.
    """
    if method == "auto":
        if active_cells * _AUTO_SPARSITY <= topology.num_nodes:
            return "frontier"
        return "dense"
    if method not in ("dense", "frontier"):
        raise ValueError(f"unknown method {method!r}")
    return method


@dataclass(frozen=True)
class LabelingResult:
    """Everything the two-phase pipeline produced for one fault pattern.

    Attributes
    ----------
    topology, faults, definition:
        The inputs.
    labels:
        The three label planes (faulty/unsafe/enabled).
    blocks:
        Faulty blocks (disjoint rectangles) from phase 1.
    regions:
        Disabled regions (orthogonal convex polygons) from phase 2.
    rounds_phase1, rounds_phase2:
        Rounds of status change each phase needed — the Figure 5 (a)/(b)
        quantities.
    backend:
        Which execution backend produced the labels.
    method:
        Which vectorized kernels ran: ``"dense"``, ``"frontier"``, or a
        per-phase mix like ``"frontier+dense"`` chosen by ``"auto"``.
        ``"n/a"`` for the distributed backend.
    stats_phase1, stats_phase2:
        Fabric message statistics (distributed backend only).
    unwrap_shift:
        Torus only: the cyclic shift ``(dx, dy)`` that was applied to
        every label plane (and to ``faults``) after labeling, chosen so
        that a fault-free column and row sit at the seam.  Labeling
        commutes with cyclic shifts on a torus, so the shifted frame is
        an exact, planar view of the torus labels in which blocks and
        regions never straddle the wrap-around boundary.  Map a cell
        back to machine coordinates with
        ``((x - dx) % width, (y - dy) % height)``.  Always ``(0, 0)``
        on a mesh.
    """

    topology: Topology
    faults: FaultSet
    definition: SafetyDefinition
    labels: LabelGrid
    blocks: List[FaultyBlock]
    regions: List[DisabledRegion]
    rounds_phase1: int
    rounds_phase2: int
    backend: str = "vectorized"
    stats_phase1: Optional[RunStats] = field(default=None, compare=False)
    stats_phase2: Optional[RunStats] = field(default=None, compare=False)
    unwrap_shift: Tuple[int, int] = (0, 0)
    method: str = field(default="dense", compare=False)
    geometry_backend: str = field(default="vectorized", compare=False)

    @property
    def num_unsafe_nonfaulty(self) -> int:
        """Nonfaulty nodes imprisoned by phase 1 (over the whole mesh)."""
        return int(self.labels.unsafe_nonfaulty.sum())

    @property
    def num_activated(self) -> int:
        """Nonfaulty nodes freed by phase 2 (over the whole mesh)."""
        return int(self.labels.activated.sum())

    @property
    def enabled_ratio(self) -> float:
        """Fraction of unsafe-but-nonfaulty nodes that phase 2 enabled —
        the paper's Figure 5 (c)/(d) metric, pooled over the whole mesh.
        Defined as 1.0 when phase 1 imprisoned nobody."""
        denom = self.num_unsafe_nonfaulty
        return 1.0 if denom == 0 else self.num_activated / denom

    def per_block_enabled_ratios(self) -> List[float]:
        """The Figure-5 ratio evaluated per *reducible* faulty block.

        For each block containing at least one nonfaulty node, the
        fraction of its nonfaulty members that ended up enabled.  The
        paper averages these per-block percentages.
        """
        enabled = self.labels.enabled
        ratios: List[float] = []
        for b in self.blocks:
            if not b.reducible:
                continue
            nonfaulty = b.cells.mask & ~self.labels.faulty
            freed = int((nonfaulty & enabled).sum())
            ratios.append(freed / int(nonfaulty.sum()))
        return ratios

    def summary(self) -> dict:
        """Compact scalar summary used by the experiment harness."""
        return {
            "f": len(self.faults),
            "definition": self.definition.value,
            "backend": self.backend,
            "method": self.method,
            "rounds_phase1": self.rounds_phase1,
            "rounds_phase2": self.rounds_phase2,
            "geometry_backend": self.geometry_backend,
            "num_blocks": len(self.blocks),
            "num_regions": len(self.regions),
            "unsafe_nonfaulty": self.num_unsafe_nonfaulty,
            "activated": self.num_activated,
            "enabled_ratio": self.enabled_ratio,
        }


def label_mesh(
    topology: Topology,
    faults: FaultSet,
    definition: SafetyDefinition = SafetyDefinition.DEF_2B,
    backend: Backend = "vectorized",
    chatty: bool = False,
    method: Method = "auto",
    schedule: Optional[FaultSchedule] = None,
    channel: Optional[ChannelModel] = None,
    telemetry: Optional[Telemetry] = None,
    geometry_backend: GeometryBackend = "vectorized",
    shard: Optional[str] = None,
    jobs: int = 1,
) -> LabelingResult:
    """Run the full two-phase pipeline.

    Parameters
    ----------
    topology:
        Mesh or torus of the fault set's shape.
    faults:
        The failed nodes.
    definition:
        Phase-1 unsafe rule (Definition 2a or 2b; the paper's algorithm
        statement uses 2b).
    backend:
        ``"vectorized"`` or ``"distributed"`` (see module docstring).
    chatty:
        Distributed backend only: re-broadcast status every round, as in
        the paper's literal pseudo-code, instead of only on change.
    method:
        Vectorized backend only: ``"dense"`` runs the whole-grid Jacobi
        kernels, ``"frontier"`` the sparse frontier kernels
        (:mod:`repro.core.frontier` — identical labels and round
        counts, work proportional to the affected area), and ``"auto"``
        (default) picks per phase by the sparsity of the instance.
        Ignored by the distributed backend.
    schedule:
        Distributed backend only: a
        :class:`~repro.faults.schedule.FaultSchedule` of crashes that
        strike *during* phase 1.  Phase 1 self-stabilizes through them;
        phase 2 then runs on the settled (final) fault set seeded from
        the re-converged phase-1 labels — the standard restart
        composition, since the enable rule is not monotone under fault
        growth.  The result describes the final fault set, so it equals
        a from-scratch run on those faults (property tested).
    channel:
        Distributed backend only: a lossy/duplicating/jittering
        :class:`~repro.fabric.channel.ChannelModel` applied to both
        phases.  Must be fair for convergence guarantees; see
        :mod:`repro.fabric.channel`.
    telemetry:
        Optional :class:`~repro.obs.telemetry.Telemetry`.  The pipeline
        emits ``phase_transition`` events around each phase, wraps the
        phases in ``phase_unsafe`` / ``phase_enable`` profiling spans
        (tagged with the kernel that ran) and the extraction steps in
        ``extract_blocks`` / ``extract_regions`` spans and events (so
        ``repro obs summarize`` attributes extraction time per run), and
        threads phase-labeled children into the frontier kernels and the
        fabric engines.  ``None`` (default) disables all instrumentation.
    geometry_backend:
        Component labeling and extraction implementation:
        ``"vectorized"`` (default) runs the union-find label pass with
        bincount reductions, ``"reference"`` the per-cell BFS oracle.
        Labels, blocks and regions are bit-for-bit identical (property
        tested); the reference backend exists for cross-checking.
    shard:
        Vectorized backend only: a tile spec (``"KxK"`` or ``"auto"``)
        switches both phases to the tile-sharded halo-exchange fixpoints
        of :mod:`repro.core.sharded` — identical labels (property
        tested), with ``rounds_phase1`` / ``rounds_phase2`` counting
        **tile rounds** (halo-exchange generations) instead of Jacobi
        rounds.  ``None`` (default) keeps the single-array kernels.
    jobs:
        Shard mode only: worker processes for tile solves, dispatched
        through the warm-pool executor over shared-memory planes (no
        label plane is pickled).  ``1`` solves tiles serially; any
        value yields identical labels.

    Returns
    -------
    LabelingResult
    """
    if faults.shape != topology.shape:
        raise ValueError(
            f"fault shape {faults.shape} != topology shape {topology.shape}"
        )
    if geometry_backend not in ("vectorized", "reference"):
        raise ValueError(f"unknown geometry backend {geometry_backend!r}")
    dynamic = (schedule is not None and bool(schedule)) or (
        channel is not None and not channel.is_reliable
    )
    if dynamic and backend != "distributed":
        raise ValueError(
            "fault schedules and lossy channels require backend='distributed'"
        )
    if shard is not None and backend != "vectorized":
        raise ValueError("shard= requires backend='vectorized'")
    faulty = faults.mask
    tel = telemetry
    events_on = tel is not None and tel.wants("info")
    if backend == "vectorized" and shard is not None:
        tiling = parse_shard_spec(shard, topology.shape, jobs)
        if events_on:
            tel.emit("phase_transition", phase="unsafe", status="start")
        tel1 = tel.child(phase="unsafe") if tel is not None else None
        span1 = (
            tel.span("phase_unsafe", kernel="sharded")
            if tel is not None
            else _NULL_SPAN
        )
        with span1:
            unsafe, rounds1 = unsafe_fixpoint_sharded(
                topology, faulty, definition,
                tiling=tiling, jobs=jobs, method=method, telemetry=tel1,
            )
        if events_on:
            tel.emit(
                "phase_transition", phase="unsafe", status="end", rounds=rounds1
            )
        if events_on:
            tel.emit("phase_transition", phase="enable", status="start")
        tel2 = tel.child(phase="enable") if tel is not None else None
        span2 = (
            tel.span("phase_enable", kernel="sharded")
            if tel is not None
            else _NULL_SPAN
        )
        with span2:
            enabled, rounds2 = enabled_fixpoint_sharded(
                topology, faulty, unsafe,
                tiling=tiling, jobs=jobs, method=method, telemetry=tel2,
            )
        if events_on:
            tel.emit(
                "phase_transition", phase="enable", status="end", rounds=rounds2
            )
        method_used = (
            f"sharded[{tiling.tile_width}x{tiling.tile_height},jobs={jobs}]"
        )
        stats1 = stats2 = None
    elif backend == "vectorized":
        m1 = _resolve_method(method, topology, int(np.count_nonzero(faulty)))
        if events_on:
            tel.emit("phase_transition", phase="unsafe", status="start")
        tel1 = tel.child(phase="unsafe") if tel is not None else None
        span1 = tel.span("phase_unsafe", kernel=m1) if tel is not None else _NULL_SPAN
        with span1:
            if m1 == "frontier":
                unsafe, rounds1 = unsafe_fixpoint_sparse(
                    topology, faulty, definition, telemetry=tel1
                )
            else:
                unsafe, rounds1 = unsafe_fixpoint(topology, faulty, definition)
        if events_on:
            tel.emit(
                "phase_transition", phase="unsafe", status="end", rounds=rounds1
            )
        m2 = _resolve_method(
            method, topology, int(np.count_nonzero(unsafe & ~faulty))
        )
        if events_on:
            tel.emit("phase_transition", phase="enable", status="start")
        tel2 = tel.child(phase="enable") if tel is not None else None
        span2 = tel.span("phase_enable", kernel=m2) if tel is not None else _NULL_SPAN
        with span2:
            if m2 == "frontier":
                enabled, rounds2 = enabled_fixpoint_sparse(
                    topology, faulty, unsafe, telemetry=tel2
                )
            else:
                enabled, rounds2 = enabled_fixpoint(topology, faulty, unsafe)
        if events_on:
            tel.emit(
                "phase_transition", phase="enable", status="end", rounds=rounds2
            )
        method_used = m1 if m1 == m2 else f"{m1}+{m2}"
        stats1 = stats2 = None
    elif backend == "distributed":
        if events_on:
            tel.emit("phase_transition", phase="unsafe", status="start")
        span1 = (
            tel.span("phase_unsafe", kernel="fabric")
            if tel is not None
            else _NULL_SPAN
        )
        with span1:
            unsafe, stats1, _ = distributed_unsafe(
                topology, faults, definition, chatty=chatty,
                schedule=schedule, channel=channel,
                telemetry=tel.child(phase="unsafe") if tel is not None else None,
            )
        if events_on:
            tel.emit(
                "phase_transition",
                phase="unsafe",
                status="end",
                rounds=stats1.rounds,
            )
        if schedule is not None and schedule:
            # Crashes settled during phase 1; phase 2 runs on the final
            # fault set, seeded from the re-converged phase-1 labels.
            faults = schedule.check_shape(faults.shape).final_faults(faults)
            faulty = faults.mask
        if events_on:
            tel.emit("phase_transition", phase="enable", status="start")
        span2 = (
            tel.span("phase_enable", kernel="fabric")
            if tel is not None
            else _NULL_SPAN
        )
        with span2:
            enabled, stats2, _ = distributed_enabled(
                topology, faults, unsafe, chatty=chatty, channel=channel,
                telemetry=tel.child(phase="enable") if tel is not None else None,
            )
        if events_on:
            tel.emit(
                "phase_transition",
                phase="enable",
                status="end",
                rounds=stats2.rounds,
            )
        rounds1, rounds2 = stats1.rounds, stats2.rounds
        method_used = "n/a"
    else:
        raise ValueError(f"unknown backend {backend!r}")

    return assemble_result(
        topology=topology,
        faults=faults,
        definition=definition,
        faulty=faulty,
        unsafe=unsafe,
        enabled=enabled,
        rounds_phase1=rounds1,
        rounds_phase2=rounds2,
        backend=backend,
        stats_phase1=stats1,
        stats_phase2=stats2,
        method=method_used,
        geometry_backend=geometry_backend,
        telemetry=telemetry,
    )


def assemble_result(
    topology: Topology,
    faults: FaultSet,
    definition: SafetyDefinition,
    faulty: "np.ndarray",
    unsafe: "np.ndarray",
    enabled: "np.ndarray",
    rounds_phase1: int,
    rounds_phase2: int,
    backend: str = "vectorized",
    stats_phase1: Optional[RunStats] = None,
    stats_phase2: Optional[RunStats] = None,
    method: str = "n/a",
    geometry_backend: GeometryBackend = "vectorized",
    telemetry: Optional[Telemetry] = None,
) -> LabelingResult:
    """Turn converged label planes into a full :class:`LabelingResult`.

    The shared tail of the pipeline: torus unwrapping, label-plane
    packaging, and block/region extraction (with the extraction spans
    and events).  Used by :func:`label_mesh` and by the incremental
    engines (:mod:`repro.core.incremental`, :mod:`repro.service`) whose
    planes converged by other means.  On a torus the planes are rolled
    to the unwrap frame, so callers must pass copies they do not need.
    """
    tel = telemetry
    events_on = tel is not None and tel.wants("info")
    unwrap_shift = (0, 0)
    if topology.wraps:
        unwrap_shift = _torus_unwrap_shift(unsafe)
        dx, dy = unwrap_shift
        faulty = np.roll(np.roll(faulty, dx, axis=0), dy, axis=1)
        unsafe = np.roll(np.roll(unsafe, dx, axis=0), dy, axis=1)
        enabled = np.roll(np.roll(enabled, dx, axis=0), dy, axis=1)
        faults = FaultSet.from_mask(faulty)

    labels = LabelGrid(faulty=faulty, unsafe=unsafe, enabled=enabled)
    if events_on:
        tel.emit("phase_transition", phase="extract_blocks", status="start")
    span_b = (
        tel.span("extract_blocks", backend=geometry_backend)
        if tel is not None
        else _NULL_SPAN
    )
    with span_b:
        blocks = extract_blocks(unsafe, faulty, backend=geometry_backend)
    if events_on:
        tel.emit(
            "phase_transition",
            phase="extract_blocks",
            status="end",
            count=len(blocks),
        )
    if events_on:
        tel.emit("phase_transition", phase="extract_regions", status="start")
    span_r = (
        tel.span("extract_regions", backend=geometry_backend)
        if tel is not None
        else _NULL_SPAN
    )
    with span_r:
        regions = extract_regions(
            labels.disabled, faulty, backend=geometry_backend
        )
    if events_on:
        tel.emit(
            "phase_transition",
            phase="extract_regions",
            status="end",
            count=len(regions),
        )
    return LabelingResult(
        topology=topology,
        faults=faults,
        definition=definition,
        labels=labels,
        blocks=blocks,
        regions=regions,
        rounds_phase1=rounds_phase1,
        rounds_phase2=rounds_phase2,
        backend=backend,
        stats_phase1=stats_phase1,
        stats_phase2=stats_phase2,
        unwrap_shift=unwrap_shift,
        method=method,
        geometry_backend=geometry_backend,
    )


def _torus_unwrap_shift(unsafe: "np.ndarray") -> Tuple[int, int]:
    """Cyclic shift placing an all-safe column at x=0 and row at y=0.

    With the seam column/row empty of unsafe nodes, grid-frame connected
    components coincide with torus components and no block or region
    straddles the boundary.

    Raises
    ------
    ValueError
        If every column (or row) holds an unsafe node — the fault
        pattern wraps all the way around and has no planar view.  The
        paper's sparse-fault regime (f <= n on an n x n torus) cannot
        trigger this.
    """
    col_free = ~unsafe.any(axis=1)
    row_free = ~unsafe.any(axis=0)
    if not col_free.any() or not row_free.any():
        raise ValueError(
            "cannot unwrap torus labels: unsafe nodes occupy every column or row"
        )
    x0 = int(np.argmax(col_free))
    y0 = int(np.argmax(row_free))
    return (-x0 % unsafe.shape[0], -y0 % unsafe.shape[1])
