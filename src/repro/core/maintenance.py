"""Dynamic maintenance: relabeling as faults appear and heal.

The paper's Section 1 notes that faulty blocks "can be easily
established **and maintained** through message exchanges among
neighboring nodes".  :class:`MaintainedLabeling` is that maintenance
story's historical front door: it holds the current labels and absorbs
fault deltas incrementally, with a per-update :class:`UpdateReport`
history.  Since the incremental engine landed it is a thin wrapper over
:class:`~repro.core.incremental.IncrementalLabeling`, which supplies:

* **Warm-started phase 1** — the unsafe rule is monotone in the fault
  set, so the old labels are a valid under-approximation after an
  injection and only the changed neighbourhood is re-propagated.

* **Localized phase 2** — enabled status is *anti*-monotone in the
  fault set, so it cannot be warm-started globally; but faulty blocks
  are mutually independent for the enable rule (their exteriors are
  always enabled), so only the blocks whose membership or fault set
  changed are re-solved — the rest of the mesh is never touched, and
  repeated block shapes are served from a
  :class:`~repro.core.incremental.BlockEnableCache`.
  ``UpdateReport.rounds_phase2`` counts the localized work actually
  done (the maximum rounds any re-solved block needed; zero when every
  block came from the cache), not a from-scratch global recompute.

* **Repair** — the bounded un-label wave: the block that lost a fault
  is cleared, its surviving faults re-asserted, and the forward rule
  re-run on that frontier only.  See :meth:`MaintainedLabeling.repair`.

The wrapper keeps its original mesh-only contract (the torus story,
including seam-wrapping blocks, lives on the engine and on
:class:`~repro.service.LabelingService`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.blocks import FaultyBlock, extract_blocks
from repro.core.incremental import BlockEnableCache, DeltaReport, IncrementalLabeling
from repro.core.pipeline import LabelingResult, assemble_result
from repro.core.regions import DisabledRegion, extract_regions
from repro.core.status import LabelGrid, SafetyDefinition
from repro.errors import FaultModelError
from repro.faults.faultset import FaultSet
from repro.mesh.topology import Topology
from repro.types import Coord

__all__ = ["MaintainedLabeling", "UpdateReport"]


@dataclass(frozen=True)
class UpdateReport:
    """What one incremental update cost and changed.

    Round counts reflect localized work: phase 1 is the warm-started
    wave's changing rounds, phase 2 the maximum rounds any re-solved
    block needed (zero when the block cache served everything).
    """

    new_faults: Tuple[Coord, ...]
    rounds_phase1: int
    rounds_phase2: int
    newly_unsafe: int       # nodes that flipped safe -> unsafe
    newly_disabled: int     # nonfaulty nodes that lost enabled status
    newly_activated: int    # nonfaulty nodes that gained enabled status
    repaired: Tuple[Coord, ...] = ()
    newly_safe: int = 0     # nodes that flipped unsafe -> safe (repair)


class MaintainedLabeling:
    """Continuously maintained two-phase labels over a changing fault set.

    Parameters
    ----------
    topology:
        The machine (mesh only: this wrapper predates torus support and
        keeps its contract; use
        :class:`~repro.core.incremental.IncrementalLabeling` or the
        service for tori).
    definition:
        Phase-1 unsafe rule.
    cache:
        Optional shared :class:`~repro.core.incremental.BlockEnableCache`.
    """

    def __init__(
        self,
        topology: Topology,
        definition: SafetyDefinition = SafetyDefinition.DEF_2B,
        cache: Optional[BlockEnableCache] = None,
    ):
        if topology.wraps:
            raise FaultModelError(
                "MaintainedLabeling supports meshes only; maintain tori "
                "with IncrementalLabeling or the labeling service"
            )
        self._engine = IncrementalLabeling(topology, definition, cache=cache)
        self._history: List[UpdateReport] = []

    # -- views -----------------------------------------------------------------

    @property
    def topology(self) -> Topology:
        return self._engine.topology

    @property
    def engine(self) -> IncrementalLabeling:
        """The underlying incremental engine."""
        return self._engine

    @property
    def faults(self) -> FaultSet:
        """The accumulated fault set."""
        return self._engine.faults

    @property
    def labels(self) -> LabelGrid:
        """Current label planes."""
        return self._engine.labels

    @property
    def blocks(self) -> List[FaultyBlock]:
        """Current faulty blocks."""
        labels = self._engine.labels
        return extract_blocks(labels.unsafe, labels.faulty)

    @property
    def regions(self) -> List[DisabledRegion]:
        """Current disabled regions."""
        labels = self._engine.labels
        return extract_regions(labels.disabled, labels.faulty)

    @property
    def history(self) -> List[UpdateReport]:
        """Reports of every update so far, in order."""
        return list(self._history)

    def snapshot(self) -> LabelingResult:
        """A full :class:`LabelingResult` of the current state.

        Equivalent to from-scratch labeling of the accumulated faults
        (an invariant the tests enforce); rounds are the totals of the
        incremental updates, which is what the maintenance actually
        spent.
        """
        engine = self._engine
        labels = engine.labels
        return assemble_result(
            topology=engine.topology,
            faults=engine.faults,
            definition=engine.definition,
            faulty=labels.faulty,
            unsafe=labels.unsafe,
            enabled=labels.enabled,
            rounds_phase1=sum(r.rounds_phase1 for r in self._history),
            rounds_phase2=sum(r.rounds_phase2 for r in self._history),
            backend="maintained",
            method="incremental",
        )

    # -- updates ----------------------------------------------------------------

    def inject(self, new_faults: FaultSet | List[Coord]) -> UpdateReport:
        """Absorb newly failed nodes and restore both label fixpoints.

        Returns the per-injection report.  Injecting already-faulty
        nodes is a no-op for those nodes; injecting an empty set costs
        zero rounds.
        """
        coords = [(int(c[0]), int(c[1])) for c in new_faults]
        delta = self._engine.inject(coords)
        return self._record(tuple(coords), (), delta)

    def repair(self, healed: FaultSet | List[Coord]) -> UpdateReport:
        """Absorb healed nodes via the bounded un-label wave.

        The blocks that contained the repaired faults are cleared, their
        surviving faults re-asserted, and the forward rule re-run on
        that frontier only — cells elsewhere are untouched.  Repairing a
        non-faulty node is a no-op for that node.
        """
        coords = [(int(c[0]), int(c[1])) for c in healed]
        delta = self._engine.repair(coords)
        return self._record((), tuple(coords), delta)

    def _record(
        self,
        injected: Tuple[Coord, ...],
        repaired: Tuple[Coord, ...],
        delta: DeltaReport,
    ) -> UpdateReport:
        report = UpdateReport(
            new_faults=injected,
            rounds_phase1=delta.rounds_phase1,
            rounds_phase2=delta.rounds_phase2,
            newly_unsafe=delta.newly_unsafe,
            newly_disabled=delta.newly_disabled,
            newly_activated=delta.newly_activated,
            repaired=repaired,
            newly_safe=delta.newly_safe,
        )
        self._history.append(report)
        return report

    def verify_against_scratch(self) -> bool:
        """Whether the maintained labels equal from-scratch labeling."""
        return self._engine.verify_against_scratch()
