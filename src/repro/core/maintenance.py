"""Dynamic maintenance: relabeling as new faults appear.

The paper's Section 1 notes that faulty blocks "can be easily
established **and maintained** through message exchanges among
neighboring nodes".  This module implements that maintenance story: a
:class:`MaintainedLabeling` holds the current labels and absorbs new
faults incrementally.

* **Phase 1 is warm-startable.** The unsafe rule is monotone in the
  fault set, so the old unsafe labels remain a valid under-approximation
  after new faults appear; iterating the rule from ``old_unsafe ∪
  new_faults`` reaches exactly the from-scratch fixpoint, usually in
  far fewer rounds (only the neighbourhood of the new faults is still
  moving).  On a real machine this is precisely what happens: nodes
  keep their labels and the change ripples outward from the new fault.

* **Phase 2 must re-run.** Enabled status is *anti*-monotone in the
  fault set (a new fault can disable previously activated nodes), so
  disabled regions are recomputed from the fresh phase-1 labels — also
  matching the machine, where the enable protocol restarts inside any
  block whose membership changed.

Faults never heal in this model, mirroring the paper's fail-stop
assumption; recovering nodes would require a reset of both phases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.blocks import FaultyBlock, extract_blocks
from repro.core.enabling import enabled_fixpoint
from repro.core.pipeline import LabelingResult, label_mesh
from repro.core.regions import DisabledRegion, extract_regions
from repro.core.safety import unsafe_fixpoint, unsafe_step
from repro.core.status import LabelGrid, SafetyDefinition
from repro.errors import ConvergenceError, FaultModelError
from repro.faults.faultset import FaultSet
from repro.mesh.topology import Topology
from repro.types import BoolGrid, Coord

__all__ = ["MaintainedLabeling", "UpdateReport"]


@dataclass(frozen=True)
class UpdateReport:
    """What one incremental fault injection cost and changed."""

    new_faults: Tuple[Coord, ...]
    rounds_phase1: int
    rounds_phase2: int
    newly_unsafe: int       # nodes that flipped safe -> unsafe
    newly_disabled: int     # nonfaulty nodes that lost enabled status
    newly_activated: int    # nonfaulty nodes that gained enabled status


class MaintainedLabeling:
    """Continuously maintained two-phase labels over a growing fault set.

    Parameters
    ----------
    topology:
        The machine (mesh only: incremental maintenance relies on the
        grid-frame extractors; label a torus from scratch instead).
    definition:
        Phase-1 unsafe rule.
    """

    def __init__(
        self,
        topology: Topology,
        definition: SafetyDefinition = SafetyDefinition.DEF_2B,
    ):
        if topology.wraps:
            raise FaultModelError(
                "incremental maintenance supports meshes only; "
                "relabel tori from scratch with label_mesh()"
            )
        self._topology = topology
        self._definition = definition
        self._faulty: BoolGrid = np.zeros(topology.shape, dtype=bool)
        self._unsafe: BoolGrid = self._faulty.copy()
        self._enabled: BoolGrid = ~self._faulty
        self._history: List[UpdateReport] = []

    # -- views -----------------------------------------------------------------

    @property
    def topology(self) -> Topology:
        return self._topology

    @property
    def faults(self) -> FaultSet:
        """The accumulated fault set."""
        return FaultSet.from_mask(self._faulty)

    @property
    def labels(self) -> LabelGrid:
        """Current label planes."""
        return LabelGrid(
            faulty=self._faulty.copy(),
            unsafe=self._unsafe.copy(),
            enabled=self._enabled.copy(),
        )

    @property
    def blocks(self) -> List[FaultyBlock]:
        """Current faulty blocks."""
        return extract_blocks(self._unsafe, self._faulty)

    @property
    def regions(self) -> List[DisabledRegion]:
        """Current disabled regions."""
        return extract_regions(self._unsafe & ~self._enabled, self._faulty)

    @property
    def history(self) -> List[UpdateReport]:
        """Reports of every injection so far, in order."""
        return list(self._history)

    def snapshot(self) -> LabelingResult:
        """A full :class:`LabelingResult` of the current state.

        Equivalent to from-scratch labeling of the accumulated faults
        (an invariant the tests enforce); rounds are the totals of the
        incremental updates, which is what the maintenance actually
        spent.
        """
        return LabelingResult(
            topology=self._topology,
            faults=self.faults,
            definition=self._definition,
            labels=self.labels,
            blocks=self.blocks,
            regions=self.regions,
            rounds_phase1=sum(r.rounds_phase1 for r in self._history),
            rounds_phase2=sum(r.rounds_phase2 for r in self._history),
            backend="maintained",
        )

    # -- updates ----------------------------------------------------------------

    def inject(self, new_faults: FaultSet | List[Coord]) -> UpdateReport:
        """Absorb newly failed nodes and restore both label fixpoints.

        Returns the per-injection report.  Injecting already-faulty
        nodes is a no-op for those nodes; injecting an empty set costs
        zero rounds.
        """
        coords = (
            list(new_faults)
            if not isinstance(new_faults, FaultSet)
            else list(new_faults)
        )
        for c in coords:
            self._topology.check(c)

        before_unsafe = self._unsafe
        before_enabled = self._enabled

        for c in coords:
            self._faulty[c] = True

        # Warm-started phase 1: resume the monotone iteration from the
        # old labels plus the new faults.
        unsafe = before_unsafe | self._faulty
        rounds1 = 0
        budget = self._topology.num_nodes + 2
        for _ in range(budget + 1):
            nxt = unsafe_step(self._topology, self._faulty, unsafe, self._definition)
            if np.array_equal(nxt, unsafe):
                break
            unsafe = nxt
            rounds1 += 1
        else:
            raise ConvergenceError("incremental phase 1 failed to converge")

        # Phase 2 from scratch on the new phase-1 labels.
        enabled, rounds2 = enabled_fixpoint(self._topology, self._faulty, unsafe)

        report = UpdateReport(
            new_faults=tuple(coords),
            rounds_phase1=rounds1,
            rounds_phase2=rounds2,
            newly_unsafe=int((unsafe & ~before_unsafe & ~self._faulty).sum()),
            newly_disabled=int(
                (before_enabled & ~enabled & ~self._faulty).sum()
            ),
            newly_activated=int((enabled & ~before_enabled).sum()),
        )
        self._unsafe = unsafe
        self._enabled = enabled
        self._history.append(report)
        return report

    def verify_against_scratch(self) -> bool:
        """Whether the maintained labels equal from-scratch labeling."""
        scratch = label_mesh(self._topology, self.faults, self._definition)
        return bool(
            np.array_equal(scratch.labels.unsafe, self._unsafe)
            and np.array_equal(scratch.labels.enabled, self._enabled)
        )
