"""The paper's core contribution: two-phase distributed labeling.

Phase 1 (Definitions 2a/2b) builds rectangular faulty blocks; phase 2
(Definition 3) shrinks them to orthogonal convex polygons by activating
nonfaulty nodes.  Both phases exist as a faithful distributed protocol
on the message-passing fabric and as a vectorized NumPy fixpoint, with
identical labels and round counts.  :func:`~repro.core.pipeline.label_mesh`
is the main entry point; :mod:`repro.core.theorems` mechanically checks
every claim of Section 4.
"""

from repro.core.blocks import FaultyBlock, extract_blocks
from repro.core.distributed import (
    async_enabled,
    async_unsafe,
    distributed_enabled,
    distributed_unsafe,
)
from repro.core.enabling import (
    enabled_fixpoint,
    enabled_step,
    recursive_enable_fixpoints,
)
from repro.core.frontier import enabled_fixpoint_sparse, unsafe_fixpoint_sparse
from repro.core.incremental import (
    BlockEnableCache,
    DeltaReport,
    IncrementalLabeling,
)
from repro.core.maintenance import MaintainedLabeling, UpdateReport
from repro.core.pipeline import LabelingResult, assemble_result, label_mesh
from repro.core.protocols import EnableProgram, SafetyProgram
from repro.core.regions import DisabledRegion, extract_regions
from repro.core.safety import unsafe_fixpoint, unsafe_step
from repro.core.sharded import enabled_fixpoint_sharded, unsafe_fixpoint_sharded
from repro.core.status import LabelGrid, NodeStatus, SafetyDefinition
from repro.core import theorems

__all__ = [
    "BlockEnableCache",
    "DeltaReport",
    "DisabledRegion",
    "EnableProgram",
    "FaultyBlock",
    "IncrementalLabeling",
    "LabelGrid",
    "LabelingResult",
    "MaintainedLabeling",
    "NodeStatus",
    "SafetyDefinition",
    "SafetyProgram",
    "UpdateReport",
    "assemble_result",
    "async_enabled",
    "async_unsafe",
    "distributed_enabled",
    "distributed_unsafe",
    "enabled_fixpoint",
    "enabled_fixpoint_sharded",
    "enabled_fixpoint_sparse",
    "enabled_step",
    "extract_blocks",
    "extract_regions",
    "label_mesh",
    "recursive_enable_fixpoints",
    "theorems",
    "unsafe_fixpoint",
    "unsafe_fixpoint_sharded",
    "unsafe_fixpoint_sparse",
    "unsafe_step",
]
