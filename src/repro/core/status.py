"""Node status vocabulary (Section 3 of the paper).

The paper classifies nodes along three orthogonal axes:

1. **faulty** vs **nonfaulty** — ground truth, fixed by the fault set;
2. **safe** vs **unsafe** — phase 1 (Definition 2a or 2b); every faulty
   node is unsafe, and connected unsafe nodes form the *faulty blocks*;
3. **enabled** vs **disabled** — phase 2 (Definition 3); every faulty
   node is disabled, every safe node enabled, and connected disabled
   nodes form the *disabled regions* (the orthogonal convex polygons).

A faulty node is necessarily unsafe and disabled; a nonfaulty node is
one of *safe+enabled*, *unsafe+enabled* (activated by phase 2) or
*unsafe+disabled*.  :class:`NodeStatus` enumerates those four composite
states and :class:`LabelGrid` packages the three label planes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import GeometryError
from repro.geometry.cells import CellSet
from repro.types import BoolGrid, Coord

__all__ = ["SafetyDefinition", "NodeStatus", "LabelGrid"]


class SafetyDefinition(enum.Enum):
    """Which phase-1 unsafe rule to use.

    * ``DEF_2A`` — a nonfaulty node is unsafe if it has **two or more**
      unsafe neighbours (Definition 2a; the classic faulty-block rule).
    * ``DEF_2B`` — a nonfaulty node is unsafe if it has an unsafe
      neighbour **in both dimensions** (Definition 2b; the enhanced rule
      that imprisons fewer nonfaulty nodes).

    The two rules differ exactly when a node has two unsafe neighbours
    along the *same* dimension: unsafe under 2a, safe under 2b.
    """

    DEF_2A = "2a"
    DEF_2B = "2b"

    @property
    def min_block_separation(self) -> int:
        """Guaranteed minimum distance between two faulty blocks
        (paper: at least 3 under Definition 2a, at least 2 under 2b)."""
        return 3 if self is SafetyDefinition.DEF_2A else 2


class NodeStatus(enum.Enum):
    """Composite per-node status after both labeling phases."""

    FAULTY = "faulty"                    # unsafe and disabled by definition
    SAFE_ENABLED = "safe"                # never entered a faulty block
    UNSAFE_ENABLED = "activated"         # in a faulty block, freed by phase 2
    UNSAFE_DISABLED = "disabled"         # in a faulty block and kept disabled

    @property
    def participates_in_routing(self) -> bool:
        """Only enabled nodes take part in routing (paper Section 3)."""
        return self in (NodeStatus.SAFE_ENABLED, NodeStatus.UNSAFE_ENABLED)


@dataclass(frozen=True)
class LabelGrid:
    """The three boolean label planes produced by the pipeline.

    Attributes
    ----------
    faulty:
        Ground-truth fault mask.
    unsafe:
        Phase-1 labels; a superset of ``faulty``.
    enabled:
        Phase-2 labels; disjoint from ``faulty`` and a superset of the
        safe (non-unsafe) nodes.
    """

    faulty: BoolGrid
    unsafe: BoolGrid
    enabled: BoolGrid

    def __post_init__(self) -> None:
        shapes = {self.faulty.shape, self.unsafe.shape, self.enabled.shape}
        if len(shapes) != 1:
            raise GeometryError(f"label planes disagree on shape: {shapes}")
        if np.any(self.faulty & ~self.unsafe):
            raise GeometryError("invariant violated: a faulty node is not unsafe")
        if np.any(self.faulty & self.enabled):
            raise GeometryError("invariant violated: a faulty node is enabled")
        if np.any(~self.unsafe & ~self.enabled):
            raise GeometryError("invariant violated: a safe node is disabled")

    @property
    def shape(self) -> Tuple[int, int]:
        """Grid shape ``(width, height)``."""
        return self.faulty.shape  # type: ignore[return-value]

    @property
    def disabled(self) -> BoolGrid:
        """Disabled nodes: unsafe and not enabled (includes all faults)."""
        return self.unsafe & ~self.enabled

    @property
    def activated(self) -> BoolGrid:
        """Nonfaulty nodes freed by phase 2: unsafe yet enabled."""
        return self.unsafe & self.enabled

    @property
    def unsafe_nonfaulty(self) -> BoolGrid:
        """Nonfaulty nodes imprisoned by phase 1 — the denominator of the
        paper's Figure 5 (c)/(d) ratio."""
        return self.unsafe & ~self.faulty

    def status_of(self, c: Coord) -> NodeStatus:
        """Composite status of one node."""
        x, y = c
        if self.faulty[x, y]:
            return NodeStatus.FAULTY
        if not self.unsafe[x, y]:
            return NodeStatus.SAFE_ENABLED
        return (
            NodeStatus.UNSAFE_ENABLED
            if self.enabled[x, y]
            else NodeStatus.UNSAFE_DISABLED
        )

    def counts(self) -> dict:
        """Node counts per composite status (plus the ratio inputs)."""
        faulty = int(self.faulty.sum())
        unsafe_nonfaulty = int(self.unsafe_nonfaulty.sum())
        activated = int(self.activated.sum())
        disabled_nonfaulty = unsafe_nonfaulty - activated
        total = int(np.prod(self.shape))
        return {
            "faulty": faulty,
            "safe": total - faulty - unsafe_nonfaulty,
            "unsafe_nonfaulty": unsafe_nonfaulty,
            "activated": activated,
            "disabled_nonfaulty": disabled_nonfaulty,
        }

    def disabled_cells(self) -> CellSet:
        """The disabled nodes as a cell set."""
        return CellSet(self.disabled)

    def unsafe_cells(self) -> CellSet:
        """The unsafe nodes as a cell set."""
        return CellSet(self.unsafe)
