"""Mechanical checkers for the paper's analytic claims.

Every theorem, lemma and corollary of Section 4 — plus the separation
properties quoted in Section 3 — has a checker here that takes a
:class:`~repro.core.pipeline.LabelingResult` (or a single region) and
returns a :class:`CheckOutcome` with a verdict and, on failure, the
witness that violates the claim.  The property-based test suite runs
them over thousands of random fault patterns; the checkers are also
exported so downstream users can audit their own runs.

Checked claims:

* **Rectangularity** — faulty blocks are disjoint full rectangles.
* **Separation** — block-block distance >= 3 (Def 2a) / >= 2 (Def 2b);
  region-region distance >= 2.
* **Theorem 1** — every disabled region is an orthogonal convex polygon.
* **Lemma 1** — every corner node of a disabled region is faulty.
* **Lemma 2** — for every node of a region, all four closed quadrants
  around it contain a corner node of the region.
* **Lemma 3** — for every node outside an orthoconvex region, some
  quadrant contains no region node.
* **Theorem 2** — each region equals the orthoconvex closure of the
  faults it covers (hence is the smallest orthoconvex polygon covering
  them).
* **Corollary** — nonfaulty nodes covered by the regions of one block
  do not exceed those of the smallest single orthoconvex polygon
  containing all the block's faults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.pipeline import LabelingResult
from repro.core.regions import DisabledRegion
from repro.core.status import SafetyDefinition
from repro.geometry.boundary import corner_cells
from repro.geometry.cells import CellSet
from repro.geometry.components import set_distance
from repro.geometry.orthoconvex import is_orthoconvex, orthoconvex_closure
from repro.geometry.quadrants import quadrant_extreme_corner, quadrants_with_members
from repro.geometry.rectangles import is_rectangle
from repro.geometry.staircase import connect_orthoconvex
from repro.mesh.coords import Quadrant

__all__ = [
    "CheckOutcome",
    "check_blocks_rectangular",
    "check_block_separation",
    "check_region_separation",
    "check_theorem1",
    "check_lemma1",
    "check_lemma2",
    "check_lemma3",
    "check_theorem2",
    "check_corollary",
    "check_all",
]


@dataclass(frozen=True)
class CheckOutcome:
    """Verdict of one claim checker."""

    claim: str
    holds: bool
    detail: str = ""

    def __bool__(self) -> bool:
        return self.holds


def _ok(claim: str) -> CheckOutcome:
    return CheckOutcome(claim, True)


def _fail(claim: str, detail: str) -> CheckOutcome:
    return CheckOutcome(claim, False, detail)


def check_blocks_rectangular(result: LabelingResult) -> CheckOutcome:
    """Faulty blocks are full rectangles (Section 3)."""
    claim = "faulty blocks are rectangles"
    for b in result.blocks:
        if not is_rectangle(b.cells):
            return _fail(claim, f"block at {b.rect} is not a full rectangle")
    return _ok(claim)


def check_block_separation(result: LabelingResult) -> CheckOutcome:
    """Distance between faulty blocks >= 3 (Def 2a) / >= 2 (Def 2b)."""
    need = result.definition.min_block_separation
    claim = f"block separation >= {need}"
    blocks = result.blocks
    for i in range(len(blocks)):
        for j in range(i + 1, len(blocks)):
            d = blocks[i].rect.distance(blocks[j].rect)
            if d < need:
                return _fail(
                    claim,
                    f"blocks {blocks[i].rect} and {blocks[j].rect} at distance {d}",
                )
    return _ok(claim)


def check_region_separation(result: LabelingResult) -> CheckOutcome:
    """Distance between disabled regions >= 2 (Section 3)."""
    claim = "region separation >= 2"
    regions = result.regions
    for i in range(len(regions)):
        for j in range(i + 1, len(regions)):
            d = set_distance(regions[i].cells, regions[j].cells)
            if d < 2:
                return _fail(claim, f"regions {i} and {j} at distance {d}")
    return _ok(claim)


def check_theorem1(result: LabelingResult) -> CheckOutcome:
    """Theorem 1: every disabled region is an orthogonal convex polygon."""
    claim = "theorem 1 (regions are orthogonal convex polygons)"
    for k, r in enumerate(result.regions):
        if not is_orthoconvex(r.cells, require_connected=True):
            return _fail(claim, f"region {k} ({r.cells!r}) is not orthoconvex")
    return _ok(claim)


def check_lemma1(result: LabelingResult) -> CheckOutcome:
    """Lemma 1: every corner node of a disabled region is faulty."""
    claim = "lemma 1 (corner nodes are faulty)"
    for k, r in enumerate(result.regions):
        corners = corner_cells(r.cells)
        if not corners.issubset(r.faults):
            bad = corners.difference(r.faults).coords()[:3]
            return _fail(claim, f"region {k} has nonfaulty corners at {bad}")
    return _ok(claim)


def check_lemma2(region: DisabledRegion) -> CheckOutcome:
    """Lemma 2: all four closed quadrants around every region node contain a
    corner node of the region (and the constructive extreme is a corner)."""
    claim = "lemma 2 (every quadrant holds a corner node)"
    corners = corner_cells(region.cells)
    for u in region.cells:
        for q in Quadrant:
            w = quadrant_extreme_corner(region.cells, u, q)
            if w is None:
                return _fail(claim, f"quadrant {q} around {u} holds no region node")
            if w not in corners:
                return _fail(
                    claim, f"extreme {w} of quadrant {q} around {u} is not a corner"
                )
    return _ok(claim)


def check_lemma3(region: DisabledRegion, samples: int = 64) -> CheckOutcome:
    """Lemma 3: for nodes outside the (orthoconvex) region, some quadrant is
    empty of region nodes.  Checks every outside node of the region's
    bounding box neighbourhood, capped at ``samples`` per region."""
    claim = "lemma 3 (outside nodes have an empty quadrant)"
    mask = region.cells.mask
    w, h = mask.shape
    x0, y0, x1, y1 = region.cells.bounding_box()
    checked = 0
    for x in range(max(0, x0 - 1), min(w, x1 + 2)):
        for y in range(max(0, y0 - 1), min(h, y1 + 2)):
            if mask[x, y]:
                continue
            occupancy = quadrants_with_members(region.cells, (x, y))
            if all(occupancy.values()):
                return _fail(claim, f"outside node ({x},{y}) sees all 4 quadrants")
            checked += 1
            if checked >= samples:
                return _ok(claim)
    return _ok(claim)


def check_theorem2(result: LabelingResult) -> CheckOutcome:
    """Theorem 2: each region is the smallest orthoconvex polygon covering
    its faults — mechanically, the region equals the orthoconvex closure
    of its fault set."""
    claim = "theorem 2 (region == orthoconvex closure of its faults)"
    for k, r in enumerate(result.regions):
        closure = orthoconvex_closure(r.faults)
        if closure != r.cells:
            extra = r.cells.difference(closure)
            missing = closure.difference(r.cells)
            return _fail(
                claim,
                f"region {k}: closure mismatch "
                f"(+{len(extra)} region-only, -{len(missing)} closure-only cells)",
            )
    return _ok(claim)


def check_corollary(result: LabelingResult) -> CheckOutcome:
    """Corollary: per faulty block, nonfaulty nodes covered by its regions
    <= nonfaulty nodes in the smallest orthoconvex polygon containing all
    the block's faults (computed as closure + minimal staircase joins)."""
    claim = "corollary (regions cover <= smallest single-OCP nonfaulty nodes)"
    faulty = result.labels.faulty
    disabled = result.labels.disabled
    for b in result.blocks:
        if not b.faults:
            continue
        in_regions = int((b.cells.mask & disabled & ~faulty).sum())
        single_ocp = connect_orthoconvex(b.faults)
        in_ocp = int((single_ocp.mask & ~faulty).sum())
        if in_regions > in_ocp:
            return _fail(
                claim,
                f"block {b.rect}: regions keep {in_regions} nonfaulty disabled, "
                f"single OCP would keep {in_ocp}",
            )
    return _ok(claim)


#: The whole-result checkers run by :func:`check_all`, keyed by claim id.
RESULT_CHECKS: Dict[str, Callable[[LabelingResult], CheckOutcome]] = {
    "rectangular": check_blocks_rectangular,
    "block_separation": check_block_separation,
    "region_separation": check_region_separation,
    "theorem1": check_theorem1,
    "lemma1": check_lemma1,
    "theorem2": check_theorem2,
    "corollary": check_corollary,
}


def check_all(
    result: LabelingResult, include_quadrant_lemmas: bool = False
) -> List[CheckOutcome]:
    """Run every checker; optionally also the per-region quadrant lemmas
    (quadratic in region size, so off by default for large sweeps)."""
    outcomes = [chk(result) for chk in RESULT_CHECKS.values()]
    if include_quadrant_lemmas:
        for r in result.regions:
            outcomes.append(check_lemma2(r))
            outcomes.append(check_lemma3(r))
    return outcomes
