"""Drivers that run the labeling protocols on the fabric engine.

This is the *faithful* backend: one :class:`~repro.fabric.program.NodeProgram`
per nonfaulty node, lock-step rounds, message-based status exchange.
It produces exactly the same labels and round counts as the vectorized
fixpoints of :mod:`repro.core.safety` / :mod:`repro.core.enabling`
(property-tested), while additionally reporting message statistics.
Use it when fidelity or communication cost matters; use the vectorized
backend for large parameter sweeps.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.protocols import EnableProgram, SafetyProgram
from repro.core.status import SafetyDefinition
from repro.fabric.async_engine import AsynchronousEngine
from repro.fabric.engine import SynchronousEngine
from repro.fabric.stats import RunStats
from repro.faults.faultset import FaultSet
from repro.mesh.topology import Topology
from repro.types import BoolGrid

__all__ = [
    "distributed_unsafe",
    "distributed_enabled",
    "async_unsafe",
    "async_enabled",
]


def distributed_unsafe(
    topology: Topology,
    faults: FaultSet,
    definition: SafetyDefinition = SafetyDefinition.DEF_2B,
    chatty: bool = False,
    record_trace: bool = False,
    active_set: bool = True,
) -> Tuple[BoolGrid, RunStats, object]:
    """Run phase 1 as a distributed protocol.

    ``active_set=False`` forces the engine to step every node every
    round (identical results; see
    :class:`~repro.fabric.engine.SynchronousEngine`).

    Returns
    -------
    (unsafe, stats, trace):
        The unsafe mask (faulty nodes included), the engine's
        :class:`~repro.fabric.stats.RunStats`, and the round trace
        (``None`` unless ``record_trace``).
    """
    faulty_set = frozenset(faults)
    engine = SynchronousEngine(
        topology,
        faulty_set,
        factory=lambda ctx: SafetyProgram(ctx, definition, chatty=chatty),
        record_trace=record_trace,
        active_set=active_set,
    )
    result = engine.run()
    unsafe = faults.mask.copy()  # faulty nodes are unsafe by definition
    for coord, is_unsafe in result.snapshots.items():
        if is_unsafe:
            unsafe[coord] = True
    return unsafe, result.stats, result.trace


def distributed_enabled(
    topology: Topology,
    faults: FaultSet,
    unsafe: BoolGrid,
    chatty: bool = False,
    record_trace: bool = False,
    active_set: bool = True,
) -> Tuple[BoolGrid, RunStats, object]:
    """Run phase 2 as a distributed protocol, seeded by phase-1 labels.

    Each node is initialised only from its *own* phase-1 status, exactly
    as a real machine would carry local state between the two protocols.

    Returns
    -------
    (enabled, stats, trace):
        The enabled mask (faulty nodes are never enabled), engine stats,
        and the optional round trace.
    """
    if unsafe.shape != topology.shape:
        raise ValueError(
            f"unsafe mask shape {unsafe.shape} != topology shape {topology.shape}"
        )
    faulty_set = frozenset(faults)
    engine = SynchronousEngine(
        topology,
        faulty_set,
        factory=lambda ctx: EnableProgram(
            ctx, unsafe=bool(unsafe[ctx.coord]), chatty=chatty
        ),
        record_trace=record_trace,
        active_set=active_set,
    )
    result = engine.run()
    enabled = np.zeros(topology.shape, dtype=bool)
    for coord, is_enabled in result.snapshots.items():
        if is_enabled:
            enabled[coord] = True
    return enabled, result.stats, result.trace


def async_unsafe(
    topology: Topology,
    faults: FaultSet,
    rng: np.random.Generator,
    definition: SafetyDefinition = SafetyDefinition.DEF_2B,
    max_delay: int = 5,
) -> Tuple[BoolGrid, RunStats]:
    """Run phase 1 on the *asynchronous* engine.

    The schedule delays each message by a random amount drawn from
    ``rng``; the monotone protocol converges to the same labels as the
    synchronous execution regardless (property-tested).  Round counts
    are not comparable to the synchronous ones; ``stats.rounds`` is the
    number of state-changing delivery events.
    """
    engine = AsynchronousEngine(
        topology,
        frozenset(faults),
        factory=lambda ctx: SafetyProgram(ctx, definition),
        rng=rng,
        max_delay=max_delay,
    )
    result = engine.run()
    unsafe = faults.mask.copy()
    for coord, is_unsafe in result.snapshots.items():
        if is_unsafe:
            unsafe[coord] = True
    return unsafe, result.stats


def async_enabled(
    topology: Topology,
    faults: FaultSet,
    unsafe: BoolGrid,
    rng: np.random.Generator,
    max_delay: int = 5,
) -> Tuple[BoolGrid, RunStats]:
    """Run phase 2 on the asynchronous engine (see :func:`async_unsafe`)."""
    if unsafe.shape != topology.shape:
        raise ValueError(
            f"unsafe mask shape {unsafe.shape} != topology shape {topology.shape}"
        )
    engine = AsynchronousEngine(
        topology,
        frozenset(faults),
        factory=lambda ctx: EnableProgram(ctx, unsafe=bool(unsafe[ctx.coord])),
        rng=rng,
        max_delay=max_delay,
    )
    result = engine.run()
    enabled = np.zeros(topology.shape, dtype=bool)
    for coord, is_enabled in result.snapshots.items():
        if is_enabled:
            enabled[coord] = True
    return enabled, result.stats
