"""Drivers that run the labeling protocols on the fabric engine.

This is the *faithful* backend: one :class:`~repro.fabric.program.NodeProgram`
per nonfaulty node, lock-step rounds, message-based status exchange.
It produces exactly the same labels and round counts as the vectorized
fixpoints of :mod:`repro.core.safety` / :mod:`repro.core.enabling`
(property-tested), while additionally reporting message statistics.
Use it when fidelity or communication cost matters; use the vectorized
backend for large parameter sweeps.

All four drivers accept a :class:`~repro.faults.schedule.FaultSchedule`
of mid-run crashes and a :class:`~repro.fabric.channel.ChannelModel` of
link degradations.  For phase 1 the protocols are self-stabilizing:
whatever the schedule and any lossy-but-fair channel, the converged
labels equal the from-scratch fixpoint on the *final* fault set
(property tested); the returned masks therefore mark every crashed node
as unsafe, exactly as a from-scratch run on the final faults would.
Phase 2 is monotone in node status but not in the fault set (a faulty
neighbour counts as *disabled*), so deployments re-run it from the
phase-1 labels once faults settle — which is how
:func:`repro.core.pipeline.label_mesh` composes the two phases.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.protocols import EnableProgram, SafetyProgram
from repro.core.status import SafetyDefinition
from repro.fabric.async_engine import AsynchronousEngine
from repro.fabric.channel import ChannelModel
from repro.fabric.engine import SynchronousEngine
from repro.fabric.stats import RunStats
from repro.faults.faultset import FaultSet
from repro.faults.schedule import FaultSchedule
from repro.mesh.topology import Topology
from repro.obs.telemetry import Telemetry
from repro.types import BoolGrid

__all__ = [
    "distributed_unsafe",
    "distributed_enabled",
    "async_unsafe",
    "async_enabled",
]


def _final_faults(faults: FaultSet, schedule: Optional[FaultSchedule]) -> FaultSet:
    """The fault set after every scheduled crash has struck."""
    if schedule is None or not schedule:
        return faults
    return schedule.check_shape(faults.shape).final_faults(faults)


def distributed_unsafe(
    topology: Topology,
    faults: FaultSet,
    definition: SafetyDefinition = SafetyDefinition.DEF_2B,
    chatty: bool = False,
    record_trace: bool = False,
    active_set: bool = True,
    schedule: Optional[FaultSchedule] = None,
    channel: Optional[ChannelModel] = None,
    telemetry: Optional[Telemetry] = None,
) -> Tuple[BoolGrid, RunStats, object]:
    """Run phase 1 as a distributed protocol.

    ``active_set=False`` forces the engine to step every node every
    round (identical results; see
    :class:`~repro.fabric.engine.SynchronousEngine`).  ``schedule``
    crashes nodes mid-run and ``channel`` degrades the links; the
    returned mask is the fixpoint on the final fault set (crashed nodes
    are unsafe by definition, like initially-faulty ones).

    Returns
    -------
    (unsafe, stats, trace):
        The unsafe mask (faulty nodes included), the engine's
        :class:`~repro.fabric.stats.RunStats`, and the round trace
        (``None`` unless ``record_trace``).
    """
    engine = SynchronousEngine(
        topology,
        frozenset(faults),
        factory=lambda ctx: SafetyProgram(ctx, definition, chatty=chatty),
        record_trace=record_trace,
        active_set=active_set,
        schedule=schedule,
        channel=channel,
        telemetry=telemetry,
    )
    result = engine.run()
    # faulty nodes — initial and crashed alike — are unsafe by definition
    unsafe = _final_faults(faults, schedule).mask.copy()
    for coord, is_unsafe in result.snapshots.items():
        if is_unsafe:
            unsafe[coord] = True
    return unsafe, result.stats, result.trace


def distributed_enabled(
    topology: Topology,
    faults: FaultSet,
    unsafe: BoolGrid,
    chatty: bool = False,
    record_trace: bool = False,
    active_set: bool = True,
    channel: Optional[ChannelModel] = None,
    telemetry: Optional[Telemetry] = None,
) -> Tuple[BoolGrid, RunStats, object]:
    """Run phase 2 as a distributed protocol, seeded by phase-1 labels.

    Each node is initialised only from its *own* phase-1 status, exactly
    as a real machine would carry local state between the two protocols.
    ``faults`` must be the settled (final) fault set: the enable rule is
    not monotone under fault growth, so recovery from mid-run crashes is
    by re-running this phase from the re-converged phase-1 labels (see
    the module docstring) rather than by crashing nodes inside it.  A
    lossy-but-fair ``channel`` is fine: the rule is monotone in the
    statuses themselves.

    Returns
    -------
    (enabled, stats, trace):
        The enabled mask (faulty nodes are never enabled), engine stats,
        and the optional round trace.
    """
    if unsafe.shape != topology.shape:
        raise ValueError(
            f"unsafe mask shape {unsafe.shape} != topology shape {topology.shape}"
        )
    engine = SynchronousEngine(
        topology,
        frozenset(faults),
        factory=lambda ctx: EnableProgram(
            ctx, unsafe=bool(unsafe[ctx.coord]), chatty=chatty
        ),
        record_trace=record_trace,
        active_set=active_set,
        channel=channel,
        telemetry=telemetry,
    )
    result = engine.run()
    enabled = np.zeros(topology.shape, dtype=bool)
    for coord, is_enabled in result.snapshots.items():
        if is_enabled:
            enabled[coord] = True
    return enabled, result.stats, result.trace


def async_unsafe(
    topology: Topology,
    faults: FaultSet,
    rng: np.random.Generator,
    definition: SafetyDefinition = SafetyDefinition.DEF_2B,
    max_delay: int = 5,
    schedule: Optional[FaultSchedule] = None,
    channel: Optional[ChannelModel] = None,
    telemetry: Optional[Telemetry] = None,
) -> Tuple[BoolGrid, RunStats]:
    """Run phase 1 on the *asynchronous* engine.

    The schedule delays each message by a random amount drawn from
    ``rng``; the monotone protocol converges to the same labels as the
    synchronous execution regardless (property-tested), including under
    mid-run crashes (``schedule``) and lossy-but-fair links
    (``channel``).  Round counts are not comparable to the synchronous
    ones; ``stats.rounds`` is the number of state-changing delivery
    events.
    """
    engine = AsynchronousEngine(
        topology,
        frozenset(faults),
        factory=lambda ctx: SafetyProgram(ctx, definition),
        rng=rng,
        max_delay=max_delay,
        schedule=schedule,
        channel=channel,
        telemetry=telemetry,
    )
    result = engine.run()
    unsafe = _final_faults(faults, schedule).mask.copy()
    for coord, is_unsafe in result.snapshots.items():
        if is_unsafe:
            unsafe[coord] = True
    return unsafe, result.stats


def async_enabled(
    topology: Topology,
    faults: FaultSet,
    unsafe: BoolGrid,
    rng: np.random.Generator,
    max_delay: int = 5,
    channel: Optional[ChannelModel] = None,
    telemetry: Optional[Telemetry] = None,
) -> Tuple[BoolGrid, RunStats]:
    """Run phase 2 on the asynchronous engine (see :func:`async_unsafe`
    and :func:`distributed_enabled` for why this phase takes a settled
    fault set rather than a crash schedule)."""
    if unsafe.shape != topology.shape:
        raise ValueError(
            f"unsafe mask shape {unsafe.shape} != topology shape {topology.shape}"
        )
    engine = AsynchronousEngine(
        topology,
        frozenset(faults),
        factory=lambda ctx: EnableProgram(ctx, unsafe=bool(unsafe[ctx.coord])),
        rng=rng,
        max_delay=max_delay,
        channel=channel,
        telemetry=telemetry,
    )
    result = engine.run()
    enabled = np.zeros(topology.shape, dtype=bool)
    for coord, is_enabled in result.snapshots.items():
        if is_enabled:
            enabled[coord] = True
    return enabled, result.stats
