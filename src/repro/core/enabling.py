"""Phase 2 — enabled/disabled labeling (Definition 3), vectorized.

Definition 3 (the paper's contribution): all faulty nodes are disabled,
all safe nodes enabled; an unsafe nonfaulty node starts disabled and is
switched to enabled once it has **two or more enabled neighbours**.
Like phase 1 the rule is monotone (disabled -> enabled only), so the
fixpoint is unique and the labeling well-defined.

The module also implements the *naive recursive* variant the paper
rejects — "an unsafe node is enabled **iff** it has two or more enabled
neighbours" — whose solutions are not unique: Figure 2(b) shows a block
of nonfaulty nodes that can consistently be all-enabled or all-disabled
("double status").  :func:`recursive_enable_fixpoints` enumerates every
consistent assignment for small instances, which is how the tests and
the ``double_status`` example demonstrate the pathology Definition 3
fixes.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import ConvergenceError
from repro.mesh.topology import Topology
from repro.types import BoolGrid

__all__ = [
    "enabled_step",
    "enabled_fixpoint",
    "recursive_enable_fixpoints",
]


def _enabled_neighbor_count(topology: Topology, enabled: BoolGrid) -> np.ndarray:
    """Per-node count of enabled neighbours; ghost neighbours count as enabled."""
    east, west, north, south = topology.neighbor_views(enabled, fill=True)
    return (
        east.astype(np.int8)
        + west.astype(np.int8)
        + north.astype(np.int8)
        + south.astype(np.int8)
    )


def enabled_step(
    topology: Topology,
    faulty: BoolGrid,
    enabled: BoolGrid,
    out: BoolGrid | None = None,
) -> BoolGrid:
    """One synchronous round of the Definition-3 enable rule.

    A nonfaulty, currently disabled node becomes enabled when at least
    two of its neighbours are enabled (ghost ring counts as enabled).
    Enabled nodes stay enabled; faulty nodes never enable.  ``out``,
    when given, receives the result in place (it must not alias
    ``enabled`` or ``faulty``), letting the fixpoint loop ping-pong two
    buffers instead of allocating a fresh grid every round.
    """
    count = _enabled_neighbor_count(topology, enabled)
    if out is None:
        return (enabled | (count >= 2)) & ~faulty
    np.logical_or(enabled, count >= 2, out=out)
    out &= ~faulty
    return out


def enabled_fixpoint(
    topology: Topology,
    faulty: BoolGrid,
    unsafe: BoolGrid,
    max_rounds: int | None = None,
) -> Tuple[BoolGrid, int]:
    """Iterate :func:`enabled_step` from the phase-1 labels to a fixpoint.

    Parameters
    ----------
    topology, faulty:
        As in :func:`repro.core.safety.unsafe_fixpoint`.
    unsafe:
        Phase-1 result; the initial enabled set is its complement (all
        safe nodes), per Definition 3.

    Returns
    -------
    (enabled, rounds):
        Fixpoint mask and the count of changing rounds.

    Raises
    ------
    ConvergenceError
        If the round budget is exhausted (indicates corrupted inputs).
    """
    if faulty.shape != topology.shape or unsafe.shape != topology.shape:
        raise ConvergenceError("label plane shapes disagree with the topology")
    if np.any(faulty & ~unsafe):
        raise ConvergenceError("phase-1 labels invalid: a faulty node is safe")
    budget = max_rounds if max_rounds is not None else (topology.num_nodes + 2)
    enabled = ~unsafe  # all safe nodes enabled, all unsafe nodes disabled
    scratch = np.empty_like(enabled)
    count = int(np.count_nonzero(enabled))
    rounds = 0
    for _ in range(budget + 1):
        nxt = enabled_step(topology, faulty, enabled, out=scratch)
        # Monotone rule: the enabled set only grows (faulty nodes were
        # never enabled), so an unchanged popcount means an unchanged
        # grid — no full array compare.
        nxt_count = int(np.count_nonzero(nxt))
        if nxt_count == count:
            return enabled, rounds
        enabled, scratch = nxt, enabled
        count = nxt_count
        rounds += 1
    raise ConvergenceError(
        f"enable labeling did not converge within {budget} rounds"
    )


def recursive_enable_fixpoints(
    topology: Topology,
    faulty: BoolGrid,
    unsafe: BoolGrid,
    limit: int = 22,
) -> List[BoolGrid]:
    """All consistent assignments of the *naive recursive* enable rule.

    The naive rule demands, for every unsafe nonfaulty node ``u``::

        enabled(u)  <=>  (number of enabled neighbours of u) >= 2

    with safe nodes (and ghosts) enabled and faulty nodes disabled.
    This is a boolean fixpoint equation that may have several solutions;
    the paper's Figure 2(b) is the canonical two-solution instance.

    The enumeration brute-forces the free variables (the unsafe
    nonfaulty nodes) and keeps assignments satisfying the equivalence,
    so it is exponential and only meant for demonstration instances.

    Parameters
    ----------
    limit:
        Maximum number of free variables accepted (raises beyond it).

    Returns
    -------
    list of enabled masks, deduplicated, in lexicographic order of the
    free-variable assignment (the all-least solution — Definition 3's
    fixpoint — comes first).
    """
    free = np.argwhere(unsafe & ~faulty)
    n = len(free)
    if n > limit:
        raise ConvergenceError(
            f"{n} free nodes exceed the enumeration limit ({limit})"
        )
    base_enabled = ~unsafe
    solutions: List[BoolGrid] = []
    for bits in range(1 << n):
        enabled = base_enabled.copy()
        for i in range(n):
            if bits >> i & 1:
                enabled[free[i][0], free[i][1]] = True
        count = _enabled_neighbor_count(topology, enabled)
        consistent = True
        for i in range(n):
            x, y = free[i]
            want = count[x, y] >= 2
            if bool(enabled[x, y]) != bool(want):
                consistent = False
                break
        if consistent:
            solutions.append(enabled)
    return solutions
