"""The paper's two algorithms as distributed per-node programs.

These are direct transliterations of the pseudo-code in Section 3:

* :class:`SafetyProgram` — ``repeat { exchange status; become unsafe if
  the rule fires } until no change`` under Definition 2a or 2b;
* :class:`EnableProgram` — same loop for Definition 3's enable rule.

Each program keeps its own status plus the last-heard status of every
neighbour.  Faulty neighbours never speak and are pinned to
unsafe/disabled; absent neighbours (mesh boundary) are the ghost ring,
pinned to safe/enabled.  By default a node re-broadcasts its status only
when it changes — the converged protocol is then silent, and total
message count measures real status traffic.  ``chatty=True`` reproduces
the paper's literal every-round exchange instead (same labels, same
round count, more messages); the protocol-cost benchmark compares both.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Tuple

from repro.core.status import SafetyDefinition
from repro.fabric.program import NodeContext, NodeProgram
from repro.mesh.coords import Dimension
from repro.types import Coord

__all__ = ["SafetyProgram", "EnableProgram"]


class _StatusExchangeProgram(NodeProgram):
    """Shared machinery: remember neighbour statuses, rebroadcast own."""

    def __init__(self, ctx: NodeContext, initial_status: bool, chatty: bool):
        super().__init__(ctx)
        self._status = initial_status
        self._chatty = chatty
        # Last-heard neighbour statuses; live entries are overwritten by
        # the round-1 inbox (every node speaks at start()).
        self._heard: Dict[Coord, bool] = {}

    def start(self) -> Mapping[Coord, Any]:
        return {n: self._status for n in self.ctx.live_neighbors}

    def on_round(self, inbox: Mapping[Coord, Any]) -> Tuple[Mapping[Coord, Any], bool]:
        # Monotone merge: a neighbour's status only ever rises (safe ->
        # unsafe, disabled -> enabled), so OR-ing received statuses is
        # exact — and it makes the protocol immune to the message
        # reordering an asynchronous network can introduce (a stale
        # pre-flip status arriving after the flip cannot regress the
        # receiver's knowledge).
        for sender, status in inbox.items():
            self._heard[sender] = self._heard.get(sender, False) or bool(status)
        new_status = self._rule()
        changed = new_status != self._status
        self._status = new_status
        if changed or self._chatty:
            return {n: self._status for n in self.ctx.live_neighbors}, changed
        return {}, changed

    def snapshot(self) -> bool:
        return self._status

    def _rule(self) -> bool:
        raise NotImplementedError


class SafetyProgram(_StatusExchangeProgram):
    """Phase-1 node program: safe/unsafe status (Definition 2a or 2b).

    Status ``True`` means *unsafe*.  Nonfaulty nodes start safe; faulty
    nodes run no program and are treated by their neighbours as
    permanently unsafe.
    """

    def __init__(
        self,
        ctx: NodeContext,
        definition: SafetyDefinition,
        chatty: bool = False,
    ):
        super().__init__(ctx, initial_status=False, chatty=chatty)
        self._definition = definition

    def _unsafe_in_dim(self, dim: Dimension) -> int:
        """Unsafe neighbours along one dimension (faulty links included;
        ghost links count as safe, i.e. contribute nothing)."""
        n = self.ctx.faulty_in_dim(dim)
        for v in self.ctx.live_neighbors_in_dim(dim):
            if self._heard.get(v, False):
                n += 1
        return n

    def _rule(self) -> bool:
        if self._status:  # monotone: once unsafe, forever unsafe
            return True
        ux = self._unsafe_in_dim(Dimension.X)
        uy = self._unsafe_in_dim(Dimension.Y)
        if self._definition is SafetyDefinition.DEF_2A:
            return (ux + uy) >= 2
        return ux >= 1 and uy >= 1


class EnableProgram(_StatusExchangeProgram):
    """Phase-2 node program: enabled/disabled status (Definition 3).

    Status ``True`` means *enabled*.  Initialisation comes from the
    node's own phase-1 outcome: safe nodes start enabled, unsafe
    nonfaulty nodes start disabled.  Ghost links count as enabled;
    faulty links as disabled.
    """

    def __init__(self, ctx: NodeContext, unsafe: bool, chatty: bool = False):
        super().__init__(ctx, initial_status=not unsafe, chatty=chatty)

    def _rule(self) -> bool:
        if self._status:  # monotone: once enabled, forever enabled
            return True
        count = self.ctx.missing_in_dim(Dimension.X) + self.ctx.missing_in_dim(
            Dimension.Y
        )  # ghost neighbours are enabled
        for v in self.ctx.live_neighbors:
            if self._heard.get(v, False):
                count += 1
        return count >= 2
