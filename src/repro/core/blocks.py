"""Faulty blocks: the rectangular fault regions of phase 1.

A *faulty block* consists of connected (mesh-link, i.e. 4-connected)
unsafe nodes.  Under both Definition 2a and 2b the blocks are provably
disjoint full rectangles; :func:`extract_blocks` decomposes an unsafe
mask into blocks and — because that rectangularity is a theorem, not an
assumption — validates it for every component, failing loudly if a
non-rectangular component ever appears.

The default ``"vectorized"`` backend runs one union-find label pass and
reduces bounding boxes, sizes and per-block fault counts with
``bincount``-style scatter reductions — no per-component grid scans.
The ``"reference"`` backend keeps the original per-component path as
the oracle; both return the identical block list (property tested).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import GeometryError
from repro.geometry.cells import CellSet
from repro.geometry.components import (
    _check_backend,
    _label_coords,
    connected_components,
)
from repro.geometry.rectangles import Rect, bounding_rect, is_rectangle
from repro.types import BoolGrid

__all__ = ["FaultyBlock", "extract_blocks"]


@dataclass(frozen=True)
class FaultyBlock:
    """One rectangular faulty block.

    Attributes
    ----------
    cells:
        All member nodes (faulty and nonfaulty-unsafe).
    rect:
        The block's rectangle (equals the cells exactly).
    faults:
        The faulty members.
    """

    cells: CellSet
    rect: Rect
    faults: CellSet

    @property
    def num_faults(self) -> int:
        """Number of faulty nodes inside the block."""
        return len(self.faults)

    @property
    def num_nonfaulty(self) -> int:
        """Number of nonfaulty nodes imprisoned by the block — what the
        paper's refinement tries to minimise."""
        return len(self.cells) - len(self.faults)

    @property
    def diameter(self) -> int:
        """Manhattan diameter ``d(B)`` of the block."""
        return self.rect.diameter

    @property
    def reducible(self) -> bool:
        """Whether phase 2 has anything to work with: the block contains
        at least one nonfaulty node (Figure 5 (c)/(d) averages the
        enabled ratio over blocks like these)."""
        return self.num_nonfaulty > 0


def extract_blocks(
    unsafe: BoolGrid, faulty: BoolGrid, backend: str = "vectorized"
) -> List[FaultyBlock]:
    """Decompose an unsafe mask into faulty blocks.

    Parameters
    ----------
    unsafe:
        Phase-1 labels (must contain every fault).
    faulty:
        Ground-truth fault mask.
    backend:
        ``"vectorized"`` (default) or the ``"reference"`` per-component
        oracle; identical output either way.

    Returns
    -------
    Blocks ordered by their smallest row-major cell.

    Raises
    ------
    GeometryError
        If a fault lies outside the unsafe mask, or a component is not a
        full rectangle (both indicate a phase-1 bug, never user error).
    """
    _check_backend(backend)
    if unsafe.shape != faulty.shape:
        raise GeometryError(
            f"label shapes disagree: unsafe {unsafe.shape} vs faulty {faulty.shape}"
        )
    if backend == "reference":
        if np.any(faulty & ~unsafe):
            raise GeometryError("a faulty node is missing from the unsafe mask")
        blocks: List[FaultyBlock] = []
        for comp in connected_components(
            CellSet(unsafe), connectivity=4, backend="reference"
        ):
            if not is_rectangle(comp):
                raise GeometryError(
                    f"faulty block {comp!r} is not a rectangle — phase-1 labels corrupt"
                )
            rect = bounding_rect(comp)
            faults_in = CellSet(comp.mask & faulty)
            blocks.append(FaultyBlock(cells=comp, rect=rect, faults=faults_in))
        return blocks

    shape = unsafe.shape
    xs, ys = np.nonzero(unsafe)
    fx, fy = np.nonzero(faulty)
    # Fault containment and fault->block mapping in one binary search:
    # a fault's linear index must appear in the sorted unsafe scan.
    lin = xs * shape[1] + ys
    flin = fx * shape[1] + fy
    fpos = np.minimum(np.searchsorted(lin, flin), max(lin.size - 1, 0))
    if flin.size and (lin.size == 0 or not np.array_equal(lin[fpos], flin)):
        raise GeometryError("a faulty node is missing from the unsafe mask")
    comp_of, count = _label_coords(xs, ys, shape, connectivity=4)
    if count == 0:
        return []
    sizes = np.bincount(comp_of, minlength=count)
    # Per-component bounding boxes via scatter reductions.
    x0 = np.full(count, shape[0], dtype=np.int64)
    y0 = np.full(count, shape[1], dtype=np.int64)
    x1 = np.full(count, -1, dtype=np.int64)
    y1 = np.full(count, -1, dtype=np.int64)
    np.minimum.at(x0, comp_of, xs)
    np.minimum.at(y0, comp_of, ys)
    np.maximum.at(x1, comp_of, xs)
    np.maximum.at(y1, comp_of, ys)
    areas = (x1 - x0 + 1) * (y1 - y0 + 1)
    bad = np.nonzero(sizes != areas)[0]
    if bad.size:
        culprit_mask = np.zeros(shape, dtype=bool)
        members = comp_of == bad[0]
        culprit_mask[xs[members], ys[members]] = True
        raise GeometryError(
            f"faulty block {CellSet(culprit_mask)!r} is not a rectangle — "
            "phase-1 labels corrupt"
        )
    # Faults grouped by owning block (stable sort keeps row-major order).
    fcomp = comp_of[fpos]
    forder = np.argsort(fcomp, kind="stable")
    fx, fy = fx[forder], fy[forder]
    fcounts = np.bincount(fcomp, minlength=count)
    fbounds = np.concatenate(([0], np.cumsum(fcounts)))
    blocks = []
    for k in range(count):
        rect = Rect(int(x0[k]), int(y0[k]), int(x1[k]), int(y1[k]))
        cells_mask = np.zeros(shape, dtype=bool)
        cells_mask[rect.x0 : rect.x1 + 1, rect.y0 : rect.y1 + 1] = True
        faults_mask = np.zeros(shape, dtype=bool)
        members = slice(fbounds[k], fbounds[k + 1])
        faults_mask[fx[members], fy[members]] = True
        blocks.append(
            FaultyBlock(
                cells=CellSet._from_owned(cells_mask, int(sizes[k])),
                rect=rect,
                faults=CellSet._from_owned(faults_mask, int(fcounts[k])),
            )
        )
    return blocks
