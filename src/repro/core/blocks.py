"""Faulty blocks: the rectangular fault regions of phase 1.

A *faulty block* consists of connected (mesh-link, i.e. 4-connected)
unsafe nodes.  Under both Definition 2a and 2b the blocks are provably
disjoint full rectangles; :func:`extract_blocks` decomposes an unsafe
mask into blocks and — because that rectangularity is a theorem, not an
assumption — validates it for every component, failing loudly if a
non-rectangular component ever appears.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import GeometryError
from repro.geometry.cells import CellSet
from repro.geometry.components import connected_components
from repro.geometry.rectangles import Rect, bounding_rect, is_rectangle
from repro.types import BoolGrid

__all__ = ["FaultyBlock", "extract_blocks"]


@dataclass(frozen=True)
class FaultyBlock:
    """One rectangular faulty block.

    Attributes
    ----------
    cells:
        All member nodes (faulty and nonfaulty-unsafe).
    rect:
        The block's rectangle (equals the cells exactly).
    faults:
        The faulty members.
    """

    cells: CellSet
    rect: Rect
    faults: CellSet

    @property
    def num_faults(self) -> int:
        """Number of faulty nodes inside the block."""
        return len(self.faults)

    @property
    def num_nonfaulty(self) -> int:
        """Number of nonfaulty nodes imprisoned by the block — what the
        paper's refinement tries to minimise."""
        return len(self.cells) - len(self.faults)

    @property
    def diameter(self) -> int:
        """Manhattan diameter ``d(B)`` of the block."""
        return self.rect.diameter

    @property
    def reducible(self) -> bool:
        """Whether phase 2 has anything to work with: the block contains
        at least one nonfaulty node (Figure 5 (c)/(d) averages the
        enabled ratio over blocks like these)."""
        return self.num_nonfaulty > 0


def extract_blocks(unsafe: BoolGrid, faulty: BoolGrid) -> List[FaultyBlock]:
    """Decompose an unsafe mask into faulty blocks.

    Parameters
    ----------
    unsafe:
        Phase-1 labels (must contain every fault).
    faulty:
        Ground-truth fault mask.

    Returns
    -------
    Blocks ordered by their smallest row-major cell.

    Raises
    ------
    GeometryError
        If a fault lies outside the unsafe mask, or a component is not a
        full rectangle (both indicate a phase-1 bug, never user error).
    """
    if unsafe.shape != faulty.shape:
        raise GeometryError(
            f"label shapes disagree: unsafe {unsafe.shape} vs faulty {faulty.shape}"
        )
    if np.any(faulty & ~unsafe):
        raise GeometryError("a faulty node is missing from the unsafe mask")

    blocks: List[FaultyBlock] = []
    for comp in connected_components(CellSet(unsafe), connectivity=4):
        if not is_rectangle(comp):
            raise GeometryError(
                f"faulty block {comp!r} is not a rectangle — phase-1 labels corrupt"
            )
        rect = bounding_rect(comp)
        faults_in = CellSet(comp.mask & faulty)
        blocks.append(FaultyBlock(cells=comp, rect=rect, faults=faults_in))
    return blocks
