"""Disabled regions: the orthogonal convex polygons of phase 2.

A *disabled region* (DR) consists of adjacent disabled nodes — faulty
nodes plus the nonfaulty nodes phase 2 could not activate.  Adjacency is
**king-move (8-connectivity)**: the paper's worked example groups the
diagonally touching faults ``(2,1)`` and ``(3,2)`` into one region,
because as closed unit squares they share a corner point and form one
pinched polygon.

Theorem 1 guarantees every DR is an orthogonal convex polygon and
Theorem 2 that it is the smallest one covering its faults.  Those are
*checked*, not assumed, by :mod:`repro.core.theorems`; this module only
extracts the regions and computes their bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import GeometryError
from repro.geometry.cells import CellSet
from repro.geometry.components import (
    _check_backend,
    _label_coords,
    connected_components,
)
from repro.types import BoolGrid

__all__ = ["DisabledRegion", "extract_regions"]


@dataclass(frozen=True)
class DisabledRegion:
    """One disabled region (orthogonal convex polygon of disabled nodes)."""

    cells: CellSet
    faults: CellSet

    @property
    def num_faults(self) -> int:
        """Number of faulty nodes covered by the region."""
        return len(self.faults)

    @property
    def num_nonfaulty(self) -> int:
        """Number of nonfaulty nodes still kept disabled — the quantity
        Theorem 2 proves is minimal for an orthoconvex cover."""
        return len(self.cells) - len(self.faults)

    @property
    def diameter(self) -> int:
        """Manhattan diameter of the region."""
        return self.cells.diameter()


def extract_regions(
    disabled: BoolGrid, faulty: BoolGrid, backend: str = "vectorized"
) -> List[DisabledRegion]:
    """Decompose a disabled mask into disabled regions.

    Parameters
    ----------
    disabled:
        Phase-2 ``unsafe & ~enabled`` mask (must contain every fault).
    faulty:
        Ground-truth fault mask.
    backend:
        ``"vectorized"`` (default) — one union-find label pass plus
        ``bincount`` group splits — or the ``"reference"`` per-component
        oracle; identical output either way.

    Returns
    -------
    Regions ordered by their smallest row-major cell.

    Raises
    ------
    GeometryError
        If a fault is not disabled, or a region contains no fault at
        all (phase 2 can never strand a fault-free region: its nodes
        would have been enabled; hitting this means corrupt labels).
    """
    _check_backend(backend)
    if disabled.shape != faulty.shape:
        raise GeometryError(
            f"label shapes disagree: disabled {disabled.shape} vs faulty {faulty.shape}"
        )
    if backend == "reference":
        if np.any(faulty & ~disabled):
            raise GeometryError(
                "a faulty node is missing from the disabled mask"
            )
        regions: List[DisabledRegion] = []
        for comp in connected_components(
            CellSet(disabled), connectivity=8, backend="reference"
        ):
            faults_in = CellSet(comp.mask & faulty)
            if not faults_in:
                raise GeometryError(
                    f"disabled region {comp!r} contains no fault — "
                    "phase-2 labels corrupt"
                )
            regions.append(DisabledRegion(cells=comp, faults=faults_in))
        return regions

    shape = disabled.shape
    xs, ys = np.nonzero(disabled)
    fx, fy = np.nonzero(faulty)
    # Fault containment and fault->region mapping in one binary search.
    lin = xs * shape[1] + ys
    flin = fx * shape[1] + fy
    fpos = np.minimum(np.searchsorted(lin, flin), max(lin.size - 1, 0))
    if flin.size and (lin.size == 0 or not np.array_equal(lin[fpos], flin)):
        raise GeometryError("a faulty node is missing from the disabled mask")
    comp_of, count = _label_coords(xs, ys, shape, connectivity=8)
    if count == 0:
        return []
    sizes = np.bincount(comp_of, minlength=count)
    fcomp = comp_of[fpos]
    fcounts = np.bincount(fcomp, minlength=count)
    empty = np.nonzero(fcounts == 0)[0]
    if empty.size:
        culprit_mask = np.zeros(shape, dtype=bool)
        members = comp_of == empty[0]
        culprit_mask[xs[members], ys[members]] = True
        raise GeometryError(
            f"disabled region {CellSet(culprit_mask)!r} contains no fault — "
            "phase-2 labels corrupt"
        )
    order = np.argsort(comp_of, kind="stable")
    xs, ys = xs[order], ys[order]
    bounds = np.concatenate(([0], np.cumsum(sizes)))
    forder = np.argsort(fcomp, kind="stable")
    fx, fy = fx[forder], fy[forder]
    fbounds = np.concatenate(([0], np.cumsum(fcounts)))
    regions = []
    for k in range(count):
        cells_mask = np.zeros(shape, dtype=bool)
        members = slice(bounds[k], bounds[k + 1])
        cells_mask[xs[members], ys[members]] = True
        faults_mask = np.zeros(shape, dtype=bool)
        fmembers = slice(fbounds[k], fbounds[k + 1])
        faults_mask[fx[fmembers], fy[fmembers]] = True
        regions.append(
            DisabledRegion(
                cells=CellSet._from_owned(cells_mask, int(sizes[k])),
                faults=CellSet._from_owned(faults_mask, int(fcounts[k])),
            )
        )
    return regions
