"""Disabled regions: the orthogonal convex polygons of phase 2.

A *disabled region* (DR) consists of adjacent disabled nodes — faulty
nodes plus the nonfaulty nodes phase 2 could not activate.  Adjacency is
**king-move (8-connectivity)**: the paper's worked example groups the
diagonally touching faults ``(2,1)`` and ``(3,2)`` into one region,
because as closed unit squares they share a corner point and form one
pinched polygon.

Theorem 1 guarantees every DR is an orthogonal convex polygon and
Theorem 2 that it is the smallest one covering its faults.  Those are
*checked*, not assumed, by :mod:`repro.core.theorems`; this module only
extracts the regions and computes their bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import GeometryError
from repro.geometry.cells import CellSet
from repro.geometry.components import connected_components
from repro.types import BoolGrid

__all__ = ["DisabledRegion", "extract_regions"]


@dataclass(frozen=True)
class DisabledRegion:
    """One disabled region (orthogonal convex polygon of disabled nodes)."""

    cells: CellSet
    faults: CellSet

    @property
    def num_faults(self) -> int:
        """Number of faulty nodes covered by the region."""
        return len(self.faults)

    @property
    def num_nonfaulty(self) -> int:
        """Number of nonfaulty nodes still kept disabled — the quantity
        Theorem 2 proves is minimal for an orthoconvex cover."""
        return len(self.cells) - len(self.faults)

    @property
    def diameter(self) -> int:
        """Manhattan diameter of the region."""
        return self.cells.diameter()


def extract_regions(disabled: BoolGrid, faulty: BoolGrid) -> List[DisabledRegion]:
    """Decompose a disabled mask into disabled regions.

    Parameters
    ----------
    disabled:
        Phase-2 ``unsafe & ~enabled`` mask (must contain every fault).
    faulty:
        Ground-truth fault mask.

    Returns
    -------
    Regions ordered by their smallest row-major cell.

    Raises
    ------
    GeometryError
        If a fault is not disabled, or a region contains no fault at
        all (phase 2 can never strand a fault-free region: its nodes
        would have been enabled; hitting this means corrupt labels).
    """
    if disabled.shape != faulty.shape:
        raise GeometryError(
            f"label shapes disagree: disabled {disabled.shape} vs faulty {faulty.shape}"
        )
    if np.any(faulty & ~disabled):
        raise GeometryError("a faulty node is missing from the disabled mask")

    regions: List[DisabledRegion] = []
    for comp in connected_components(CellSet(disabled), connectivity=8):
        faults_in = CellSet(comp.mask & faulty)
        if not faults_in:
            raise GeometryError(
                f"disabled region {comp!r} contains no fault — phase-2 labels corrupt"
            )
        regions.append(DisabledRegion(cells=comp, faults=faults_in))
    return regions
