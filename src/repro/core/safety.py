"""Phase 1 — safe/unsafe labeling (Definitions 2a and 2b), vectorized.

The distributed algorithm of the paper initialises every faulty node to
*unsafe* and every nonfaulty node to *safe*, then repeats synchronous
rounds in which each nonfaulty node flips to unsafe when its neighbours'
statuses satisfy the chosen definition, until no status changes.

Because all nodes update simultaneously from the previous round's
statuses, the distributed execution is exactly a **Jacobi iteration** of
a monotone operator: statuses only ever move safe -> unsafe, so the
fixpoint exists, is unique, and is reached in at most the maximum faulty
block diameter rounds.  This module iterates that operator directly on
boolean grids — one shifted-view pass per round, no per-node Python —
and returns both the fixpoint and the number of *changing* rounds, which
is identical to the round count of the fabric backend
(:mod:`repro.core.distributed`; a property test pins the two together).

Ghost nodes (mesh boundary) are permanently safe, injected as the
``fill=False`` of :meth:`~repro.mesh.topology.Topology.shifted`; a torus
has no boundary and ignores the fill.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ConvergenceError
from repro.core.status import SafetyDefinition
from repro.mesh.topology import Topology
from repro.types import BoolGrid

__all__ = ["unsafe_step", "unsafe_fixpoint"]


def unsafe_step(
    topology: Topology,
    faulty: BoolGrid,
    unsafe: BoolGrid,
    definition: SafetyDefinition,
    out: BoolGrid | None = None,
) -> BoolGrid:
    """One synchronous round of the unsafe rule.

    Returns the next unsafe mask given the current one.  Faulty nodes
    stay unsafe; nonfaulty nodes apply Definition 2a or 2b to their
    neighbours' *current* labels.  ``out``, when given, receives the
    result in place (it must not alias ``unsafe`` or ``faulty``) so the
    fixpoint loop can ping-pong two buffers instead of allocating a
    fresh grid every round.
    """
    east, west, north, south = topology.neighbor_views(unsafe, fill=False)
    if definition is SafetyDefinition.DEF_2A:
        # Unsafe if two or more unsafe neighbours, any dimensions.
        count = (
            east.astype(np.int8)
            + west.astype(np.int8)
            + north.astype(np.int8)
            + south.astype(np.int8)
        )
        newly = count >= 2
    else:
        # Unsafe if an unsafe neighbour in both dimensions.
        newly = (east | west) & (north | south)
    if out is None:
        return unsafe | newly | faulty
    np.logical_or(unsafe, newly, out=out)
    np.logical_or(out, faulty, out=out)
    return out


def unsafe_fixpoint(
    topology: Topology,
    faulty: BoolGrid,
    definition: SafetyDefinition = SafetyDefinition.DEF_2B,
    max_rounds: int | None = None,
) -> Tuple[BoolGrid, int]:
    """Iterate :func:`unsafe_step` to its fixpoint.

    Parameters
    ----------
    topology:
        Mesh or torus; controls boundary handling.
    faulty:
        Ground-truth fault mask of the topology's shape.
    definition:
        Which unsafe rule to apply.
    max_rounds:
        Safety budget; defaults to the node count + 2, which is a true
        upper bound for any monotone labeling (every changing round
        flips at least one node).  Definition 2b converges within the
        maximum block diameter (the paper's ``max d(B)`` bound), but the
        more aggressive Definition 2a can cascade across merging blocks
        and exceed the network diameter, so the loose bound is the only
        safe default.

    Returns
    -------
    (unsafe, rounds):
        The fixpoint mask and the number of rounds in which at least one
        node changed status (0 for a fault-free machine).

    Raises
    ------
    ConvergenceError
        If the budget is exhausted — impossible for well-formed inputs,
        so never silently tolerated.
    """
    if faulty.shape != topology.shape:
        raise ConvergenceError(
            f"fault mask shape {faulty.shape} != topology shape {topology.shape}"
        )
    budget = max_rounds if max_rounds is not None else (topology.num_nodes + 2)
    unsafe = faulty.copy()
    scratch = np.empty_like(unsafe)
    count = int(np.count_nonzero(unsafe))
    rounds = 0
    for _ in range(budget + 1):
        nxt = unsafe_step(topology, faulty, unsafe, definition, out=scratch)
        # Monotone rule: the unsafe set only grows, so an unchanged
        # popcount means an unchanged grid — no full array compare.
        nxt_count = int(np.count_nonzero(nxt))
        if nxt_count == count:
            return unsafe, rounds
        unsafe, scratch = nxt, unsafe
        count = nxt_count
        rounds += 1
    raise ConvergenceError(
        f"unsafe labeling did not converge within {budget} rounds"
    )
