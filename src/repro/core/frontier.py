"""Sparse frontier fixpoints — exact, asymptotically cheaper labeling.

The dense Jacobi kernels in :mod:`repro.core.safety` and
:mod:`repro.core.enabling` re-evaluate the rule at **every** cell every
round, so one labeling costs ``O(N * rounds)`` even when only a handful
of cells near the faults ever changes.  This module propagates from an
*active frontier* instead: the only cells whose rule is evaluated in a
round are the neighbours of the cells that flipped in the previous
round (plus, in round 1, the cells the initial state could possibly
fire).  Per round the work is proportional to the frontier size, so a
whole labeling costs ``O(|affected area|)`` — on a 500x500 mesh with
100 clustered faults that is thousands of cells instead of hundreds of
millions of cell evaluations.

Why this is **exact**, not an approximation: both rules are monotone
local rules — a cell's next status is a monotone function of its
neighbours' current statuses, and statuses only ever rise (safe ->
unsafe in phase 1, disabled -> enabled in phase 2).  Suppose a cell
fires under the state at the start of round ``r`` but not at the start
of round ``r - 1``.  The state changed only at the cells that flipped
in round ``r - 1``, and the rule reads only the four neighbours, so the
cell is adjacent to a flip — i.e. in the frontier.  Inductively, every
round the frontier contains *all* cells the dense step would flip, the
per-round flip sets of the two schedules are identical, and therefore
so are the fixpoint **and the round count** (a property test holds the
two kernels to bit-identical labels and equal round counts).

The kernels work on flat row-major indices (``i = x * height + y``)
with vectorized gathers, so each round is a few NumPy ops on arrays of
frontier size — no per-cell Python.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.status import SafetyDefinition
from repro.errors import ConvergenceError
from repro.mesh.topology import Topology
from repro.obs.telemetry import Telemetry
from repro.types import BoolGrid

__all__ = ["unsafe_fixpoint_sparse", "enabled_fixpoint_sparse"]


def _frontier_meter(telemetry: Optional[Telemetry]):
    """The per-round frontier-size histogram, or ``None`` when off.

    Resolved once per fixpoint call so the hot loop pays a single
    ``is not None`` check per round.
    """
    if telemetry is None or telemetry.metrics is None:
        return None
    return telemetry.histogram("frontier_active_cells")


def _neighbor_indices(
    idx: np.ndarray, width: int, height: int, wraps: bool
) -> Tuple[np.ndarray, np.ndarray]:
    """Flat neighbour indices of the cells ``idx``, in (E, W, N, S) order.

    Returns ``(nbrs, valid)``, both of shape ``(4, len(idx))``.  On a
    torus every link exists and wraps; on a mesh, links leaving the grid
    have ``valid`` False and their index clamped to 0 — the caller must
    substitute the ghost label for them.
    """
    x = idx // height
    y = idx - x * height
    n = width * height
    east, west, north, south = idx + height, idx - height, idx + 1, idx - 1
    if wraps:
        nbrs = np.stack(
            [
                np.where(x + 1 < width, east, east - n),
                np.where(x > 0, west, west + n),
                np.where(y + 1 < height, north, north - height),
                np.where(y > 0, south, south + height),
            ]
        )
        valid = np.ones(nbrs.shape, dtype=bool)
    else:
        valid = np.stack([x + 1 < width, x > 0, y + 1 < height, y > 0])
        nbrs = np.where(valid, np.stack([east, west, north, south]), 0)
    return nbrs, valid


def unsafe_fixpoint_sparse(
    topology: Topology,
    faulty: BoolGrid,
    definition: SafetyDefinition = SafetyDefinition.DEF_2B,
    max_rounds: int | None = None,
    telemetry: Optional[Telemetry] = None,
    initial: Optional[BoolGrid] = None,
    seeds: Optional[np.ndarray] = None,
) -> Tuple[BoolGrid, int]:
    """Phase-1 fixpoint by frontier propagation.

    Drop-in replacement for :func:`repro.core.safety.unsafe_fixpoint`:
    same signature, same fixpoint, same round count (see the module
    docstring for the exactness argument), but per-round work scales
    with the frontier instead of the grid.  ``telemetry`` (optional)
    observes each round's frontier size into the
    ``frontier_active_cells`` histogram — the direct measure of the
    sparse kernels' work.

    Warm starts: ``initial``, when given, is a valid under-approximation
    of the fixpoint (any state reachable by the monotone rule from a
    subset of ``faulty`` qualifies — e.g. the converged labels of a
    smaller fault set).  The iteration resumes from ``initial | faulty``
    instead of ``faulty``.  ``seeds`` restricts the first frontier to
    the neighbourhoods of the given flat cell indices; it must cover
    every cell whose unsafe status was asserted since ``initial``
    converged (new faults plus any re-marked cells), which is what makes
    the warm start reach the exact full fixpoint while touching only the
    changed area.  ``seeds=None`` seeds from every unsafe cell (always
    correct, linear in the unsafe population).
    """
    if faulty.shape != topology.shape:
        raise ConvergenceError(
            f"fault mask shape {faulty.shape} != topology shape {topology.shape}"
        )
    budget = max_rounds if max_rounds is not None else (topology.num_nodes + 2)
    width, height = topology.shape
    wraps = topology.wraps
    if initial is None:
        grid = np.ascontiguousarray(faulty, dtype=bool).copy()
    else:
        if initial.shape != topology.shape:
            raise ConvergenceError(
                f"warm-start shape {initial.shape} != topology shape {topology.shape}"
            )
        grid = np.ascontiguousarray(initial, dtype=bool) | faulty
    unsafe = grid.ravel()  # writable view of the 2-D result

    def still_safe_neighbors(flipped: np.ndarray) -> np.ndarray:
        nbrs, valid = _neighbor_indices(flipped, width, height, wraps)
        cand = np.unique(nbrs[valid])
        return cand[~unsafe[cand]]

    if seeds is None:
        seed_idx = np.flatnonzero(unsafe)
    else:
        seed_idx = np.asarray(seeds, dtype=np.intp)
    frontier = still_safe_neighbors(seed_idx) if seed_idx.size else seed_idx
    rounds = 0
    meter = _frontier_meter(telemetry)
    while frontier.size:
        if rounds > budget:
            raise ConvergenceError(
                f"unsafe labeling did not converge within {budget} rounds"
            )
        if meter is not None:
            meter.observe(int(frontier.size))
        nbrs, valid = _neighbor_indices(frontier, width, height, wraps)
        vals = unsafe[nbrs] & valid  # ghost neighbours are safe
        if definition is SafetyDefinition.DEF_2A:
            fire = vals.sum(axis=0, dtype=np.int8) >= 2
        else:
            fire = (vals[0] | vals[1]) & (vals[2] | vals[3])
        flipped = frontier[fire]
        if flipped.size == 0:
            break
        unsafe[flipped] = True
        rounds += 1
        frontier = still_safe_neighbors(flipped)
    return grid, rounds


def enabled_fixpoint_sparse(
    topology: Topology,
    faulty: BoolGrid,
    unsafe: BoolGrid,
    max_rounds: int | None = None,
    telemetry: Optional[Telemetry] = None,
) -> Tuple[BoolGrid, int]:
    """Phase-2 fixpoint by frontier propagation.

    Drop-in replacement for
    :func:`repro.core.enabling.enabled_fixpoint` with identical labels
    and round counts.  Only disabled nonfaulty cells can ever change,
    so they seed the first frontier; afterwards the frontier is the
    still-disabled neighbourhood of the cells enabled last round.
    """
    if faulty.shape != topology.shape or unsafe.shape != topology.shape:
        raise ConvergenceError("label plane shapes disagree with the topology")
    if np.any(faulty & ~unsafe):
        raise ConvergenceError("phase-1 labels invalid: a faulty node is safe")
    budget = max_rounds if max_rounds is not None else (topology.num_nodes + 2)
    width, height = topology.shape
    wraps = topology.wraps
    grid = ~np.ascontiguousarray(unsafe, dtype=bool)
    enabled = grid.ravel()
    faulty_flat = np.ascontiguousarray(faulty, dtype=bool).ravel()

    frontier = np.flatnonzero(~enabled & ~faulty_flat)
    rounds = 0
    meter = _frontier_meter(telemetry)
    while frontier.size:
        if rounds > budget:
            raise ConvergenceError(
                f"enable labeling did not converge within {budget} rounds"
            )
        if meter is not None:
            meter.observe(int(frontier.size))
        nbrs, valid = _neighbor_indices(frontier, width, height, wraps)
        vals = enabled[nbrs] | ~valid  # ghost neighbours are enabled
        fire = vals.sum(axis=0, dtype=np.int8) >= 2
        flipped = frontier[fire]
        if flipped.size == 0:
            break
        enabled[flipped] = True
        rounds += 1
        nbrs, valid = _neighbor_indices(flipped, width, height, wraps)
        cand = np.unique(nbrs[valid])
        frontier = cand[~enabled[cand] & ~faulty_flat[cand]]
    return grid, rounds
