"""Incremental relabeling: absorb fault deltas without relabeling the mesh.

The batch pipeline answers "what do the labels look like under fault set
F" by running both fixpoints over the whole grid.  This module answers
the *online* question — F changes by a handful of cells, what do the
labels look like now? — in work proportional to the affected area, not
the mesh.  Three structural facts make that possible:

* **Phase 1 is monotone in the fault set**, so after an injection the
  old unsafe labels are a valid under-approximation of the new fixpoint.
  The update re-asserts the changed cells and propagates a frontier wave
  outward from them only (:func:`~repro.core.frontier
  .unsafe_fixpoint_sparse` with warm-start seeds, or an equivalent
  per-cell wave for tiny deltas).  The per-round flip sets equal the
  dense warm-started schedule's, so round counts are exact.

* **Phase 2 is per-block independent.**  Faulty blocks are maximal
  4-connected unsafe components, so every neighbour outside a block is
  safe — hence enabled — which is exactly the ghost-ring boundary
  condition.  The enable fixpoint restricted to one block is therefore a
  pure function of the block's extent and the *relative* offsets of its
  faults, independent of position and of every other block.  An update
  only recomputes the blocks whose membership or fault set changed, and
  a :class:`BlockEnableCache` keyed by ``(extent, fault offsets)``
  serves repeated shapes without touching the solver at all.

* **The unsafe fixpoint is a disjoint union of per-block closures**:
  every unsafe cell's justification chain stays inside its final block.
  Repairing a fault therefore only invalidates the block that contained
  it — the *bounded un-label wave* clears that block's cells, re-asserts
  its surviving faults, and re-runs the forward rule from them.  The
  wave cannot overshoot (the monotone rule evaluated on a state below
  the new fixpoint only fires cells of the new fixpoint) and cannot
  escape the cleared extent, so repair is as local as injection.

:class:`IncrementalLabeling` maintains the three label planes, a block
registry, and the cache under arbitrary inject/repair sequences; a
property suite pins every intermediate state bit-for-bit to the
from-scratch fixpoint.  :class:`~repro.service.LabelingService` wraps
this engine for long-lived serving.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.enabling import enabled_fixpoint
from repro.core.frontier import enabled_fixpoint_sparse, unsafe_fixpoint_sparse
from repro.core.pipeline import LabelingResult, assemble_result
from repro.core.safety import unsafe_fixpoint
from repro.core.status import LabelGrid, NodeStatus, SafetyDefinition
from repro.errors import FaultModelError, GeometryError
from repro.faults.faultset import FaultSet
from repro.mesh.topology import Mesh2D, Topology
from repro.obs.telemetry import Telemetry
from repro.types import BoolGrid, Coord

__all__ = [
    "BlockEnableCache",
    "DeltaReport",
    "IncrementalLabeling",
    "canonical_delta",
]

#: Delta size above which the phase-1 wave switches from the per-cell
#: Python frontier to the vectorized sparse kernel.
_WAVE_VECTOR_MIN = 64

#: Block area above which the per-block enable solve uses the sparse
#: kernel instead of the dense Jacobi fixpoint.
_SPARSE_SOLVE_CELLS = 4096

#: Cache key: (extent_x, extent_y, sorted flat fault offsets).
CacheKey = Tuple[int, int, Tuple[int, ...]]


class BlockEnableCache:
    """LRU cache of per-block enable solutions.

    Blocks are position-independent for phase 2 (module docstring), so
    the key is ``(extent_x, extent_y, offsets)`` where ``offsets`` are
    the faults' flat indices relative to the block origin.  The value is
    the solved enabled submask (read-only) and its round count.  One
    cache may be shared by several engines — the solution depends only
    on the key, never on the topology or safety definition.
    """

    __slots__ = ("_entries", "capacity", "hits", "misses")

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self._entries: "OrderedDict[CacheKey, Tuple[BoolGrid, int]]" = OrderedDict()
        self.capacity = capacity
        self.hits = 0
        self.misses = 0

    def get(self, key: CacheKey) -> Optional[Tuple[BoolGrid, int]]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: CacheKey, value: Tuple[BoolGrid, int]) -> None:
        entries = self._entries
        entries[key] = value
        entries.move_to_end(key)
        while len(entries) > self.capacity:
            entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "entries": len(self)}


def canonical_delta(
    inject: Iterable[Coord] = (),
    repair: Iterable[Coord] = (),
) -> Tuple[Tuple[Coord, ...], Tuple[Coord, ...]]:
    """The canonical (deduplicated, sorted, int-coerced) form of a delta.

    This is the serialization contract between the engine, the service's
    write-ahead log, and recovery replay: two deltas describing the same
    fault-set change always canonicalize to identical tuples, so WAL
    records compare and replay deterministically regardless of the order
    a caller listed the coordinates in.
    """
    inj = tuple(sorted({(int(c[0]), int(c[1])) for c in inject}))
    rep = tuple(sorted({(int(c[0]), int(c[1])) for c in repair}))
    return inj, rep


@dataclass
class DeltaReport:
    """What one incremental update cost and changed.

    Round counts reflect the *localized* work actually done: phase 1
    counts the wave's changing rounds, phase 2 the maximum rounds any
    recomputed block needed (cache hits cost zero).  Not frozen — at
    100k updates/sec the per-field ``object.__setattr__`` of a frozen
    dataclass is measurable — but treated as immutable by convention.
    """

    injected: Tuple[Coord, ...]   # faults actually added (already-faulty skipped)
    repaired: Tuple[Coord, ...]   # faults actually removed (non-faulty skipped)
    rounds_phase1: int
    rounds_phase2: int
    newly_unsafe: int             # nonfaulty nodes that flipped safe -> unsafe
    newly_safe: int               # nodes that flipped unsafe -> safe (repair)
    newly_disabled: int           # nonfaulty nodes that lost enabled status
    newly_activated: int          # nonfaulty nodes that gained enabled status
    blocks_changed: int           # blocks re-formed by this update
    cache_hits: int               # per-block solves served from the cache
    cache_misses: int             # per-block solves actually computed
    resynced: bool = False        # torus-only: fell back to a global phase 2
    version: int = 0              # engine version after this update applied

    @property
    def effective(self) -> bool:
        """Whether this update changed the fault set at all."""
        return bool(self.injected or self.repaired)

    def to_dict(self) -> Dict[str, object]:
        """Canonical JSON-ready view (coordinates sorted, plain ints).

        The service's wire responses and the write-ahead log both use
        this shape, so a replayed delta serializes bit-identically to
        the one originally acknowledged.
        """
        inj, rep = canonical_delta(self.injected, self.repaired)
        return {
            "injected": [list(c) for c in inj],
            "repaired": [list(c) for c in rep],
            "rounds_phase1": self.rounds_phase1,
            "rounds_phase2": self.rounds_phase2,
            "newly_unsafe": self.newly_unsafe,
            "newly_safe": self.newly_safe,
            "newly_disabled": self.newly_disabled,
            "newly_activated": self.newly_activated,
            "blocks_changed": self.blocks_changed,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "resynced": self.resynced,
        }


class _Block:
    """One registered faulty block.

    Rectangular blocks store origin and extent (cells are implied);
    irregular blocks (torus components wrapping a full dimension, where
    the planar sub-solve is unsound) store their cells explicitly and
    force a global phase-2 resync when touched.
    """

    __slots__ = ("x0", "y0", "ex", "ey", "offsets", "cells", "faults")

    def __init__(
        self,
        x0: int,
        y0: int,
        ex: int,
        ey: int,
        offsets: Tuple[int, ...],
        cells: Optional[Tuple[Coord, ...]],
        faults: Tuple[Coord, ...],
    ):
        self.x0 = x0
        self.y0 = y0
        self.ex = ex
        self.ey = ey
        self.offsets = offsets
        self.cells = cells
        self.faults = faults

    @property
    def rectangular(self) -> bool:
        return self.cells is None

    @property
    def num_cells(self) -> int:
        return self.ex * self.ey if self.cells is None else len(self.cells)


def _circular_extent(vals: Sequence[int], modulus: int) -> Optional[Tuple[int, int]]:
    """Start and length of the shortest circular arc covering ``vals``.

    ``vals`` must be sorted and unique.  Returns ``None`` when the arc
    is the whole circle (the component wraps all the way around).
    """
    if len(vals) == modulus:
        return None
    best_gap = vals[0] + modulus - vals[-1]
    start = vals[0]
    for i in range(1, len(vals)):
        gap = vals[i] - vals[i - 1]
        if gap > best_gap:
            best_gap = gap
            start = vals[i]
    extent = modulus - best_gap + 1
    if extent >= modulus:
        return None
    return start, extent


class IncrementalLabeling:
    """Continuously maintained labels under inject *and* repair deltas.

    Parameters
    ----------
    topology:
        Mesh or torus.  All views are in machine coordinates; the
        geometric views (:meth:`blocks_view` / :meth:`regions_view` /
        :meth:`snapshot`) unwrap tori exactly like
        :func:`~repro.core.pipeline.label_mesh`.
    definition:
        Phase-1 unsafe rule.
    cache:
        A :class:`BlockEnableCache` to (re)use, or ``None`` for a fresh
        private one.
    telemetry:
        Optional :class:`~repro.obs.telemetry.Telemetry`; the phase-1
        wave observes its per-round frontier size into the
        ``frontier_active_cells`` histogram.
    """

    def __init__(
        self,
        topology: Topology,
        definition: SafetyDefinition = SafetyDefinition.DEF_2B,
        cache: Optional[BlockEnableCache] = None,
        telemetry: Optional[Telemetry] = None,
    ):
        self._topology = topology
        self._definition = definition
        self._W, self._H = topology.shape
        self._wraps = topology.wraps
        self._faulty: BoolGrid = np.zeros(topology.shape, dtype=bool)
        self._unsafe: BoolGrid = np.zeros(topology.shape, dtype=bool)
        self._enabled: BoolGrid = np.ones(topology.shape, dtype=bool)
        self._block_id = np.full(topology.shape, -1, dtype=np.int32)
        self._blocks: Dict[int, _Block] = {}
        self._next_id = 0
        self.cache = cache if cache is not None else BlockEnableCache()
        self._telemetry = telemetry
        self._frontier_meter = (
            None
            if telemetry is None or telemetry.metrics is None
            else telemetry.histogram("frontier_active_cells")
        )
        self._version = 0
        self._total_rounds1 = 0
        self._total_rounds2 = 0
        self._num_updates = 0
        self._geom_cache: Dict[str, Tuple[int, object]] = {}

    @classmethod
    def from_faults(
        cls,
        topology: Topology,
        faults: FaultSet | Iterable[Coord],
        definition: SafetyDefinition = SafetyDefinition.DEF_2B,
        cache: Optional[BlockEnableCache] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> "IncrementalLabeling":
        """Build a converged engine for an initial fault set.

        The initial build is just a (large) injection, so it exercises
        the same machinery as the online path and pre-warms the cache.
        """
        engine = cls(topology, definition, cache=cache, telemetry=telemetry)
        engine.inject(list(faults))
        return engine

    # -- views ----------------------------------------------------------------

    @property
    def topology(self) -> Topology:
        return self._topology

    @property
    def definition(self) -> SafetyDefinition:
        return self._definition

    @property
    def version(self) -> int:
        """Bumped on every update that changed anything."""
        return self._version

    def set_version(self, version: int) -> None:
        """Rebase the applied-version counter (crash-recovery only).

        A recovered engine is rebuilt by replaying a snapshot plus the
        WAL tail; the snapshot load is a single bulk injection, so the
        counter must be rebased to the snapshot's recorded version before
        the tail replays — each replayed record then lands on exactly the
        version it was originally acknowledged at, which
        :mod:`repro.service.recovery` asserts record by record.
        """
        if version < self._version:
            raise ValueError(
                f"cannot rebase version backwards: {self._version} -> {version}"
            )
        self._version = int(version)

    @property
    def num_blocks(self) -> int:
        return len(self._blocks)

    @property
    def num_faults(self) -> int:
        return int(self._faulty.sum())

    @property
    def total_rounds_phase1(self) -> int:
        return self._total_rounds1

    @property
    def total_rounds_phase2(self) -> int:
        return self._total_rounds2

    @property
    def num_updates(self) -> int:
        return self._num_updates

    @property
    def faults(self) -> FaultSet:
        return FaultSet.from_mask(self._faulty.copy())

    @property
    def labels(self) -> LabelGrid:
        return LabelGrid(
            faulty=self._faulty.copy(),
            unsafe=self._unsafe.copy(),
            enabled=self._enabled.copy(),
        )

    def is_enabled(self, c: Coord) -> bool:
        """Whether node ``c`` currently participates in routing.

        Pure array read — never touches geometry, so queries on blocks
        untouched by recent updates cost nothing beyond the lookup.
        """
        self._topology.check(c)
        return bool(self._enabled[c[0], c[1]])

    def is_faulty(self, c: Coord) -> bool:
        self._topology.check(c)
        return bool(self._faulty[c[0], c[1]])

    def status_of(self, c: Coord) -> NodeStatus:
        """Composite status of one node (cheap scalar reads, no copies)."""
        self._topology.check(c)
        x, y = c
        if self._faulty[x, y]:
            return NodeStatus.FAULTY
        if not self._unsafe[x, y]:
            return NodeStatus.SAFE_ENABLED
        return (
            NodeStatus.UNSAFE_ENABLED
            if self._enabled[x, y]
            else NodeStatus.UNSAFE_DISABLED
        )

    def block_summaries(self) -> List[Dict[str, object]]:
        """Compact registry view: one dict per block, sorted by origin.

        Served straight from the registry — no geometric extraction.
        """
        out = []
        for blk in self._blocks.values():
            out.append(
                {
                    "origin": [blk.x0, blk.y0],
                    "extent": [blk.ex, blk.ey] if blk.rectangular else None,
                    "cells": blk.num_cells,
                    "faults": len(blk.faults),
                }
            )
        out.sort(key=lambda d: tuple(d["origin"]))  # type: ignore[arg-type]
        return out

    # -- updates --------------------------------------------------------------

    def inject(self, coords: FaultSet | Iterable[Coord]) -> DeltaReport:
        """Add faults; see :meth:`apply`."""
        return self.apply(inject=list(coords))

    def repair(self, coords: FaultSet | Iterable[Coord]) -> DeltaReport:
        """Remove faults; see :meth:`apply`."""
        return self.apply(repair=list(coords))

    def apply(
        self,
        inject: Iterable[Coord] = (),
        repair: Iterable[Coord] = (),
    ) -> DeltaReport:
        """Absorb one fault-set delta and restore both label fixpoints.

        Injecting an already-faulty node or repairing a non-faulty node
        is a no-op for that node; a coordinate in both lists is an
        error.  The resulting planes are bit-for-bit the from-scratch
        fixpoint of the new fault set (property tested).
        """
        # The dominant online workload is a single-cell delta whose
        # neighbourhood is trivial (an isolated fault appearing or
        # healing).  Those skip the generic machinery entirely; anything
        # non-trivial falls through to the full path below.
        if isinstance(inject, (list, tuple)) and isinstance(repair, (list, tuple)):
            if len(inject) == 1 and not repair:
                report = self._try_inject_one(inject[0])
                if report is not None:
                    return report
            elif len(repair) == 1 and not inject:
                report = self._try_repair_one(repair[0])
                if report is not None:
                    return report
        inj = list(dict.fromkeys((int(c[0]), int(c[1])) for c in inject))
        rep = list(dict.fromkeys((int(c[0]), int(c[1])) for c in repair))
        check = self._topology.check
        for c in inj:
            check(c)
        for c in rep:
            check(c)
        overlap = set(inj) & set(rep)
        if overlap:
            raise FaultModelError(
                f"cannot inject and repair the same nodes in one update: "
                f"{sorted(overlap)}"
            )
        faulty = self._faulty
        injected = [c for c in inj if not faulty[c]]
        repaired = [c for c in rep if faulty[c]]
        if not injected and not repaired:
            return DeltaReport(
                (), (), 0, 0, 0, 0, 0, 0, 0, 0, 0, version=self._version
            )
        hits0, misses0 = self.cache.hits, self.cache.misses

        unsafe = self._unsafe
        bid_grid = self._block_id
        prior_unsafe: Dict[Coord, bool] = {}
        newly_disabled = 0
        newly_activated = 0

        # --- un-label: clear every block that lost a fault -------------------
        reseed: List[Coord] = []
        cleared_cells: List[Coord] = []
        cleared_ids: Set[int] = set()
        for c in repaired:
            faulty[c] = False
            cleared_ids.add(int(bid_grid[c]))
        for bid in cleared_ids:
            blk = self._blocks.pop(bid)
            for c in self._block_cells(blk):
                prior_unsafe.setdefault(c, True)
                cleared_cells.append(c)
                unsafe[c] = False
                bid_grid[c] = -1
                if faulty[c]:
                    reseed.append(c)

        # --- mark the delta and propagate the monotone wave ------------------
        affected_ids: Set[int] = set()
        seeds: List[Coord] = []
        for c in injected:
            faulty[c] = True
            if unsafe[c]:
                affected_ids.add(int(bid_grid[c]))
            else:
                prior_unsafe.setdefault(c, False)
                unsafe[c] = True
                seeds.append(c)
        for c in reseed:
            unsafe[c] = True
            seeds.append(c)
        rounds1, grown = self._wave_up(seeds)
        unsafe = self._unsafe  # the vectorized wave rebinds the plane
        for c in grown:
            prior_unsafe.setdefault(c, False)

        # --- find every block whose membership or fault set changed ----------
        up_set: Set[Coord] = set(seeds)
        up_set.update(grown)
        nbrs = self._nbrs
        for cell in up_set:
            for nb in nbrs(*cell):
                b = int(bid_grid[nb])
                if b >= 0:
                    affected_ids.add(b)
        area: Set[Coord] = set(up_set)
        for bid in affected_ids:
            blk = self._blocks.pop(bid)
            for c in self._block_cells(blk):
                bid_grid[c] = -1
                area.add(c)

        # --- re-form components and localize phase 2 -------------------------
        new_blocks, irregular = self._flood_register(area)
        rounds2 = 0
        resynced = False
        if irregular:
            nd, na, rounds2 = self._resync_enabled()
            newly_disabled += nd
            newly_activated += na
            resynced = True
        else:
            for c in cleared_cells:
                if not unsafe[c] and not self._enabled[c]:
                    self._enabled[c] = True
                    newly_activated += 1
            for blk in new_blocks:
                nd, na, r2 = self._enable_block(blk)
                newly_disabled += nd
                newly_activated += na
                if r2 > rounds2:
                    rounds2 = r2

        newly_unsafe = 0
        newly_safe = 0
        for c, prior in prior_unsafe.items():
            cur = bool(unsafe[c])
            if cur and not prior and not faulty[c]:
                newly_unsafe += 1
            elif prior and not cur:
                newly_safe += 1

        self._version += 1
        self._total_rounds1 += rounds1
        self._total_rounds2 += rounds2
        self._num_updates += 1
        return DeltaReport(
            injected=tuple(injected),
            repaired=tuple(repaired),
            rounds_phase1=rounds1,
            rounds_phase2=rounds2,
            newly_unsafe=newly_unsafe,
            newly_safe=newly_safe,
            newly_disabled=newly_disabled,
            newly_activated=newly_activated,
            blocks_changed=len(new_blocks),
            cache_hits=self.cache.hits - hits0,
            cache_misses=self.cache.misses - misses0,
            resynced=resynced,
            version=self._version,
        )

    # -- single-cell fast paths -------------------------------------------------

    def _try_inject_one(self, c: Coord) -> Optional[DeltaReport]:
        """Inject one isolated fault without the generic machinery.

        Applies only when no cell within distance 2 is unsafe.  Every
        rule evaluation after the injection sees at most one unsafe
        neighbour (the new fault itself), so nothing fires under either
        definition, no block is adjacent, and the update is exactly
        "register a 1x1 block".  Border cells and anything non-trivial
        return ``None`` to fall back to the generic path.
        """
        x, y = int(c[0]), int(c[1])
        W, H = self._W, self._H
        if not (0 <= x < W and 0 <= y < H):
            self._topology.check((x, y))  # raises TopologyError
        faulty = self._faulty
        if faulty[x, y]:
            return DeltaReport(
                (), (), 0, 0, 0, 0, 0, 0, 0, 0, 0, version=self._version
            )
        if not (2 <= x < W - 2 and 2 <= y < H - 2):
            return None
        unsafe = self._unsafe
        if unsafe[x - 2 : x + 3, y - 2 : y + 3].any():
            return None
        faulty[x, y] = True
        unsafe[x, y] = True
        self._enabled[x, y] = False
        bid = self._next_id
        self._next_id = bid + 1
        self._block_id[x, y] = bid
        self._blocks[bid] = _Block(x, y, 1, 1, (0,), None, ((x, y),))
        self.cache.hits += 1  # the 1x1 constant, as in _enable_block
        self._version += 1
        self._num_updates += 1
        return DeltaReport(
            ((x, y),), (), 0, 0, 0, 0, 0, 0, 1, 1, 0, version=self._version
        )

    def _try_repair_one(self, c: Coord) -> Optional[DeltaReport]:
        """Repair one isolated fault (a 1x1 block) without the generic
        machinery; ``None`` falls back for anything larger."""
        x, y = int(c[0]), int(c[1])
        W, H = self._W, self._H
        if not (0 <= x < W and 0 <= y < H):
            self._topology.check((x, y))  # raises TopologyError
        faulty = self._faulty
        if not faulty[x, y]:
            return DeltaReport(
                (), (), 0, 0, 0, 0, 0, 0, 0, 0, 0, version=self._version
            )
        bid = int(self._block_id[x, y])
        blk = self._blocks[bid]
        if blk.cells is not None or blk.ex != 1 or blk.ey != 1:
            return None
        faulty[x, y] = False
        self._unsafe[x, y] = False
        self._enabled[x, y] = True
        self._block_id[x, y] = -1
        del self._blocks[bid]
        self._version += 1
        self._num_updates += 1
        return DeltaReport(
            (), ((x, y),), 0, 0, 0, 1, 0, 1, 0, 0, 0, version=self._version
        )

    # -- phase 1: the frontier wave -------------------------------------------

    def _nbrs(self, x: int, y: int) -> List[Coord]:
        W, H = self._W, self._H
        if self._wraps:
            return [
                ((x + 1) % W, y),
                ((x - 1) % W, y),
                (x, (y + 1) % H),
                (x, (y - 1) % H),
            ]
        out = []
        if x + 1 < W:
            out.append((x + 1, y))
        if x > 0:
            out.append((x - 1, y))
        if y + 1 < H:
            out.append((x, y + 1))
        if y > 0:
            out.append((x, y - 1))
        return out

    def _wave_up(self, seeds: List[Coord]) -> Tuple[int, List[Coord]]:
        """Grow the unsafe plane to its fixpoint from the (re)asserted cells.

        Returns the changing-round count (identical to the dense
        warm-started schedule's) and the cells that flipped.
        """
        if not seeds:
            return 0, []
        if len(seeds) >= _WAVE_VECTOR_MIN:
            before = self._unsafe.copy()
            flat = np.array([x * self._H + y for x, y in seeds], dtype=np.intp)
            grid, rounds = unsafe_fixpoint_sparse(
                self._topology,
                self._faulty,
                self._definition,
                telemetry=self._telemetry,
                initial=self._unsafe,
                seeds=flat,
            )
            self._unsafe = grid
            grown = [(int(x), int(y)) for x, y in np.argwhere(grid & ~before)]
            return rounds, grown
        unsafe = self._unsafe
        W, H = self._W, self._H
        wraps = self._wraps
        def2a = self._definition is SafetyDefinition.DEF_2A
        meter = self._frontier_meter
        nbrs = self._nbrs
        frontier: Set[Coord] = set()
        for cell in seeds:
            for nb in nbrs(*cell):
                if not unsafe[nb]:
                    frontier.add(nb)
        grown: List[Coord] = []
        rounds = 0
        while frontier:
            if meter is not None:
                meter.observe(len(frontier))
            flipped: List[Coord] = []
            for x, y in frontier:
                if wraps:
                    e = unsafe[(x + 1) % W, y]
                    w = unsafe[x - 1, y]
                    n = unsafe[x, (y + 1) % H]
                    s = unsafe[x, y - 1]
                else:
                    e = x + 1 < W and unsafe[x + 1, y]
                    w = x > 0 and unsafe[x - 1, y]
                    n = y + 1 < H and unsafe[x, y + 1]
                    s = y > 0 and unsafe[x, y - 1]
                if def2a:
                    if bool(e) + bool(w) + bool(n) + bool(s) >= 2:
                        flipped.append((x, y))
                elif (e or w) and (n or s):
                    flipped.append((x, y))
            if not flipped:
                break
            nxt: Set[Coord] = set()
            for cell in flipped:
                unsafe[cell] = True
            grown.extend(flipped)
            for cell in flipped:
                for nb in nbrs(*cell):
                    if not unsafe[nb]:
                        nxt.add(nb)
            rounds += 1
            frontier = nxt
        return rounds, grown

    # -- block registry --------------------------------------------------------

    def _block_cells(self, blk: _Block) -> Iterable[Coord]:
        if blk.cells is not None:
            return blk.cells
        W, H = self._W, self._H
        if self._wraps:
            return [
                ((blk.x0 + i) % W, (blk.y0 + j) % H)
                for i in range(blk.ex)
                for j in range(blk.ey)
            ]
        return [
            (blk.x0 + i, blk.y0 + j)
            for i in range(blk.ex)
            for j in range(blk.ey)
        ]

    def _flood_register(self, area: Set[Coord]) -> Tuple[List[_Block], bool]:
        """Partition ``area`` into 4-connected components and register them.

        Returns the rectangular blocks formed plus whether any component
        was irregular (torus full-wrap), which forces a global phase-2
        resync.
        """
        bid_grid = self._block_id
        nbrs = self._nbrs
        remaining = set(area)
        new_blocks: List[_Block] = []
        irregular = False
        while remaining:
            start = remaining.pop()
            stack = [start]
            comp = [start]
            while stack:
                cell = stack.pop()
                for nb in nbrs(*cell):
                    if nb in remaining:
                        remaining.discard(nb)
                        comp.append(nb)
                        stack.append(nb)
            bid = self._next_id
            self._next_id += 1
            for c in comp:
                bid_grid[c] = bid
            faults = tuple(sorted(c for c in comp if self._faulty[c]))
            blk = self._canonicalize(comp, faults)
            self._blocks[bid] = blk
            if blk.rectangular:
                new_blocks.append(blk)
            else:
                irregular = True
        return new_blocks, irregular

    def _canonicalize(self, comp: List[Coord], faults: Tuple[Coord, ...]) -> _Block:
        """Fit a component into an origin + extent frame.

        On a mesh every converged unsafe component is a rectangle (the
        paper's faulty-block theorem) — a violation raises
        :class:`~repro.errors.GeometryError`.  On a torus a component
        may wrap; it is canonicalized through the shortest covering arc
        per dimension, and components spanning a full dimension (where
        internal wrap links break the planar sub-solve) are kept as
        irregular explicit-cell blocks.
        """
        W, H = self._W, self._H
        xs = sorted({c[0] for c in comp})
        ys = sorted({c[1] for c in comp})
        if not self._wraps:
            x0, ex = xs[0], xs[-1] - xs[0] + 1
            y0, ey = ys[0], ys[-1] - ys[0] + 1
            if ex * ey != len(comp):
                raise GeometryError(
                    f"faulty block at ({x0},{y0}) is not a rectangle: "
                    f"{len(comp)} cells in a {ex}x{ey} bounding box"
                )
        else:
            span_x = _circular_extent(xs, W)
            span_y = _circular_extent(ys, H)
            if span_x is None or span_y is None:
                return _Block(0, 0, 0, 0, (), tuple(sorted(comp)), faults)
            x0, ex = span_x
            y0, ey = span_y
            if ex * ey != len(comp):
                return _Block(0, 0, 0, 0, (), tuple(sorted(comp)), faults)
        offsets = tuple(
            sorted(((c[0] - x0) % W) * ey + ((c[1] - y0) % H) for c in faults)
        )
        return _Block(x0, y0, ex, ey, offsets, None, faults)

    # -- phase 2: per-block solves ---------------------------------------------

    def _enable_block(self, blk: _Block) -> Tuple[int, int, int]:
        """Restore the enable fixpoint inside one rectangular block.

        Returns ``(newly_disabled, newly_activated, rounds)``; rounds
        are zero when the cache already held the block's solution.
        """
        cache = self.cache
        ex, ey = blk.ex, blk.ey
        if ex == 1 and ey == 1:
            # A lone fault: the block is the fault itself; its solution
            # is the constant all-disabled mask, served as a cache hit.
            cache.hits += 1
            self._enabled[blk.x0, blk.y0] = False
            return 0, 0, 0
        key: CacheKey = (ex, ey, blk.offsets)
        entry = cache.get(key)
        if entry is None:
            sub, solve_rounds = _solve_block(ex, ey, blk.offsets)
            cache.put(key, (sub, solve_rounds))
            rounds = solve_rounds
        else:
            sub, _ = entry
            rounds = 0
        enabled = self._enabled
        W, H = self._W, self._H
        x0, y0 = blk.x0, blk.y0
        if x0 + ex <= W and y0 + ey <= H:
            view = enabled[x0 : x0 + ex, y0 : y0 + ey]
            fview = self._faulty[x0 : x0 + ex, y0 : y0 + ey]
            before = view.copy()
            nd = int(np.count_nonzero(before & ~sub & ~fview))
            na = int(np.count_nonzero(~before & sub))
            view[...] = sub
        else:  # torus block straddling the seam
            idx = np.ix_((x0 + np.arange(ex)) % W, (y0 + np.arange(ey)) % H)
            before = enabled[idx]
            fview = self._faulty[idx]
            nd = int(np.count_nonzero(before & ~sub & ~fview))
            na = int(np.count_nonzero(~before & sub))
            enabled[idx] = sub
        return nd, na, rounds

    def _resync_enabled(self) -> Tuple[int, int, int]:
        """Global phase-2 fallback for irregular (full-wrap) components."""
        before = self._enabled
        active = int(np.count_nonzero(self._unsafe & ~self._faulty))
        if active * 8 <= self._topology.num_nodes:
            enabled, rounds = enabled_fixpoint_sparse(
                self._topology, self._faulty, self._unsafe,
                telemetry=self._telemetry,
            )
        else:
            enabled, rounds = enabled_fixpoint(
                self._topology, self._faulty, self._unsafe
            )
        nd = int(np.count_nonzero(before & ~enabled & ~self._faulty))
        na = int(np.count_nonzero(~before & enabled))
        self._enabled = enabled
        return nd, na, rounds

    # -- geometric views --------------------------------------------------------

    def snapshot(
        self,
        geometry_backend: str = "vectorized",
        telemetry: Optional[Telemetry] = None,
    ) -> LabelingResult:
        """A full :class:`~repro.core.pipeline.LabelingResult` of the
        current state, equivalent to from-scratch labeling of the
        accumulated faults.  Round counts are the totals the incremental
        updates actually spent.  The snapshot (and the block/region
        views) is the only query that runs geometric extraction; plane
        and registry queries never do.  Torus states are unwrapped
        exactly like ``label_mesh`` results (see ``unwrap_shift``).
        """
        cached = self._geom_cache.get(f"snapshot:{geometry_backend}")
        if cached is not None and cached[0] == self._version:
            return cached[1]  # type: ignore[return-value]
        result = assemble_result(
            topology=self._topology,
            faults=self.faults,
            definition=self._definition,
            faulty=self._faulty.copy(),
            unsafe=self._unsafe.copy(),
            enabled=self._enabled.copy(),
            rounds_phase1=self._total_rounds1,
            rounds_phase2=self._total_rounds2,
            backend="incremental",
            method="incremental",
            geometry_backend=geometry_backend,
            telemetry=telemetry,
        )
        self._geom_cache[f"snapshot:{geometry_backend}"] = (self._version, result)
        return result

    def blocks_view(self, geometry_backend: str = "vectorized"):
        """Extracted faulty blocks (torus: in the unwrap frame).

        Lazily computed and cached per version — repeated queries
        between updates are free.
        """
        return self.snapshot(geometry_backend).blocks

    def regions_view(self, geometry_backend: str = "vectorized"):
        """Extracted disabled regions (torus: in the unwrap frame)."""
        return self.snapshot(geometry_backend).regions

    # -- verification -----------------------------------------------------------

    def verify_against_scratch(self) -> bool:
        """Whether the maintained planes equal the from-scratch fixpoints."""
        scratch_unsafe, _ = unsafe_fixpoint(
            self._topology, self._faulty, self._definition
        )
        if not np.array_equal(scratch_unsafe, self._unsafe):
            return False
        scratch_enabled, _ = enabled_fixpoint(
            self._topology, self._faulty, scratch_unsafe
        )
        return bool(np.array_equal(scratch_enabled, self._enabled))


def _solve_block(ex: int, ey: int, offsets: Tuple[int, ...]) -> Tuple[BoolGrid, int]:
    """Solve the enable fixpoint on one isolated block.

    The block's exterior neighbours are all safe (maximality of the
    component), hence enabled — exactly the ghost-ring boundary of a
    standalone ``ex x ey`` mesh whose cells are all unsafe.  The result
    depends only on the extent and the relative fault offsets, which is
    what makes the cache sound.
    """
    sub_faulty = np.zeros((ex, ey), dtype=bool)
    sub_faulty.ravel()[np.asarray(offsets, dtype=np.intp)] = True
    sub_unsafe = np.ones((ex, ey), dtype=bool)
    if ex * ey > _SPARSE_SOLVE_CELLS:
        enabled, rounds = enabled_fixpoint_sparse(
            Mesh2D(ex, ey), sub_faulty, sub_unsafe
        )
    else:
        enabled, rounds = enabled_fixpoint(Mesh2D(ex, ey), sub_faulty, sub_unsafe)
    enabled.setflags(write=False)
    return enabled, rounds
