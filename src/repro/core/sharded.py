"""Tile-sharded fixpoints — halo-exchange labeling over shared memory.

The dense and frontier kernels solve the whole mesh as one array.  This
module decomposes the grid into tiles (:mod:`repro.mesh.tiling`) and
solves each tile **to its local fixpoint** on a framed
``(w + 2) x (h + 2)`` copy — the tile interior plus a one-cell halo —
using the existing kernels *unchanged*: a framed tile is just a small
:class:`~repro.mesh.topology.Mesh2D`.  Tiles exchange halos only when a
solve changes cells on a tile's rim; the outer loop converges when no
rim changes anywhere.

Why the result is bit-for-bit the global fixpoint
-------------------------------------------------
Both rules are monotone (labels only rise), so the global fixpoint is
the unique least fixpoint above the initial state, and the argument has
three steps:

1. *Under-approximation invariant.*  Every value a tile solve reads is
   a current plane value (<= the global fixpoint, inductively) or a
   ghost constant, and the kernels are monotone, so every value written
   is <= the global fixpoint.  This also covers the halo cells a
   phase-1 local solve may flip internally: they are computed from
   under-approximated inputs, and they are never written back.
2. *Convergence.*  Writes only raise cells, so at most ``N`` raises
   happen in total, and a round whose solves change nothing activates
   nobody; the active set empties in finitely many rounds.
3. *Exactness at termination.*  When the active set empties, every
   cell's rule is satisfied under the global state: each interior cell
   was last written as part of a local fixpoint, and its halo inputs
   have not changed since (a change would have re-activated the tile).
   The plane is therefore a fixpoint of the global operator that is
   >= the initial state and <= the least fixpoint — i.e. *equal* to it.

Phase specifics:

* **Phase 1 (unsafe)** warm-starts each local solve by passing the
  framed current-unsafe plane as the kernel's ``faulty`` argument — the
  rule ``unsafe | newly | faulty`` keeps every already-unsafe cell, and
  since the plane always contains the true faults, the local fixpoint
  is the rule's closure of the current state.  Mesh-edge halo cells are
  ghost-safe fills and can never flip (a rim ghost has at most one
  non-ghost neighbour inside the frame, which neither Definition 2a nor
  2b can fire on — the same induction as the paper's ghost ring).
* **Phase 2 (enabled)** must *clamp* halo cells: the enable rule is not
  monotone in the faults, so a disabled halo cell is marked faulty in a
  local ``faulty`` plane (faulty cells never enable; interior cells
  only read the halo's *enabled* values, which are exactly the current
  plane values).  Enabled halo cells stay enabled by monotonicity.
  Mesh-edge halos gather as ghost-enabled, reproducing the global
  kernels' ``fill=True``.

Round counts: the returned ``rounds`` is the number of **tile rounds**
(halo-exchange generations), not Jacobi rounds — with one tile it is 1
for any non-trivial instance.  Labels are bit-for-bit; round counts are
a different (coarser) clock, which :func:`repro.core.pipeline.label_mesh`
reports as-is for ``shard=`` runs.

Execution: tiles write disjoint interiors, so parallel tile solves over
``multiprocessing.shared_memory`` planes (:class:`SharedArena`) never
race on writes; concurrent halo *reads* of a neighbour mid-write are
benign — any mix of old/new byte values is still an under-approximation
of the fixpoint, which step 1 above absorbs.  Workers receive only tile
rectangles and :class:`~repro.analysis.executor.SharedBlock` tokens: no
label plane is ever pickled.  A tile whose worker keeps dying (poison
tile) is re-solved in the parent, so one bad worker cannot lose a tile.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # runtime import is lazy: analysis/ imports core/
    from repro.analysis.executor import WarmPoolRegistry

from repro.core.enabling import enabled_fixpoint
from repro.core.frontier import enabled_fixpoint_sparse, unsafe_fixpoint_sparse
from repro.core.safety import unsafe_fixpoint
from repro.core.status import SafetyDefinition
from repro.errors import ConvergenceError
from repro.mesh.tiling import Tiling, gather_framed, parse_shard_spec
from repro.mesh.topology import Mesh2D, Topology
from repro.obs.telemetry import Telemetry
from repro.types import BoolGrid

__all__ = ["enabled_fixpoint_sharded", "unsafe_fixpoint_sharded"]

_PHASE_UNSAFE = "unsafe"
_PHASE_ENABLE = "enable"

#: Same sparsity threshold as the pipeline's ``auto`` method resolution:
#: a tile solve runs the frontier kernel when its active cells are at
#: most 1/8 of the framed area.
_AUTO_SPARSITY = 8

#: Crash-injection hook for the executor hygiene tests: a worker whose
#: tile rectangle starts at ``"x0,y0"`` dies with ``os._exit`` before
#: touching shared memory.  Parent-side fallbacks ignore it.
_CRASH_TILE_ENV = "REPRO_SHARD_CRASH_TILE"

#: Upper bound on tiles per executor dispatch — tile solves are heavy,
#: so chunks stay small to load-balance.
_MAX_TILE_CHUNK = 16


def _local_topology(framed_shape: Tuple[int, int]) -> Mesh2D:
    """The framed tile as a little mesh — what lets the global kernels
    run unchanged: the frame's outermost ring plays the ghost fill."""
    return Mesh2D(framed_shape[0], framed_shape[1])


def _tile_pass(
    plane: BoolGrid,
    faulty: Optional[BoolGrid],
    rect: Tuple[int, int, int, int],
    wraps: bool,
    definition: SafetyDefinition,
    phase: str,
    method: str,
) -> Tuple[int, Tuple[bool, bool, bool, bool], int]:
    """Solve one tile to its local fixpoint against the current halos.

    Gathers the framed view, runs the dense or frontier kernel on it,
    and writes the changed interior back into ``plane``.  Returns
    ``(cells_changed, rim_changed_by_side, local_rounds)`` with sides in
    (E, W, N, S) order — the caller activates the neighbour across each
    changed rim.
    """
    x0, y0, x1, y1 = rect
    if phase == _PHASE_UNSAFE:
        framed = gather_framed(plane, rect, wraps, fill=False)
        seeds = int(np.count_nonzero(framed))
        if seeds == 0:
            return 0, (False, False, False, False), 0
        topo = _local_topology(framed.shape)
        kernel = method
        if method == "auto":
            kernel = (
                "frontier"
                if seeds * _AUTO_SPARSITY <= framed.size
                else "dense"
            )
        if kernel == "frontier":
            local, rounds = unsafe_fixpoint_sparse(topo, framed, definition)
        else:
            local, rounds = unsafe_fixpoint(topo, framed, definition)
    else:
        framed_enabled = gather_framed(plane, rect, wraps, fill=True)
        framed_faulty = gather_framed(faulty, rect, wraps, fill=False)
        # Clamp the halo: the enable rule must not move halo cells, so
        # currently-disabled halo cells are locally faulty (they stay
        # disabled); enabled ones cannot move anyway.
        clamp = np.zeros(framed_enabled.shape, dtype=bool)
        clamp[0, :] = clamp[-1, :] = clamp[:, 0] = clamp[:, -1] = True
        local_faulty = framed_faulty | (clamp & ~framed_enabled)
        movable = int(np.count_nonzero(~framed_enabled & ~local_faulty))
        if movable == 0:
            return 0, (False, False, False, False), 0
        topo = _local_topology(framed_enabled.shape)
        kernel = method
        if method == "auto":
            kernel = (
                "frontier"
                if movable * _AUTO_SPARSITY <= framed_enabled.size
                else "dense"
            )
        if kernel == "frontier":
            local, rounds = enabled_fixpoint_sparse(
                topo, local_faulty, ~framed_enabled
            )
        else:
            local, rounds = enabled_fixpoint(
                topo, local_faulty, ~framed_enabled
            )
    interior = local[1:-1, 1:-1]
    current = plane[x0:x1, y0:y1]
    delta = interior != current
    changed = int(np.count_nonzero(delta))
    if changed == 0:
        return 0, (False, False, False, False), rounds
    plane[x0:x1, y0:y1] = interior
    sides = (
        bool(delta[-1, :].any()),  # east rim  -> tile (ix+1, iy)
        bool(delta[0, :].any()),   # west rim  -> tile (ix-1, iy)
        bool(delta[:, -1].any()),  # north rim -> tile (ix, iy+1)
        bool(delta[:, 0].any()),   # south rim -> tile (ix, iy-1)
    )
    return changed, sides, rounds


def _shard_cell(task):
    """Worker-side tile solve on attached shared-memory planes."""
    from repro.analysis.executor import attach_block

    phase, def_value, wraps, method, plane_block, faulty_block, rect = task
    crash = os.environ.get(_CRASH_TILE_ENV)
    if crash is not None and crash == f"{rect[0]},{rect[1]}":
        os._exit(1)
    plane = attach_block(plane_block)
    faulty = attach_block(faulty_block) if faulty_block is not None else None
    return _tile_pass(
        plane, faulty, rect, wraps, SafetyDefinition(def_value), phase, method
    )


def _initial_active(
    phase: str,
    tiling: Tiling,
    plane: BoolGrid,
    faulty: Optional[BoolGrid],
    wraps: bool,
) -> List[int]:
    """Tiles that could change in round 1.

    Phase 1: any unsafe cell in the tile's *framed* region (a fault in
    the halo alone can flip interior cells).  Phase 2: any disabled
    nonfaulty cell in the tile *interior* — the only cells the enable
    rule can ever move; halo state cannot create firing sites.
    """
    active: List[int] = []
    for tile in tiling.tiles():
        if phase == _PHASE_UNSAFE:
            hot = gather_framed(plane, tile.rect, wraps, fill=False).any()
        else:
            x0, y0, x1, y1 = tile.rect
            hot = bool(
                np.any(~plane[x0:x1, y0:y1] & ~faulty[x0:x1, y0:y1])
            )
        if hot:
            active.append(tiling.index(tile.ix, tile.iy))
    return active


def _sharded_fixpoint(
    phase: str,
    topology: Topology,
    faulty: Optional[BoolGrid],
    plane: BoolGrid,
    definition: SafetyDefinition,
    tiling: Tiling,
    jobs: int,
    method: str,
    max_rounds: Optional[int],
    telemetry: Optional[Telemetry],
    registry: Optional[WarmPoolRegistry],
) -> Tuple[BoolGrid, int]:
    """The halo-exchange driver shared by both phases.

    ``plane`` is the phase's label plane, owned by this function (the
    callers pass fresh copies).  Returns the converged plane and the
    tile-round count.
    """
    from repro.analysis.executor import SharedArena, run_cells

    wraps = topology.wraps
    tel = telemetry
    events_on = tel is not None and tel.wants("info")
    exchanges_ctr = tel.counter("halo_exchanges") if tel is not None else None
    tiles_ctr = tel.counter("tiles_active") if tel is not None else None
    failures_ctr = tel.counter("shard_tile_failures") if tel is not None else None

    # Worker pools nested inside a worker (a sharded label inside a
    # parallel sweep cell) would oversubscribe and can deadlock the
    # fork-based pool machinery; shard-level parallelism is the outer
    # loop's job there, so nested calls run their tiles serially.
    if multiprocessing.parent_process() is not None:
        jobs = 1
    jobs = max(1, int(jobs))

    active = _initial_active(phase, tiling, plane, faulty, wraps)
    if events_on:
        tel.emit(
            "shard_plan",
            phase=phase,
            tiles_x=tiling.tiles_x,
            tiles_y=tiling.tiles_y,
            tile_width=tiling.tile_width,
            tile_height=tiling.tile_height,
            jobs=jobs,
            active=len(active),
        )
    if not active:
        return plane, 0

    budget = max_rounds if max_rounds is not None else (topology.num_nodes + 2)
    def_value = definition.value
    tiles = tiling.tiles()
    rects = [t.rect for t in tiles]

    use_pool = jobs > 1
    arena: Optional[SharedArena] = None
    try:
        plane_block = faulty_block = None
        if use_pool:
            arena = SharedArena()
            shared_plane, plane_block = arena.ndarray(plane.shape, np.bool_)
            shared_plane[:] = plane
            plane = shared_plane
            if faulty is not None:
                shared_faulty, faulty_block = arena.ndarray(
                    faulty.shape, np.bool_
                )
                shared_faulty[:] = faulty
                faulty = shared_faulty

        rounds = 0
        while active:
            if rounds >= budget:
                raise ConvergenceError(
                    f"sharded {phase} labeling did not converge within "
                    f"{budget} tile rounds"
                )
            rounds += 1
            if tiles_ctr is not None:
                tiles_ctr.inc(len(active))
            span = (
                tel.span("tile_round", phase=phase, round=rounds, tiles=len(active))
                if tel is not None
                else None
            )
            if span is not None:
                span.__enter__()
            try:
                # Dispatch to the pool only when there is real fan-out;
                # convergence tails with one hot tile solve in-parent.
                if use_pool and len(active) > 1:
                    tasks = [
                        (
                            phase,
                            def_value,
                            wraps,
                            method,
                            plane_block,
                            faulty_block,
                            rects[tidx],
                        )
                        for tidx in active
                    ]
                    chunk = max(1, min(_MAX_TILE_CHUNK, -(-len(tasks) // (4 * jobs))))
                    rows, _ = run_cells(
                        _shard_cell,
                        tasks,
                        jobs,
                        broken_marker=lambda: None,
                        chunk_size=chunk,
                        registry=registry,
                    )
                    for i, row in enumerate(rows):
                        if row is None:
                            # Poison tile: its worker died repeatedly.
                            # The parent maps the same shared planes, so
                            # solving here is identical — no tile is lost.
                            if failures_ctr is not None:
                                failures_ctr.inc()
                            rows[i] = _tile_pass(
                                plane,
                                faulty,
                                rects[active[i]],
                                wraps,
                                definition,
                                phase,
                                method,
                            )
                else:
                    rows = [
                        _tile_pass(
                            plane, faulty, rects[tidx], wraps, definition,
                            phase, method,
                        )
                        for tidx in active
                    ]
            finally:
                if span is not None:
                    span.__exit__(None, None, None)

            signals = 0
            next_active = set()
            for tidx, (changed, sides, _local_rounds) in zip(active, rows):
                if not changed:
                    continue
                for side, rim_changed in enumerate(sides):
                    if not rim_changed:
                        continue
                    neighbor = tiling.neighbor_index(tidx, side, wraps)
                    if neighbor is not None:
                        signals += 1
                        next_active.add(neighbor)
            if exchanges_ctr is not None and signals:
                exchanges_ctr.inc(signals)
            if events_on:
                tel.emit(
                    "shard_round",
                    phase=phase,
                    round=rounds,
                    tiles=len(active),
                    exchanges=signals,
                )
            active = sorted(next_active)

        return (plane.copy() if use_pool else plane), rounds
    finally:
        if arena is not None:
            arena.close()


def unsafe_fixpoint_sharded(
    topology: Topology,
    faulty: BoolGrid,
    definition: SafetyDefinition = SafetyDefinition.DEF_2B,
    tiling: Optional[Tiling] = None,
    jobs: int = 1,
    method: str = "auto",
    max_rounds: Optional[int] = None,
    telemetry: Optional[Telemetry] = None,
    registry: Optional[WarmPoolRegistry] = None,
) -> Tuple[BoolGrid, int]:
    """Phase-1 fixpoint by tile sharding with halo exchange.

    Bit-for-bit the same labels as
    :func:`repro.core.safety.unsafe_fixpoint` (property tested); the
    returned round count is the number of **tile rounds**, not Jacobi
    rounds (see the module docstring).

    Parameters
    ----------
    tiling:
        The tile decomposition; ``None`` picks ``auto`` tiles for the
        grid and ``jobs`` (see
        :func:`repro.mesh.tiling.parse_shard_spec`).
    jobs:
        Worker processes for tile solves.  ``1`` solves tiles serially
        in-process; ``> 1`` runs tiles through the warm-pool executor
        over shared-memory planes.  Any value yields identical labels.
    method:
        Per-tile kernel: ``dense``, ``frontier``, or ``auto`` (per-tile
        sparsity decision — clustered instances mix kernels per tile).
    registry:
        Warm-pool registry override (tests); defaults to the shared one.
    """
    if faulty.shape != topology.shape:
        raise ConvergenceError(
            f"fault mask shape {faulty.shape} != topology shape {topology.shape}"
        )
    if tiling is None:
        tiling = parse_shard_spec("auto", topology.shape, jobs)
    return _sharded_fixpoint(
        _PHASE_UNSAFE,
        topology,
        None,
        faulty.astype(bool).copy(),
        definition,
        tiling,
        jobs,
        method,
        max_rounds,
        telemetry,
        registry,
    )


def enabled_fixpoint_sharded(
    topology: Topology,
    faulty: BoolGrid,
    unsafe: BoolGrid,
    tiling: Optional[Tiling] = None,
    jobs: int = 1,
    method: str = "auto",
    max_rounds: Optional[int] = None,
    telemetry: Optional[Telemetry] = None,
    registry: Optional[WarmPoolRegistry] = None,
) -> Tuple[BoolGrid, int]:
    """Phase-2 fixpoint by tile sharding with halo exchange.

    Bit-for-bit the same labels as
    :func:`repro.core.enabling.enabled_fixpoint`; parameters as in
    :func:`unsafe_fixpoint_sharded`, with ``unsafe`` the phase-1 labels
    (the initial enabled plane is their complement, per Definition 3).
    """
    if faulty.shape != topology.shape or unsafe.shape != topology.shape:
        raise ConvergenceError("label plane shapes disagree with the topology")
    if np.any(faulty & ~unsafe):
        raise ConvergenceError("phase-1 labels invalid: a faulty node is safe")
    if tiling is None:
        tiling = parse_shard_spec("auto", topology.shape, jobs)
    return _sharded_fixpoint(
        _PHASE_ENABLE,
        topology,
        faulty.astype(bool),
        ~unsafe.astype(bool),
        SafetyDefinition.DEF_2B,  # unused by phase 2; kept for symmetry
        tiling,
        jobs,
        method,
        max_rounds,
        telemetry,
        registry,
    )
