"""Orthogonal convexity: tests and minimal closures.

Definition 1 of the paper: a region is *orthogonal convex* iff for any
horizontal or vertical line, whenever two nodes on the line are inside
the region, every node on the line between them is inside too.  For a
set of grid cells this is exactly *per-row and per-column contiguity*:
the member cells of each row form one unbroken run, and likewise for
each column.

Regions are viewed as unions of closed unit squares, so two cells that
touch only at a corner still belong to one region (8-connectivity); the
classic examples behave as the paper states: **L**, **T** and **+**
shapes are orthogonal convex, **U** and **H** shapes are not.

The *orthogonal convex closure* of a cell set ``S`` is the least
superset of ``S`` closed under span filling — i.e. the unique smallest
orthogonal convex region containing ``S``.  Theorem 2 of the paper says
each disabled region equals the closure of the faults it contains; the
theorem checkers in :mod:`repro.core.theorems` verify precisely that.

All operations are vectorized: span filling is two ``logical_or``
scans per axis, and the closure iterates them to a fixpoint (it
converges in at most ``width + height`` sweeps; in practice a handful).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import GeometryError
from repro.geometry.cells import CellSet
from repro.geometry.components import connected_components, is_connected
from repro.types import BoolGrid

__all__ = [
    "fill_spans",
    "is_orthoconvex",
    "orthoconvex_closure",
    "row_runs",
    "column_runs",
]


def _span_mask(mask: BoolGrid, axis: int) -> BoolGrid:
    """Mask of cells lying between the first and last member of each line.

    ``out[c]`` is True iff the line through ``c`` along ``axis`` has a
    member cell at or before ``c`` *and* one at or after ``c``.
    """
    forward = np.logical_or.accumulate(mask, axis=axis)
    backward = np.flip(
        np.logical_or.accumulate(np.flip(mask, axis=axis), axis=axis), axis=axis
    )
    return forward & backward


def fill_spans(mask: BoolGrid, axis: int) -> BoolGrid:
    """Fill every gap between the extreme members of each grid line.

    ``axis=0`` fills horizontally (within rows of constant ``y``);
    ``axis=1`` fills vertically (within columns of constant ``x``).
    Returns a new mask; the input is not modified.
    """
    if axis not in (0, 1):
        raise ValueError(f"axis must be 0 or 1, got {axis}")
    return _span_mask(mask, axis)


def is_orthoconvex(cells: CellSet, require_connected: bool = True) -> bool:
    """Whether a cell set is an orthogonal convex region.

    Parameters
    ----------
    cells:
        The set to test.  The empty set is not considered a region.
    require_connected:
        Also require 8-connectivity (a single polygon, corner contacts
        allowed), which is part of what Theorem 1 asserts for disabled
        regions.  Set to False to test span-contiguity alone.
    """
    if not cells:
        return False
    mask = cells.mask
    if np.any(_span_mask(mask, 0) & ~mask):
        return False
    if np.any(_span_mask(mask, 1) & ~mask):
        return False
    if require_connected and not is_connected(cells, connectivity=8):
        return False
    return True


def orthoconvex_closure(cells: CellSet, max_iter: int | None = None) -> CellSet:
    """The smallest orthogonal convex *set* containing ``cells``.

    Iterates horizontal and vertical span filling to a fixpoint.  The
    operator is monotone and inflationary on a finite lattice, so the
    fixpoint exists, is unique, and is the least orthoconvex superset.

    Note that the closure of a disconnected input may itself be
    disconnected (e.g. two cells two diagonal steps apart); when a single
    *polygon* is needed, pass the result through
    :func:`repro.geometry.staircase.connect_orthoconvex`.

    Raises
    ------
    GeometryError
        If the iteration exceeds ``max_iter`` sweeps (impossible for
        well-formed inputs; guards against grid corruption).
    """
    if not cells:
        return cells
    w, h = cells.shape
    budget = max_iter if max_iter is not None else (w + h + 2)
    mask = cells.mask.copy()
    for _ in range(budget):
        new = fill_spans(mask, 0)
        new = fill_spans(new, 1)
        if np.array_equal(new, mask):
            return CellSet(mask)
        mask = new
    raise GeometryError(f"orthoconvex closure failed to converge in {budget} sweeps")


def row_runs(cells: CellSet) -> List[Tuple[int, int, int]]:
    """Decompose a *row-contiguous* set into per-row runs.

    Returns a list of ``(y, x_min, x_max)`` triples, one per occupied
    row, ordered by ``y``.  Useful for boundary construction and SVG
    export of orthoconvex polygons.

    Raises
    ------
    GeometryError
        If some occupied row is not a single contiguous run.
    """
    mask = cells.mask
    runs: List[Tuple[int, int, int]] = []
    any_in_row = mask.any(axis=0)
    for y in np.nonzero(any_in_row)[0].tolist():
        xs = np.nonzero(mask[:, y])[0]
        x0, x1 = int(xs[0]), int(xs[-1])
        if len(xs) != x1 - x0 + 1:
            raise GeometryError(f"row y={y} is not a contiguous run")
        runs.append((y, x0, x1))
    return runs


def column_runs(cells: CellSet) -> List[Tuple[int, int, int]]:
    """Per-column analogue of :func:`row_runs`: ``(x, y_min, y_max)`` triples."""
    mask = cells.mask
    runs: List[Tuple[int, int, int]] = []
    any_in_col = mask.any(axis=1)
    for x in np.nonzero(any_in_col)[0].tolist():
        ys = np.nonzero(mask[x, :])[0]
        y0, y1 = int(ys[0]), int(ys[-1])
        if len(ys) != y1 - y0 + 1:
            raise GeometryError(f"column x={x} is not a contiguous run")
        runs.append((x, y0, y1))
    return runs
