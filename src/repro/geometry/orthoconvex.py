"""Orthogonal convexity: tests and minimal closures.

Definition 1 of the paper: a region is *orthogonal convex* iff for any
horizontal or vertical line, whenever two nodes on the line are inside
the region, every node on the line between them is inside too.  For a
set of grid cells this is exactly *per-row and per-column contiguity*:
the member cells of each row form one unbroken run, and likewise for
each column.

Regions are viewed as unions of closed unit squares, so two cells that
touch only at a corner still belong to one region (8-connectivity); the
classic examples behave as the paper states: **L**, **T** and **+**
shapes are orthogonal convex, **U** and **H** shapes are not.

The *orthogonal convex closure* of a cell set ``S`` is the least
superset of ``S`` closed under span filling — i.e. the unique smallest
orthogonal convex region containing ``S``.  Theorem 2 of the paper says
each disabled region equals the closure of the faults it contains; the
theorem checkers in :mod:`repro.core.theorems` verify precisely that.

All operations are vectorized: span filling is two ``logical_or``
scans per axis, and the closure iterates them to a fixpoint (it
converges in at most ``width + height`` sweeps; in practice a handful).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import GeometryError
from repro.geometry.cells import CellSet
from repro.geometry.components import connected_components, is_connected
from repro.types import BoolGrid

__all__ = [
    "fill_spans",
    "is_orthoconvex",
    "orthoconvex_closure",
    "row_runs",
    "column_runs",
]


def _span_mask(mask: BoolGrid, axis: int) -> BoolGrid:
    """Mask of cells lying between the first and last member of each line.

    ``out[c]`` is True iff the line through ``c`` along ``axis`` has a
    member cell at or before ``c`` *and* one at or after ``c``.
    """
    forward = np.logical_or.accumulate(mask, axis=axis)
    backward = np.flip(
        np.logical_or.accumulate(np.flip(mask, axis=axis), axis=axis), axis=axis
    )
    return forward & backward


def fill_spans(mask: BoolGrid, axis: int) -> BoolGrid:
    """Fill every gap between the extreme members of each grid line.

    ``axis=0`` fills horizontally (within rows of constant ``y``);
    ``axis=1`` fills vertically (within columns of constant ``x``).
    Returns a new mask; the input is not modified.
    """
    if axis not in (0, 1):
        raise ValueError(f"axis must be 0 or 1, got {axis}")
    return _span_mask(mask, axis)


def is_orthoconvex(
    cells: CellSet, require_connected: bool = True, backend: str = "vectorized"
) -> bool:
    """Whether a cell set is an orthogonal convex region.

    Parameters
    ----------
    cells:
        The set to test.  The empty set is not considered a region.
    require_connected:
        Also require 8-connectivity (a single polygon, corner contacts
        allowed), which is part of what Theorem 1 asserts for disabled
        regions.  Set to False to test span-contiguity alone.
    backend:
        Geometry backend for the connectivity half of the test
        (``"vectorized"`` union-find or the ``"reference"`` BFS oracle);
        the span-contiguity half is whole-grid either way.
    """
    if not cells:
        return False
    mask = cells.mask
    if np.any(_span_mask(mask, 0) & ~mask):
        return False
    if np.any(_span_mask(mask, 1) & ~mask):
        return False
    if require_connected and not is_connected(cells, connectivity=8, backend=backend):
        return False
    return True


def orthoconvex_closure(cells: CellSet, max_iter: int | None = None) -> CellSet:
    """The smallest orthogonal convex *set* containing ``cells``.

    Iterates horizontal and vertical span filling to a fixpoint.  The
    operator is monotone and inflationary on a finite lattice, so the
    fixpoint exists, is unique, and is the least orthoconvex superset.

    Note that the closure of a disconnected input may itself be
    disconnected (e.g. two cells two diagonal steps apart); when a single
    *polygon* is needed, pass the result through
    :func:`repro.geometry.staircase.connect_orthoconvex`.

    Raises
    ------
    GeometryError
        If the iteration exceeds ``max_iter`` sweeps (impossible for
        well-formed inputs; guards against grid corruption).
    """
    if not cells:
        return cells
    w, h = cells.shape
    budget = max_iter if max_iter is not None else (w + h + 2)
    mask = cells.mask.copy()
    for _ in range(budget):
        new = fill_spans(mask, 0)
        new = fill_spans(new, 1)
        if np.array_equal(new, mask):
            return CellSet(mask)
        mask = new
    raise GeometryError(f"orthoconvex closure failed to converge in {budget} sweeps")


def row_runs(cells: CellSet) -> List[Tuple[int, int, int]]:
    """Decompose a *row-contiguous* set into per-row runs.

    Returns a list of ``(y, x_min, x_max)`` triples, one per occupied
    row, ordered by ``y``.  Useful for boundary construction and SVG
    export of orthoconvex polygons.

    Raises
    ------
    GeometryError
        If some occupied row is not a single contiguous run.
    """
    first, last, counts, lines = _line_extents(cells.mask, axis=0)
    bad = lines[(counts[lines] != last[lines] - first[lines] + 1)]
    if bad.size:
        raise GeometryError(f"row y={int(bad[0])} is not a contiguous run")
    return [
        (y, int(first[y]), int(last[y])) for y in lines.tolist()
    ]


def column_runs(cells: CellSet) -> List[Tuple[int, int, int]]:
    """Per-column analogue of :func:`row_runs`: ``(x, y_min, y_max)`` triples."""
    first, last, counts, lines = _line_extents(cells.mask, axis=1)
    bad = lines[(counts[lines] != last[lines] - first[lines] + 1)]
    if bad.size:
        raise GeometryError(f"column x={int(bad[0])} is not a contiguous run")
    return [
        (x, int(first[x]), int(last[x])) for x in lines.tolist()
    ]


def _line_extents(mask: BoolGrid, axis: int):
    """Whole-grid run-length summary of every grid line.

    For ``axis=0`` lines are rows of constant ``y`` (extents along x);
    for ``axis=1`` columns of constant ``x`` (extents along y).  Returns
    ``(first, last, counts, occupied)`` index arrays — one entry per
    line, with ``occupied`` listing the lines holding any member.  A
    line is a single contiguous run iff ``count == last - first + 1``,
    which is how the callers check contiguity without per-line loops.
    """
    along = 0 if axis == 0 else 1           # reduction axis
    length = mask.shape[along]
    counts = mask.sum(axis=along)
    first = np.argmax(mask, axis=along)
    flipped = np.flip(mask, axis=along)
    last = length - 1 - np.argmax(flipped, axis=along)
    occupied = np.nonzero(counts > 0)[0]
    return first, last, counts, occupied
