"""Connected components of cell sets.

Two connectivities matter in the paper:

* **4-connectivity** (mesh links) — used for *faulty blocks*, which are
  maximal sets of link-connected unsafe nodes, and

* **8-connectivity** (king moves) — used for *disabled regions*: the
  paper treats two disabled nodes whose closed unit squares share even a
  single corner point as part of one region (its Section 3 example puts
  faults ``(2,1)`` and ``(3,2)`` into one disabled region).

Component labelling is a breadth-first flood fill over the member cells
only, so its cost scales with the number of *occupied* cells — fault
regions are sparse, and this is never a hot path (the hot paths are the
vectorized label fixpoints in :mod:`repro.core`).
"""

from __future__ import annotations

from collections import deque
from typing import List

import numpy as np

from repro.geometry.cells import CellSet
from repro.types import BoolGrid

__all__ = [
    "connected_components",
    "is_connected",
    "Connectivity4",
    "Connectivity8",
]

#: Neighbour offsets for mesh-link (edge) adjacency.
Connectivity4 = ((1, 0), (-1, 0), (0, 1), (0, -1))

#: Neighbour offsets for king-move (edge or corner) adjacency.
Connectivity8 = (
    (1, 0), (-1, 0), (0, 1), (0, -1),
    (1, 1), (1, -1), (-1, 1), (-1, -1),
)


def connected_components(cells: CellSet, connectivity: int = 4) -> List[CellSet]:
    """Split ``cells`` into maximal connected components.

    Parameters
    ----------
    cells:
        The set to decompose.
    connectivity:
        4 for mesh-link adjacency (faulty blocks) or 8 for king-move
        adjacency (disabled regions).

    Returns
    -------
    list of CellSet
        Components ordered by their smallest row-major member, so the
        result is deterministic.
    """
    if connectivity not in (4, 8):
        raise ValueError(f"connectivity must be 4 or 8, got {connectivity}")
    offsets = Connectivity4 if connectivity == 4 else Connectivity8

    mask = cells.mask
    w, h = mask.shape
    seen = np.zeros_like(mask)
    components: List[CellSet] = []

    xs, ys = np.nonzero(mask)
    for sx, sy in zip(xs.tolist(), ys.tolist()):
        if seen[sx, sy]:
            continue
        comp = np.zeros_like(mask)
        queue = deque([(sx, sy)])
        seen[sx, sy] = True
        comp[sx, sy] = True
        while queue:
            x, y = queue.popleft()
            for dx, dy in offsets:
                nx, ny = x + dx, y + dy
                if 0 <= nx < w and 0 <= ny < h and mask[nx, ny] and not seen[nx, ny]:
                    seen[nx, ny] = True
                    comp[nx, ny] = True
                    queue.append((nx, ny))
        components.append(CellSet(comp))
    return components


def is_connected(cells: CellSet, connectivity: int = 4) -> bool:
    """Whether ``cells`` is non-empty and forms a single component."""
    if not cells:
        return False
    return len(connected_components(cells, connectivity)) == 1


def dilate(mask: BoolGrid, connectivity: int = 4) -> BoolGrid:
    """One-step morphological dilation of a mask within its grid.

    Used for separation-distance checks: two sets are at Manhattan
    distance >= 2 iff the 4-dilation of one misses the other.
    """
    out = mask.copy()
    offsets = Connectivity4 if connectivity == 4 else Connectivity8
    for dx, dy in offsets:
        shifted = np.zeros_like(mask)
        src_x = slice(max(0, -dx), mask.shape[0] - max(0, dx))
        dst_x = slice(max(0, dx), mask.shape[0] + min(0, dx))
        src_y = slice(max(0, -dy), mask.shape[1] - max(0, dy))
        dst_y = slice(max(0, dy), mask.shape[1] + min(0, dy))
        shifted[dst_x, dst_y] = mask[src_x, src_y]
        out |= shifted
    return out


def set_distance(a: CellSet, b: CellSet) -> int:
    """Minimum Manhattan distance between members of two non-empty sets.

    This is the paper's ``d(A, B) = min over u in A, v in B of d(u, v)``.
    Computed with a vectorized all-pairs reduction; fault regions are
    small so the quadratic pair count is immaterial.
    """
    if not a or not b:
        raise ValueError("set_distance of an empty cell set")
    ax, ay = np.nonzero(a.mask)
    bx, by = np.nonzero(b.mask)
    d = np.abs(ax[:, None] - bx[None, :]) + np.abs(ay[:, None] - by[None, :])
    return int(d.min())
