"""Connected components of cell sets.

Two connectivities matter in the paper:

* **4-connectivity** (mesh links) — used for *faulty blocks*, which are
  maximal sets of link-connected unsafe nodes, and

* **8-connectivity** (king moves) — used for *disabled regions*: the
  paper treats two disabled nodes whose closed unit squares share even a
  single corner point as part of one region (its Section 3 example puts
  faults ``(2,1)`` and ``(3,2)`` into one disabled region).

Two interchangeable labeling backends are provided:

* ``"vectorized"`` (default) — a NumPy two-pass union-find: cells are
  first grouped into vertical runs with one cumulative-sum pass, run
  adjacencies are extracted with whole-array shifts, and the run graph
  is collapsed by vectorized pointer jumping.  No per-cell Python work;
  this is what makes block/region extraction cheap enough for the
  per-trial hot path of large sweeps.

* ``"reference"`` — the original per-cell breadth-first flood fill,
  kept as the oracle the property tests pin the vectorized backend
  against bit-for-bit.

Both return components ordered by their smallest row-major member, so
results are deterministic and backend-independent.
"""

from __future__ import annotations

from collections import deque
from typing import List, Tuple

import numpy as np

from repro.geometry.cells import CellSet
from repro.types import BoolGrid

__all__ = [
    "connected_components",
    "is_connected",
    "label_components",
    "Connectivity4",
    "Connectivity8",
    "GEOMETRY_BACKENDS",
]

#: Neighbour offsets for mesh-link (edge) adjacency.
Connectivity4 = ((1, 0), (-1, 0), (0, 1), (0, -1))

#: Neighbour offsets for king-move (edge or corner) adjacency.
Connectivity8 = (
    (1, 0), (-1, 0), (0, 1), (0, -1),
    (1, 1), (1, -1), (-1, 1), (-1, -1),
)

#: The interchangeable geometry backends (see module docstring).
GEOMETRY_BACKENDS = ("vectorized", "reference")


def _check_backend(backend: str) -> None:
    if backend not in GEOMETRY_BACKENDS:
        raise ValueError(
            f"backend must be one of {GEOMETRY_BACKENDS}, got {backend!r}"
        )


def _check_connectivity(connectivity: int) -> None:
    if connectivity not in (4, 8):
        raise ValueError(f"connectivity must be 4 or 8, got {connectivity}")


def _label_coords(
    xs: np.ndarray, ys: np.ndarray, shape: Tuple[int, int], connectivity: int
) -> Tuple[np.ndarray, int]:
    """Union-find labeling in coordinate space.

    ``xs``/``ys`` must be the row-major member scan of a mask (exactly
    what ``np.nonzero`` returns).  Working on coordinates instead of the
    grid keeps every pass proportional to the member count, not the grid
    area — neighbour lookups are binary searches into the sorted linear
    index, so no run grid is ever materialised.

    Returns ``(comp_of, count)`` where ``comp_of[i]`` is the component
    index of member ``i``; components are numbered ``0..count-1`` by
    their smallest row-major member.
    """
    n = xs.size
    if n == 0:
        return np.empty(0, dtype=np.int32), 0

    # Pass 1: vertical runs.  Members are sorted by x then y; a new run
    # starts at each column change or y gap.
    new_run = np.empty(n, dtype=bool)
    new_run[0] = True
    np.logical_or(xs[1:] != xs[:-1], ys[1:] != ys[:-1] + 1, out=new_run[1:])
    run_id = np.cumsum(new_run, dtype=np.int32) - 1
    nruns = int(run_id[-1]) + 1

    # Pass 2: union runs joined by a west-side adjacency.  Same-column
    # adjacencies are inside runs already; (dx=-1) offsets cover every
    # remaining pair once.  A west neighbour's linear index is strictly
    # smaller than the member's own, so searchsorted never returns n.
    h = shape[1]
    lin = xs.astype(np.int64) * h + ys
    offsets = ((-1, 0),) if connectivity == 4 else ((-1, 0), (-1, -1), (-1, 1))
    edges_a: List[np.ndarray] = []
    edges_b: List[np.ndarray] = []
    for _dx, dy in offsets:
        ok = xs > 0
        if dy == -1:
            ok = ok & (ys > 0)
        elif dy == 1:
            ok = ok & (ys < h - 1)
        target = lin[ok] - h + dy
        pos = np.searchsorted(lin, target)
        present = lin[pos] == target
        if present.any():
            edges_a.append(run_id[ok][present])
            edges_b.append(run_id[pos[present]])

    parent = np.arange(nruns, dtype=np.int32)
    if edges_a:
        a = np.concatenate(edges_a)
        b = np.concatenate(edges_b)
        while True:
            old = parent.copy()
            # Each edge pulls both endpoints to the smaller current root.
            m = np.minimum(parent[a], parent[b])
            np.minimum.at(parent, a, m)
            np.minimum.at(parent, b, m)
            # Pointer jumping: halve tree heights until flat.
            compressed = parent[parent]
            while not np.array_equal(compressed, parent):
                parent = compressed
                compressed = parent[parent]
            if np.array_equal(old, parent):
                break

    # A component's root is its minimal run id, and run ids increase in
    # scan order — so sorting the distinct roots ascending numbers the
    # components by first (smallest row-major) member.
    roots = parent[run_id]
    distinct, comp_of = np.unique(roots, return_inverse=True)
    return comp_of.astype(np.int32, copy=False), int(distinct.size)


def label_components(mask: BoolGrid, connectivity: int = 4) -> Tuple[np.ndarray, int]:
    """Label the connected components of a boolean grid, vectorized.

    Two-pass union-find over *runs*: member cells are grouped into
    maximal vertical runs (consecutive ``y`` at constant ``x``) with a
    single cumulative-sum pass over the row-major member scan; run
    adjacencies across neighbouring columns are binary searches into the
    sorted member index; and the run adjacency graph is collapsed to
    per-run minima by vectorized pointer jumping
    (``parent = parent[parent]``), which converges geometrically.

    Parameters
    ----------
    mask:
        The boolean occupancy grid, indexed ``[x, y]``.
    connectivity:
        4 for mesh-link adjacency or 8 for king-move adjacency.

    Returns
    -------
    (labels, count)
        ``labels`` is an ``int32`` grid of the mask's shape holding
        ``-1`` for non-members and the component index for members;
        components are numbered ``0..count-1`` by their smallest
        row-major member, matching the ``"reference"`` backend's order.
    """
    _check_connectivity(connectivity)
    labels = np.full(mask.shape, -1, dtype=np.int32)
    xs, ys = np.nonzero(mask)
    comp_of, count = _label_coords(xs, ys, mask.shape, connectivity)
    labels[xs, ys] = comp_of
    return labels, count


def connected_components(
    cells: CellSet, connectivity: int = 4, backend: str = "vectorized"
) -> List[CellSet]:
    """Split ``cells`` into maximal connected components.

    Parameters
    ----------
    cells:
        The set to decompose.
    connectivity:
        4 for mesh-link adjacency (faulty blocks) or 8 for king-move
        adjacency (disabled regions).
    backend:
        ``"vectorized"`` (default) for the union-find label pass or
        ``"reference"`` for the per-cell BFS oracle; both produce the
        identical component list.

    Returns
    -------
    list of CellSet
        Components ordered by their smallest row-major member, so the
        result is deterministic.
    """
    _check_backend(backend)
    if backend == "reference":
        return _connected_components_reference(cells, connectivity)
    _check_connectivity(connectivity)
    xs, ys = np.nonzero(cells.mask)
    comp, count = _label_coords(xs, ys, cells.shape, connectivity)
    if count == 0:
        return []
    sizes = np.bincount(comp, minlength=count)
    # Stable sort groups member cells by component while preserving the
    # row-major order inside each group.
    order = np.argsort(comp, kind="stable")
    xs_g, ys_g = xs[order], ys[order]
    bounds = np.concatenate(([0], np.cumsum(sizes)))
    components: List[CellSet] = []
    for k in range(count):
        comp_mask = np.zeros(cells.shape, dtype=bool)
        sl = slice(bounds[k], bounds[k + 1])
        comp_mask[xs_g[sl], ys_g[sl]] = True
        components.append(CellSet._from_owned(comp_mask, int(sizes[k])))
    return components


def _connected_components_reference(
    cells: CellSet, connectivity: int = 4
) -> List[CellSet]:
    """The per-cell BFS flood fill — the oracle backend."""
    _check_connectivity(connectivity)
    offsets = Connectivity4 if connectivity == 4 else Connectivity8

    mask = cells.mask
    w, h = mask.shape
    seen = np.zeros_like(mask)
    components: List[CellSet] = []

    xs, ys = np.nonzero(mask)
    for sx, sy in zip(xs.tolist(), ys.tolist()):
        if seen[sx, sy]:
            continue
        comp = np.zeros_like(mask)
        queue = deque([(sx, sy)])
        seen[sx, sy] = True
        comp[sx, sy] = True
        while queue:
            x, y = queue.popleft()
            for dx, dy in offsets:
                nx, ny = x + dx, y + dy
                if 0 <= nx < w and 0 <= ny < h and mask[nx, ny] and not seen[nx, ny]:
                    seen[nx, ny] = True
                    comp[nx, ny] = True
                    queue.append((nx, ny))
        components.append(CellSet(comp))
    return components


def is_connected(
    cells: CellSet, connectivity: int = 4, backend: str = "vectorized"
) -> bool:
    """Whether ``cells`` is non-empty and forms a single component."""
    _check_backend(backend)
    if not cells:
        return False
    if backend == "reference":
        return len(_connected_components_reference(cells, connectivity)) == 1
    _check_connectivity(connectivity)
    xs, ys = np.nonzero(cells.mask)
    return _label_coords(xs, ys, cells.shape, connectivity)[1] == 1


def dilate(mask: BoolGrid, connectivity: int = 4) -> BoolGrid:
    """One-step morphological dilation of a mask within its grid.

    Used for separation-distance checks: two sets are at Manhattan
    distance >= 2 iff the 4-dilation of one misses the other.
    """
    out = mask.copy()
    offsets = Connectivity4 if connectivity == 4 else Connectivity8
    for dx, dy in offsets:
        shifted = np.zeros_like(mask)
        src_x = slice(max(0, -dx), mask.shape[0] - max(0, dx))
        dst_x = slice(max(0, dx), mask.shape[0] + min(0, dx))
        src_y = slice(max(0, -dy), mask.shape[1] - max(0, dy))
        dst_y = slice(max(0, dy), mask.shape[1] + min(0, dy))
        shifted[dst_x, dst_y] = mask[src_x, src_y]
        out |= shifted
    return out


def set_distance(a: CellSet, b: CellSet) -> int:
    """Minimum Manhattan distance between members of two non-empty sets.

    This is the paper's ``d(A, B) = min over u in A, v in B of d(u, v)``.
    Computed with a vectorized all-pairs reduction; fault regions are
    small so the quadratic pair count is immaterial.
    """
    if not a or not b:
        raise ValueError("set_distance of an empty cell set")
    ax, ay = np.nonzero(a.mask)
    bx, by = np.nonzero(b.mask)
    d = np.abs(ax[:, None] - bx[None, :]) + np.abs(ay[:, None] - by[None, :])
    return int(d.min())
