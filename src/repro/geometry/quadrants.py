"""Quadrant decomposition around a node (Lemmas 2 and 3).

Lemma 2 of the paper divides the plane around a node ``u`` into four
closed quadrants (each including its half-axes and the origin) and shows
every quadrant of a disabled-region node contains a corner node of the
region.  Lemma 3 shows that for a node *outside* an orthoconvex region,
some quadrant contains no region node at all.  These are the geometric
steps behind Theorem 2's minimality proof; this module provides the
primitives and :mod:`repro.core.theorems` runs the checks.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.geometry.cells import CellSet
from repro.mesh.coords import Quadrant
from repro.types import BoolGrid, Coord

__all__ = [
    "quadrant_mask",
    "quadrant_extreme_corner",
    "quadrants_with_members",
]


def quadrant_mask(shape: Tuple[int, int], origin: Coord, quadrant: Quadrant) -> BoolGrid:
    """Boolean mask of the closed quadrant around ``origin``.

    The quadrant includes both bounding half-axes and the origin itself,
    matching Lemma 2's overlapping-quadrant convention.
    """
    w, h = shape
    xs = np.arange(w)[:, None]
    ys = np.arange(h)[None, :]
    sx, sy = quadrant.value
    return ((xs - origin[0]) * sx >= 0) & ((ys - origin[1]) * sy >= 0)


def quadrant_extreme_corner(
    cells: CellSet, origin: Coord, quadrant: Quadrant
) -> Coord | None:
    """The Lemma-2 witness corner of a quadrant, or None if the quadrant
    holds no region cell.

    Follows the constructive proof: among region cells in the quadrant,
    take those with the extreme ``y`` (farthest from the origin in the
    quadrant's ``y`` sign), then the one with the extreme ``x``.  For a
    node of the region as origin, this cell is guaranteed to be a corner
    node of the region.
    """
    sel = cells.mask & quadrant_mask(cells.shape, origin, quadrant)
    if not sel.any():
        return None
    xs, ys = np.nonzero(sel)
    sx, sy = quadrant.value
    # Extreme y first (max signed y), then extreme x among those.
    signed_y = ys * sy
    keep = signed_y == signed_y.max()
    xs, ys = xs[keep], ys[keep]
    signed_x = xs * sx
    i = int(np.argmax(signed_x))
    return (int(xs[i]), int(ys[i]))


def quadrants_with_members(cells: CellSet, origin: Coord) -> Dict[Quadrant, bool]:
    """Which closed quadrants around ``origin`` contain at least one cell.

    Lemma 3: if ``origin`` is outside an orthoconvex region, at least one
    quadrant must come back False.
    """
    out: Dict[Quadrant, bool] = {}
    for q in Quadrant:
        sel = cells.mask & quadrant_mask(cells.shape, origin, q)
        out[q] = bool(sel.any())
    return out
