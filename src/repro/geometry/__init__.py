"""Rectilinear grid geometry: cell sets, components, orthogonal convexity.

This package is the geometric substrate under the paper's fault model:
cell sets and their connected components, rectangles (faulty blocks),
orthogonal convexity tests and closures (disabled regions), boundary
tracing, corner nodes and quadrant analysis (Definition 4, Lemmas 1-3),
and the canonical L/T/+/U/H fault shapes.
"""

from repro.geometry.boundary import boundary_loops, corner_cells, perimeter
from repro.geometry.cells import CellSet
from repro.geometry.components import (
    GEOMETRY_BACKENDS,
    connected_components,
    is_connected,
    label_components,
    set_distance,
)
from repro.geometry.orthoconvex import (
    column_runs,
    fill_spans,
    is_orthoconvex,
    orthoconvex_closure,
    row_runs,
)
from repro.geometry.paths import is_monotone_path, monotone_path_within
from repro.geometry.quadrants import (
    quadrant_extreme_corner,
    quadrant_mask,
    quadrants_with_members,
)
from repro.geometry.rectangles import Rect, bounding_rect, is_rectangle
from repro.geometry.staircase import connect_orthoconvex, staircase_cells
from repro.geometry import shapes

__all__ = [
    "CellSet",
    "GEOMETRY_BACKENDS",
    "Rect",
    "boundary_loops",
    "bounding_rect",
    "column_runs",
    "connect_orthoconvex",
    "connected_components",
    "corner_cells",
    "fill_spans",
    "is_connected",
    "is_monotone_path",
    "is_orthoconvex",
    "is_rectangle",
    "label_components",
    "monotone_path_within",
    "orthoconvex_closure",
    "perimeter",
    "quadrant_extreme_corner",
    "quadrant_mask",
    "quadrants_with_members",
    "row_runs",
    "set_distance",
    "shapes",
    "staircase_cells",
]
