"""Cell sets: grid-shaped boolean masks with set semantics.

Almost everything the paper manipulates — fault sets, faulty blocks,
disabled regions, polygons — is a finite set of grid cells.
:class:`CellSet` wraps a ``(width, height)`` boolean mask and offers the
set algebra, geometry accessors and NumPy views the rest of the library
is built on.  Masks are copied on construction and never mutated, so
``CellSet`` values can be shared freely and used as dict keys.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple

import numpy as np

from repro.errors import GeometryError
from repro.types import BoolGrid, Coord

__all__ = ["CellSet"]


class CellSet:
    """An immutable set of cells on a fixed ``(width, height)`` grid."""

    __slots__ = ("_mask", "_count", "_hash")

    def __init__(self, mask: BoolGrid):
        m = np.array(mask, dtype=bool, order="C", copy=True)
        if m.ndim != 2:
            raise GeometryError(f"cell mask must be 2-D, got ndim={m.ndim}")
        m.setflags(write=False)
        self._mask = m
        self._count = int(m.sum())
        self._hash: int | None = None

    # -- constructors --------------------------------------------------------

    @classmethod
    def empty(cls, shape: Tuple[int, int]) -> "CellSet":
        """The empty set on a grid of the given shape."""
        return cls(np.zeros(shape, dtype=bool))

    @classmethod
    def full(cls, shape: Tuple[int, int]) -> "CellSet":
        """The set of all cells of a grid of the given shape."""
        return cls(np.ones(shape, dtype=bool))

    @classmethod
    def _from_owned(cls, mask: BoolGrid, count: int | None = None) -> "CellSet":
        """Zero-copy internal constructor: takes ownership of ``mask``.

        ``mask`` must be a freshly allocated 2-D C-order boolean array
        that no caller will mutate afterwards; ``count`` (if given) must
        equal ``mask.sum()``.  Used by the vectorized geometry backend,
        where the public copying constructor would double the cost of
        component extraction.
        """
        mask.setflags(write=False)
        obj = cls.__new__(cls)
        obj._mask = mask
        obj._count = int(mask.sum()) if count is None else count
        obj._hash = None
        return obj

    @classmethod
    def from_coords(cls, shape: Tuple[int, int], coords: Iterable[Coord]) -> "CellSet":
        """A set containing exactly the given ``(x, y)`` cells.

        Raises
        ------
        GeometryError
            If any coordinate is outside the grid.
        """
        mask = np.zeros(shape, dtype=bool)
        w, h = shape
        for x, y in coords:
            if not (0 <= x < w and 0 <= y < h):
                raise GeometryError(f"cell ({x}, {y}) outside grid {shape}")
            mask[x, y] = True
        return cls(mask)

    # -- core accessors --------------------------------------------------------

    @property
    def mask(self) -> BoolGrid:
        """The underlying read-only boolean mask, indexed ``[x, y]``."""
        return self._mask

    @property
    def shape(self) -> Tuple[int, int]:
        """Grid shape ``(width, height)``."""
        return self._mask.shape  # type: ignore[return-value]

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    def __contains__(self, c: object) -> bool:
        if not (isinstance(c, tuple) and len(c) == 2):
            return False
        x, y = c
        w, h = self.shape
        return 0 <= x < w and 0 <= y < h and bool(self._mask[x, y])

    def __iter__(self) -> Iterator[Coord]:
        xs, ys = np.nonzero(self._mask)
        for x, y in zip(xs.tolist(), ys.tolist()):
            yield (x, y)

    def coords(self) -> List[Coord]:
        """All member cells in row-major order."""
        return list(self)

    # -- set algebra -----------------------------------------------------------

    def _check_same_grid(self, other: "CellSet") -> None:
        if self.shape != other.shape:
            raise GeometryError(
                f"cell sets live on different grids: {self.shape} vs {other.shape}"
            )

    def union(self, other: "CellSet") -> "CellSet":
        """Set union; both operands must share a grid."""
        self._check_same_grid(other)
        return CellSet(self._mask | other._mask)

    def intersection(self, other: "CellSet") -> "CellSet":
        """Set intersection; both operands must share a grid."""
        self._check_same_grid(other)
        return CellSet(self._mask & other._mask)

    def difference(self, other: "CellSet") -> "CellSet":
        """Set difference ``self - other``; both operands must share a grid."""
        self._check_same_grid(other)
        return CellSet(self._mask & ~other._mask)

    def issubset(self, other: "CellSet") -> bool:
        """Whether every cell of ``self`` is in ``other``."""
        self._check_same_grid(other)
        return bool(np.all(~self._mask | other._mask))

    def isdisjoint(self, other: "CellSet") -> bool:
        """Whether the two sets share no cell."""
        self._check_same_grid(other)
        return not bool(np.any(self._mask & other._mask))

    __or__ = union
    __and__ = intersection
    __sub__ = difference

    def __le__(self, other: "CellSet") -> bool:
        return self.issubset(other)

    # -- geometry ---------------------------------------------------------------

    def bounding_box(self) -> Tuple[int, int, int, int]:
        """Inclusive bounding box ``(x_min, y_min, x_max, y_max)``.

        Raises
        ------
        GeometryError
            If the set is empty.
        """
        if not self._count:
            raise GeometryError("bounding box of an empty cell set")
        xs, ys = np.nonzero(self._mask)
        return (int(xs.min()), int(ys.min()), int(xs.max()), int(ys.max()))

    def diameter(self) -> int:
        """Manhattan diameter: max ``d(u, v)`` over member pairs.

        For the rectilinear sets this library manipulates, the Manhattan
        diameter equals the bounding-box semi-perimeter, which is what the
        paper's round bound ``max{d(B)}`` refers to.  Empty sets have
        diameter 0.
        """
        if not self._count:
            return 0
        x0, y0, x1, y1 = self.bounding_box()
        return (x1 - x0) + (y1 - y0)

    def translated(self, dx: int, dy: int) -> "CellSet":
        """The set shifted by ``(dx, dy)``.

        Raises
        ------
        GeometryError
            If any cell would leave the grid.
        """
        w, h = self.shape
        xs, ys = np.nonzero(self._mask)
        xs = xs + dx
        ys = ys + dy
        if len(xs) and (
            xs.min() < 0 or ys.min() < 0 or xs.max() >= w or ys.max() >= h
        ):
            raise GeometryError(f"translation by ({dx}, {dy}) leaves grid {self.shape}")
        mask = np.zeros_like(self._mask)
        mask[xs, ys] = True
        return CellSet(mask)

    # -- dunder ---------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CellSet):
            return NotImplemented
        return self.shape == other.shape and bool(np.array_equal(self._mask, other._mask))

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self.shape, self._mask.tobytes()))
        return self._hash

    def __repr__(self) -> str:
        return f"CellSet(shape={self.shape}, count={self._count})"
