"""Rectilinear boundary tracing of cell regions.

Regions are unions of closed unit squares: cell ``(x, y)`` occupies the
square ``[x, x+1] x [y, y+1]`` of the plane.  This module extracts the
region's boundary as closed rectilinear loops of lattice vertices —
used for SVG export, for the corner analysis of Definition 4, and by the
OCP boundary router which walks a polygon's rim.

Orientation convention: loops are traced with the region's **interior on
the left**, so outer boundaries run counterclockwise.  At *pinch*
vertices (two cells touching only at a corner, which the paper's region
semantics allows inside one disabled region) four boundary edges meet;
the tracer resolves the ambiguity by always taking the **rightmost
turn**, which merges the pinched lobes into a single loop — matching the
interpretation of a corner-touching pair as one polygon.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.errors import GeometryError
from repro.geometry.cells import CellSet
from repro.types import BoolGrid, Coord

__all__ = ["boundary_loops", "perimeter", "corner_cells"]

# Headings as unit vectors; order encodes "rightness": for an incoming
# heading h, candidate outgoing headings ranked right-turn first.
_RIGHT_OF = {
    (1, 0): ((0, -1), (1, 0), (0, 1)),   # east  -> south, east, north
    (-1, 0): ((0, 1), (-1, 0), (0, -1)),  # west  -> north, west, south
    (0, 1): ((1, 0), (0, 1), (-1, 0)),   # north -> east, north, west
    (0, -1): ((-1, 0), (0, -1), (1, 0)),  # south -> west, south, east
}


def _directed_edges(mask: BoolGrid) -> Dict[Coord, List[Coord]]:
    """All boundary edges as ``start_vertex -> [end_vertex, ...]``.

    Each edge is directed so the owning cell (the interior) lies on its
    left.  Cell ``(x, y)`` contributes its south/east/north/west side
    whenever the neighbour across that side is absent.
    """
    w, h = mask.shape
    edges: Dict[Coord, List[Coord]] = {}

    def add(a: Coord, b: Coord) -> None:
        edges.setdefault(a, []).append(b)

    xs, ys = np.nonzero(mask)
    for x, y in zip(xs.tolist(), ys.tolist()):
        south = y > 0 and mask[x, y - 1]
        north = y < h - 1 and mask[x, y + 1]
        west = x > 0 and mask[x - 1, y]
        east = x < w - 1 and mask[x + 1, y]
        if not south:
            add((x, y), (x + 1, y))          # east-bound, cell above on left
        if not east:
            add((x + 1, y), (x + 1, y + 1))  # north-bound, cell west on left
        if not north:
            add((x + 1, y + 1), (x, y + 1))  # west-bound, cell below on left
        if not west:
            add((x, y + 1), (x, y))          # south-bound, cell east on left
    return edges


def boundary_loops(cells: CellSet) -> List[List[Coord]]:
    """Trace the boundary of a region into closed vertex loops.

    Returns a list of loops; each loop is a list of lattice vertices
    ``(x, y)`` with the closing edge back to the first vertex implied.
    An orthoconvex region yields exactly one loop (holes are impossible);
    general regions yield one loop per boundary curve.

    Raises
    ------
    GeometryError
        If ``cells`` is empty.
    """
    if not cells:
        raise GeometryError("cannot trace the boundary of an empty region")
    edges = _directed_edges(cells.mask)
    used: set[Tuple[Coord, Coord]] = set()
    loops: List[List[Coord]] = []

    # Deterministic start order: iterate start vertices sorted.
    for start in sorted(edges):
        for first_end in edges[start]:
            if (start, first_end) in used:
                continue
            loop = [start]
            prev, cur = start, first_end
            used.add((start, first_end))
            while cur != start:
                loop.append(cur)
                heading = (cur[0] - prev[0], cur[1] - prev[1])
                nxt = None
                candidates = edges.get(cur, ())
                if len(candidates) == 1:
                    nxt = candidates[0]
                else:
                    # Pinch vertex: rightmost available turn.
                    for want in _RIGHT_OF[heading]:
                        target = (cur[0] + want[0], cur[1] + want[1])
                        if target in candidates and (cur, target) not in used:
                            nxt = target
                            break
                if nxt is None or (cur, nxt) in used:
                    raise GeometryError("boundary tracing reached a dead end")
                used.add((cur, nxt))
                prev, cur = cur, nxt
            loops.append(_merge_collinear(loop))
    return loops


def _merge_collinear(loop: List[Coord]) -> List[Coord]:
    """Drop interior vertices of straight boundary runs (keep true corners)."""
    n = len(loop)
    out: List[Coord] = []
    for i, v in enumerate(loop):
        a = loop[i - 1]
        b = loop[(i + 1) % n]
        # v is a corner unless a, v, b are collinear along one axis.
        if not ((a[0] == v[0] == b[0]) or (a[1] == v[1] == b[1])):
            out.append(v)
    return out


def perimeter(cells: CellSet) -> int:
    """Total boundary length (number of unit boundary edges).

    Counted as occupancy transitions along each axis plus the grid-edge
    sides — a whole-grid reduction, no per-cell edge walk.
    """
    if not cells:
        return 0
    mask = cells.mask
    vertical = (
        int(np.count_nonzero(mask[1:, :] != mask[:-1, :]))
        + int(np.count_nonzero(mask[0, :]))
        + int(np.count_nonzero(mask[-1, :]))
    )
    horizontal = (
        int(np.count_nonzero(mask[:, 1:] != mask[:, :-1]))
        + int(np.count_nonzero(mask[:, 0]))
        + int(np.count_nonzero(mask[:, -1]))
    )
    return vertical + horizontal


def corner_cells(cells: CellSet) -> CellSet:
    """Corner nodes of a region per Definition 4 of the paper.

    A corner node has, along *each* dimension, at least one neighbour
    outside the region.  Grid-boundary sides count as outside: the node
    beyond the edge is a ghost node, which is never part of a fault
    region.  Lemma 1 states every corner node of a disabled region is
    faulty; :mod:`repro.core.theorems` checks that via this function.
    """
    mask = cells.mask
    w, h = mask.shape
    east = np.zeros_like(mask)
    east[:-1, :] = mask[1:, :]
    west = np.zeros_like(mask)
    west[1:, :] = mask[:-1, :]
    north = np.zeros_like(mask)
    north[:, :-1] = mask[:, 1:]
    south = np.zeros_like(mask)
    south[:, 1:] = mask[:, :-1]
    out_x = ~east | ~west  # some X-neighbour outside (or beyond the grid edge)
    out_y = ~north | ~south
    return CellSet(mask & out_x & out_y)
