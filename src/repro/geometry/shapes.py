"""Canonical fault-region shapes.

The fault-tolerant-routing literature the paper builds on classifies
irregular fault regions by letter shapes: **L**, **T** and **+** regions
are orthogonal convex; **U** and **H** regions are not (Section 2).
These generators build the shapes as :class:`~repro.geometry.cells.CellSet`
values anchored at a grid position — used by the shaped fault model, the
shape-specific tests, and the examples.

All generators take the shape's bounding-box size plus arm-thickness
parameters, anchor the bounding box's south-west cell at ``anchor``, and
validate fit against the target grid shape.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import GeometryError
from repro.geometry.cells import CellSet
from repro.types import Coord

__all__ = [
    "rectangle",
    "l_shape",
    "t_shape",
    "plus_shape",
    "u_shape",
    "h_shape",
    "staircase_shape",
]


def _blank(shape: Tuple[int, int], anchor: Coord, w: int, h: int) -> np.ndarray:
    gw, gh = shape
    ax, ay = anchor
    if w < 1 or h < 1:
        raise GeometryError(f"shape extent must be positive, got {w}x{h}")
    if ax < 0 or ay < 0 or ax + w > gw or ay + h > gh:
        raise GeometryError(
            f"shape {w}x{h} at {anchor} does not fit in grid {shape}"
        )
    return np.zeros(shape, dtype=bool)


def rectangle(shape: Tuple[int, int], anchor: Coord, w: int, h: int) -> CellSet:
    """A full ``w x h`` rectangle with south-west cell at ``anchor``."""
    mask = _blank(shape, anchor, w, h)
    ax, ay = anchor
    mask[ax : ax + w, ay : ay + h] = True
    return CellSet(mask)


def l_shape(
    shape: Tuple[int, int], anchor: Coord, w: int, h: int, thickness: int = 1
) -> CellSet:
    """An L: a full bottom row-arm plus a left column-arm (orthoconvex)."""
    _check_arms(w, h, thickness)
    mask = _blank(shape, anchor, w, h)
    ax, ay = anchor
    mask[ax : ax + w, ay : ay + thickness] = True          # bottom arm
    mask[ax : ax + thickness, ay : ay + h] = True          # left arm
    return CellSet(mask)


def t_shape(
    shape: Tuple[int, int], anchor: Coord, w: int, h: int, thickness: int = 1
) -> CellSet:
    """A T: a full top row-arm plus a centered vertical stem (orthoconvex)."""
    _check_arms(w, h, thickness)
    if w < thickness:
        raise GeometryError("T stem thicker than its bar")
    mask = _blank(shape, anchor, w, h)
    ax, ay = anchor
    mask[ax : ax + w, ay + h - thickness : ay + h] = True  # top bar
    sx = ax + (w - thickness) // 2
    mask[sx : sx + thickness, ay : ay + h] = True          # stem
    return CellSet(mask)


def plus_shape(
    shape: Tuple[int, int], anchor: Coord, w: int, h: int, thickness: int = 1
) -> CellSet:
    """A +: centered horizontal and vertical bars (orthoconvex)."""
    _check_arms(w, h, thickness)
    if w < thickness or h < thickness:
        raise GeometryError("+ arms thicker than the bounding box")
    mask = _blank(shape, anchor, w, h)
    ax, ay = anchor
    bx = ax + (w - thickness) // 2
    by = ay + (h - thickness) // 2
    mask[ax : ax + w, by : by + thickness] = True          # horizontal bar
    mask[bx : bx + thickness, ay : ay + h] = True          # vertical bar
    return CellSet(mask)


def u_shape(
    shape: Tuple[int, int], anchor: Coord, w: int, h: int, thickness: int = 1
) -> CellSet:
    """A U: two vertical arms joined by a bottom bar (NOT orthoconvex for
    ``w >= 2*thickness + 1`` and ``h >= thickness + 1``)."""
    _check_arms(w, h, thickness)
    if w < 2 * thickness + 1:
        raise GeometryError("U too narrow to have a cavity")
    mask = _blank(shape, anchor, w, h)
    ax, ay = anchor
    mask[ax : ax + w, ay : ay + thickness] = True                  # bottom bar
    mask[ax : ax + thickness, ay : ay + h] = True                  # left arm
    mask[ax + w - thickness : ax + w, ay : ay + h] = True          # right arm
    return CellSet(mask)


def h_shape(
    shape: Tuple[int, int], anchor: Coord, w: int, h: int, thickness: int = 1
) -> CellSet:
    """An H: two vertical arms joined by a centered crossbar (NOT orthoconvex
    for a bounding box tall and wide enough to leave cavities)."""
    _check_arms(w, h, thickness)
    if w < 2 * thickness + 1 or h < thickness + 2:
        raise GeometryError("H too small to have cavities")
    mask = _blank(shape, anchor, w, h)
    ax, ay = anchor
    mask[ax : ax + thickness, ay : ay + h] = True                  # left arm
    mask[ax + w - thickness : ax + w, ay : ay + h] = True          # right arm
    by = ay + (h - thickness) // 2
    mask[ax : ax + w, by : by + thickness] = True                  # crossbar
    return CellSet(mask)


def staircase_shape(shape: Tuple[int, int], anchor: Coord, steps: int) -> CellSet:
    """A diagonal staircase of ``steps`` corner-touching cells (orthoconvex).

    The minimal example of a pinched polygon: each cell touches the next
    only at a corner, yet the region is a single orthogonal convex
    polygon under the paper's closed-square semantics.
    """
    if steps < 1:
        raise GeometryError("staircase needs at least one step")
    mask = _blank(shape, anchor, steps, steps)
    ax, ay = anchor
    for i in range(steps):
        mask[ax + i, ay + i] = True
    return CellSet(mask)


def _check_arms(w: int, h: int, thickness: int) -> None:
    if thickness < 1:
        raise GeometryError(f"thickness must be positive, got {thickness}")
    if thickness > min(w, h):
        raise GeometryError(f"thickness {thickness} exceeds extent {w}x{h}")
