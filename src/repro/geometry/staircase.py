"""Connecting orthoconvex fragments into a single polygon.

The orthogonal convex closure of a *disconnected* fault set can itself
be disconnected (two faults two diagonal king-moves apart close to
themselves).  When a single polygon is required — e.g. to compute "the
smallest orthogonal convex polygon that includes all the faulty nodes"
of the paper's Corollary — the fragments must be joined.

A monotone *staircase* of corner-touching cells is the cheapest
orthoconvex-compatible connector: a diagonal chain of cells is already
closed under span filling (each row and column holds a single cell), and
it 8-connects its endpoints with ``max(|dx|, |dy|) - 1`` added cells.

:func:`connect_orthoconvex` greedily joins the nearest fragment pair
with such a staircase, re-closes, and repeats.  The result is always a
valid orthogonal convex polygon containing the input; its size is an
upper bound on the (possibly non-unique) minimum.  For inputs whose
closure is already connected — which Theorem 2 shows is the case for
every disabled region's fault set — the function is exact and adds
nothing.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import GeometryError
from repro.geometry.cells import CellSet
from repro.geometry.components import connected_components
from repro.geometry.orthoconvex import orthoconvex_closure
from repro.types import Coord

__all__ = ["staircase_cells", "connect_orthoconvex"]


def staircase_cells(u: Coord, v: Coord) -> List[Coord]:
    """Intermediate cells of a monotone staircase from ``u`` to ``v``.

    The chain steps diagonally while both coordinate gaps remain, then
    straight; endpoints are excluded.  Consecutive chain cells (and the
    endpoints) are 8-adjacent, and the chain together with its endpoints
    is orthoconvex as a set.
    """
    x, y = u
    tx, ty = v
    cells: List[Coord] = []
    while (x, y) != (tx, ty):
        if x != tx:
            x += 1 if tx > x else -1
        if y != ty:
            y += 1 if ty > y else -1
        if (x, y) != (tx, ty):
            cells.append((x, y))
    return cells


def _closest_pair(a: CellSet, b: CellSet) -> Tuple[Coord, Coord, int]:
    """Cell pair across two sets minimising the staircase connection cost.

    The cost of joining cells ``u`` and ``v`` with a staircase is
    ``max(|dx|, |dy|) - 1`` added cells, i.e. Chebyshev distance minus 1.
    """
    ax, ay = np.nonzero(a.mask)
    bx, by = np.nonzero(b.mask)
    cheb = np.maximum(
        np.abs(ax[:, None] - bx[None, :]), np.abs(ay[:, None] - by[None, :])
    )
    i, j = np.unravel_index(int(np.argmin(cheb)), cheb.shape)
    u = (int(ax[i]), int(ay[i]))
    v = (int(bx[j]), int(by[j]))
    return u, v, int(cheb[i, j]) - 1


def connect_orthoconvex(
    cells: CellSet, max_rounds: int = 10_000, backend: str = "vectorized"
) -> CellSet:
    """Smallest-effort orthogonal convex *polygon* containing ``cells``.

    Alternates orthoconvex closure with greedy nearest-fragment staircase
    joins until the region is a single 8-connected component.  See the
    module docstring for the optimality caveat.  ``backend`` selects the
    component labeling implementation (vectorized union-find by default,
    the BFS reference as oracle); the result is backend-independent.

    Raises
    ------
    GeometryError
        If ``cells`` is empty, or the join loop exceeds ``max_rounds``
        (impossible for well-formed inputs).
    """
    if not cells:
        raise GeometryError("cannot build a polygon from an empty cell set")
    current = orthoconvex_closure(cells)
    for _ in range(max_rounds):
        comps = connected_components(current, connectivity=8, backend=backend)
        if len(comps) == 1:
            return current
        # Greedy: join the globally cheapest fragment pair.
        best: Tuple[Coord, Coord] | None = None
        best_cost = None
        for i in range(len(comps)):
            for j in range(i + 1, len(comps)):
                u, v, cost = _closest_pair(comps[i], comps[j])
                if best_cost is None or cost < best_cost:
                    best, best_cost = (u, v), cost
        assert best is not None
        bridge = CellSet.from_coords(cells.shape, staircase_cells(*best))
        current = orthoconvex_closure(current.union(bridge))
    raise GeometryError(f"connect_orthoconvex did not converge in {max_rounds} rounds")
