"""Monotone (staircase) paths inside regions.

A key consequence of orthogonal convexity that the routing story leans
on: **any two cells of a connected orthogonal convex region are joined
by a monotone staircase path that stays inside the region** (each hop
moves toward the target in one dimension and never away in the other).
This is the geometric substance of the paper's remark that convexity
enables *progressive* routing — a packet skirting an orthoconvex fault
polygon never has to backtrack along a dimension.

:func:`monotone_path_within` finds such a path by BFS restricted to
monotone 8-moves; the property suite asserts existence for every cell
pair of every pipeline-produced disabled region, and the perimeter
identity ``perimeter == 2 * (bbox_width + bbox_height)`` that makes rim
detour lengths predictable.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

from repro.geometry.cells import CellSet
from repro.types import Coord

__all__ = ["monotone_path_within", "is_monotone_path"]


def _signs(u: Coord, v: Coord) -> tuple:
    sx = 0 if u[0] == v[0] else (1 if v[0] > u[0] else -1)
    sy = 0 if u[1] == v[1] else (1 if v[1] > u[1] else -1)
    return sx, sy


def is_monotone_path(path: List[Coord]) -> bool:
    """Whether consecutive king-moves never step away from the endpoint.

    A path is monotone when every hop's x-component is 0 or the sign of
    the remaining x offset, and likewise for y (so both coordinates
    progress toward the target without reversals).
    """
    if len(path) < 2:
        return True
    target = path[-1]
    for a, b in zip(path, path[1:]):
        dx, dy = b[0] - a[0], b[1] - a[1]
        if max(abs(dx), abs(dy)) != 1:
            return False
        sx, sy = _signs(a, target)
        if dx not in (0, sx) or dy not in (0, sy):
            return False
    return True


def monotone_path_within(
    region: CellSet, start: Coord, goal: Coord
) -> Optional[List[Coord]]:
    """A monotone king-move path from ``start`` to ``goal`` inside ``region``.

    Moves are the (at most three) king steps whose components point
    weakly toward the goal; only region cells may be visited.  Returns
    the path (including endpoints) or None when no monotone path exists
    — which, for connected orthoconvex regions, never happens (a fact
    the property tests exercise).
    """
    if start not in region or goal not in region:
        return None
    if start == goal:
        return [start]
    parent: Dict[Coord, Coord] = {start: start}
    queue = deque([start])
    while queue:
        at = queue.popleft()
        if at == goal:
            break
        sx, sy = _signs(at, goal)
        steps = []
        if sx and sy:
            steps = [(sx, sy), (sx, 0), (0, sy)]
        elif sx:
            steps = [(sx, 0)]
        else:
            steps = [(0, sy)]
        for dx, dy in steps:
            nxt = (at[0] + dx, at[1] + dy)
            if nxt not in parent and nxt in region:
                parent[nxt] = at
                queue.append(nxt)
    if goal not in parent:
        return None
    path = [goal]
    while path[-1] != start:
        path.append(parent[path[-1]])
    path.reverse()
    return path
