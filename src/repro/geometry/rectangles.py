"""Axis-aligned rectangles of grid cells.

Faulty blocks under Definitions 2a and 2b are (provably) rectangles;
this module provides the :class:`Rect` value type, rectangle tests for
cell sets, and conversions used by the block extractor and the
block-based router.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from repro.errors import GeometryError
from repro.geometry.cells import CellSet
from repro.types import Coord

__all__ = ["Rect", "is_rectangle", "bounding_rect"]


@dataclass(frozen=True, order=True)
class Rect:
    """An inclusive axis-aligned cell rectangle ``[x0..x1] x [y0..y1]``."""

    x0: int
    y0: int
    x1: int
    y1: int

    def __post_init__(self) -> None:
        if self.x1 < self.x0 or self.y1 < self.y0:
            raise GeometryError(f"degenerate rectangle {self}")

    @property
    def width(self) -> int:
        """Number of cell columns."""
        return self.x1 - self.x0 + 1

    @property
    def height(self) -> int:
        """Number of cell rows."""
        return self.y1 - self.y0 + 1

    @property
    def area(self) -> int:
        """Number of cells."""
        return self.width * self.height

    @property
    def diameter(self) -> int:
        """Manhattan diameter ``(width-1) + (height-1)`` — the paper's d(B)."""
        return (self.width - 1) + (self.height - 1)

    def contains(self, c: Coord) -> bool:
        """Whether cell ``c`` lies inside the rectangle."""
        return self.x0 <= c[0] <= self.x1 and self.y0 <= c[1] <= self.y1

    def cells(self) -> Iterator[Coord]:
        """Iterate all member cells in row-major order."""
        for x in range(self.x0, self.x1 + 1):
            for y in range(self.y0, self.y1 + 1):
                yield (x, y)

    def corners(self) -> Tuple[Coord, Coord, Coord, Coord]:
        """The four corner cells (SW, SE, NW, NE)."""
        return (
            (self.x0, self.y0),
            (self.x1, self.y0),
            (self.x0, self.y1),
            (self.x1, self.y1),
        )

    def intersects(self, other: "Rect") -> bool:
        """Whether the two rectangles share at least one cell."""
        return not (
            other.x1 < self.x0
            or self.x1 < other.x0
            or other.y1 < self.y0
            or self.y1 < other.y0
        )

    def distance(self, other: "Rect") -> int:
        """Minimum Manhattan distance between cells of the two rectangles."""
        dx = max(0, max(self.x0, other.x0) - min(self.x1, other.x1))
        dy = max(0, max(self.y0, other.y0) - min(self.y1, other.y1))
        return dx + dy

    def expanded(self, margin: int) -> "Rect":
        """The rectangle grown by ``margin`` cells on every side (may go
        negative; clamp against a grid with :meth:`clamped`)."""
        return Rect(self.x0 - margin, self.y0 - margin, self.x1 + margin, self.y1 + margin)

    def clamped(self, shape: Tuple[int, int]) -> "Rect":
        """The rectangle clipped to a grid of the given shape.

        Raises
        ------
        GeometryError
            If the intersection with the grid is empty.
        """
        w, h = shape
        x0, y0 = max(self.x0, 0), max(self.y0, 0)
        x1, y1 = min(self.x1, w - 1), min(self.y1, h - 1)
        if x1 < x0 or y1 < y0:
            raise GeometryError(f"{self} does not intersect grid {shape}")
        return Rect(x0, y0, x1, y1)

    def to_cells(self, shape: Tuple[int, int]) -> CellSet:
        """Materialise the rectangle as a :class:`CellSet` on a grid.

        Raises
        ------
        GeometryError
            If the rectangle does not fit in the grid.
        """
        w, h = shape
        if self.x0 < 0 or self.y0 < 0 or self.x1 >= w or self.y1 >= h:
            raise GeometryError(f"{self} does not fit in grid {shape}")
        mask = np.zeros(shape, dtype=bool)
        mask[self.x0 : self.x1 + 1, self.y0 : self.y1 + 1] = True
        return CellSet(mask)


def bounding_rect(cells: CellSet) -> Rect:
    """Smallest rectangle containing a non-empty cell set."""
    x0, y0, x1, y1 = cells.bounding_box()
    return Rect(x0, y0, x1, y1)


def is_rectangle(cells: CellSet) -> bool:
    """Whether a cell set is exactly a (non-empty) full rectangle.

    Equivalent to: the set fills its own bounding box.  This is the
    property Definitions 2a/2b guarantee for faulty blocks; the block
    extractor asserts it for every component it produces.
    """
    if not cells:
        return False
    return len(cells) == bounding_rect(cells).area
