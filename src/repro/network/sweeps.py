"""Injection-rate sweep driver for the batched traffic engine.

A *sweep* runs the same synthetic workload at increasing injection
rates and reports, per rate point, the accepted throughput and the
delivered-latency distribution — the standard way to locate a
network's **saturation point** (the knee where accepted throughput
stops tracking offered load and latency diverges).  This is the
instrument the payoff benchmarks use to compare the rectangle
faulty-block view against the paper's Def 2a / Def 2b region views:
a view that imprisons fewer nonfaulty nodes saturates later and
delivers more packets at equal offered load.

Each point emits a ``traffic_sweep`` event and the sweep emits one
``saturation_point`` event through the optional telemetry, which the
``repro obs summarize`` routing section aggregates.  Traffic can be
drawn from a different (smaller) view's enabled set via
``endpoint_view`` so competing views route *identical* workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.network.batched import BatchedNetwork, BatchedResult
from repro.network.traffic import synthetic_traffic
from repro.routing.base import FaultModelView

__all__ = ["SweepCurve", "SweepPoint", "injection_sweep"]

#: A rate point counts as pre-saturation while at least this fraction
#: of offered packets *finishes* (delivered or dropped by routing)
#: within the cycle horizon.  Packets still in flight at the horizon —
#: ``stuck`` — are the congestion signal; routing drops are a property
#: of the view, not of the offered load, and do not count against it.
SATURATION_DELIVERY = 0.95


@dataclass(frozen=True)
class SweepPoint:
    """One injection-rate point of a saturation sweep."""

    rate: float
    packets: int
    delivered: int
    dropped: int
    stuck: int
    cycles: int
    throughput: float
    delivery_rate: float
    mean_latency: float
    p50_latency: float
    p95_latency: float
    p99_latency: float

    @classmethod
    def from_result(cls, rate: float, result: BatchedResult) -> "SweepPoint":
        return cls(
            rate=float(rate),
            packets=result.num_packets,
            delivered=result.num_delivered,
            dropped=result.num_dropped,
            stuck=result.num_stuck,
            cycles=result.cycles,
            throughput=result.throughput,
            delivery_rate=result.delivery_rate,
            mean_latency=result.mean_latency,
            p50_latency=result.p50_latency,
            p95_latency=result.p95_latency,
            p99_latency=result.p99_latency,
        )

    @property
    def saturated(self) -> bool:
        if self.packets == 0:
            return False
        return (self.packets - self.stuck) / self.packets < SATURATION_DELIVERY


@dataclass(frozen=True)
class SweepCurve:
    """All points of one sweep plus the detected saturation knee."""

    view_label: str
    kernel: str
    pattern: str
    points: Tuple[SweepPoint, ...]

    @property
    def peak_throughput(self) -> float:
        return max((p.throughput for p in self.points), default=0.0)

    @property
    def saturation_rate(self) -> Optional[float]:
        """Highest swept rate that still drained ≥ 95% of offered load.

        ``None`` when even the lowest rate saturated.
        """
        best = None
        for p in self.points:
            if not p.saturated:
                best = p.rate
        return best

    @property
    def saturation_throughput(self) -> float:
        """Accepted throughput at the saturation rate (or the peak)."""
        for p in reversed(self.points):
            if not p.saturated:
                return p.throughput
        return self.peak_throughput


def injection_sweep(
    view: FaultModelView,
    rates: Sequence[float],
    num_packets: int,
    seed: int = 0,
    kernel="detour",
    pattern: str = "uniform",
    engine: str = "batched",
    max_cycles: int = 1_000_000,
    drain_factor: Optional[float] = None,
    endpoint_view: Optional[FaultModelView] = None,
    view_label: str = "view",
    telemetry=None,
) -> SweepCurve:
    """Run ``pattern`` traffic at each rate and record the curve.

    Per-point traffic is seeded as ``(seed, point_index)`` so a sweep is
    reproducible point-by-point, and two sweeps that share ``seed`` and
    ``endpoint_view`` offer byte-identical workloads (the basis for
    fair view-vs-view payoff comparisons).

    With ``drain_factor`` set, each point's horizon shrinks to
    ``drain_factor`` times its own injection span (plus one hop-budget
    of latency slack) — a network keeping up with the offered load
    finishes comfortably inside it, while a saturated one leaves a
    backlog in flight, which is what :attr:`SweepPoint.saturated`
    detects.  With the default ``None``, every point gets the full
    ``max_cycles`` horizon, so only extreme backlogs register.
    """
    net = BatchedNetwork(view, kernel=kernel, engine=engine)
    sample_view = endpoint_view if endpoint_view is not None else view
    points: List[SweepPoint] = []
    for i, rate in enumerate(rates):
        rng = np.random.default_rng((seed, i))
        traffic = synthetic_traffic(
            sample_view,
            num_packets,
            rng,
            pattern=pattern,
            injection_rate=rate,
        )
        horizon = max_cycles
        if drain_factor is not None:
            span = int(num_packets / rate * drain_factor)
            horizon = min(max_cycles, span + net.max_hops)
        result = net.run(traffic, max_cycles=horizon, telemetry=telemetry)
        point = SweepPoint.from_result(rate, result)
        points.append(point)
        if telemetry is not None:
            telemetry.emit(
                "traffic_sweep",
                view=view_label,
                kernel=net.kernel.name,
                pattern=pattern,
                rate=point.rate,
                packets=point.packets,
                delivered=point.delivered,
                dropped=point.dropped,
                stuck=point.stuck,
                cycles=point.cycles,
                throughput=point.throughput,
                p50=point.p50_latency,
                p95=point.p95_latency,
                p99=point.p99_latency,
            )
    curve = SweepCurve(
        view_label=view_label,
        kernel=net.kernel.name,
        pattern=pattern,
        points=tuple(points),
    )
    if telemetry is not None:
        telemetry.emit(
            "saturation_point",
            view=view_label,
            kernel=net.kernel.name,
            pattern=pattern,
            rate=-1.0 if curve.saturation_rate is None else curve.saturation_rate,
            throughput=curve.saturation_throughput,
        )
    return curve
