"""Batched store-and-forward traffic engine over numpy packet columns.

The scalar :class:`~repro.network.simulator.WormholeNetwork` walks every
flit of every worm in Python each cycle — fine for deadlock demos, far
too slow for million-packet saturation campaigns.  This engine models
the simpler *store-and-forward* discipline the paper's payoff argument
actually needs (one packet = one unit, one hop per cycle, per-link
capacity one) and keeps **every in-flight packet in parallel numpy
arrays**: position, destination, detour state, inject/start/finish
cycle, hop and stall counters.  One simulated cycle is one fused array
pass:

1. **admit** packets whose inject cycle arrived (bad endpoints drop
   with ``BAD_ENDPOINT``; source == dest delivers locally with zero
   latency),
2. **budget-check** (``hops >= max_hops`` drops with ``BUDGET``),
3. **decide** next hops for the whole batch through a vectorized
   routing kernel (:mod:`repro.routing.vectorized`); kernel-blocked
   packets drop with ``BLOCKED``,
4. **contend**: each directed link carries one packet per cycle.  The
   winner is the *oldest* packet (lowest packet id — ids are assigned
   in inject order).  Scattering proposal indices into a per-link
   occupancy array in *reverse* id order leaves the lowest (= oldest)
   index in place, which is exactly that age priority; losers stall,
5. **move** winners, committing detour state only for packets that
   moved, and retire arrivals (``finish = cycle + 1``).

Determinism
-----------
The active array is kept sorted by packet id, decisions are pure
functions of committed state, and contention is resolved by first
occurrence in id order — so a run is a deterministic function of
``(view, kernel, traffic, max_cycles)``, independent of batch size or
chunking.  ``engine="reference"`` replays the identical schedule with
scalar Python loops (the oracle, following the
``geometry_backend="reference"`` convention); property tests pin the
two bit-for-bit.

Idle gaps with nothing in flight are skipped by fast-forwarding the
clock to the next injection, so low injection rates cost nothing.
Node buffering is unbounded (a store-and-forward simplification: only
links contend, packets never drop for queue space).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.errors import RoutingError
from repro.routing.base import FaultModelView
from repro.routing.packet import DropReason
from repro.routing.vectorized import TrafficKernel, make_kernel

__all__ = [
    "BatchedNetwork",
    "BatchedResult",
    "STATUS_NAMES",
    "nearest_rank",
]

# Packet status codes (result column ``status``).
_PENDING = np.int8(0)
_ACTIVE = np.int8(1)
_DELIVERED = np.int8(2)
_DROPPED = np.int8(3)
_STUCK = np.int8(4)

STATUS_NAMES = ("pending", "active", "delivered", "dropped", "stuck")

# Drop reason codes (result column ``reason``) — index into _REASONS.
_R_NONE = np.int8(0)
_R_BLOCKED = np.int8(1)
_R_BUDGET = np.int8(2)
_R_BAD_ENDPOINT = np.int8(3)
_REASONS = (
    DropReason.NONE,
    DropReason.BLOCKED,
    DropReason.BUDGET,
    DropReason.BAD_ENDPOINT,
)

# Direction code per hop delta: E=0 (x+1), W=1 (x-1), N=2 (y+1),
# S=3 (y-1); indexed by (ddx + 2*ddy + 2).  Index 2 is the zero delta
# (tombstoned lanes), mapped arbitrarily — their link is faked anyway.
_DIR_LUT = np.array([3, 1, 2, 0, 2], dtype=np.int32)


def nearest_rank(values: np.ndarray, q: float) -> float:
    """Nearest-rank percentile of a 1-D array; ``nan`` when empty.

    Matches the convention of
    :func:`repro.obs.summarize.latency_percentiles` so engine results
    and trace summaries report identical numbers.
    """
    if values.size == 0:
        return float("nan")
    s = np.sort(values)
    idx = max(0, int(np.ceil(q / 100.0 * s.size)) - 1)
    return float(s[idx])


@dataclass
class BatchedResult:
    """Per-packet outcome columns of one traffic run (id-indexed)."""

    sx: np.ndarray
    sy: np.ndarray
    dx: np.ndarray
    dy: np.ndarray
    inject: np.ndarray
    start: np.ndarray  # admission cycle, -1 if never admitted
    finish: np.ndarray  # delivery cycle, -1 if not delivered
    hops: np.ndarray
    stalls: np.ndarray
    status: np.ndarray  # STATUS_NAMES codes
    reason: np.ndarray  # DropReason codes (see _REASONS)
    cycles: int
    engine: str
    kernel: str

    # -- counts --------------------------------------------------------------

    @property
    def num_packets(self) -> int:
        return int(self.status.size)

    @property
    def delivered_mask(self) -> np.ndarray:
        return self.status == _DELIVERED

    @property
    def num_delivered(self) -> int:
        return int(self.delivered_mask.sum())

    @property
    def num_dropped(self) -> int:
        return int((self.status == _DROPPED).sum())

    @property
    def num_stuck(self) -> int:
        """Packets still pending/in flight when the cycle horizon hit."""
        return int((self.status == _STUCK).sum())

    def drop_counts(self) -> Dict[str, int]:
        """Dropped-packet counts keyed by :class:`DropReason` name."""
        out: Dict[str, int] = {}
        dropped = self.reason[self.status == _DROPPED]
        for code, count in zip(*np.unique(dropped, return_counts=True)):
            out[_REASONS[int(code)].name] = int(count)
        return out

    # -- rates and latency ---------------------------------------------------

    @property
    def delivery_rate(self) -> float:
        """Delivered fraction; an empty run is vacuously ``1.0``.

        The convention matches
        :class:`~repro.network.simulator.NetworkResult`: with no offered
        packets nothing was lost, so the rate reports success.
        """
        n = self.num_packets
        return self.num_delivered / n if n else 1.0

    @property
    def throughput(self) -> float:
        """Delivered packets per simulated cycle (0.0 for idle runs)."""
        return self.num_delivered / self.cycles if self.cycles else 0.0

    @property
    def latencies(self) -> np.ndarray:
        """Delivered-packet latency vector (``finish - inject``), cycles."""
        m = self.delivered_mask
        return (self.finish[m] - self.inject[m]).astype(np.int64)

    @property
    def mean_latency(self) -> float:
        """Mean delivered latency; ``nan`` when nothing was delivered."""
        lat = self.latencies
        return float(lat.mean()) if lat.size else float("nan")

    @property
    def p50_latency(self) -> float:
        return nearest_rank(self.latencies, 50)

    @property
    def p95_latency(self) -> float:
        return nearest_rank(self.latencies, 95)

    @property
    def p99_latency(self) -> float:
        return nearest_rank(self.latencies, 99)

    # -- comparison ----------------------------------------------------------

    def equals(self, other: "BatchedResult") -> bool:
        """Bit-for-bit outcome equality (used to pin engines)."""
        return (
            self.cycles == other.cycles
            and bool(np.array_equal(self.status, other.status))
            and bool(np.array_equal(self.reason, other.reason))
            and bool(np.array_equal(self.start, other.start))
            and bool(np.array_equal(self.finish, other.finish))
            and bool(np.array_equal(self.hops, other.hops))
            and bool(np.array_equal(self.stalls, other.stalls))
        )

    def diff_summary(self, other: "BatchedResult") -> str:
        """Human-readable first divergence, for test failure messages."""
        for name in ("status", "reason", "start", "finish", "hops", "stalls"):
            a, b = getattr(self, name), getattr(other, name)
            if not np.array_equal(a, b):
                bad = int(np.flatnonzero(a != b)[0])
                return (
                    f"column {name!r} first differs at packet {bad}: "
                    f"{a[bad]!r} != {b[bad]!r}"
                )
        if self.cycles != other.cycles:
            return f"cycles differ: {self.cycles} != {other.cycles}"
        return "results equal"


class BatchedNetwork:
    """Store-and-forward traffic simulator with batched numpy advancement.

    Parameters
    ----------
    view:
        The fault-model view packets route over.
    kernel:
        ``"xy"``, ``"detour"``, or a :class:`TrafficKernel` instance.
    engine:
        ``"batched"`` (numpy columns, the default) or ``"reference"``
        (scalar Python oracle with identical semantics).
    max_hops:
        Per-packet hop budget; defaults to the :class:`Router` budget
        ``4 * (diameter + 1) + 16``.
    """

    def __init__(
        self,
        view: FaultModelView,
        kernel="detour",
        engine: str = "batched",
        max_hops: Optional[int] = None,
    ):
        if engine not in ("batched", "reference"):
            raise RoutingError(f"unknown engine {engine!r}")
        self.view = view
        self.kernel: TrafficKernel = make_kernel(kernel, view)
        self.engine = engine
        self.max_hops = (
            max_hops
            if max_hops is not None
            else 4 * (view.topology.diameter + 1) + 16
        )

    def run(self, traffic, max_cycles: int = 1_000_000, telemetry=None) -> BatchedResult:
        """Simulate ``traffic`` to completion or the ``max_cycles`` horizon.

        ``traffic`` is any object with int array attributes
        ``sx, sy, dx, dy, inject`` (see
        :class:`~repro.network.traffic.BatchedTraffic`).  Packets alive
        at the horizon are reported as ``stuck``.
        """
        if self.engine == "reference":
            return self._run_reference(traffic, max_cycles)
        return self._run_batched(traffic, max_cycles, telemetry)

    # -- shared setup --------------------------------------------------------

    def _columns(self, traffic):
        sx = np.asarray(traffic.sx, dtype=np.int32)
        sy = np.asarray(traffic.sy, dtype=np.int32)
        dx = np.asarray(traffic.dx, dtype=np.int32)
        dy = np.asarray(traffic.dy, dtype=np.int32)
        inject = np.asarray(traffic.inject, dtype=np.int64)
        if not (sx.shape == sy.shape == dx.shape == dy.shape == inject.shape):
            raise RoutingError("traffic columns must share one shape")
        return sx, sy, dx, dy, inject

    def _result(self, cols, start, finish, hops, stalls, status, reason, cycle):
        sx, sy, dx, dy, inject = cols
        status = status.copy()
        status[(status == _PENDING) | (status == _ACTIVE)] = _STUCK
        return BatchedResult(
            sx=sx,
            sy=sy,
            dx=dx,
            dy=dy,
            inject=inject,
            start=start,
            finish=finish,
            hops=hops,
            stalls=stalls,
            status=status,
            reason=reason,
            cycles=int(cycle),
            engine=self.engine,
            kernel=self.kernel.name,
        )

    # -- batched numpy engine ------------------------------------------------

    # Compact dead lanes away once they exceed this fraction of lanes.
    _COMPACT_FRAC = 8

    def _run_batched(self, traffic, max_cycles: int, telemetry) -> BatchedResult:
        cols = self._columns(traffic)
        sx, sy, dx, dy, inject = cols
        n = sx.size
        kern = self.kernel
        enabled = kern.enabled
        height = kern.height
        nlinks = kern.width * height * 4

        status = np.full(n, _PENDING, dtype=np.int8)
        reason = np.full(n, _R_NONE, dtype=np.int8)
        start = np.full(n, -1, dtype=np.int64)
        finish = np.full(n, -1, dtype=np.int64)
        hops = np.zeros(n, dtype=np.int64)
        stalls = np.zeros(n, dtype=np.int64)

        order = np.argsort(inject, kind="stable")
        inj_sorted = inject[order]
        ptr = 0
        cycle = 0
        budget_floor = float("inf")

        # In-flight packets live in compact *lanes* — parallel arrays
        # indexed by lane, not packet id.  Retired lanes are tombstoned
        # (``alive`` False) and ride along, excluded from contention by
        # a unique fake link id, until the dead fraction crosses
        # 1/_COMPACT_FRAC and one compaction sweeps them out.  This
        # keeps the per-cycle loop free of id-indexed gather/scatter.
        cid = np.empty(0, dtype=np.int64)  # packet ids, ascending
        cpx = np.empty(0, dtype=np.int32)
        cpy = np.empty(0, dtype=np.int32)
        cdx = np.empty(0, dtype=np.int32)
        cdy = np.empty(0, dtype=np.int32)
        chops = np.empty(0, dtype=np.int64)
        cstalls = np.empty(0, dtype=np.int64)
        alive = np.empty(0, dtype=bool)
        state = kern.new_state(0)
        ndead = 0

        hist_occ = hist_lat = None
        if telemetry is not None:
            hist_occ = telemetry.histogram("link_occupancy")
            hist_lat = telemetry.histogram("packet_latency_cycles")

        # Contention scratch: ``winner[link]`` holds the lowest proposal
        # lane targeting that link this cycle.  Writing lane indices in
        # *reverse* order makes the last (= lowest-lane) write win, with
        # no sort and no per-cycle reset — every link read back was
        # freshly written this cycle.  Slots past ``nlinks`` are the
        # fake links that keep dead lanes out of contention.
        winner = np.zeros(nlinks, dtype=np.int32)
        iota = np.empty(0, dtype=np.int32)
        fake = np.empty(0, dtype=np.int32)  # nlinks + lane, per lane

        def flush(mask):
            """Write a retiring lane subset's counters back by id."""
            rows = cid[mask]
            hops[rows] = chops[mask]
            stalls[rows] = cstalls[mask]
            return rows

        while cycle < max_cycles:
            # 1. admit
            if ptr < n:
                k = int(np.searchsorted(inj_sorted, cycle, side="right"))
                if k > ptr:
                    new = order[ptr:k]
                    ptr = k
                    ok_ep = enabled[sx[new], sy[new]] & enabled[dx[new], dy[new]]
                    bad = new[~ok_ep]
                    status[bad] = _DROPPED
                    reason[bad] = _R_BAD_ENDPOINT
                    good = new[ok_ep]
                    start[good] = inject[good]
                    local = (sx[good] == dx[good]) & (sy[good] == dy[good])
                    loc = good[local]
                    status[loc] = _DELIVERED
                    finish[loc] = inject[loc]
                    live = good[~local]
                    status[live] = _ACTIVE
                    if live.size:
                        # A lane gains at most one hop per cycle, so no
                        # budget drop can fire before this floor.
                        budget_floor = min(
                            budget_floor, cycle + self.max_hops
                        )
                        cid = np.concatenate((cid, live))
                        cpx = np.concatenate((cpx, sx[live]))
                        cpy = np.concatenate((cpy, sy[live]))
                        cdx = np.concatenate((cdx, dx[live]))
                        cdy = np.concatenate((cdy, dy[live]))
                        z = np.zeros(live.size, dtype=np.int64)
                        chops = np.concatenate((chops, z))
                        cstalls = np.concatenate((cstalls, z))
                        alive = np.concatenate(
                            (alive, np.ones(live.size, dtype=bool))
                        )
                        if state is not None:
                            state = state.append_idle(live.size)
                        if np.any(np.diff(cid) < 0):
                            # Custom traffic may inject out of id order;
                            # contention needs lanes ascending by id.
                            o = np.argsort(cid, kind="stable")
                            cid = cid[o]
                            cpx, cpy = cpx[o], cpy[o]
                            cdx, cdy = cdx[o], cdy[o]
                            chops, cstalls = chops[o], cstalls[o]
                            alive = alive[o]
                            if state is not None:
                                state = state.select(o)
                        if winner.size < nlinks + cid.size:
                            winner = np.zeros(
                                nlinks + cid.size, dtype=np.int32
                            )
                        if iota.size < cid.size:
                            iota = np.arange(cid.size, dtype=np.int32)
                            fake = nlinks + iota
            if cid.size - ndead == 0:
                if cid.size:
                    # Everything in flight retired: drop the lanes.
                    cid = cid[:0]
                    cpx, cpy = cpx[:0], cpy[:0]
                    cdx, cdy = cdx[:0], cdy[:0]
                    chops, cstalls = chops[:0], cstalls[:0]
                    alive = alive[:0]
                    state = kern.new_state(0)
                    ndead = 0
                if ptr >= n:
                    break
                cycle = int(inj_sorted[ptr])
                continue

            # 2. hop budget
            if cycle >= budget_floor:
                over = alive & (chops >= self.max_hops)
                if over.any():
                    rows = flush(over)
                    status[rows] = _DROPPED
                    reason[rows] = _R_BUDGET
                    alive &= ~over
                    ndead += int(over.sum())
                    if cid.size - ndead == 0:
                        continue

            # 3. decide (dead lanes compute garbage that stays isolated:
            # their proposals get fake links, their status writes are
            # masked by ``alive``, and their counters were flushed).
            nx, ny, blocked, changes = kern.decide(cpx, cpy, cdx, cdy, state)
            drop = alive & blocked
            if drop.any():
                rows = flush(drop)
                status[rows] = _DROPPED
                reason[rows] = _R_BLOCKED
                alive &= ~blocked
                ndead += int(drop.sum())
                if cid.size - ndead == 0:
                    cycle += 1
                    continue

            # 4. contend: one packet per directed link, oldest id wins.
            # Lanes are ascending by id, so lane order is age order; the
            # reverse-write trick keeps the lowest lane per link.
            ddx = nx - cpx  # one of (+-1, 0) per dim, at most one nonzero
            ddy = ny - cpy
            dircode = _DIR_LUT.take(ddx + 2 * ddy + 2)
            m = cid.size
            idx = iota[:m]
            link = np.where(
                alive,
                (cpx * height + cpy) * 4 + dircode,
                fake[:m],
            )
            winner[link[::-1]] = idx[::-1]
            win = winner[link] == idx
            cstalls += ~win  # only live losers can lose their link
            if hist_occ is not None:
                _, counts = np.unique(link[alive], return_counts=True)
                hist_occ.observe_many(counts)

            # 5. move winners, commit their detour state, retire arrivals.
            cpx = np.where(win, nx, cpx)
            cpy = np.where(win, ny, cpy)
            chops += win
            if changes is not None:
                crows = changes[0]
                sel = win[crows]
                if sel.any():
                    g = crows[sel]
                    state.on[g] = changes[1][sel]
                    state.axis[g] = changes[2][sel]
                    state.face[g] = changes[3][sel]
                    state.run[g] = changes[4][sel]
                    state.rect[g] = changes[5][sel]
            arrived = alive & win & (cpx == cdx) & (cpy == cdy)
            if arrived.any():
                rows = flush(arrived)
                status[rows] = _DELIVERED
                finish[rows] = cycle + 1
                alive &= ~arrived
                ndead += int(arrived.sum())

            if ndead * self._COMPACT_FRAC > cid.size:
                keep = alive
                cid = cid[keep]
                cpx, cpy = cpx[keep], cpy[keep]
                cdx, cdy = cdx[keep], cdy[keep]
                chops, cstalls = chops[keep], cstalls[keep]
                alive = np.ones(cid.size, dtype=bool)
                if state is not None:
                    state = state.select(keep)
                ndead = 0

            cycle += 1
            if cid.size - ndead == 0 and ptr >= n:
                break

        if cid.size and alive.any():
            flush(alive)  # stuck at the horizon: record partial progress
        result = self._result(cols, start, finish, hops, stalls, status, reason, cycle)
        if hist_lat is not None:
            hist_lat.observe_many(result.latencies)
        return result

    # -- scalar reference oracle ---------------------------------------------

    def _run_reference(self, traffic, max_cycles: int) -> BatchedResult:
        cols = self._columns(traffic)
        sx, sy, dx, dy, inject = cols
        n = sx.size
        kern = self.kernel
        enabled = kern.enabled

        px = sx.astype(int).tolist()
        py = sy.astype(int).tolist()
        tdx = dx.astype(int).tolist()
        tdy = dy.astype(int).tolist()
        status = np.full(n, _PENDING, dtype=np.int8)
        reason = np.full(n, _R_NONE, dtype=np.int8)
        start = np.full(n, -1, dtype=np.int64)
        finish = np.full(n, -1, dtype=np.int64)
        hops = np.zeros(n, dtype=np.int64)
        stalls = np.zeros(n, dtype=np.int64)
        st = [kern.initial_state_one() for _ in range(n)]

        order = np.argsort(inject, kind="stable")
        order_list = order.astype(int).tolist()
        inj_sorted = inject[order].astype(int).tolist()
        ptr = 0
        act: list = []
        cycle = 0

        while cycle < max_cycles:
            admitted = False
            while ptr < n and inj_sorted[ptr] <= cycle:
                i = order_list[ptr]
                ptr += 1
                if not (
                    enabled[sx[i], sy[i]] and enabled[tdx[i], tdy[i]]
                ):
                    status[i] = _DROPPED
                    reason[i] = _R_BAD_ENDPOINT
                    continue
                start[i] = inject[i]
                if px[i] == tdx[i] and py[i] == tdy[i]:
                    status[i] = _DELIVERED
                    finish[i] = inject[i]
                    continue
                status[i] = _ACTIVE
                act.append(i)
                admitted = True
            if admitted:
                act.sort()
            if not act:
                if ptr >= n:
                    break
                cycle = inj_sorted[ptr]
                continue

            survivors = []
            for i in act:
                if hops[i] >= self.max_hops:
                    status[i] = _DROPPED
                    reason[i] = _R_BUDGET
                else:
                    survivors.append(i)
            act = survivors
            if not act:
                continue

            proposals = []
            for i in act:
                nxt, new_st = kern.decide_one(px[i], py[i], tdx[i], tdy[i], st[i])
                if nxt is None:
                    status[i] = _DROPPED
                    reason[i] = _R_BLOCKED
                else:
                    proposals.append((i, nxt, new_st))

            taken = set()
            new_act = []
            for i, (nx_, ny_), new_st in proposals:
                if nx_ > px[i]:
                    dirc = 0
                elif nx_ < px[i]:
                    dirc = 1
                elif ny_ > py[i]:
                    dirc = 2
                else:
                    dirc = 3
                link = (px[i] * kern.height + py[i]) * 4 + dirc
                if link in taken:
                    stalls[i] += 1
                    new_act.append(i)
                    continue
                taken.add(link)
                px[i] = nx_
                py[i] = ny_
                hops[i] += 1
                st[i] = new_st
                if nx_ == tdx[i] and ny_ == tdy[i]:
                    status[i] = _DELIVERED
                    finish[i] = cycle + 1
                else:
                    new_act.append(i)
            act = new_act
            cycle += 1
            if not act and ptr >= n:
                break

        return self._result(cols, start, finish, hops, stalls, status, reason, cycle)
