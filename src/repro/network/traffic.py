"""Traffic generation for the network simulators.

Two families live here:

* **Worm lists** for the scalar :class:`WormholeNetwork`
  (:func:`uniform_traffic`, :func:`source_routed_traffic`) — one
  :class:`WormPacket` object per packet.
* **Batched columns** for :class:`~repro.network.batched.BatchedNetwork`
  (:class:`BatchedTraffic`, :func:`synthetic_traffic`) — the standard
  synthetic patterns (uniform / transpose / hotspot / bit-complement)
  as parallel numpy endpoint arrays with a Poisson injection process,
  sized for million-packet campaigns.

Endpoints are always drawn from the *enabled* set of a fault-model
view — faulty and disabled nodes host no traffic, per the paper's rule
that only enabled nodes participate in routing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import RoutingError
from repro.network.flits import WormPacket
from repro.routing.base import FaultModelView, Router
from repro.types import Coord

__all__ = [
    "BatchedTraffic",
    "TRAFFIC_PATTERNS",
    "source_routed_traffic",
    "synthetic_traffic",
    "uniform_traffic",
]


def uniform_traffic(
    view: FaultModelView,
    num_packets: int,
    rng: np.random.Generator,
    packet_length: int = 4,
    injection_rate: float = 0.1,
) -> List[WormPacket]:
    """Uniform random source/destination worms with Bernoulli injection.

    Parameters
    ----------
    view:
        Supplies the enabled endpoints.
    num_packets:
        Total packets to generate.
    rng:
        Seeded generator.
    packet_length:
        Flits per packet.
    injection_rate:
        Expected packets injected per cycle (across the whole machine);
        inter-arrival gaps are geometric with this rate.

    Raises
    ------
    RoutingError
        On a non-positive injection rate or packet length.
    """
    if packet_length < 1:
        raise RoutingError(f"packet length must be >= 1, got {packet_length}")
    if not 0 < injection_rate:
        raise RoutingError(f"injection rate must be positive, got {injection_rate}")
    packets: List[WormPacket] = []
    cycle = 0
    for pid in range(num_packets):
        source, dest = view.random_enabled_pair(rng)
        packets.append(
            WormPacket(
                packet_id=pid,
                source=source,
                dest=dest,
                length=packet_length,
                inject_cycle=cycle,
            )
        )
        cycle += int(rng.geometric(min(1.0, injection_rate)))
    return packets


def source_routed_traffic(
    router: Router,
    pairs: Sequence[Tuple[Coord, Coord]],
    rng: np.random.Generator,
    packet_length: int = 4,
    injection_rate: float = 0.1,
) -> Tuple[List[WormPacket], int]:
    """Worms carrying full source routes computed by a path router.

    Each pair is routed up front with ``router``; delivered routes
    become source-routed worms (the head flit "carries" the path, a
    standard wormhole option), undeliverable pairs are counted and
    skipped.  This is how the benchmarks drive the wormhole network
    with the f-ring and wall-following detour routers, whose paths are
    stateful and therefore cannot be expressed as memoryless hop
    functions.

    Returns
    -------
    (packets, unroutable):
        The worms, plus how many pairs the router could not serve.
    """
    if packet_length < 1:
        raise RoutingError(f"packet length must be >= 1, got {packet_length}")
    if not 0 < injection_rate:
        raise RoutingError(f"injection rate must be positive, got {injection_rate}")
    packets: List[WormPacket] = []
    unroutable = 0
    cycle = 0
    pid = 0
    for source, dest in pairs:
        result = router.route(source, dest)
        if not result.delivered:
            unroutable += 1
            continue
        packets.append(
            WormPacket(
                packet_id=pid,
                source=source,
                dest=dest,
                length=packet_length,
                inject_cycle=cycle,
                path=tuple(result.path),
            )
        )
        pid += 1
        cycle += int(rng.geometric(min(1.0, injection_rate)))
    return packets, unroutable


# ---------------------------------------------------------------------------
# Batched traffic columns for the numpy store-and-forward engine.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BatchedTraffic:
    """Packet endpoints and injection cycles as parallel numpy columns.

    Packet id is the array index; ids are assigned in nondecreasing
    injection order, which is what gives the batched engine its
    oldest-packet-first contention priority.
    """

    sx: np.ndarray
    sy: np.ndarray
    dx: np.ndarray
    dy: np.ndarray
    inject: np.ndarray
    pattern: str = "custom"

    def __len__(self) -> int:
        return int(self.sx.size)

    @property
    def num_packets(self) -> int:
        return len(self)

    @classmethod
    def from_pairs(
        cls,
        pairs: Sequence[Tuple[Coord, Coord]],
        inject: Optional[Sequence[int]] = None,
    ) -> "BatchedTraffic":
        """Explicit endpoint list (tests and small demos)."""
        sx = np.array([p[0][0] for p in pairs], dtype=np.int32)
        sy = np.array([p[0][1] for p in pairs], dtype=np.int32)
        dx = np.array([p[1][0] for p in pairs], dtype=np.int32)
        dy = np.array([p[1][1] for p in pairs], dtype=np.int32)
        if inject is None:
            cycles = np.zeros(len(pairs), dtype=np.int64)
        else:
            cycles = np.asarray(inject, dtype=np.int64)
        return cls(sx=sx, sy=sy, dx=dx, dy=dy, inject=cycles)


TRAFFIC_PATTERNS = ("uniform", "transpose", "hotspot", "bit_complement")


def _resample_collisions(
    di: np.ndarray, si: np.ndarray, pool: int, rng: np.random.Generator
) -> np.ndarray:
    """Redraw destination indices until none equals its source index."""
    for _ in range(256):
        clash = np.flatnonzero(di == si)
        if clash.size == 0:
            return di
        di[clash] = rng.integers(0, pool, clash.size)
    raise RoutingError("could not draw distinct endpoints (enabled set too small)")


def synthetic_traffic(
    view: FaultModelView,
    num_packets: int,
    rng: np.random.Generator,
    pattern: str = "uniform",
    injection_rate: float = 1.0,
    hotspot_fraction: float = 0.25,
    num_hotspots: int = 4,
) -> BatchedTraffic:
    """Batched synthetic workload over the enabled nodes of ``view``.

    Patterns
    --------
    ``uniform``
        Source and destination uniform over enabled nodes, distinct.
    ``transpose``
        Destination of ``(x, y)`` is ``(y, x)``; sources are drawn from
        the off-diagonal enabled cells whose transpose is also enabled.
    ``bit_complement``
        Destination of ``(x, y)`` is ``(W-1-x, H-1-y)``; sources come
        from enabled cells whose complement is enabled and distinct.
    ``hotspot``
        Uniform, except a ``hotspot_fraction`` of packets aim at one of
        ``num_hotspots`` fixed enabled nodes.

    Injection is a Poisson process with ``injection_rate`` expected
    packets per cycle across the whole machine (rates above one packet
    per cycle model many concurrent sources).

    Raises
    ------
    RoutingError
        On an unknown pattern, a non-positive rate, or when the view
        has no valid endpoint pair for the pattern.
    """
    if pattern not in TRAFFIC_PATTERNS:
        raise RoutingError(
            f"unknown traffic pattern {pattern!r}; expected one of {TRAFFIC_PATTERNS}"
        )
    if not 0 < injection_rate:
        raise RoutingError(f"injection rate must be positive, got {injection_rate}")
    if num_packets < 0:
        raise RoutingError(f"num_packets must be >= 0, got {num_packets}")

    width, height = view.topology.shape
    ex, ey = np.nonzero(view.enabled)
    ex = ex.astype(np.int32)
    ey = ey.astype(np.int32)
    if ex.size < 2:
        raise RoutingError("fewer than two enabled nodes")

    if pattern in ("uniform", "hotspot"):
        si = rng.integers(0, ex.size, num_packets)
        di = _resample_collisions(
            rng.integers(0, ex.size, num_packets), si, ex.size, rng
        )
        sx, sy = ex[si], ey[si]
        dx, dy = ex[di], ey[di]
        if pattern == "hotspot":
            spots = rng.choice(ex.size, size=min(num_hotspots, ex.size), replace=False)
            hot = rng.random(num_packets) < hotspot_fraction
            pick = spots[rng.integers(0, spots.size, num_packets)]
            dx = np.where(hot, ex[pick], dx)
            dy = np.where(hot, ey[pick], dy)
            clash = (dx == sx) & (dy == sy)
            for _ in range(256):
                idx = np.flatnonzero(clash)
                if idx.size == 0:
                    break
                redraw = rng.integers(0, ex.size, idx.size)
                dx[idx] = ex[redraw]
                dy[idx] = ey[redraw]
                clash[idx] = (dx[idx] == sx[idx]) & (dy[idx] == sy[idx])
            else:
                raise RoutingError("could not separate hotspot endpoints")
    elif pattern == "transpose":
        ok = (
            (ex != ey)
            & (ey < width)
            & (ex < height)
            & view.enabled[np.minimum(ey, width - 1), np.minimum(ex, height - 1)]
        )
        vx, vy = ex[ok], ey[ok]
        if vx.size == 0:
            raise RoutingError("transpose pattern has no valid enabled pair")
        si = rng.integers(0, vx.size, num_packets)
        sx, sy = vx[si], vy[si]
        dx, dy = sy.copy(), sx.copy()
    else:  # bit_complement
        cx = (width - 1 - ex).astype(np.int32)
        cy = (height - 1 - ey).astype(np.int32)
        ok = view.enabled[cx, cy] & ((cx != ex) | (cy != ey))
        vx, vy = ex[ok], ey[ok]
        if vx.size == 0:
            raise RoutingError("bit_complement pattern has no valid enabled pair")
        si = rng.integers(0, vx.size, num_packets)
        sx, sy = vx[si], vy[si]
        dx = (width - 1 - sx).astype(np.int32)
        dy = (height - 1 - sy).astype(np.int32)

    gaps = rng.exponential(1.0 / injection_rate, num_packets)
    inject = np.floor(np.cumsum(gaps)).astype(np.int64)
    return BatchedTraffic(
        sx=np.ascontiguousarray(sx, dtype=np.int32),
        sy=np.ascontiguousarray(sy, dtype=np.int32),
        dx=np.ascontiguousarray(dx, dtype=np.int32),
        dy=np.ascontiguousarray(dy, dtype=np.int32),
        inject=inject,
        pattern=pattern,
    )
