"""Traffic generation for the wormhole simulator.

Standard synthetic workloads: uniform random permutation traffic over
the *enabled* nodes of a fault-model view, with a Bernoulli injection
process per cycle.  Endpoints are drawn from the enabled set only —
faulty and disabled nodes host no traffic, per the paper's rule that
only enabled nodes participate in routing.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import RoutingError
from repro.network.flits import WormPacket
from repro.routing.base import FaultModelView, Router
from repro.types import Coord

__all__ = ["uniform_traffic", "source_routed_traffic"]


def uniform_traffic(
    view: FaultModelView,
    num_packets: int,
    rng: np.random.Generator,
    packet_length: int = 4,
    injection_rate: float = 0.1,
) -> List[WormPacket]:
    """Uniform random source/destination worms with Bernoulli injection.

    Parameters
    ----------
    view:
        Supplies the enabled endpoints.
    num_packets:
        Total packets to generate.
    rng:
        Seeded generator.
    packet_length:
        Flits per packet.
    injection_rate:
        Expected packets injected per cycle (across the whole machine);
        inter-arrival gaps are geometric with this rate.

    Raises
    ------
    RoutingError
        On a non-positive injection rate or packet length.
    """
    if packet_length < 1:
        raise RoutingError(f"packet length must be >= 1, got {packet_length}")
    if not 0 < injection_rate:
        raise RoutingError(f"injection rate must be positive, got {injection_rate}")
    packets: List[WormPacket] = []
    cycle = 0
    for pid in range(num_packets):
        source, dest = view.random_enabled_pair(rng)
        packets.append(
            WormPacket(
                packet_id=pid,
                source=source,
                dest=dest,
                length=packet_length,
                inject_cycle=cycle,
            )
        )
        cycle += int(rng.geometric(min(1.0, injection_rate)))
    return packets


def source_routed_traffic(
    router: Router,
    pairs: Sequence[Tuple[Coord, Coord]],
    rng: np.random.Generator,
    packet_length: int = 4,
    injection_rate: float = 0.1,
) -> Tuple[List[WormPacket], int]:
    """Worms carrying full source routes computed by a path router.

    Each pair is routed up front with ``router``; delivered routes
    become source-routed worms (the head flit "carries" the path, a
    standard wormhole option), undeliverable pairs are counted and
    skipped.  This is how the benchmarks drive the wormhole network
    with the f-ring and wall-following detour routers, whose paths are
    stateful and therefore cannot be expressed as memoryless hop
    functions.

    Returns
    -------
    (packets, unroutable):
        The worms, plus how many pairs the router could not serve.
    """
    if packet_length < 1:
        raise RoutingError(f"packet length must be >= 1, got {packet_length}")
    if not 0 < injection_rate:
        raise RoutingError(f"injection rate must be positive, got {injection_rate}")
    packets: List[WormPacket] = []
    unroutable = 0
    cycle = 0
    pid = 0
    for source, dest in pairs:
        result = router.route(source, dest)
        if not result.delivered:
            unroutable += 1
            continue
        packets.append(
            WormPacket(
                packet_id=pid,
                source=source,
                dest=dest,
                length=packet_length,
                inject_cycle=cycle,
                path=tuple(result.path),
            )
        )
        pid += 1
        cycle += int(rng.geometric(min(1.0, injection_rate)))
    return packets, unroutable
