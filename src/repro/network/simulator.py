"""Cycle-level wormhole network simulator.

Models the switching layer of the mesh multicomputers the paper's fault
regions exist for: packets travel as worms of flits, the head flit
reserves one virtual channel per link as it advances, body flits
pipeline behind it, and the tail flit releases the channels.  A blocked
worm keeps everything it holds — so cyclic channel waits stall forever,
and the simulator's watchdog detects and reports such deadlocks instead
of hanging.

The model (one-flit-per-cycle links, per-VC input FIFOs, deterministic
hop functions, fair per-link VC allocation) is the standard textbook
abstraction: detailed enough to reproduce the classical phenomena —
dimension-order routing never deadlocks, cyclic routing on one virtual
channel deadlocks, a dateline VC discipline breaks the cycle — while
staying fast enough to sweep injection rates in the benchmarks.

Simplifications (documented, deliberate): infinite injection queues,
single-cycle routing decisions, ejection bandwidth of one flit per
cycle per node, and no pipelined switch stages.  None of these affect
the deadlock structure, which is what the paper's convexity argument
is about.
"""

from __future__ import annotations

from bisect import insort
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import RoutingError
from repro.mesh.topology import Topology
from repro.network.batched import nearest_rank
from repro.network.flits import Flit, WormPacket
from repro.network.hops import HopFunction
from repro.types import Coord

__all__ = ["VCSelector", "WormholeNetwork", "NetworkResult", "dateline_vc_policy"]

#: Channel identity: (upstream node, downstream node, virtual channel).
_ChannelId = Tuple[Coord, Coord, int]

#: ``fn(from_node, to_node, current_vc) -> preference-ordered VC list``.
VCSelector = Callable[[Coord, Coord, int], Sequence[int]]


def _any_vc(num_vcs: int) -> VCSelector:
    order = list(range(num_vcs))

    def fn(_frm: Coord, _to: Coord, _cur: int) -> Sequence[int]:
        return order

    return fn


def dateline_vc_policy(ring: Sequence[Coord]) -> VCSelector:
    """The classic dateline discipline for cyclic routes.

    Worms start on VC 0 and switch to VC 1 when crossing the link from
    the last ring node back to the first (the *dateline*).  This breaks
    the channel-dependency cycle of ring routing with just two virtual
    channels — the "relatively few virtual channels" the paper's
    Section 1 refers to.
    """
    dateline = (ring[-1], ring[0])

    def fn(frm: Coord, to: Coord, cur: int) -> Sequence[int]:
        if (frm, to) == dateline or cur >= 1:
            return [1]
        return [0]

    return fn


@dataclass
class _Worm:
    """Runtime state of one in-flight packet."""

    packet: WormPacket
    flits: List[Flit]
    injected: int = 0                      # flits pushed into the network
    channels: Deque[_ChannelId] = field(default_factory=deque)  # acquired, in order
    links_acquired: int = 0                # total links ever reserved
    head_blocked: bool = False
    dropped: bool = False


@dataclass(frozen=True)
class NetworkResult:
    """Outcome of one simulation run.

    Empty-run semantics are explicit and vacuous: with no offered
    packets :attr:`delivery_rate` is ``1.0`` (nothing was lost) while
    every latency statistic is ``nan`` (there is no latency to report).
    The same convention holds for
    :class:`~repro.network.batched.BatchedResult`, so sweep code can
    treat both result types uniformly.
    """

    delivered: Tuple[WormPacket, ...]
    dropped: Tuple[WormPacket, ...]
    stuck: Tuple[WormPacket, ...]
    cycles: int
    deadlocked: bool

    @property
    def delivery_rate(self) -> float:
        """Delivered fraction of all offered packets; empty runs are 1.0."""
        total = len(self.delivered) + len(self.dropped) + len(self.stuck)
        return len(self.delivered) / total if total else 1.0

    @property
    def latencies(self) -> np.ndarray:
        """Delivered-packet latency vector (cycles), possibly empty."""
        return np.array(
            [p.latency for p in self.delivered if p.latency is not None],
            dtype=np.int64,
        )

    @property
    def mean_latency(self) -> float:
        """Mean delivered latency; ``nan`` when nothing was delivered."""
        lats = self.latencies
        return float(lats.mean()) if lats.size else float("nan")

    @property
    def p50_latency(self) -> float:
        """Median delivered latency (nearest-rank); ``nan`` when empty."""
        return nearest_rank(self.latencies, 50)

    @property
    def p95_latency(self) -> float:
        return nearest_rank(self.latencies, 95)

    @property
    def p99_latency(self) -> float:
        return nearest_rank(self.latencies, 99)

    @property
    def throughput(self) -> float:
        """Delivered flits per cycle across the whole run."""
        flits = sum(p.length for p in self.delivered)
        return flits / self.cycles if self.cycles else 0.0


class WormholeNetwork:
    """A wormhole-switched mesh with virtual channels.

    Parameters
    ----------
    topology:
        The machine.
    hop_fn:
        Memoryless per-hop routing function.
    num_vcs:
        Virtual channels per physical link.
    buffer_depth:
        Flit capacity of each per-VC input FIFO.
    vc_policy:
        Preference-ordered VC selection per hop; default tries every VC
        lowest-first.
    watchdog:
        Declare deadlock after this many cycles without any flit
        movement while worms are in flight.
    """

    def __init__(
        self,
        topology: Topology,
        hop_fn: Optional[HopFunction] = None,
        num_vcs: int = 1,
        buffer_depth: int = 2,
        vc_policy: Optional[VCSelector] = None,
        watchdog: int = 200,
    ):
        if num_vcs < 1:
            raise RoutingError(f"need at least one virtual channel, got {num_vcs}")
        if buffer_depth < 1:
            raise RoutingError(f"buffer depth must be >= 1, got {buffer_depth}")
        self._topology = topology
        self._hop_fn = hop_fn
        self._num_vcs = num_vcs
        self._depth = buffer_depth
        self._vc_policy = vc_policy if vc_policy is not None else _any_vc(num_vcs)
        self._watchdog = watchdog
        self._owner: Dict[_ChannelId, int] = {}
        self._buffers: Dict[_ChannelId, deque] = {}

    # -- channel helpers -----------------------------------------------------------

    def _buffer(self, ch: _ChannelId) -> deque:
        buf = self._buffers.get(ch)
        if buf is None:
            buf = deque()
            self._buffers[ch] = buf
        return buf

    def _acquire(self, frm: Coord, to: Coord, cur_vc: int, packet_id: int
                 ) -> Optional[_ChannelId]:
        if to not in self._topology.neighbors(frm):
            raise RoutingError(f"hop function produced non-link {frm}->{to}")
        for vc in self._vc_policy(frm, to, cur_vc):
            if not 0 <= vc < self._num_vcs:
                raise RoutingError(f"vc policy selected invalid VC {vc}")
            ch = (frm, to, vc)
            if self._owner.get(ch) is None and not self._buffer(ch):
                self._owner[ch] = packet_id
                return ch
        return None

    # -- simulation -------------------------------------------------------------------

    def run(
        self,
        packets: Sequence[WormPacket],
        max_cycles: int = 100_000,
    ) -> NetworkResult:
        """Inject the given packets at their ``inject_cycle`` and simulate.

        Returns when every packet is delivered or dropped, when the
        watchdog trips (deadlock), or at ``max_cycles``.
        """
        worms = [ _Worm(packet=p, flits=list(p.flits())) for p in packets ]
        pending = sorted(worms, key=lambda w: (w.packet.inject_cycle, w.packet.packet_id))
        pptr = 0  # admission cursor into ``pending`` (no O(n) pop(0))
        active: List[_Worm] = []  # kept ascending by packet_id
        delivered: List[WormPacket] = []
        dropped: List[WormPacket] = []
        cycle = 0
        idle_cycles = 0
        deadlocked = False

        while cycle < max_cycles:
            # Admit packets whose injection time arrived.
            while pptr < len(pending) and pending[pptr].packet.inject_cycle <= cycle:
                worm = pending[pptr]
                pptr += 1
                if worm.packet.source == worm.packet.dest:
                    # Local delivery needs no network resources.
                    worm.packet.start_cycle = cycle
                    worm.packet.finish_cycle = cycle
                    delivered.append(worm.packet)
                else:
                    # Sorted insertion keeps the oldest-first service
                    # order without re-sorting ``active`` every cycle.
                    insort(active, worm, key=lambda w: w.packet.packet_id)

            moved = self._step(active, cycle)

            # Retire finished/dropped worms.
            still: List[_Worm] = []
            for worm in active:
                if worm.packet.delivered:
                    delivered.append(worm.packet)
                elif worm.dropped:
                    dropped.append(worm.packet)
                else:
                    still.append(worm)
            active = still

            cycle += 1
            if not active and pptr >= len(pending):
                break
            if active and not moved:
                idle_cycles += 1
                if idle_cycles >= self._watchdog:
                    deadlocked = True
                    break
            else:
                idle_cycles = 0

        stuck = tuple(w.packet for w in active) + tuple(
            w.packet for w in pending[pptr:]
        )
        return NetworkResult(
            delivered=tuple(delivered),
            dropped=tuple(dropped),
            stuck=stuck,
            cycles=cycle,
            deadlocked=deadlocked,
        )

    # -- one cycle ------------------------------------------------------------------

    def _step(self, active: List[_Worm], cycle: int) -> bool:
        moved = False
        # Deterministic service order: oldest packet first (age-based
        # priority also avoids starvation).  ``active`` is maintained
        # ascending by packet_id, so no per-cycle sort is needed.
        for worm in active:
            if self._advance_worm(worm, cycle):
                moved = True
        return moved

    def _advance_worm(self, worm: _Worm, cycle: int) -> bool:
        """Move this worm's flits forward by at most one hop each."""
        packet = worm.packet
        moved = False

        # 1. Head progress: extend the route or eject at the destination.
        if worm.channels:
            head_ch = worm.channels[-1]
            buf = self._buffer(head_ch)
            at_dest = (
                head_ch[1] == packet.dest
                and (packet.path is None or worm.links_acquired == len(packet.path) - 1)
            )
            if buf and at_dest:
                flit = buf.popleft()
                packet.flits_ejected += 1
                if flit.kind.is_tail:
                    packet.finish_cycle = cycle
                    self._release(worm, head_ch)
                moved = True
            elif buf and buf[0].kind.is_head:
                nxt = self._next_node(worm, head_ch[1])
                if nxt is None:
                    self._drop(worm)
                    return True
                ch = self._acquire(head_ch[1], nxt, head_ch[2], packet.packet_id)
                if ch is not None:
                    worm.channels.append(ch)
                    worm.links_acquired += 1
                # else: blocked this cycle, try again next cycle.
        else:
            # Route the first link out of the source.
            nxt = self._next_node(worm, packet.source)
            if nxt is None:
                self._drop(worm)
                return True
            ch = self._acquire(packet.source, nxt, 0, packet.packet_id)
            if ch is not None:
                worm.channels.append(ch)
                worm.links_acquired += 1

        # 2. Pipeline flits forward, head-most link first.  Snapshot the
        # deque: tuple indexing is O(1) where mid-deque indexing is not.
        chans = tuple(worm.channels)
        for i in range(len(chans) - 1, 0, -1):
            up, down = chans[i - 1], chans[i]
            up_buf, down_buf = self._buffer(up), self._buffer(down)
            if up_buf and len(down_buf) < self._depth:
                flit = up_buf.popleft()
                down_buf.append(flit)
                moved = True
                if flit.kind.is_tail:
                    self._release(worm, up)

        # 3. Inject the next flit into the first channel.
        if worm.channels and worm.injected < packet.length:
            first = worm.channels[0]
            # The source only feeds the first channel while it still owns it.
            if self._owner.get(first) == packet.packet_id:
                buf = self._buffer(first)
                if len(buf) < self._depth:
                    buf.append(worm.flits[worm.injected])
                    worm.injected += 1
                    if packet.start_cycle is None:
                        packet.start_cycle = cycle
                    moved = True

        # Channel list cleanup: drop released channels from the front.
        while worm.channels and self._owner.get(worm.channels[0]) != packet.packet_id:
            worm.channels.popleft()
        return moved

    def _next_node(self, worm: _Worm, at: Coord) -> Optional[Coord]:
        """The head's next node: follow the source route when present,
        otherwise consult the hop function."""
        packet = worm.packet
        if packet.path is not None:
            i = worm.links_acquired
            if i + 1 >= len(packet.path):
                return None  # route exhausted away from the destination
            if packet.path[i] != at:
                raise RoutingError(
                    f"source route desynchronised at {at} (expected {packet.path[i]})"
                )
            return packet.path[i + 1]
        if self._hop_fn is None:
            raise RoutingError(
                "network has no hop function and the packet carries no source route"
            )
        return self._hop_fn(at, packet.dest)

    def _release(self, worm: _Worm, ch: _ChannelId) -> None:
        if self._owner.get(ch) == worm.packet.packet_id:
            self._owner[ch] = None

    def _drop(self, worm: _Worm) -> None:
        """Abort a worm (unroutable hop): free everything it holds."""
        for ch in worm.channels:
            if self._owner.get(ch) == worm.packet.packet_id:
                self._owner[ch] = None
                self._buffer(ch).clear()
        worm.channels.clear()
        worm.dropped = True
