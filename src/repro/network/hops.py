"""Per-hop routing functions for the wormhole simulator.

Wormhole routers decide one hop at a time when the head flit arrives,
so the simulator consumes *hop functions* ``(at, dest) -> next node``
rather than whole precomputed paths.  Provided here:

* :func:`xy_hops` — dimension-order; deadlock-free on one virtual
  channel (the classic e-cube result, demonstrated live by the bench);
* :func:`block_detour_hops` — XY with a deterministic slide around
  rectangular faulty blocks, the wormhole analogue of the f-ring;
* :func:`clockwise_ring_hops` — an intentionally cyclic routing
  function used by the tests to manufacture a true wormhole deadlock
  that the simulator's watchdog must detect.

Hop functions must be memoryless and deterministic — exactly the class
of routing algorithms whose deadlock-freedom the channel-dependency
machinery of :mod:`repro.routing.cdg` can certify.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.geometry.rectangles import Rect
from repro.routing.base import FaultModelView
from repro.types import Coord

__all__ = ["HopFunction", "xy_hops", "block_detour_hops", "clockwise_ring_hops"]

#: ``fn(at, dest) -> next node`` or None when no legal hop exists.
HopFunction = Callable[[Coord, Coord], Optional[Coord]]


def xy_hops() -> HopFunction:
    """Dimension-order routing: correct X, then Y."""

    def fn(at: Coord, dest: Coord) -> Optional[Coord]:
        if at[0] != dest[0]:
            return (at[0] + (1 if dest[0] > at[0] else -1), at[1])
        if at[1] != dest[1]:
            return (at[0], at[1] + (1 if dest[1] > at[1] else -1))
        return None

    return fn


def block_detour_hops(view: FaultModelView) -> HopFunction:
    """XY routing that slides around rectangular fault blocks.

    Memoryless rectangle avoidance: when the dimension-order hop would
    enter a block, move along the cross dimension toward the block face
    nearer the destination.  Because the choice depends only on
    ``(at, dest)`` and fixed geometry, the function is a valid wormhole
    routing relation.  It can fail (return None) when a block pins the
    packet to the mesh edge; the simulator then drops the worm.
    """
    from repro.geometry.rectangles import bounding_rect, is_rectangle

    rects = []
    for obs in view.obstacles:
        if is_rectangle(obs):
            rects.append(bounding_rect(obs))
    base = xy_hops()
    w, h = view.topology.shape

    def rect_containing(c: Coord) -> Optional[Rect]:
        for r in rects:
            if r.contains(c):
                return r
        return None

    def fn(at: Coord, dest: Coord) -> Optional[Coord]:
        hop = base(at, dest)
        if hop is None:
            return None
        if view.is_enabled(hop):
            return hop
        rect = rect_containing(hop)
        if rect is None:
            return None
        if hop[1] == at[1]:  # blocked along x: slide in y
            faces = [f for f in (rect.y0 - 1, rect.y1 + 1) if 0 <= f < h]
            faces.sort(key=lambda f: abs(dest[1] - f))
            for face in faces:
                step = (at[0], at[1] + (1 if face > at[1] else -1))
                if step != at and self_enabled(step):
                    return step
            return None
        faces = [f for f in (rect.x0 - 1, rect.x1 + 1) if 0 <= f < w]
        faces.sort(key=lambda f: abs(dest[0] - f))
        for face in faces:
            step = (at[0] + (1 if face > at[0] else -1), at[1])
            if step != at and self_enabled(step):
                return step
        return None

    def self_enabled(c: Coord) -> bool:
        return view.is_enabled(c)

    return fn


def clockwise_ring_hops(ring: Sequence[Coord]) -> HopFunction:
    """Route every packet around a fixed cycle of nodes (test rig).

    All sources and destinations must lie on ``ring``; each hop advances
    one position clockwise.  Four worms injected a quarter turn apart
    with destinations a half turn away will each hold one ring channel
    while waiting for the next — the canonical wormhole deadlock.
    """
    index = {c: i for i, c in enumerate(ring)}
    n = len(ring)

    def fn(at: Coord, dest: Coord) -> Optional[Coord]:
        if at == dest:
            return None
        if at not in index or dest not in index:
            raise ValueError(f"{at} or {dest} not on the configured ring")
        return ring[(index[at] + 1) % n]

    return fn
