"""Network substrate: wormhole flit simulator + batched packet engine.

Two simulators share this package:

* the cycle-level **wormhole** flit simulator (worms, virtual channels,
  deadlock watchdog) used for the deadlock-freedom demonstrations, and
* the **batched store-and-forward engine**
  (:class:`~repro.network.batched.BatchedNetwork`) that advances every
  in-flight packet in parallel numpy arrays, fast enough for
  million-packet saturation campaigns over the paper's fault-model
  views, with injection-rate sweeps in :mod:`repro.network.sweeps`.
"""

from repro.network.batched import BatchedNetwork, BatchedResult, nearest_rank
from repro.network.flits import Flit, FlitKind, WormPacket
from repro.network.hops import (
    HopFunction,
    block_detour_hops,
    clockwise_ring_hops,
    xy_hops,
)
from repro.network.simulator import (
    NetworkResult,
    VCSelector,
    WormholeNetwork,
    dateline_vc_policy,
)
from repro.network.sweeps import SweepCurve, SweepPoint, injection_sweep
from repro.network.traffic import (
    BatchedTraffic,
    TRAFFIC_PATTERNS,
    source_routed_traffic,
    synthetic_traffic,
    uniform_traffic,
)

__all__ = [
    "BatchedNetwork",
    "BatchedResult",
    "BatchedTraffic",
    "Flit",
    "FlitKind",
    "HopFunction",
    "NetworkResult",
    "SweepCurve",
    "SweepPoint",
    "TRAFFIC_PATTERNS",
    "VCSelector",
    "WormPacket",
    "WormholeNetwork",
    "block_detour_hops",
    "clockwise_ring_hops",
    "dateline_vc_policy",
    "injection_sweep",
    "nearest_rank",
    "source_routed_traffic",
    "synthetic_traffic",
    "uniform_traffic",
    "xy_hops",
]
