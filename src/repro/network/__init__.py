"""Wormhole-switched network substrate.

A cycle-level flit simulator of the switching layer beneath the paper's
fault model: worms, virtual channels, per-hop routing functions, a
deadlock watchdog, and synthetic traffic over the enabled nodes of a
fault-model view.  The network benchmarks use it to demonstrate the
claims the paper inherits from the wormhole literature — dimension-order
routing is deadlock-free, cyclic routing on one virtual channel is not,
and a dateline VC discipline repairs it with just two.
"""

from repro.network.flits import Flit, FlitKind, WormPacket
from repro.network.hops import (
    HopFunction,
    block_detour_hops,
    clockwise_ring_hops,
    xy_hops,
)
from repro.network.simulator import (
    NetworkResult,
    VCSelector,
    WormholeNetwork,
    dateline_vc_policy,
)
from repro.network.traffic import source_routed_traffic, uniform_traffic

__all__ = [
    "Flit",
    "FlitKind",
    "HopFunction",
    "NetworkResult",
    "VCSelector",
    "WormPacket",
    "WormholeNetwork",
    "block_detour_hops",
    "clockwise_ring_hops",
    "dateline_vc_policy",
    "source_routed_traffic",
    "uniform_traffic",
    "xy_hops",
]
