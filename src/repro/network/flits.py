"""Flits and packets for the wormhole network simulator.

Wormhole switching — the transport mechanism of the multicomputers the
paper targets ([2], [6], [7] are all wormhole-routing papers) — cuts a
packet into *flits*: a head flit that carries the destination and
reserves channels hop by hop, body flits that follow the worm, and a
tail flit that releases the channels.  Because a blocked worm keeps its
channels while waiting for the next one, cyclic waits deadlock the
network — which is exactly why the convexity of fault regions and the
virtual-channel structure matter.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.types import Coord

__all__ = ["FlitKind", "Flit", "WormPacket"]


class FlitKind(enum.Enum):
    """Position of a flit within its worm."""

    HEAD = "head"
    BODY = "body"
    TAIL = "tail"
    #: A single-flit packet is simultaneously head and tail.
    HEAD_TAIL = "head_tail"

    @property
    def is_head(self) -> bool:
        return self in (FlitKind.HEAD, FlitKind.HEAD_TAIL)

    @property
    def is_tail(self) -> bool:
        return self in (FlitKind.TAIL, FlitKind.HEAD_TAIL)


@dataclass(frozen=True)
class Flit:
    """One flit of one packet."""

    packet_id: int
    kind: FlitKind
    source: Coord
    dest: Coord
    index: int  # position within the packet, 0-based


@dataclass
class WormPacket:
    """A packet awaiting or undergoing wormhole transport.

    Attributes
    ----------
    packet_id, source, dest, length:
        Identity and size (in flits, >= 1).
    inject_cycle:
        Cycle at which the packet entered its source queue.
    start_cycle, finish_cycle:
        First head-flit movement and tail-flit ejection cycles, filled
        in by the simulator (None while pending).
    """

    packet_id: int
    source: Coord
    dest: Coord
    length: int
    inject_cycle: int
    start_cycle: Optional[int] = None
    finish_cycle: Optional[int] = None
    flits_ejected: int = field(default=0)
    #: Optional source route: the full node sequence from ``source`` to
    #: ``dest`` carried in the head flit.  When set, the simulator
    #: follows it verbatim and ignores its hop function — which lets any
    #: path-computing router (f-ring, wall-following, BFS) drive the
    #: wormhole network, detour loops included.
    path: Optional[tuple] = None

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ValueError(f"packet length must be >= 1, got {self.length}")
        if self.path is not None:
            if len(self.path) < 1 or self.path[0] != self.source:
                raise ValueError("source route must start at the packet source")
            if self.path[-1] != self.dest:
                raise ValueError("source route must end at the packet destination")

    def flits(self):
        """Generate the packet's flit sequence."""
        if self.length == 1:
            yield Flit(self.packet_id, FlitKind.HEAD_TAIL, self.source, self.dest, 0)
            return
        yield Flit(self.packet_id, FlitKind.HEAD, self.source, self.dest, 0)
        for i in range(1, self.length - 1):
            yield Flit(self.packet_id, FlitKind.BODY, self.source, self.dest, i)
        yield Flit(self.packet_id, FlitKind.TAIL, self.source, self.dest, self.length - 1)

    @property
    def delivered(self) -> bool:
        """Whether the whole worm has been ejected at the destination."""
        return self.finish_cycle is not None

    @property
    def latency(self) -> Optional[int]:
        """Injection-to-ejection cycles, once delivered."""
        if self.finish_cycle is None:
            return None
        return self.finish_cycle - self.inject_cycle
