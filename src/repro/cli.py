"""Command-line interface: ``python -m repro <command>``.

Exposes the library's main workflows without writing any Python:

* ``label``     — label a mesh with random faults, print the picture and
  the summary, optionally verify every theorem and export SVG;
* ``fig5``      — run the paper's Figure-5 sweep and print the table;
* ``route``     — compare routing under the block and region models;
* ``density``   — the fault-density / percolation study;
* ``partition`` — run the open-problem cover heuristics on random faults;
* ``obs``       — validate and summarize telemetry artefacts, compare
  two run artifacts for regressions (``obs compare``), and stitch
  client/server Chrome traces onto one timeline (``obs stitch``);
* ``serve``     — run the incremental relabeling service behind an
  NDJSON socket (TCP or Unix-domain), answering fault deltas online;
  ``--wal-dir`` makes it crash-safe (write-ahead log + snapshot
  checkpoints), ``--recover`` rebuilds verified state after a crash,
  and ``--admin-port`` serves the live observability plane
  (``/metrics`` Prometheus text, ``/healthz``, ``/readyz`` gated on
  verified recovery, ``/varz`` service stats).

``label`` can record telemetry: ``--trace-out`` writes the structured
event log (JSONL), ``--metrics-out`` the metrics-registry snapshot,
``--spans-out`` a Chrome trace-event profile and ``--stats-out`` the
engine statistics; ``repro obs summarize <trace.jsonl>`` rebuilds the
per-epoch recovery report from the event log alone.

All commands accept ``--seed`` and are fully reproducible.
"""

from __future__ import annotations

import argparse
import sys
import threading
from typing import List, Optional

import numpy as np

from repro._version import __version__

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Distributed formation of orthogonal convex polygons in "
            "mesh-connected multicomputers (Wu, IPPS 2001)"
        ),
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--size", type=int, default=32, help="mesh side length")
        p.add_argument("--faults", type=int, default=20, help="number of faults")
        p.add_argument("--seed", type=int, default=0, help="RNG seed")
        p.add_argument(
            "--definition",
            choices=["2a", "2b"],
            default="2b",
            help="phase-1 unsafe rule",
        )
        p.add_argument(
            "--torus", action="store_true", help="use a torus instead of a mesh"
        )
        p.add_argument(
            "--clustered",
            action="store_true",
            help="clustered faults instead of uniform random",
        )
        p.add_argument(
            "--method",
            choices=["dense", "frontier", "auto"],
            default="auto",
            help="vectorized labeling kernel (frontier = sparse active-set)",
        )
        p.add_argument(
            "--geometry-backend",
            choices=["vectorized", "reference"],
            default="vectorized",
            help=(
                "block/region extraction implementation (reference = "
                "per-cell BFS oracle, identical results)"
            ),
        )

    p_label = sub.add_parser("label", help="run the two-phase labeling")
    common(p_label)
    p_label.add_argument(
        "--backend",
        choices=["vectorized", "distributed"],
        default="vectorized",
    )
    p_label.add_argument(
        "--verify", action="store_true", help="check every Section-4 claim"
    )
    p_label.add_argument("--svg", metavar="FILE", help="write an SVG picture")
    p_label.add_argument(
        "--no-art", action="store_true", help="skip the ASCII rendering"
    )
    p_label.add_argument(
        "--fault-schedule",
        metavar="SPEC",
        help=(
            "mid-run crash schedule 'time:x,y;time:x,y;...' "
            "(distributed backend only)"
        ),
    )
    p_label.add_argument(
        "--drop-prob",
        type=float,
        default=0.0,
        help="per-message loss probability (distributed backend only)",
    )
    p_label.add_argument(
        "--dup-prob",
        type=float,
        default=0.0,
        help="per-message duplication probability (distributed backend only)",
    )
    p_label.add_argument(
        "--channel-seed",
        type=int,
        default=None,
        help="seed for the lossy channel (default: derived from --seed)",
    )
    p_label.add_argument(
        "--trace-out",
        metavar="FILE",
        help="write the structured event log as JSONL",
    )
    p_label.add_argument(
        "--metrics-out",
        metavar="FILE",
        help="write the metrics-registry snapshot as JSON",
    )
    p_label.add_argument(
        "--spans-out",
        metavar="FILE",
        help="write the profiling spans as Chrome trace-event JSON",
    )
    p_label.add_argument(
        "--stats-out",
        metavar="FILE",
        help="write the run statistics (RunStats per phase) as JSON",
    )
    p_label.add_argument(
        "--log-level",
        choices=["debug", "info"],
        default="info",
        help="event severity kept in --trace-out (debug adds per-node flips)",
    )
    p_label.add_argument(
        "--shard",
        metavar="KxK|auto",
        default=None,
        help=(
            "tile-sharded halo-exchange fixpoints with this tile size "
            "(identical labels; rounds become tile rounds)"
        ),
    )
    p_label.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=(
            "worker processes for --shard tile solves over shared memory "
            "(same labels for any value)"
        ),
    )

    p_fig5 = sub.add_parser("fig5", help="reproduce the Figure-5 sweep")
    p_fig5.add_argument("--size", type=int, default=100)
    p_fig5.add_argument("--trials", type=int, default=20)
    p_fig5.add_argument("--seed", type=int, default=20010423)
    p_fig5.add_argument("--definition", choices=["2a", "2b"], default="2b")
    p_fig5.add_argument("--torus", action="store_true")
    p_fig5.add_argument(
        "--f-max", type=int, default=100, help="largest fault count in the sweep"
    )
    p_fig5.add_argument("--f-step", type=int, default=10)
    p_fig5.add_argument(
        "--method",
        choices=["dense", "frontier", "auto"],
        default="auto",
        help="vectorized labeling kernel (frontier = sparse active-set)",
    )
    p_fig5.add_argument(
        "--geometry-backend",
        choices=["vectorized", "reference"],
        default="vectorized",
        help=(
            "block/region extraction implementation (reference = "
            "per-cell BFS oracle, identical results)"
        ),
    )
    p_fig5.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the sweep (same results for any value)",
    )
    p_fig5.add_argument(
        "--shard",
        metavar="KxK|auto",
        default=None,
        help=(
            "run every trial's labeling tile-sharded (tiles solve "
            "serially inside sweep workers; identical labels)"
        ),
    )

    p_route = sub.add_parser("route", help="compare routing under both models")
    common(p_route)
    p_route.add_argument("--pairs", type=int, default=200)

    p_density = sub.add_parser("density", help="fault-density study")
    p_density.add_argument("--size", type=int, default=48)
    p_density.add_argument("--trials", type=int, default=6)
    p_density.add_argument("--seed", type=int, default=0)
    p_density.add_argument(
        "--densities",
        type=float,
        nargs="+",
        default=[0.0, 0.01, 0.02, 0.05, 0.1],
    )

    p_part = sub.add_parser("partition", help="open-problem cover heuristics")
    common(p_part)

    p_serve = sub.add_parser(
        "serve", help="run the incremental relabeling service"
    )
    p_serve.add_argument("--size", type=int, default=64, help="mesh side length")
    p_serve.add_argument(
        "--faults", type=int, default=0, help="initial number of faults"
    )
    p_serve.add_argument("--seed", type=int, default=0, help="RNG seed")
    p_serve.add_argument(
        "--definition", choices=["2a", "2b"], default="2b",
        help="phase-1 unsafe rule",
    )
    p_serve.add_argument(
        "--torus", action="store_true", help="use a torus instead of a mesh"
    )
    p_serve.add_argument(
        "--clustered",
        action="store_true",
        help="clustered initial faults instead of uniform random",
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1", help="TCP bind host"
    )
    p_serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP bind port (0 picks an ephemeral port, printed on start)",
    )
    p_serve.add_argument(
        "--unix",
        metavar="PATH",
        help="serve on a Unix-domain socket instead of TCP",
    )
    p_serve.add_argument(
        "--max-requests",
        type=int,
        default=None,
        help="stop after this many responses (for smoke tests)",
    )
    p_serve.add_argument(
        "--wal-dir",
        metavar="DIR",
        help="write-ahead-log directory: log every applied delta before "
        "acking and checkpoint snapshots there (enables crash recovery)",
    )
    p_serve.add_argument(
        "--snapshot-every",
        type=int,
        default=1024,
        metavar="N",
        help="checkpoint a snapshot (and rotate the WAL) every N "
        "effective deltas (with --wal-dir; 0 disables)",
    )
    p_serve.add_argument(
        "--fsync-every",
        type=int,
        default=0,
        metavar="N",
        help="fsync the WAL every N appends (with --wal-dir; 0 = only "
        "at checkpoints and shutdown)",
    )
    p_serve.add_argument(
        "--recover",
        action="store_true",
        help="rebuild state from --wal-dir (snapshot + WAL replay, "
        "verified bit-for-bit against from-scratch labeling) instead of "
        "starting fresh",
    )
    p_serve.add_argument(
        "--trace-out",
        metavar="FILE",
        help="write the structured event log as JSONL",
    )
    p_serve.add_argument(
        "--metrics-out",
        metavar="FILE",
        help="write the metrics-registry snapshot as JSON",
    )
    p_serve.add_argument(
        "--spans-out",
        metavar="FILE",
        help="write the profiling spans as Chrome trace-event JSON",
    )
    p_serve.add_argument(
        "--log-level",
        choices=["debug", "info"],
        default="info",
        help="event severity kept in --trace-out",
    )
    p_serve.add_argument(
        "--flush-every",
        type=int,
        default=64,
        metavar="N",
        help="flush --trace-out every N events so the log stays "
        "readable while the server runs (0 = flush only at shutdown)",
    )
    p_serve.add_argument(
        "--admin-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve the observability admin endpoint (/metrics /healthz "
        "/readyz /varz) on this port (0 picks an ephemeral port, "
        "printed on start); omitted = no admin plane",
    )
    p_serve.add_argument(
        "--admin-host",
        default="127.0.0.1",
        help="admin endpoint bind host",
    )

    p_obs = sub.add_parser("obs", help="telemetry artefact tools")
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)
    p_summ = obs_sub.add_parser(
        "summarize", help="rebuild run/epoch reports from an event log"
    )
    p_summ.add_argument("trace", help="event-log JSONL file (--trace-out)")
    p_summ.add_argument(
        "--json",
        metavar="FILE",
        help="also write the summary as JSON (comparable with "
        "'repro obs compare')",
    )
    p_summ.add_argument(
        "--slo-latency-us",
        type=float,
        default=50_000.0,
        help="latency objective (us) the trace's service requests are "
        "graded against",
    )
    p_summ.add_argument(
        "--slo-quantile",
        type=float,
        default=0.99,
        help="quantile the latency objective constrains",
    )
    p_summ.add_argument(
        "--slo-availability",
        type=float,
        default=0.999,
        help="target success fraction for the error budget",
    )
    p_val = obs_sub.add_parser(
        "validate", help="strictly validate a telemetry artefact"
    )
    p_val.add_argument("file", help="event JSONL or Chrome trace JSON")
    p_val.add_argument(
        "--kind",
        choices=["auto", "events", "spans"],
        default="auto",
        help="artefact type (auto: .jsonl = events, otherwise spans)",
    )
    p_cmp = obs_sub.add_parser(
        "compare",
        help="regression report between two run artifacts "
        "(BENCH_perf.json, summarize --json, metrics snapshots)",
    )
    p_cmp.add_argument("a", help="baseline artifact (JSON)")
    p_cmp.add_argument("b", help="candidate artifact (JSON)")
    p_cmp.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="relative change beyond which a directional metric is "
        "flagged (default 0.10)",
    )
    p_cmp.add_argument(
        "--fail-on-regression",
        action="store_true",
        help="exit nonzero when any metric regressed beyond the threshold",
    )
    p_cmp.add_argument(
        "--all",
        action="store_true",
        help="list informational (direction-less) metrics too",
    )
    p_stitch = obs_sub.add_parser(
        "stitch",
        help="merge Chrome trace exports (e.g. client + server of one "
        "serve run) onto one timeline",
    )
    p_stitch.add_argument(
        "traces", nargs="+", help="Chrome trace JSON files (--spans-out)"
    )
    p_stitch.add_argument(
        "-o", "--out", required=True, metavar="FILE",
        help="where to write the stitched trace",
    )

    return parser


def _topology(args):
    from repro.mesh import Mesh2D, Torus2D

    cls = Torus2D if getattr(args, "torus", False) else Mesh2D
    return cls(args.size, args.size)


def _faults(args, shape):
    from repro.faults import clustered, uniform_random

    rng = np.random.default_rng(args.seed)
    if getattr(args, "clustered", False):
        return clustered(shape, args.faults, rng, clusters=3, spread=2.0)
    return uniform_random(shape, args.faults, rng)


def _definition(args):
    from repro.core import SafetyDefinition

    return SafetyDefinition(args.definition)


def _telemetry_from_args(args, force_metrics: bool = False, span_name: str = "repro"):
    """Build a command's telemetry from its output flags.

    Returns ``(telemetry, finish)`` where ``finish()`` closes the sinks
    and writes the metrics/span artefacts; both are ``None`` when no
    telemetry flag was given, so the untraced path stays a no-op.
    ``force_metrics`` attaches a registry even without ``--metrics-out``
    (the serve admin plane needs live series to scrape); ``span_name``
    labels the recorder's process row in stitched traces.
    """
    from repro.obs import JSONLSink, MetricsRegistry, SpanRecorder, Telemetry

    if not (args.trace_out or args.metrics_out or args.spans_out or force_metrics):
        return None, None
    sinks = []
    if args.trace_out:
        flush_every = getattr(args, "flush_every", 0)
        sinks.append(
            JSONLSink(
                args.trace_out,
                flush_every=flush_every if flush_every else None,
            )
        )
    metrics = MetricsRegistry() if (args.metrics_out or force_metrics) else None
    spans = SpanRecorder(span_name) if args.spans_out else None
    telemetry = Telemetry(
        sinks=sinks, metrics=metrics, spans=spans, log_level=args.log_level
    )

    def finish() -> None:
        telemetry.close()
        if args.trace_out:
            print(f"wrote {args.trace_out}")
        if args.metrics_out:
            metrics.write(args.metrics_out)
            print(f"wrote {args.metrics_out}")
        if args.spans_out:
            spans.write(args.spans_out)
            print(f"wrote {args.spans_out}")

    return telemetry, finish


def _write_stats(path: str, result) -> None:
    """Export the run's statistics (``--stats-out``)."""
    import json

    payload = {
        "summary": result.summary(),
        "stats_phase1": (
            result.stats_phase1.to_dict() if result.stats_phase1 else None
        ),
        "stats_phase2": (
            result.stats_phase2.to_dict() if result.stats_phase2 else None
        ),
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {path}")


def _cmd_label(args) -> int:
    from repro.core import label_mesh, theorems
    from repro.fabric import ChannelModel
    from repro.faults import FaultSchedule
    from repro.viz import render_result, svg_of_result

    schedule = None
    if args.fault_schedule:
        try:
            schedule = FaultSchedule.parse(args.fault_schedule)
        except Exception as exc:
            print(f"label: bad --fault-schedule: {exc}", file=sys.stderr)
            return 2
    channel = None
    if args.drop_prob or args.dup_prob:
        seed = args.channel_seed if args.channel_seed is not None else args.seed + 9
        channel = ChannelModel(
            drop_prob=args.drop_prob,
            dup_prob=args.dup_prob,
            rng=np.random.default_rng(seed),
            max_drops=1_000,
        )
    if (schedule or channel is not None) and args.backend != "distributed":
        print(
            "label: --fault-schedule/--drop-prob/--dup-prob need "
            "--backend distributed",
            file=sys.stderr,
        )
        return 2
    if args.shard is not None and args.backend != "vectorized":
        print("label: --shard needs --backend vectorized", file=sys.stderr)
        return 2

    topo = _topology(args)
    faults = _faults(args, topo.shape)
    telemetry, finish_telemetry = _telemetry_from_args(args)
    result = label_mesh(
        topo, faults, _definition(args), backend=args.backend, method=args.method,
        schedule=schedule, channel=channel, telemetry=telemetry,
        geometry_backend=args.geometry_backend,
        shard=args.shard, jobs=args.jobs,
    )
    if finish_telemetry is not None:
        finish_telemetry()
    if args.stats_out:
        _write_stats(args.stats_out, result)

    if not args.no_art and args.size <= 60:
        print(render_result(result))
        print()
    for key, value in result.summary().items():
        print(f"{key:>16}: {value}")
    stats1 = result.stats_phase1
    if stats1 is not None and stats1.epochs:
        print()
        print(
            f"phase 1 ran {len(stats1.epochs)} epochs "
            f"({stats1.recovery_rounds} recovery rounds, "
            f"{stats1.dropped_messages} drops, "
            f"{stats1.duplicated_messages} duplicates, "
            f"{stats1.heartbeats} heartbeats):"
        )
        for ep in stats1.epochs:
            crashed = (
                "initial" if not ep.crashed
                else "crash " + " ".join(f"{x},{y}" for x, y in ep.crashed)
            )
            print(
                f"  t={ep.at_time:>4} {crashed}: {ep.rounds} rounds, "
                f"{ep.messages} messages"
            )
    if args.verify:
        print()
        failures = 0
        for outcome in theorems.check_all(result):
            mark = "ok " if outcome.holds else "FAIL"
            print(f"[{mark}] {outcome.claim}")
            failures += 0 if outcome.holds else 1
        if failures:
            return 1
    if args.svg:
        with open(args.svg, "w", encoding="utf-8") as fh:
            fh.write(svg_of_result(result))
        print(f"\nwrote {args.svg}")
    return 0


def _cmd_fig5(args) -> int:
    from repro.analysis import run_fig5
    from repro.mesh import Mesh2D, Torus2D

    topo_cls = Torus2D if args.torus else Mesh2D
    curve = run_fig5(
        _definition(args),
        topology=topo_cls(args.size, args.size),
        f_values=range(0, args.f_max + 1, args.f_step),
        trials=args.trials,
        seed=args.seed,
        method=args.method,
        jobs=args.jobs,
        geometry_backend=args.geometry_backend,
        shard=args.shard,
    )
    print(curve.as_table())
    return 0


def _cmd_route(args) -> int:
    from repro.analysis import format_table
    from repro.core import label_mesh
    from repro.routing import (
        BFSRouter,
        FaultModelView,
        FRingRouter,
        MinimalRouter,
        SafetyLevelRouter,
        WallRouter,
        XYRouter,
        evaluate_router,
        sample_pairs,
    )

    topo = _topology(args)
    if topo.wraps:
        print("route: torus routing is not supported; use a mesh", file=sys.stderr)
        return 2
    faults = _faults(args, topo.shape)
    result = label_mesh(topo, faults, _definition(args))
    views = {
        "blocks": FaultModelView.from_blocks(result),
        "regions": FaultModelView.from_regions(result),
    }
    rng = np.random.default_rng(args.seed + 1)
    pairs = sample_pairs(views["blocks"], args.pairs, rng)
    rows = []
    for view_name, view in views.items():
        routers = [XYRouter(view), SafetyLevelRouter(view), WallRouter(view),
                   MinimalRouter(view), BFSRouter(view)]
        if view_name == "blocks":
            routers.insert(2, FRingRouter(view))
        for router in routers:
            m = evaluate_router(router, pairs)
            rows.append(
                [
                    view_name,
                    m.router,
                    view.num_enabled,
                    f"{100 * m.delivery_rate:.1f}%",
                    f"{m.mean_detour:.2f}",
                ]
            )
    print(
        format_table(
            ["model", "router", "enabled", "delivered", "detour"],
            rows,
            title=f"{args.size}x{args.size} mesh, {len(faults)} faults, "
            f"{args.pairs} packets",
        )
    )
    return 0


def _cmd_density(args) -> int:
    from repro.analysis import density_study, format_table
    from repro.mesh import Mesh2D

    points = density_study(
        Mesh2D(args.size, args.size),
        densities=args.densities,
        trials=args.trials,
        seed=args.seed,
    )
    rows = [
        [
            p.density,
            p.f,
            p.largest_block.mean,
            100 * p.imprisoned_fraction.mean,
            100 * p.freed_fraction.mean,
            p.enabled_components.mean,
        ]
        for p in points
    ]
    print(
        format_table(
            ["density", "f", "largest blk", "imprisoned %", "freed %", "#comps"],
            rows,
            title=f"Density study on a {args.size}x{args.size} mesh",
        )
    )
    return 0


def _cmd_partition(args) -> int:
    from repro.analysis import format_table
    from repro.geometry import connect_orthoconvex
    from repro.partition import cluster_cover, exact_cover, guillotine_cover

    topo = _topology(args)
    faults = _faults(args, topo.shape)
    if not faults:
        print("no faults to cover")
        return 0
    single = connect_orthoconvex(faults.cells)
    rows = [["single polygon", 1, len(single) - len(faults)]]
    for name, fn in (
        ("cluster", cluster_cover),
        ("guillotine", guillotine_cover),
    ):
        cover = fn(faults.cells)
        rows.append([name, cover.num_polygons, cover.num_nonfaulty])
    try:
        cover = exact_cover(faults.cells)
        rows.append(["exact", cover.num_polygons, cover.num_nonfaulty])
    except Exception:
        rows.append(["exact", "-", "instance too large"])
    print(
        format_table(
            ["strategy", "#polygons", "nonfaulty kept"],
            rows,
            title=f"Covers of {len(faults)} faults on {args.size}x{args.size}",
        )
    )
    return 0


def _cmd_serve(args) -> int:
    import os
    import signal

    from repro.errors import DurabilityError
    from repro.service import LabelingServer, LabelingService, list_state

    topo = _topology(args)
    faults = _faults(args, topo.shape) if args.faults else None
    telemetry, finish_telemetry = _telemetry_from_args(
        args, force_metrics=args.admin_port is not None, span_name="server"
    )
    snapshot_every = args.snapshot_every if args.snapshot_every > 0 else None
    fsync_every = args.fsync_every if args.fsync_every > 0 else None
    if args.recover and not args.wal_dir:
        print("--recover needs --wal-dir")
        return 2
    if args.recover:
        try:
            service = LabelingService.recover(
                args.wal_dir,
                topology=topo,
                definition=_definition(args),
                telemetry=telemetry,
                snapshot_every=snapshot_every,
                fsync_every=fsync_every,
            )
        except DurabilityError as exc:
            print(f"recovery failed: {exc}")
            return 1
        recovery = service.recovery
        print(
            f"recovered version {service.version} from {args.wal_dir} "
            f"(snapshot v{recovery.snapshot_version}, "
            f"{recovery.replayed} WAL records replayed, "
            f"{'clean' if recovery.clean else 'unclean'} prior shutdown, "
            f"verified bit-for-bit)"
        )
    else:
        if args.wal_dir and list_state(args.wal_dir):
            print(
                f"{args.wal_dir} already holds durability state; "
                "pass --recover to replay it or point --wal-dir at a "
                "fresh directory"
            )
            return 2
        service = LabelingService(
            topo,
            _definition(args),
            faults=faults,
            telemetry=telemetry,
            wal_dir=args.wal_dir,
            snapshot_every=snapshot_every if args.wal_dir else None,
            fsync_every=fsync_every if args.wal_dir else None,
        )
    if args.unix and os.path.exists(args.unix):
        os.unlink(args.unix)
    server = LabelingServer(
        service,
        host=args.host,
        port=args.port,
        unix_path=args.unix,
        telemetry=telemetry,
        max_requests=args.max_requests,
    )
    kind = "torus" if topo.wraps else "mesh"
    durable = f", wal={args.wal_dir}" if args.wal_dir else ""
    print(
        f"serving {args.size}x{args.size} {kind} "
        f"(definition {args.definition}, {service.engine.num_faults} faults"
        f"{durable})"
    )
    if args.unix:
        print(f"listening on unix:{server.address}", flush=True)
    else:
        host, port = server.address
        print(f"listening on {host}:{port}", flush=True)
    admin = None
    if args.admin_port is not None:
        from repro.obs import AdminServer

        def varz():
            # stats() iterates the service's rolling deques; the server
            # lock serializes against handler threads appending to them.
            with server.lock:
                return service.stats()

        def ready() -> bool:
            recovery = service.recovery
            verified = recovery is None or recovery.verified
            return verified and not server.draining

        admin = AdminServer(
            metrics=telemetry.metrics if telemetry is not None else None,
            varz=varz,
            ready=ready,
            host=args.admin_host,
            port=args.admin_port,
        )
        admin_host, admin_port = admin.start()
        print(f"admin on {admin_host}:{admin_port}", flush=True)
    # SIGTERM drains gracefully: stop accepting, finish in-flight
    # requests, fsync the WAL and leave the clean-shutdown marker.
    if threading.current_thread() is threading.main_thread():
        signal.signal(signal.SIGTERM, lambda *_: server.shutdown())
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        server.drain(timeout=10.0)
        if admin is not None:
            admin.close()
        server.close()
        if args.unix and os.path.exists(args.unix):
            os.unlink(args.unix)
        if finish_telemetry is not None:
            finish_telemetry()
    print(f"served {server.requests_served} requests")
    return 0


def _cmd_obs(args) -> int:
    from repro.errors import ObservabilityError

    if args.obs_command == "summarize":
        import json

        from repro.obs import SLOConfig, summarize_trace
        from repro.obs.summarize import format_summary

        try:
            slo_config = SLOConfig(
                latency_objective_us=args.slo_latency_us,
                latency_quantile=args.slo_quantile,
                availability_target=args.slo_availability,
            )
            summary = summarize_trace(args.trace, slo_config=slo_config)
            print(format_summary(summary))
            if args.json:
                with open(args.json, "w", encoding="utf-8") as fh:
                    json.dump(summary.to_dict(), fh, indent=2, sort_keys=True)
                    fh.write("\n")
                print(f"wrote {args.json}")
        except (OSError, ValueError, ObservabilityError) as exc:
            print(f"obs summarize: {exc}", file=sys.stderr)
            return 1
        return 0
    if args.obs_command == "validate":
        kind = args.kind
        if kind == "auto":
            kind = "events" if args.file.endswith(".jsonl") else "spans"
        try:
            if kind == "events":
                from repro.obs import validate_jsonl

                count = validate_jsonl(args.file)
                print(f"{args.file}: {count} events ok")
            else:
                from repro.obs import load_chrome_trace

                data = load_chrome_trace(args.file)
                print(f"{args.file}: {len(data['traceEvents'])} trace events ok")
        except (OSError, ObservabilityError) as exc:
            print(f"obs validate: {exc}", file=sys.stderr)
            return 1
        return 0
    if args.obs_command == "compare":
        from repro.obs import compare_runs, format_compare, load_run_artifact

        try:
            deltas = compare_runs(
                load_run_artifact(args.a),
                load_run_artifact(args.b),
                threshold=args.threshold,
            )
        except (OSError, ValueError, ObservabilityError) as exc:
            print(f"obs compare: {exc}", file=sys.stderr)
            return 1
        print(
            format_compare(
                deltas, label_a=args.a, label_b=args.b, show_all=args.all
            )
        )
        if args.fail_on_regression and any(d.regressed for d in deltas):
            return 1
        return 0
    if args.obs_command == "stitch":
        import json

        from repro.obs import load_chrome_trace, stitch_chrome_traces

        try:
            stitched = stitch_chrome_traces(
                [load_chrome_trace(path) for path in args.traces]
            )
        except (OSError, ObservabilityError) as exc:
            print(f"obs stitch: {exc}", file=sys.stderr)
            return 1
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(stitched, fh, indent=2)
            fh.write("\n")
        print(
            f"wrote {args.out} ({len(stitched['traceEvents'])} events "
            f"from {len(args.traces)} traces)"
        )
        return 0
    raise AssertionError(f"unknown obs command {args.obs_command!r}")


_COMMANDS = {
    "label": _cmd_label,
    "fig5": _cmd_fig5,
    "route": _cmd_route,
    "density": _cmd_density,
    "partition": _cmd_partition,
    "obs": _cmd_obs,
    "serve": _cmd_serve,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
