"""Dynamic fault schedules: which nodes crash, and when.

The paper freezes the fault set before round 0 ("faulty nodes just
cease to work", Section 2).  A :class:`FaultSchedule` lifts that
restriction: it maps protocol time — synchronous round numbers, or the
asynchronous engine's virtual clock — to the nodes that crash at that
instant.  Both fabric engines consume a schedule and let nodes die
mid-protocol: the crashed node's program is dropped, in-flight traffic
addressed to it is discarded, and each surviving neighbour observes the
change through its :class:`~repro.fabric.program.NodeContext` fault
view and is re-activated so the monotone labeling rules re-converge.

Schedules are immutable and validated at construction: crash times are
positive integers (time ``t`` strikes before the round/deliveries at
``t``), and a node crashes at most once.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.errors import FaultModelError
from repro.faults.faultset import FaultSet
from repro.types import Coord

__all__ = ["FaultSchedule"]


class FaultSchedule:
    """An immutable map from crash time to the nodes that die then.

    Construct from an iterable of ``(time, coord)`` events; events at
    the same time form one *batch* and strike together.  An empty
    schedule is falsy and reproduces static-fault behaviour exactly.
    """

    __slots__ = ("_batches",)

    def __init__(self, events: Iterable[Tuple[int, Coord]] = ()):
        by_time: Dict[int, Set[Coord]] = {}
        seen: Dict[Coord, int] = {}
        for time, coord in events:
            t = int(time)
            if t < 1:
                raise FaultModelError(
                    f"crash times must be >= 1 (time {t} for node {coord}); "
                    "faults present from the start belong in the FaultSet"
                )
            c = (int(coord[0]), int(coord[1]))
            if c in seen:
                if seen[c] != t:
                    raise FaultModelError(
                        f"node {c} is scheduled to crash twice "
                        f"(times {seen[c]} and {t})"
                    )
                continue  # exact duplicate event: merge
            seen[c] = t
            by_time.setdefault(t, set()).add(c)
        self._batches: Tuple[Tuple[int, FrozenSet[Coord]], ...] = tuple(
            (t, frozenset(by_time[t])) for t in sorted(by_time)
        )

    # -- constructors ---------------------------------------------------------

    @classmethod
    def empty(cls) -> "FaultSchedule":
        """The schedule with no crash events (static faults)."""
        return cls(())

    @classmethod
    def at(cls, time: int, coords: Iterable[Coord]) -> "FaultSchedule":
        """All of ``coords`` crash together at ``time``."""
        return cls((time, c) for c in coords)

    @classmethod
    def parse(cls, spec: str) -> "FaultSchedule":
        """Parse a CLI spec like ``"3:4,4;3:5,5;9:0,0"``.

        Entries are separated by ``;``; each is ``time:x,y``.  Empty
        entries are ignored, so trailing separators are harmless.

        Raises
        ------
        FaultModelError
            On malformed entries, non-integer fields, or the usual
            schedule validation failures.
        """
        events: List[Tuple[int, Coord]] = []
        for entry in spec.split(";"):
            entry = entry.strip()
            if not entry:
                continue
            try:
                time_part, coord_part = entry.split(":", 1)
                x_part, y_part = coord_part.split(",", 1)
                events.append((int(time_part), (int(x_part), int(y_part))))
            except ValueError as exc:
                raise FaultModelError(
                    f"bad schedule entry {entry!r}: expected 'time:x,y'"
                ) from exc
        return cls(events)

    # -- accessors ------------------------------------------------------------

    def batches(self) -> Tuple[Tuple[int, FrozenSet[Coord]], ...]:
        """``(time, coords)`` batches in increasing time order."""
        return self._batches

    @property
    def times(self) -> Tuple[int, ...]:
        """The distinct crash times, increasing."""
        return tuple(t for t, _ in self._batches)

    @property
    def crashed(self) -> FrozenSet[Coord]:
        """Every node the schedule ever crashes."""
        out: Set[Coord] = set()
        for _, batch in self._batches:
            out |= batch
        return frozenset(out)

    def __len__(self) -> int:
        return sum(len(batch) for _, batch in self._batches)

    def __bool__(self) -> bool:
        return bool(self._batches)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultSchedule):
            return NotImplemented
        return self._batches == other._batches

    def __hash__(self) -> int:
        return hash(("FaultSchedule", self._batches))

    def __repr__(self) -> str:
        return (
            f"FaultSchedule(crashes={len(self)}, "
            f"batches={len(self._batches)})"
        )

    # -- derived --------------------------------------------------------------

    def check_shape(self, shape: Tuple[int, int]) -> "FaultSchedule":
        """Validate every scheduled coordinate against a grid shape.

        Returns the schedule itself for chaining; raises
        :class:`~repro.errors.FaultModelError` on the first coordinate
        outside the grid.
        """
        w, h = shape
        for t, batch in self._batches:
            for x, y in batch:
                if not (0 <= x < w and 0 <= y < h):
                    raise FaultModelError(
                        f"scheduled crash of ({x}, {y}) at time {t} lies "
                        f"outside grid {shape}"
                    )
        return self

    def final_faults(self, initial: FaultSet) -> FaultSet:
        """The fault set once every scheduled crash has struck.

        This is the set the self-stabilization property compares
        against: the converged labels of a dynamic run equal the
        from-scratch fixpoint on ``final_faults(initial)``.
        """
        if not self._batches:
            return initial
        return initial.union(FaultSet.from_coords(initial.shape, self.crashed))
