"""Fault sets: which nodes of the machine have failed.

The paper considers node faults only ("link faults can be treated as
node faults") and assumes faulty nodes simply cease to work.  A
:class:`FaultSet` is an immutable set of failed node addresses bound to
a grid shape, with the accessors the labeling pipeline and the fault
generators need.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Tuple

import numpy as np

from repro.errors import FaultModelError
from repro.geometry.cells import CellSet
from repro.types import BoolGrid, Coord

__all__ = ["FaultSet"]


class FaultSet:
    """An immutable set of faulty node addresses on a ``(width, height)`` grid."""

    __slots__ = ("_cells",)

    def __init__(self, cells: CellSet):
        self._cells = cells

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_coords(cls, shape: Tuple[int, int], coords: Iterable[Coord]) -> "FaultSet":
        """Build from explicit addresses.

        Raises
        ------
        FaultModelError
            If any address lies outside the grid (duplicates are merged).
        """
        try:
            return cls(CellSet.from_coords(shape, coords))
        except Exception as exc:  # re-home geometry errors in the fault domain
            raise FaultModelError(str(exc)) from exc

    @classmethod
    def from_mask(cls, mask: BoolGrid) -> "FaultSet":
        """Build from a boolean grid indexed ``[x, y]``."""
        return cls(CellSet(np.asarray(mask, dtype=bool)))

    @classmethod
    def none(cls, shape: Tuple[int, int]) -> "FaultSet":
        """The fault-free machine."""
        return cls(CellSet.empty(shape))

    # -- accessors -------------------------------------------------------------

    @property
    def cells(self) -> CellSet:
        """The faults as a geometric cell set."""
        return self._cells

    @property
    def mask(self) -> BoolGrid:
        """Read-only boolean grid, True at faulty nodes."""
        return self._cells.mask

    @property
    def shape(self) -> Tuple[int, int]:
        """Grid shape ``(width, height)``."""
        return self._cells.shape

    def __len__(self) -> int:
        return len(self._cells)

    def __bool__(self) -> bool:
        return bool(self._cells)

    def __contains__(self, c: object) -> bool:
        return c in self._cells

    def __iter__(self) -> Iterator[Coord]:
        return iter(self._cells)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultSet):
            return NotImplemented
        return self._cells == other._cells

    def __hash__(self) -> int:
        return hash(("FaultSet", self._cells))

    def __repr__(self) -> str:
        return f"FaultSet(shape={self.shape}, count={len(self)})"

    # -- derived ----------------------------------------------------------------

    def union(self, other: "FaultSet") -> "FaultSet":
        """Faults of either set (grids must match)."""
        return FaultSet(self._cells.union(other._cells))

    def fraction(self) -> float:
        """Fault density ``f / (width * height)``."""
        w, h = self.shape
        return len(self) / float(w * h)
