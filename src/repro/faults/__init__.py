"""Fault modelling: fault sets and workload generators.

Node-fault injection per the paper's model (faulty nodes cease to work;
link faults reduce to node faults), plus the random, clustered,
rectangular and shaped fault patterns used across the benchmarks.
"""

from repro.faults.faultset import FaultSet
from repro.faults.generators import (
    clustered,
    combined,
    rectangle_outage,
    shaped,
    uniform_random,
)

__all__ = [
    "FaultSet",
    "clustered",
    "combined",
    "rectangle_outage",
    "shaped",
    "uniform_random",
]
