"""Fault modelling: fault sets, dynamic crash schedules, generators.

Node-fault injection per the paper's model (faulty nodes cease to work;
link faults reduce to node faults), plus the random, clustered,
rectangular and shaped fault patterns used across the benchmarks, and
:class:`~repro.faults.schedule.FaultSchedule` for crashes that strike
mid-protocol (the dynamic regime of Section 6's discussion).
"""

from repro.faults.faultset import FaultSet
from repro.faults.generators import (
    clustered,
    combined,
    rectangle_outage,
    shaped,
    staggered_crashes,
    uniform_random,
)
from repro.faults.schedule import FaultSchedule

__all__ = [
    "FaultSchedule",
    "FaultSet",
    "clustered",
    "combined",
    "rectangle_outage",
    "shaped",
    "staggered_crashes",
    "uniform_random",
]
