"""Fault-pattern generators.

The paper's simulation injects ``f`` faults "randomly selected among
nodes in the mesh" — :func:`uniform_random` reproduces that workload.
The other generators build the structured patterns the surrounding
literature studies (clustered failures, whole-rectangle outages, and
the canonical L/T/+/U/H shapes), used by the ablation benchmarks, the
partitioning experiments and the shaped-region tests.

All randomness flows through an explicit :class:`numpy.random.Generator`
so every experiment is reproducible from its recorded seed.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.errors import FaultModelError
from repro.faults.faultset import FaultSet
from repro.faults.schedule import FaultSchedule
from repro.geometry import shapes as _shapes
from repro.geometry.cells import CellSet
from repro.types import Coord

__all__ = [
    "uniform_random",
    "clustered",
    "rectangle_outage",
    "shaped",
    "combined",
    "staggered_crashes",
]

_SHAPE_BUILDERS = {
    "rect": _shapes.rectangle,
    "L": _shapes.l_shape,
    "T": _shapes.t_shape,
    "+": _shapes.plus_shape,
    "U": _shapes.u_shape,
    "H": _shapes.h_shape,
}


def uniform_random(
    shape: Tuple[int, int], count: int, rng: np.random.Generator
) -> FaultSet:
    """``count`` distinct faults drawn uniformly from the grid.

    This is the paper's Figure-5 workload (100x100 mesh, 0 <= f <= 100).

    Raises
    ------
    FaultModelError
        If ``count`` is negative or exceeds the number of nodes.
    """
    w, h = shape
    total = w * h
    if not 0 <= count <= total:
        raise FaultModelError(f"cannot place {count} faults on {total} nodes")
    flat = rng.choice(total, size=count, replace=False)
    mask = np.zeros(total, dtype=bool)
    mask[flat] = True
    return FaultSet.from_mask(mask.reshape(shape))


def clustered(
    shape: Tuple[int, int],
    count: int,
    rng: np.random.Generator,
    clusters: int = 3,
    spread: float = 1.5,
) -> FaultSet:
    """``count`` faults concentrated around ``clusters`` random centres.

    Each fault picks a centre uniformly, then offsets by a rounded
    2-D normal with standard deviation ``spread``; draws landing
    outside the grid or on an existing fault are retried.  Clustered
    faults model spatially correlated failures (power or cooling
    domains) and produce much larger faulty blocks than the uniform
    workload at equal ``f`` — the regime where the paper's node
    activation matters most.
    """
    w, h = shape
    total = w * h
    if not 0 <= count <= total:
        raise FaultModelError(f"cannot place {count} faults on {total} nodes")
    if clusters < 1:
        raise FaultModelError(f"need at least one cluster, got {clusters}")
    if spread <= 0:
        raise FaultModelError(f"spread must be positive, got {spread}")
    centres = [
        (int(rng.integers(0, w)), int(rng.integers(0, h))) for _ in range(clusters)
    ]
    mask = np.zeros(shape, dtype=bool)
    placed = 0
    # Rejection sampling with a widening spread so dense requests terminate.
    widen = 1.0
    attempts_since_progress = 0
    while placed < count:
        cx, cy = centres[int(rng.integers(0, clusters))]
        dx, dy = rng.normal(0.0, spread * widen, size=2)
        x, y = int(round(cx + dx)), int(round(cy + dy))
        if 0 <= x < w and 0 <= y < h and not mask[x, y]:
            mask[x, y] = True
            placed += 1
            attempts_since_progress = 0
        else:
            attempts_since_progress += 1
            if attempts_since_progress > 50:
                widen *= 1.5
                attempts_since_progress = 0
    return FaultSet.from_mask(mask)


def rectangle_outage(
    shape: Tuple[int, int],
    rng: np.random.Generator,
    extent: Tuple[int, int] | None = None,
) -> FaultSet:
    """A full rectangular block of faults at a random position.

    Models a whole-subarray outage (e.g. a failed board).  ``extent``
    fixes the block size; by default a size between 2x2 and a quarter of
    each dimension is drawn.
    """
    w, h = shape
    if extent is None:
        bw = int(rng.integers(2, max(3, w // 4) + 1))
        bh = int(rng.integers(2, max(3, h // 4) + 1))
    else:
        bw, bh = extent
    if bw < 1 or bh < 1 or bw > w or bh > h:
        raise FaultModelError(f"block {bw}x{bh} does not fit grid {shape}")
    ax = int(rng.integers(0, w - bw + 1))
    ay = int(rng.integers(0, h - bh + 1))
    return FaultSet(_shapes.rectangle(shape, (ax, ay), bw, bh))


def shaped(
    shape: Tuple[int, int],
    kind: str,
    anchor: Coord,
    extent: Tuple[int, int],
    thickness: int = 1,
) -> FaultSet:
    """A deterministic shaped fault region.

    ``kind`` is one of ``"rect"``, ``"L"``, ``"T"``, ``"+"``, ``"U"``,
    ``"H"``.  The L/T/+ kinds produce orthoconvex fault regions; U/H
    produce non-orthoconvex ones (paper Section 2), which is exactly
    what the partition experiments feed the pipeline.
    """
    try:
        builder = _SHAPE_BUILDERS[kind]
    except KeyError:
        raise FaultModelError(
            f"unknown shape kind {kind!r}; expected one of {sorted(_SHAPE_BUILDERS)}"
        ) from None
    w, h = extent
    if kind == "rect":
        cells = builder(shape, anchor, w, h)
    else:
        cells = builder(shape, anchor, w, h, thickness)
    return FaultSet(cells)


def combined(parts: Sequence[FaultSet]) -> FaultSet:
    """Union of several fault sets on the same grid."""
    if not parts:
        raise FaultModelError("combined() needs at least one fault set")
    out = parts[0].cells
    for p in parts[1:]:
        out = out.union(p.cells)
    return FaultSet(out)


def staggered_crashes(
    crashes: FaultSet,
    rng: np.random.Generator,
    max_time: int = 10,
    min_time: int = 1,
) -> FaultSchedule:
    """Turn a fault pattern into a dynamic crash schedule.

    Every node of ``crashes`` is assigned an independent uniform crash
    time in ``[min_time, max_time]``, so any of this module's pattern
    generators doubles as a *dynamic-fault* workload: draw the pattern,
    then stagger it over the run.  Deterministic given the generator
    state, like everything else here.
    """
    if min_time < 1 or max_time < min_time:
        raise FaultModelError(
            f"need 1 <= min_time <= max_time, got [{min_time}, {max_time}]"
        )
    coords = sorted(crashes)
    times = rng.integers(min_time, max_time + 1, size=len(coords))
    return FaultSchedule((int(t), c) for t, c in zip(times, coords))
