"""Visualisation: ASCII grids and dependency-free SVG export.

Quick pictures of fault polygons and label grids, matching the paper's
figure conventions (origin at the south-west corner).
"""

from repro.viz.ascii_art import DEFAULT_GLYPHS, render_cells, render_result
from repro.viz.svg import svg_of_cells, svg_of_result, svg_of_route

__all__ = [
    "DEFAULT_GLYPHS",
    "render_cells",
    "render_result",
    "svg_of_cells",
    "svg_of_result",
    "svg_of_route",
]
