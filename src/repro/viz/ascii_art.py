"""ASCII rendering of label grids and regions.

The quickest way to *see* the paper's constructions: faults, the
rectangular faulty blocks around them, and the orthogonal convex
polygons phase 2 carves out.  Rendering follows the paper's figures —
the origin is at the **south-west** corner, x grows east, y grows
north — so printed pictures match the coordinates in the text.

Default glyphs::

    #   faulty
    x   unsafe and disabled (kept in a disabled region)
    +   unsafe but enabled  (activated by phase 2)
    .   safe

"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.core.pipeline import LabelingResult
from repro.core.status import NodeStatus
from repro.geometry.cells import CellSet

__all__ = ["render_result", "render_cells", "DEFAULT_GLYPHS"]

DEFAULT_GLYPHS: Dict[NodeStatus, str] = {
    NodeStatus.FAULTY: "#",
    NodeStatus.UNSAFE_DISABLED: "x",
    NodeStatus.UNSAFE_ENABLED: "+",
    NodeStatus.SAFE_ENABLED: ".",
}


def render_result(
    result: LabelingResult,
    glyphs: Mapping[NodeStatus, str] | None = None,
    axes: bool = True,
) -> str:
    """Render a labeling result as an ASCII grid.

    Parameters
    ----------
    result:
        The pipeline output to draw.
    glyphs:
        Optional glyph override per :class:`~repro.core.status.NodeStatus`.
    axes:
        Include y labels on the left and an x ruler underneath
        (coordinates mod 10 to stay one character wide).
    """
    g = dict(DEFAULT_GLYPHS)
    if glyphs:
        g.update(glyphs)
    w, h = result.labels.shape
    lines = []
    for y in range(h - 1, -1, -1):  # north row first
        row = "".join(g[result.labels.status_of((x, y))] for x in range(w))
        lines.append(f"{y % 10} {row}" if axes else row)
    if axes:
        lines.append("  " + "".join(str(x % 10) for x in range(w)))
    return "\n".join(lines)


def render_cells(
    cells: CellSet,
    inside: str = "#",
    outside: str = ".",
    highlight: CellSet | None = None,
    highlight_glyph: str = "@",
    axes: bool = True,
) -> str:
    """Render one cell set (optionally with a highlighted subset).

    Used by the geometry examples to draw shapes, closures and covers.
    """
    w, h = cells.shape
    lines = []
    for y in range(h - 1, -1, -1):
        chars = []
        for x in range(w):
            if highlight is not None and (x, y) in highlight:
                chars.append(highlight_glyph)
            elif (x, y) in cells:
                chars.append(inside)
            else:
                chars.append(outside)
        row = "".join(chars)
        lines.append(f"{y % 10} {row}" if axes else row)
    if axes:
        lines.append("  " + "".join(str(x % 10) for x in range(w)))
    return "\n".join(lines)
