"""Dependency-free SVG export of fault polygons and label grids.

Writes publication-style pictures of the paper's constructions —
faults, faulty-block rectangles and disabled-region polygons — as
standalone SVG files.  No plotting library is required (none is
available offline); the SVG is assembled textually, with polygon
outlines taken from :func:`repro.geometry.boundary.boundary_loops`.

Coordinate convention matches the figures: the origin is the grid's
south-west corner, so the y axis is flipped relative to SVG's
screen-down convention.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.pipeline import LabelingResult
from repro.geometry.boundary import boundary_loops
from repro.geometry.cells import CellSet

__all__ = ["svg_of_result", "svg_of_cells", "svg_of_route"]

# A small colour-blind-safe palette.
_FILL_FAULTY = "#1f1f1f"
_FILL_DISABLED = "#e0a43c"
_FILL_ACTIVATED = "#7cc674"
_FILL_SAFE = "#f4f4f4"
_STROKE_BLOCK = "#c9190b"
_STROKE_REGION = "#06c"


def _header(w: int, h: int, scale: int) -> List[str]:
    return [
        '<?xml version="1.0" encoding="UTF-8"?>',
        f'<svg xmlns="http://www.w3.org/2000/svg" '
        f'width="{w * scale}" height="{h * scale}" '
        f'viewBox="0 0 {w * scale} {h * scale}">',
    ]


def _rect(x: int, y: int, h: int, scale: int, fill: str) -> str:
    # Flip y: cell (x, y) has its top edge at grid y+1.
    top = (h - 1 - y) * scale
    return (
        f'<rect x="{x * scale}" y="{top}" width="{scale}" height="{scale}" '
        f'fill="{fill}" stroke="#ffffff" stroke-width="0.5"/>'
    )


def _loops_path(cells: CellSet, h: int, scale: int, stroke: str, width: float) -> str:
    parts: List[str] = []
    for loop in boundary_loops(cells):
        pts = " ".join(f"{x * scale},{(h - y) * scale}" for x, y in loop)
        parts.append(
            f'<polygon points="{pts}" fill="none" '
            f'stroke="{stroke}" stroke-width="{width}"/>'
        )
    return "\n".join(parts)


def svg_of_result(
    result: LabelingResult,
    scale: int = 12,
    outline_blocks: bool = True,
    outline_regions: bool = True,
) -> str:
    """Render a labeling result as an SVG document string.

    Cells are coloured by composite status; faulty-block rectangles and
    disabled-region polygons are outlined on top.
    """
    w, h = result.labels.shape
    doc = _header(w, h, scale)
    labels = result.labels
    for x in range(w):
        for y in range(h):
            if labels.faulty[x, y]:
                fill = _FILL_FAULTY
            elif labels.disabled[x, y]:
                fill = _FILL_DISABLED
            elif labels.unsafe[x, y]:
                fill = _FILL_ACTIVATED
            else:
                fill = _FILL_SAFE
            doc.append(_rect(x, y, h, scale, fill))
    if outline_blocks:
        for b in result.blocks:
            doc.append(_loops_path(b.cells, h, scale, _STROKE_BLOCK, 1.5))
    if outline_regions:
        for r in result.regions:
            doc.append(_loops_path(r.cells, h, scale, _STROKE_REGION, 2.0))
    doc.append("</svg>")
    return "\n".join(doc)


def svg_of_route(
    result: LabelingResult,
    path: Sequence[Tuple[int, int]],
    scale: int = 12,
    stroke: str = "#7a0ecc",
) -> str:
    """Render a labeling result with one routed path drawn on top.

    ``path`` is a node sequence (e.g. ``RouteResult.path``); it is drawn
    as a polyline through cell centres with the source and destination
    marked.  Used by the routing examples to show detours hugging the
    fault polygons.
    """
    base = svg_of_result(result, scale=scale)
    if len(path) == 0:
        return base
    w, h = result.labels.shape

    def centre(c: Tuple[int, int]) -> Tuple[float, float]:
        return ((c[0] + 0.5) * scale, (h - 1 - c[1] + 0.5) * scale)

    overlay: List[str] = []
    if len(path) > 1:
        pts = " ".join(f"{x:.1f},{y:.1f}" for x, y in map(centre, path))
        overlay.append(
            f'<polyline points="{pts}" fill="none" stroke="{stroke}" '
            f'stroke-width="{scale / 4:.1f}" stroke-linejoin="round" '
            f'stroke-linecap="round" opacity="0.85"/>'
        )
    sx, sy = centre(path[0])
    dx, dy = centre(path[-1])
    r = scale / 3
    overlay.append(f'<circle cx="{sx:.1f}" cy="{sy:.1f}" r="{r:.1f}" fill="{stroke}"/>')
    overlay.append(
        f'<circle cx="{dx:.1f}" cy="{dy:.1f}" r="{r:.1f}" fill="none" '
        f'stroke="{stroke}" stroke-width="2"/>'
    )
    return base.replace("</svg>", "\n".join(overlay) + "\n</svg>")


def svg_of_cells(
    layers: Sequence[Tuple[CellSet, str]],
    shape: Tuple[int, int],
    scale: int = 12,
    outline: bool = True,
) -> str:
    """Render stacked cell-set layers, each with a fill colour.

    ``layers`` are painted in order (later layers over earlier ones);
    with ``outline`` each layer also gets its boundary traced.
    """
    w, h = shape
    doc = _header(w, h, scale)
    doc.append(
        f'<rect x="0" y="0" width="{w * scale}" height="{h * scale}" '
        f'fill="{_FILL_SAFE}"/>'
    )
    for cells, colour in layers:
        for x, y in cells:
            doc.append(_rect(x, y, h, scale, colour))
    if outline:
        for cells, colour in layers:
            if cells:
                doc.append(_loops_path(cells, h, scale, "#333333", 1.0))
    doc.append("</svg>")
    return "\n".join(doc)
