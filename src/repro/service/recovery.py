"""Crash recovery: rebuild a labeling service from its WAL directory.

On startup with ``--recover``, the service state is reconstructed in
three steps:

1. **Snapshot load** — the latest checkpoint (atomic and checksummed,
   so it is either absent or whole) seeds the engine with one bulk
   injection of its fault set, then rebases the applied-version counter
   to the snapshot's recorded version.
2. **WAL tail replay** — every intact record after the snapshot is
   re-applied in order.  Each record carries the version it was
   originally acknowledged at; replay asserts the rebuilt engine lands
   on exactly that version, record by record, so a divergent replay is
   loud, never silent.  Records at or below the snapshot version (left
   behind when a crash hits between the snapshot rename and the WAL
   rotation) are skipped.  A torn tail record — the signature of a
   crash mid-append — is discarded by the WAL reader; it was never
   acknowledged.
3. **Bit-for-bit verification** — the recovered planes are checked
   against a from-scratch relabeling of the recovered fault set
   (:meth:`IncrementalLabeling.verify_against_scratch`).  Failure
   raises :class:`~repro.errors.DurabilityError`; a service that cannot
   prove its recovered state refuses to serve it.

Replay also rebuilds the per-client idempotency state (high-water marks
plus the last acknowledged response), so a client retrying across the
crash still gets exactly-once application: a batch's high-water mark
only advances when the *whole* batch reached the log — a partially
logged batch is re-applied on retry, which is safe because fault-set
deltas are idempotent per cell (re-injecting a faulty cell and
re-repairing a healthy one are no-ops).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.incremental import BlockEnableCache, IncrementalLabeling
from repro.core.status import SafetyDefinition
from repro.errors import DurabilityError
from repro.mesh.topology import Mesh2D, Topology, Torus2D
from repro.obs.telemetry import Telemetry
from repro.service.wal import SnapshotStore, WriteAheadLog, read_clean_marker

__all__ = ["ClientState", "RecoveredState", "recover_state"]


@dataclass(frozen=True)
class ClientState:
    """One client's idempotency state: dedup high-water mark plus the
    acknowledged response payload for that sequence number.

    ``outcomes`` holds ``(delta_dict, version)`` pairs — one per delta
    of the acknowledged (possibly batched) update — and ``version`` the
    engine version after the whole update, so a retried request can be
    answered with the byte-identical response it originally got.
    """

    seq: int
    outcomes: Tuple[Tuple[Dict[str, Any], int], ...]
    version: int


@dataclass
class RecoveredState:
    """Everything :func:`recover_state` reconstructs from a WAL dir."""

    engine: IncrementalLabeling
    clients: Dict[str, ClientState] = field(default_factory=dict)
    snapshot_version: int = 0
    replayed: int = 0
    clean: bool = False
    verified: bool = False
    elapsed_s: float = 0.0


def _topology_from_state(state: Dict[str, Any]) -> Topology:
    cls = Torus2D if state.get("kind") == "torus" else Mesh2D
    return cls(int(state["width"]), int(state["height"]))


def recover_state(
    wal_dir: str,
    topology: Optional[Topology] = None,
    definition: Optional[SafetyDefinition] = None,
    cache: Optional[BlockEnableCache] = None,
    telemetry: Optional[Telemetry] = None,
    verify: bool = True,
) -> RecoveredState:
    """Rebuild engine + client dedup state from ``wal_dir``.

    ``topology``/``definition`` are required when no snapshot exists
    (the WAL alone does not name them); when a snapshot exists they are
    cross-checked against it and a mismatch raises
    :class:`~repro.errors.DurabilityError` rather than silently serving
    labels for the wrong fabric.
    """
    t0 = time.perf_counter()
    clean = read_clean_marker(wal_dir)
    snapshot = SnapshotStore(wal_dir).load()

    base_version = 0
    clients: Dict[str, ClientState] = {}
    if snapshot is not None:
        snap_topo = _topology_from_state(snapshot)
        snap_def = SafetyDefinition(snapshot["definition"])
        if topology is not None and (
            topology.shape != snap_topo.shape or topology.wraps != snap_topo.wraps
        ):
            raise DurabilityError(
                f"snapshot is a {snapshot['width']}x{snapshot['height']} "
                f"{snapshot.get('kind', 'mesh')}, not the requested "
                f"{topology.shape[0]}x{topology.shape[1]} "
                f"{'torus' if topology.wraps else 'mesh'}"
            )
        if definition is not None and definition is not snap_def:
            raise DurabilityError(
                f"snapshot used definition {snap_def.value!r}, "
                f"not {definition.value!r}"
            )
        topology, definition = snap_topo, snap_def
        base_version = int(snapshot["version"])
    if topology is None:
        raise DurabilityError(
            f"no snapshot in {wal_dir!r}: recovery needs an explicit "
            "topology to replay the WAL against"
        )
    if definition is None:
        definition = SafetyDefinition.DEF_2B

    engine = IncrementalLabeling(
        topology, definition, cache=cache, telemetry=telemetry
    )
    if snapshot is not None:
        faults = [(int(x), int(y)) for x, y in snapshot["faults"]]
        if faults:
            engine.apply(inject=faults)
        engine.set_version(base_version)
        for cid, entry in snapshot.get("clients", {}).items():
            clients[cid] = ClientState(
                seq=int(entry["seq"]),
                outcomes=tuple(
                    (dict(d), int(v)) for d, v in entry["outcomes"]
                ),
                version=int(entry["version"]),
            )

    # Replay the tail.  Batches commit their client's high-water mark
    # only once the final record of the batch is seen; a partial batch
    # stays pending (its deltas are applied — they were durably logged —
    # but the retry will re-run the whole batch, no-op'ing the prefix).
    pending: Dict[str, Tuple[int, List[Tuple[Dict[str, Any], int]]]] = {}
    replayed = 0
    for record in WriteAheadLog.replay(wal_dir):
        effective = bool(record.inject or record.repair)
        if effective and record.version <= base_version:
            continue  # pre-snapshot leftovers (crash before rotation)
        report = engine.apply(inject=record.inject, repair=record.repair)
        replayed += 1
        if effective and engine.version != record.version:
            raise DurabilityError(
                f"WAL replay diverged: record expected version "
                f"{record.version}, engine reached {engine.version}"
            )
        if record.client is not None and record.seq is not None:
            got = pending.get(record.client)
            if got is None or got[0] != record.seq:
                got = (record.seq, [])
                pending[record.client] = got
            got[1].append((report.to_dict(), engine.version))
            if record.batch_index == record.batch_size - 1:
                clients[record.client] = ClientState(
                    seq=record.seq,
                    outcomes=tuple(got[1]),
                    version=engine.version,
                )
                del pending[record.client]

    verified = False
    if verify:
        if not engine.verify_against_scratch():
            raise DurabilityError(
                f"recovered state in {wal_dir!r} diverges from the "
                "from-scratch fixpoint of its own fault set"
            )
        verified = True

    elapsed = time.perf_counter() - t0
    if telemetry is not None and telemetry.wants("info"):
        telemetry.emit(
            "recovery_replay",
            snapshot_version=base_version,
            replayed=replayed,
            version=engine.version,
            clean=clean,
            latency_us=1e6 * elapsed,
        )
    return RecoveredState(
        engine=engine,
        clients=clients,
        snapshot_version=base_version,
        replayed=replayed,
        clean=clean,
        verified=verified,
        elapsed_s=elapsed,
    )
