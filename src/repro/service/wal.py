"""Write-ahead durability for the labeling service.

The serving layer absorbs fault deltas at hundreds of thousands per
second; a process crash must not lose any delta that was acknowledged to
a client.  This module provides the two on-disk artefacts that make the
service crash-safe, both living in one *WAL directory*:

``wal.log``
    An append-only log of applied deltas.  Each record is length-prefixed
    and checksummed: a fixed 8-byte header (``<II``: payload length,
    CRC32 of the payload) followed by the canonical JSON payload.  A
    crash mid-append leaves a torn record that fails the length or
    checksum test; replay stops cleanly at the first torn record, which
    is exactly the at-most-one-unacknowledged-delta tail the recovery
    proof needs.

``snapshot.json``
    A periodic checkpoint of the full service state (fault set, engine
    version, per-client dedup high-water marks), checksummed and written
    atomically (temp file + fsync + rename), so a crash mid-snapshot
    can only ever leave the previous snapshot in place.  After a
    successful snapshot the WAL is rotated; records at or below the
    snapshot version are skipped on replay, so a crash between the
    snapshot rename and the rotation is also safe.

``CLEAN``
    A marker written by graceful shutdown after the final fsync.  Its
    absence on startup tells recovery the previous process died hard
    (reported, not required — replay is the same either way).

Durability policy: every append is one ``write(2)`` of the whole record
(the file is opened unbuffered), so an acknowledged delta survives a
*process* crash as soon as the ack is sent.  ``fsync_every=N`` adds an
``fsync(2)`` every N appends for machine-crash durability;
``fsync_every=None`` (the default) fsyncs only at snapshots, rotation
and close, which is what keeps the durable path within a small factor of
the in-memory update rate (see the ``incremental.wal`` benchmark leg).

Chaos hooks: both writers accept a ``crash_hook`` callable invoked at
named points (``append.pre``, ``append.mid``, ``append.post``,
``snapshot.mid``, ``snapshot.pre_rename``).  The chaos suite raises
:class:`~repro.service.chaos.SimulatedCrash` from these hooks to model a
kill at exactly that byte boundary — ``append.mid`` tears a record in
half on disk, ``snapshot.mid`` abandons a half-written temp file.  With
no hook attached every record is written in a single call.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.core.incremental import canonical_delta
from repro.errors import DurabilityError
from repro.types import Coord

__all__ = [
    "CLEAN_MARKER",
    "SNAPSHOT_FILE",
    "WAL_FILE",
    "DeltaRecord",
    "SnapshotStore",
    "WriteAheadLog",
    "clear_clean_marker",
    "list_state",
    "read_clean_marker",
    "write_clean_marker",
]

#: On-disk names inside a WAL directory.
WAL_FILE = "wal.log"
SNAPSHOT_FILE = "snapshot.json"
CLEAN_MARKER = "CLEAN"

_HEADER = struct.Struct("<II")  # payload length, CRC32(payload)

#: Reject absurd record lengths during replay so a corrupt header cannot
#: make the reader attempt a multi-gigabyte allocation.
_MAX_RECORD = 16 * 1024 * 1024


@dataclass(frozen=True)
class DeltaRecord:
    """One logged delta: the unit of WAL replay.

    ``version`` is the engine version *after* the delta applied — replay
    asserts each replayed delta lands on exactly this version.
    ``client``/``seq`` carry the idempotency key of the request that
    produced the delta (``None`` for anonymous updates); ``batch_index``
    / ``batch_size`` locate the delta inside a pipelined batch request so
    recovery only advances a client's dedup high-water mark when the
    whole batch made it to disk.
    """

    version: int
    inject: Tuple[Coord, ...]
    repair: Tuple[Coord, ...]
    client: Optional[str] = None
    seq: Optional[int] = None
    batch_index: int = 0
    batch_size: int = 1

    def to_payload(self) -> bytes:
        # Hand-rolled JSON: byte-identical to compact ``json.dumps`` of
        # the same dict, but ~4x cheaper — this runs once per acked
        # delta, squarely on the durable hot path.  Only the client id
        # needs real escaping.
        inj, rep = self.inject, self.repair
        if len(inj) > 1 or len(rep) > 1:
            inj, rep = canonical_delta(inj, rep)
        parts = [
            '{"v":%d,"inject":[%s],"repair":[%s]'
            % (
                self.version,
                ",".join("[%d,%d]" % c for c in inj),
                ",".join("[%d,%d]" % c for c in rep),
            )
        ]
        if self.client is not None:
            parts.append(
                ',"client":%s,"seq":%d' % (json.dumps(self.client), self.seq)
            )
            if self.batch_size != 1:
                parts.append(
                    ',"batch":[%d,%d]' % (self.batch_index, self.batch_size)
                )
        parts.append("}")
        return "".join(parts).encode("utf-8")

    @classmethod
    def from_payload(cls, payload: bytes) -> "DeltaRecord":
        try:
            body = json.loads(payload)
        except (ValueError, UnicodeDecodeError) as exc:
            raise DurabilityError(f"WAL record is not JSON: {exc}") from exc
        if not isinstance(body, dict) or "v" not in body:
            raise DurabilityError(f"malformed WAL record: {body!r}")
        batch = body.get("batch", [0, 1])
        return cls(
            version=int(body["v"]),
            inject=tuple((int(x), int(y)) for x, y in body.get("inject", [])),
            repair=tuple((int(x), int(y)) for x, y in body.get("repair", [])),
            client=body.get("client"),
            seq=None if body.get("seq") is None else int(body["seq"]),
            batch_index=int(batch[0]),
            batch_size=int(batch[1]),
        )


class WriteAheadLog:
    """The append-only, checksummed delta log of one WAL directory."""

    def __init__(
        self,
        wal_dir: str,
        fsync_every: Optional[int] = None,
        crash_hook: Optional[Callable[[str], None]] = None,
    ):
        if fsync_every is not None and fsync_every < 1:
            raise ValueError(f"fsync_every must be positive, got {fsync_every}")
        os.makedirs(wal_dir, exist_ok=True)
        self.wal_dir = wal_dir
        self.path = os.path.join(wal_dir, WAL_FILE)
        self._fsync_every = fsync_every
        self._since_fsync = 0
        self._crash_hook = crash_hook
        self.appended = 0
        self.bytes_written = 0
        # buffering=0 gives a raw FileIO: one write(2) per append, so an
        # acked record is in the OS page cache even if the process dies.
        self._fh = open(self.path, "ab", buffering=0)

    # -- writing ---------------------------------------------------------------

    def append(self, record: DeltaRecord) -> int:
        """Durably append one record; returns the bytes written.

        The caller acks the client only after this returns.
        """
        payload = record.to_payload()
        blob = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        hook = self._crash_hook
        if hook is None:
            self._fh.write(blob)
        else:
            # Split the write so a chaos hook can tear the record on
            # disk exactly as a mid-append kill would.
            hook("append.pre")
            half = len(blob) // 2
            self._fh.write(blob[:half])
            hook("append.mid")
            self._fh.write(blob[half:])
            hook("append.post")
        self.appended += 1
        self.bytes_written += len(blob)
        if self._fsync_every is not None:
            self._since_fsync += 1
            if self._since_fsync >= self._fsync_every:
                self.fsync()
        return len(blob)

    def fsync(self) -> None:
        """Flush the log to stable storage."""
        os.fsync(self._fh.fileno())
        self._since_fsync = 0

    def rotate(self) -> None:
        """Truncate the log (called after a successful snapshot).

        A crash between the snapshot rename and this truncation leaves
        records at or below the snapshot version in the log; replay
        skips them by version, so rotation needs no atomicity of its
        own.
        """
        self.fsync()
        self._fh.close()
        self._fh = open(self.path, "wb", buffering=0)
        self._since_fsync = 0

    def close(self) -> None:
        if not self._fh.closed:
            try:
                os.fsync(self._fh.fileno())
            except OSError:  # pragma: no cover - closed-under-us race
                pass
            self._fh.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- replay ----------------------------------------------------------------

    @staticmethod
    def replay(wal_dir: str) -> Iterator[DeltaRecord]:
        """Yield every intact record in ``wal_dir``'s log, in order.

        Stops silently at the first torn record (short header, short
        payload, or checksum mismatch): a torn *tail* is the expected
        signature of a crash mid-append.  A corrupt record *followed by
        more intact data* is not a torn tail but real corruption, and
        raises :class:`~repro.errors.DurabilityError` instead of
        silently dropping acknowledged deltas.
        """
        path = os.path.join(wal_dir, WAL_FILE)
        if not os.path.exists(path):
            return
        with open(path, "rb") as fh:
            data = fh.read()
        offset = 0
        total = len(data)
        while offset < total:
            if offset + _HEADER.size > total:
                break  # torn header at the tail
            length, crc = _HEADER.unpack_from(data, offset)
            if length > _MAX_RECORD:
                raise DurabilityError(
                    f"{path}: record at byte {offset} claims {length} bytes"
                )
            start = offset + _HEADER.size
            end = start + length
            if end > total:
                break  # torn payload at the tail
            payload = data[start:end]
            if zlib.crc32(payload) != crc:
                if end < total:
                    raise DurabilityError(
                        f"{path}: checksum mismatch at byte {offset} with "
                        f"{total - end} intact bytes following it"
                    )
                break  # torn final record
            yield DeltaRecord.from_payload(payload)
            offset = end


class SnapshotStore:
    """Atomic, checksummed snapshot checkpoints of the service state."""

    def __init__(
        self,
        wal_dir: str,
        crash_hook: Optional[Callable[[str], None]] = None,
    ):
        os.makedirs(wal_dir, exist_ok=True)
        self.wal_dir = wal_dir
        self.path = os.path.join(wal_dir, SNAPSHOT_FILE)
        self._crash_hook = crash_hook

    def write(self, state: Dict[str, Any]) -> int:
        """Checkpoint ``state`` atomically; returns the bytes written.

        The payload is ``{"crc": ..., "state": ...}`` where the CRC
        covers the canonical (sorted-keys) serialization of ``state``.
        Write goes to a temp file, is fsynced, then renamed over the
        previous snapshot — a crash at any point leaves either the old
        or the new snapshot, never a torn one.
        """
        body = json.dumps(state, sort_keys=True, separators=(",", ":"))
        blob = json.dumps(
            {"crc": zlib.crc32(body.encode("utf-8")), "state": state},
            sort_keys=True,
        ).encode("utf-8")
        tmp = self.path + ".tmp"
        hook = self._crash_hook
        with open(tmp, "wb") as fh:
            if hook is None:
                fh.write(blob)
            else:
                hook("snapshot.pre")
                half = len(blob) // 2
                fh.write(blob[:half])
                fh.flush()
                hook("snapshot.mid")
                fh.write(blob[half:])
            fh.flush()
            os.fsync(fh.fileno())
        if hook is not None:
            hook("snapshot.pre_rename")
        os.replace(tmp, self.path)
        return len(blob)

    def load(self) -> Optional[Dict[str, Any]]:
        """The latest valid snapshot state, or ``None`` when absent.

        Raises :class:`~repro.errors.DurabilityError` when a snapshot
        exists but is unreadable or fails its checksum — that is real
        corruption, not a crash signature (writes are atomic).
        """
        if not os.path.exists(self.path):
            return None
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                wrapper = json.load(fh)
        except (OSError, ValueError) as exc:
            raise DurabilityError(f"unreadable snapshot {self.path}: {exc}") from exc
        if not isinstance(wrapper, dict) or "state" not in wrapper:
            raise DurabilityError(f"malformed snapshot {self.path}")
        state = wrapper["state"]
        body = json.dumps(state, sort_keys=True, separators=(",", ":"))
        if zlib.crc32(body.encode("utf-8")) != wrapper.get("crc"):
            raise DurabilityError(f"snapshot checksum mismatch in {self.path}")
        return state


# -- clean-shutdown marker ------------------------------------------------------


def write_clean_marker(wal_dir: str) -> None:
    """Record that the service drained and fsynced before exiting."""
    path = os.path.join(wal_dir, CLEAN_MARKER)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("clean\n")
        fh.flush()
        os.fsync(fh.fileno())


def read_clean_marker(wal_dir: str) -> bool:
    return os.path.exists(os.path.join(wal_dir, CLEAN_MARKER))


def clear_clean_marker(wal_dir: str) -> None:
    """Remove the marker when a process takes ownership of the WAL dir."""
    path = os.path.join(wal_dir, CLEAN_MARKER)
    if os.path.exists(path):
        os.unlink(path)


def list_state(wal_dir: str) -> List[str]:
    """The durability artefacts present in ``wal_dir`` (for CLI guards)."""
    if not os.path.isdir(wal_dir):
        return []
    known = {WAL_FILE, SNAPSHOT_FILE, CLEAN_MARKER}
    present = [n for n in sorted(os.listdir(wal_dir)) if n in known]
    # An empty WAL with no snapshot is a fresh directory.
    wal_path = os.path.join(wal_dir, WAL_FILE)
    if present == [WAL_FILE] and os.path.getsize(wal_path) == 0:
        return []
    return present
