"""The incremental relabeling service.

The paper's protocol is distributed and online by design: labels are
"easily established and maintained through message exchanges among
neighboring nodes".  This package is the centralized counterpart of
that maintenance story — a long-lived process holding converged labels
and answering fault deltas without recomputing the world:

* :class:`LabelingService` — the in-process API: instrumented
  ``update``/``query``/``snapshot``/``stats`` over one
  :class:`~repro.core.incremental.IncrementalLabeling` engine.
* :class:`LabelingServer` / :func:`handle_request` — the NDJSON socket
  front end behind ``repro serve`` (TCP or Unix-domain).
* :class:`ServiceClient` — the reference client: retrying, reconnecting,
  idempotent (client id + sequence number on every update).
* :class:`WriteAheadLog` / :class:`SnapshotStore` — the durability
  artefacts of a WAL directory (``repro serve --wal-dir``).
* :func:`recover_state` / :meth:`LabelingService.recover` — crash
  recovery: snapshot + WAL-tail replay, verified bit-for-bit against
  from-scratch labeling.
* :class:`ChaosProxy` / :class:`CrashPlan` — seeded fault injection for
  the wire and the WAL byte stream (the chaos property suite).

Every answer is bit-for-bit the from-scratch fixpoint of the
accumulated fault set; the property tests in
``tests/properties/test_incremental_props.py`` pin that invariant, and
``tests/properties/test_durability_props.py`` extends it across crashes
and retries.
"""

from repro.service.chaos import ChaosProxy, CrashPlan, SimulatedCrash
from repro.service.client import ServiceClient
from repro.service.labeling import BatchOutcome, LabelingService
from repro.service.recovery import ClientState, RecoveredState, recover_state
from repro.service.server import LabelingServer, handle_request
from repro.service.wal import (
    DeltaRecord,
    SnapshotStore,
    WriteAheadLog,
    list_state,
)

__all__ = [
    "BatchOutcome",
    "ChaosProxy",
    "ClientState",
    "CrashPlan",
    "DeltaRecord",
    "LabelingServer",
    "LabelingService",
    "RecoveredState",
    "ServiceClient",
    "SimulatedCrash",
    "SnapshotStore",
    "WriteAheadLog",
    "handle_request",
    "list_state",
    "recover_state",
]
