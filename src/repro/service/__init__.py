"""The incremental relabeling service.

The paper's protocol is distributed and online by design: labels are
"easily established and maintained through message exchanges among
neighboring nodes".  This package is the centralized counterpart of
that maintenance story — a long-lived process holding converged labels
and answering fault deltas without recomputing the world:

* :class:`LabelingService` — the in-process API: instrumented
  ``update``/``query``/``snapshot``/``stats`` over one
  :class:`~repro.core.incremental.IncrementalLabeling` engine.
* :class:`LabelingServer` / :func:`handle_request` — the NDJSON socket
  front end behind ``repro serve`` (TCP or Unix-domain).
* :class:`ServiceClient` — the reference client.

Every answer is bit-for-bit the from-scratch fixpoint of the
accumulated fault set; the property tests in
``tests/properties/test_incremental_props.py`` pin that invariant.
"""

from repro.service.client import ServiceClient
from repro.service.labeling import LabelingService
from repro.service.server import LabelingServer, handle_request

__all__ = [
    "LabelingServer",
    "LabelingService",
    "ServiceClient",
    "handle_request",
]
