"""Chaos tooling for the serving layer: seeded faults between and inside
the client, the wire, and the write-ahead log.

Two instruments, one purpose — proving the durability layer's claims
under adversarial conditions:

* :class:`CrashPlan` simulates a process kill at an exact byte boundary
  inside the WAL or a snapshot write.  It plugs into the ``crash_hook``
  seam of :class:`~repro.service.wal.WriteAheadLog` /
  :class:`~repro.service.wal.SnapshotStore` and raises
  :class:`SimulatedCrash` at the n-th occurrence of a named point
  (``append.mid`` tears a record in half on disk, ``snapshot.mid``
  abandons a half-written temp file).  The durability property suite
  enumerates these points under hypothesis and asserts recovery is
  bit-for-bit sound at every one of them.

* :class:`ChaosProxy` is a seeded TCP relay that sits between a
  :class:`~repro.service.client.ServiceClient` and a
  :class:`~repro.service.server.LabelingServer`, mangling NDJSON frames
  in flight: dropping a request (and severing the connection, as a
  failed link would), truncating a frame mid-byte, splitting it across
  TCP segments, delaying it, or duplicating it.  Duplication is only
  applied to frames carrying an idempotency ``"seq"`` — exactly the
  frames the dedup machinery must protect — and the client's
  sequence-echo filtering plus retry loop must converge to exactly-once
  application regardless.

Both are deterministic given their seed, so every chaos failure is
replayable.
"""

from __future__ import annotations

import json
import socket
import threading
from collections import Counter
from typing import Any, Dict, Optional, Tuple

import numpy as np

__all__ = ["ChaosProxy", "CrashPlan", "SimulatedCrash"]


class SimulatedCrash(RuntimeError):
    """Raised by a :class:`CrashPlan` to model the process dying.

    Deliberately *not* a :class:`~repro.errors.ReproError`: production
    error handling must never catch and absorb a crash the chaos suite
    injected, exactly as it could not absorb a real ``SIGKILL``.
    """


class CrashPlan:
    """Kill the process at the n-th occurrence of a named crash point.

    Pass as ``crash_hook`` to the WAL/snapshot writers::

        plan = CrashPlan("append.mid", occurrence=3)
        wal = WriteAheadLog(d, crash_hook=plan)

    The third record append will then tear mid-record.  ``point=None``
    never fires (a convenient no-chaos control).  After firing once the
    plan is spent — recovery code reusing the same directory must not
    crash again.
    """

    def __init__(self, point: Optional[str], occurrence: int = 1):
        if occurrence < 1:
            raise ValueError(f"occurrence must be positive, got {occurrence}")
        self.point = point
        self.occurrence = occurrence
        self.fired = False
        self.seen: Counter = Counter()

    def __call__(self, point: str) -> None:
        self.seen[point] += 1
        if (
            not self.fired
            and point == self.point
            and self.seen[point] >= self.occurrence
        ):
            self.fired = True
            raise SimulatedCrash(f"simulated kill at {point} #{self.seen[point]}")


class ChaosProxy:
    """A seeded fault-injecting TCP relay for the NDJSON protocol.

    Parameters
    ----------
    backend:
        ``(host, port)`` of the real :class:`LabelingServer`.
    seed:
        Seed for the fault RNG; identical seeds replay identical chaos.
    drop_prob:
        Probability a client frame is dropped *and the connection
        severed* (the client sees a dead link and must reconnect/retry).
    truncate_prob:
        Probability a frame is forwarded truncated, then the connection
        severed (models a link dying mid-frame; the server's framing
        must reject the partial line, not apply it).
    split_prob:
        Probability a frame is forwarded in two TCP segments (must be
        invisible: stream framing has to reassemble).
    dup_prob:
        Probability a frame carrying ``"seq"`` is forwarded twice (the
        server must dedup; the client must skip the stale extra
        response).
    delay_prob / max_delay_s:
        Probability and bound of a per-frame forwarding delay.
    """

    def __init__(
        self,
        backend: Tuple[str, int],
        seed: int = 0,
        drop_prob: float = 0.0,
        truncate_prob: float = 0.0,
        split_prob: float = 0.0,
        dup_prob: float = 0.0,
        delay_prob: float = 0.0,
        max_delay_s: float = 0.01,
        host: str = "127.0.0.1",
    ):
        self.backend = backend
        self._rng = np.random.default_rng(seed)
        self._rng_lock = threading.Lock()
        self.drop_prob = drop_prob
        self.truncate_prob = truncate_prob
        self.split_prob = split_prob
        self.dup_prob = dup_prob
        self.delay_prob = delay_prob
        self.max_delay_s = max_delay_s
        self.stats: Dict[str, int] = {
            "frames": 0, "dropped": 0, "truncated": 0,
            "split": 0, "duplicated": 0, "delayed": 0,
        }
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, 0))
        self._listener.listen(16)
        self.address: Tuple[str, int] = self._listener.getsockname()
        self._closing = False
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -------------------------------------------------------------

    def serve_in_thread(self) -> threading.Thread:
        thread = threading.Thread(target=self._accept_loop, daemon=True)
        thread.start()
        self._thread = thread
        return thread

    def close(self) -> None:
        self._closing = True
        try:
            self._listener.close()
        except OSError:  # pragma: no cover
            pass
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self) -> "ChaosProxy":
        self.serve_in_thread()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- relay -----------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                client_sock, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            threading.Thread(
                target=self._relay_connection, args=(client_sock,), daemon=True
            ).start()

    def _relay_connection(self, client_sock: socket.socket) -> None:
        try:
            upstream = socket.create_connection(self.backend, timeout=10)
        except OSError:
            client_sock.close()
            return
        # Responses flow back unmangled: the protocol's failure model is
        # a lossy *request* path plus connection death; response-side
        # duplication is produced by duplicating requests.
        pump = threading.Thread(
            target=self._pump_plain, args=(upstream, client_sock), daemon=True
        )
        pump.start()
        try:
            rfile = client_sock.makefile("rb")
            for line in rfile:
                if not self._forward_frame(upstream, line):
                    break
        except OSError:
            pass
        finally:
            _close_pair(client_sock, upstream)

    def _pump_plain(self, src: socket.socket, dst: socket.socket) -> None:
        try:
            while True:
                chunk = src.recv(65536)
                if not chunk:
                    break
                dst.sendall(chunk)
        except OSError:
            pass
        finally:
            _close_pair(src, dst)

    def _forward_frame(self, upstream: socket.socket, frame: bytes) -> bool:
        """Apply seeded chaos to one client frame; False severs the link."""
        with self._rng_lock:
            rolls = self._rng.random(5)
            delay = float(self._rng.random() * self.max_delay_s)
        self.stats["frames"] += 1
        if rolls[0] < self.drop_prob:
            self.stats["dropped"] += 1
            return False
        if rolls[1] < self.truncate_prob and len(frame) > 2:
            self.stats["truncated"] += 1
            upstream.sendall(frame[: len(frame) // 2])
            return False
        if rolls[2] < self.delay_prob:
            self.stats["delayed"] += 1
            threading.Event().wait(delay)
        if rolls[3] < self.split_prob and len(frame) > 2:
            self.stats["split"] += 1
            half = len(frame) // 2
            upstream.sendall(frame[:half])
            threading.Event().wait(0.001)
            upstream.sendall(frame[half:])
        else:
            upstream.sendall(frame)
        if rolls[4] < self.dup_prob and _carries_seq(frame):
            self.stats["duplicated"] += 1
            upstream.sendall(frame)
        return True


def _carries_seq(frame: bytes) -> bool:
    """Whether a frame is an idempotent, sequence-numbered request."""
    if b'"seq"' not in frame:
        return False
    try:
        return "seq" in json.loads(frame)
    except ValueError:
        return False


def _close_pair(a: socket.socket, b: socket.socket) -> None:
    for sock in (a, b):
        try:
            sock.close()
        except OSError:  # pragma: no cover
            pass
