"""A small NDJSON client for the labeling server.

:class:`ServiceClient` speaks the one-line-JSON-per-request protocol of
:mod:`repro.service.server` over a TCP or Unix-domain socket.  The
convenience methods (:meth:`update`, :meth:`query_nodes`, ...) raise
:class:`~repro.errors.ServiceError` on an error response; the raw
:meth:`request` returns whatever the server said.

Delivery semantics: the client retries transport failures (connection
reset, broken pipe, timeouts, an overloaded server shedding load) with
exponential backoff and a fresh connection, giving *at-least-once*
delivery.  Every update carries an idempotency key — a stable client id
plus a sequence number assigned once per logical update and reused
verbatim across retries — which the server dedups into *exactly-once
application*: a retried update that already applied is answered from the
server's stored outcome, never re-applied.  Responses echo the request's
``seq``; the client discards responses whose ``seq`` does not match the
outstanding request, so a duplicated frame on the wire cannot desync the
request/response pairing.

Used by the service tests and as the reference implementation for
non-Python clients (the protocol is trivial to speak from anything that
can write a JSON line to a socket)::

    with ServiceClient.connect_tcp(host, port) as client:
        client.update(inject=[(3, 4)])
        client.query_nodes([(3, 4), (0, 0)])
"""

from __future__ import annotations

import json
import socket
import time
import uuid
from contextlib import nullcontext
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import ServiceError, ServiceOverloadedError
from repro.obs.telemetry import Telemetry
from repro.types import Coord

__all__ = ["ServiceClient"]

#: Transport-level failures worth retrying with a fresh connection.
_TRANSPORT_ERRORS = (
    ConnectionResetError,
    BrokenPipeError,
    ConnectionRefusedError,
    socket.timeout,
    OSError,
)


class ServiceClient:
    """One connection to a running labeling server.

    Parameters
    ----------
    sock:
        An already-connected stream socket.
    reconnect:
        Optional zero-argument callable returning a fresh connected
        socket; enables retry-with-reconnect.  The ``connect_tcp`` /
        ``connect_unix`` constructors wire this up automatically.
    client_id:
        Stable idempotency identity attached (with a per-update sequence
        number) to every update.  Defaults to a random id per client
        object.
    retries:
        How many times a failed request is retried (0 disables).
    backoff:
        Initial retry backoff in seconds; doubles per attempt.
    telemetry:
        Optional telemetry; each retry emits a ``request_retry`` event,
        and with a span recorder attached every attempt records a
        ``client_request`` span carrying the trace context it put on
        the wire (stitchable against the server's trace).
    """

    def __init__(
        self,
        sock: socket.socket,
        reconnect: Optional[Callable[[], socket.socket]] = None,
        client_id: Optional[str] = None,
        retries: int = 3,
        backoff: float = 0.05,
        telemetry: Optional[Telemetry] = None,
    ):
        if retries < 0:
            raise ValueError(f"retries must be non-negative, got {retries}")
        self._sock = sock
        self._rfile = sock.makefile("rb")
        self._reconnect = reconnect
        self.client_id = client_id if client_id is not None else uuid.uuid4().hex[:12]
        self._seq = 0
        self._retries = retries
        self._backoff = backoff
        self._telemetry = telemetry
        self._last_op: Optional[str] = None

    @classmethod
    def connect_tcp(
        cls,
        host: str,
        port: int,
        timeout: Optional[float] = 10.0,
        **kwargs: Any,
    ) -> "ServiceClient":
        def dial() -> socket.socket:
            return socket.create_connection((host, port), timeout=timeout)

        return cls(dial(), reconnect=dial, **kwargs)

    @classmethod
    def connect_unix(
        cls, path: str, timeout: Optional[float] = 10.0, **kwargs: Any
    ) -> "ServiceClient":
        if not hasattr(socket, "AF_UNIX"):  # pragma: no cover - non-POSIX
            raise ServiceError("unix sockets are not supported on this platform")

        def dial() -> socket.socket:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout)
            sock.connect(path)
            return sock

        return cls(dial(), reconnect=dial, **kwargs)

    # -- protocol ---------------------------------------------------------------

    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request object, return the decoded response object.

        One attempt, no retries; transport failures surface as
        :class:`~repro.errors.ServiceError` naming the op in flight.
        """
        op = payload.get("op") if isinstance(payload, dict) else None
        self._last_op = op if isinstance(op, str) else None
        try:
            self._sock.sendall(json.dumps(payload).encode("utf-8") + b"\n")
            return self._read_response(payload)
        except _TRANSPORT_ERRORS as exc:
            raise ServiceError(
                f"connection failed during {op!r}: "
                f"{type(exc).__name__}: {exc}"
            ) from exc

    def _read_response(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Read the response matching ``payload``, skipping stale ones.

        A chaos-duplicated request frame produces an extra response; the
        server echoes ``seq`` on every response to a seq-carrying
        request, so mismatched responses are provably stale and safe to
        discard.
        """
        want = payload.get("seq") if isinstance(payload, dict) else None
        while True:
            line = self._rfile.readline()
            if not line:
                raise ServiceError(
                    f"server closed the connection during {self._last_op!r}"
                )
            try:
                response = json.loads(line)
            except ValueError as exc:
                raise ServiceError(
                    f"malformed response during {self._last_op!r}: {exc}"
                ) from exc
            got = response.get("seq") if isinstance(response, dict) else None
            if want is None:
                if got is not None:
                    continue  # stale response to an old duplicated update
                return response
            if got == want:
                return response
            # got is None or an older seq: stale, keep reading.

    def _renew_connection(self) -> None:
        if self._reconnect is None:
            raise ServiceError(
                f"connection lost during {self._last_op!r} and no "
                "reconnect path is configured"
            )
        try:
            self.close()
        except OSError:  # pragma: no cover - best-effort close
            pass
        self._sock = self._reconnect()
        self._rfile = self._sock.makefile("rb")

    def _retrying(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """At-least-once delivery: retry transport failures and shed
        (overloaded) responses with exponential backoff + reconnect.

        Each logical request gets one trace id, attached to the frame
        and reused verbatim across retries; each *attempt* gets a fresh
        span id and its attempt number, so an exactly-once replay is
        visible in a stitched trace as two client spans sharing a trace
        id with distinct attempts.
        """
        op = payload.get("op")
        op_label = op if isinstance(op, str) else "?"
        trace_id = uuid.uuid4().hex[:16]
        delay = self._backoff
        attempt = 0
        while True:
            reason: Optional[str] = None
            span_id = uuid.uuid4().hex[:16]
            payload["trace"] = {
                "id": trace_id,
                "span": span_id,
                "attempt": attempt,
            }
            tel = self._telemetry
            attempt_span = (
                tel.span(
                    "client_request",
                    op=op_label,
                    trace=trace_id,
                    span=span_id,
                    attempt=attempt,
                )
                if tel is not None
                else nullcontext()
            )
            try:
                with attempt_span:
                    response = self.request(payload)
            except ServiceError as exc:
                reason = str(exc)
                if attempt >= self._retries:
                    raise
            else:
                if (
                    response.get("error_type") == "ServiceOverloadedError"
                    and attempt < self._retries
                ):
                    reason = "overloaded"
                else:
                    return response
            attempt += 1
            tel = self._telemetry
            if tel is not None and tel.wants("info"):
                tel.emit(
                    "request_retry",
                    op=op if isinstance(op, str) else "?",
                    attempt=attempt,
                    reason=reason or "?",
                )
            time.sleep(delay)
            delay *= 2
            if reason != "overloaded":
                try:
                    self._renew_connection()
                except _TRANSPORT_ERRORS as exc:
                    if attempt > self._retries:
                        raise ServiceError(
                            f"reconnect failed during {op!r}: "
                            f"{type(exc).__name__}: {exc}"
                        ) from exc
                    # Dead server may come back; burn an attempt waiting.
                    attempt += 1
                    time.sleep(delay)
                    delay *= 2
                    continue

    def _checked(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        response = self._retrying(payload)
        if not response.get("ok"):
            error_type = response.get("error_type")
            cls = (
                ServiceOverloadedError
                if error_type == "ServiceOverloadedError"
                else ServiceError
            )
            raise cls(
                f"{payload.get('op')}: {response.get('error', 'unknown error')}"
            )
        return response

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    # -- convenience ops --------------------------------------------------------

    def ping(self) -> int:
        """Liveness probe; returns the engine version."""
        return int(self._checked({"op": "ping"})["version"])

    def update(
        self,
        inject: Iterable[Coord] = (),
        repair: Iterable[Coord] = (),
    ) -> Dict[str, Any]:
        """Absorb a fault delta; returns the delta report dict.

        Carries an idempotency key, so a retry after a lost ack cannot
        double-apply the delta.
        """
        return self._checked(
            {
                "op": "update",
                "inject": [list(c) for c in inject],
                "repair": [list(c) for c in repair],
                "client": self.client_id,
                "seq": self._next_seq(),
            }
        )["delta"]

    def update_batch(
        self,
        deltas: Iterable[Tuple[Iterable[Coord], Iterable[Coord]]],
    ) -> List[Dict[str, Any]]:
        """Pipeline several ``(inject, repair)`` deltas in one request.

        Returns one delta report dict per entry (each carrying the
        engine ``version`` after that delta applied).  The whole batch
        shares one idempotency key: it applies exactly once even across
        retries.
        """
        return self._checked(
            {
                "op": "update",
                "batch": [
                    {
                        "inject": [list(c) for c in inj],
                        "repair": [list(c) for c in rep],
                    }
                    for inj, rep in deltas
                ],
                "client": self.client_id,
                "seq": self._next_seq(),
            }
        )["deltas"]

    def query_nodes(self, coords: Iterable[Coord]) -> List[Dict[str, Any]]:
        """Per-node status for the given coordinates."""
        return self._checked(
            {"op": "query", "coords": [list(c) for c in coords]}
        )["nodes"]

    def query_blocks(self) -> List[Dict[str, Any]]:
        return self._checked({"op": "query", "what": "blocks"})["blocks"]

    def query_regions(self) -> List[Dict[str, Any]]:
        return self._checked({"op": "query", "what": "regions"})["regions"]

    def snapshot(self) -> Dict[str, Any]:
        """Full summary plus block/region summaries."""
        return self._checked({"op": "snapshot"})

    def stats(self) -> Dict[str, Any]:
        return self._checked({"op": "stats"})["stats"]

    def shutdown(self) -> None:
        """Ask the server to stop (acknowledged before it exits).

        Single attempt: retrying a shutdown against a server that died
        after honouring it would just fail the reconnect.
        """
        response = self.request({"op": "shutdown"})
        if not response.get("ok"):
            raise ServiceError(
                f"shutdown: {response.get('error', 'unknown error')}"
            )

    # -- lifecycle --------------------------------------------------------------

    def close(self) -> None:
        try:
            self._rfile.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
