"""A small NDJSON client for the labeling server.

:class:`ServiceClient` speaks the one-line-JSON-per-request protocol of
:mod:`repro.service.server` over a TCP or Unix-domain socket.  The
convenience methods (:meth:`update`, :meth:`query_nodes`, ...) raise
:class:`~repro.errors.ServiceError` on an error response; the raw
:meth:`request` returns whatever the server said.

Used by the service tests and as the reference implementation for
non-Python clients (the protocol is trivial to speak from anything that
can write a JSON line to a socket)::

    with ServiceClient.connect_tcp(host, port) as client:
        client.update(inject=[(3, 4)])
        client.query_nodes([(3, 4), (0, 0)])
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.errors import ServiceError
from repro.types import Coord

__all__ = ["ServiceClient"]


class ServiceClient:
    """One connection to a running labeling server."""

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._rfile = sock.makefile("rb")

    @classmethod
    def connect_tcp(
        cls, host: str, port: int, timeout: Optional[float] = 10.0
    ) -> "ServiceClient":
        sock = socket.create_connection((host, port), timeout=timeout)
        return cls(sock)

    @classmethod
    def connect_unix(
        cls, path: str, timeout: Optional[float] = 10.0
    ) -> "ServiceClient":
        if not hasattr(socket, "AF_UNIX"):  # pragma: no cover - non-POSIX
            raise ServiceError("unix sockets are not supported on this platform")
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(path)
        return cls(sock)

    # -- protocol ---------------------------------------------------------------

    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request object, return the decoded response object."""
        self._sock.sendall(json.dumps(payload).encode("utf-8") + b"\n")
        line = self._rfile.readline()
        if not line:
            raise ServiceError("server closed the connection")
        return json.loads(line)

    def _checked(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        response = self.request(payload)
        if not response.get("ok"):
            raise ServiceError(
                f"{payload.get('op')}: {response.get('error', 'unknown error')}"
            )
        return response

    # -- convenience ops --------------------------------------------------------

    def ping(self) -> int:
        """Liveness probe; returns the engine version."""
        return int(self._checked({"op": "ping"})["version"])

    def update(
        self,
        inject: Iterable[Coord] = (),
        repair: Iterable[Coord] = (),
    ) -> Dict[str, Any]:
        """Absorb a fault delta; returns the delta report dict."""
        return self._checked(
            {
                "op": "update",
                "inject": [list(c) for c in inject],
                "repair": [list(c) for c in repair],
            }
        )["delta"]

    def query_nodes(self, coords: Iterable[Coord]) -> List[Dict[str, Any]]:
        """Per-node status for the given coordinates."""
        return self._checked(
            {"op": "query", "coords": [list(c) for c in coords]}
        )["nodes"]

    def query_blocks(self) -> List[Dict[str, Any]]:
        return self._checked({"op": "query", "what": "blocks"})["blocks"]

    def query_regions(self) -> List[Dict[str, Any]]:
        return self._checked({"op": "query", "what": "regions"})["regions"]

    def snapshot(self) -> Dict[str, Any]:
        """Full summary plus block/region summaries."""
        return self._checked({"op": "snapshot"})

    def stats(self) -> Dict[str, Any]:
        return self._checked({"op": "stats"})["stats"]

    def shutdown(self) -> None:
        """Ask the server to stop (acknowledged before it exits)."""
        self._checked({"op": "shutdown"})

    # -- lifecycle --------------------------------------------------------------

    def close(self) -> None:
        try:
            self._rfile.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
