"""The in-process labeling service: converged labels as a live object.

:class:`LabelingService` wraps one
:class:`~repro.core.incremental.IncrementalLabeling` engine with the
operational surface a long-lived process needs: instrumented updates
(per-update spans, latency histograms, ``service_update`` events), a
rolling latency window for percentile reporting, and a ``stats()``
snapshot that the NDJSON server's ``stats`` op returns verbatim.

Sweeps and benchmarks use this class directly; ``repro serve`` puts a
socket in front of it (:mod:`repro.service.server`).  Either way the
answers are bit-for-bit the from-scratch fixpoint of the accumulated
fault set — the engine's property tests pin that, and
:meth:`verify_against_scratch` re-checks it on demand.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional

from repro.core.incremental import (
    BlockEnableCache,
    DeltaReport,
    IncrementalLabeling,
)
from repro.core.pipeline import LabelingResult
from repro.core.status import NodeStatus, SafetyDefinition
from repro.faults.faultset import FaultSet
from repro.mesh.topology import Topology
from repro.obs.summarize import latency_percentiles
from repro.obs.telemetry import Telemetry
from repro.types import Coord

__all__ = ["LabelingService"]


class LabelingService:
    """Online fault-delta answering over a maintained label state.

    Parameters
    ----------
    topology:
        Mesh or torus.
    definition:
        Phase-1 unsafe rule.
    faults:
        Optional initial fault set; absorbed as one injection.
    cache:
        Optional shared :class:`~repro.core.incremental.BlockEnableCache`.
    telemetry:
        Optional :class:`~repro.obs.telemetry.Telemetry`.  Each update
        runs under a ``service_update`` span, emits a ``service_update``
        event, and observes its latency into the
        ``service_update_latency_us`` histogram.
    latency_window:
        How many recent update latencies the rolling percentile window
        keeps.
    """

    def __init__(
        self,
        topology: Topology,
        definition: SafetyDefinition = SafetyDefinition.DEF_2B,
        faults: Optional[FaultSet | Iterable[Coord]] = None,
        cache: Optional[BlockEnableCache] = None,
        telemetry: Optional[Telemetry] = None,
        latency_window: int = 8192,
    ):
        # An empty Telemetry (no sinks/metrics/spans) keeps every guard
        # false, so the untraced service pays only the branch.
        self._telemetry = telemetry if telemetry is not None else Telemetry()
        self._engine = IncrementalLabeling(
            topology, definition, cache=cache, telemetry=telemetry
        )
        self._latency_us: Deque[float] = deque(maxlen=latency_window)
        self._latency_meter = (
            None
            if telemetry is None or telemetry.metrics is None
            else telemetry.histogram("service_update_latency_us")
        )
        self._started_at = time.time()
        if faults is not None:
            self.update(inject=list(faults))

    # -- views ------------------------------------------------------------------

    @property
    def engine(self) -> IncrementalLabeling:
        """The underlying incremental engine (shared state, not a copy)."""
        return self._engine

    @property
    def topology(self) -> Topology:
        return self._engine.topology

    @property
    def definition(self) -> SafetyDefinition:
        return self._engine.definition

    @property
    def version(self) -> int:
        return self._engine.version

    @property
    def faults(self) -> FaultSet:
        return self._engine.faults

    def is_enabled(self, c: Coord) -> bool:
        return self._engine.is_enabled(c)

    def status_of(self, c: Coord) -> NodeStatus:
        return self._engine.status_of(c)

    def block_summaries(self) -> List[Dict[str, object]]:
        return self._engine.block_summaries()

    def snapshot(self, geometry_backend: str = "vectorized") -> LabelingResult:
        """Full :class:`LabelingResult` of the current state (cached per
        version)."""
        return self._engine.snapshot(geometry_backend, telemetry=self._telemetry)

    # -- updates ----------------------------------------------------------------

    def update(
        self,
        inject: Iterable[Coord] = (),
        repair: Iterable[Coord] = (),
    ) -> DeltaReport:
        """Absorb one fault-set delta; the instrumented front door.

        Semantics are exactly :meth:`IncrementalLabeling.apply`; this
        wrapper adds the span, the latency sample, and the
        ``service_update`` event.
        """
        tel = self._telemetry
        with tel.span("service_update"):
            t0 = time.perf_counter()
            delta = self._engine.apply(inject=inject, repair=repair)
            latency_us = 1e6 * (time.perf_counter() - t0)
        self._latency_us.append(latency_us)
        if self._latency_meter is not None:
            self._latency_meter.observe(latency_us)
        if tel.wants("info"):
            tel.emit(
                "service_update",
                injected=len(delta.injected),
                repaired=len(delta.repaired),
                rounds1=delta.rounds_phase1,
                rounds2=delta.rounds_phase2,
                latency_us=latency_us,
            )
        return delta

    def inject(self, coords: Iterable[Coord]) -> DeltaReport:
        return self.update(inject=list(coords))

    def repair(self, coords: Iterable[Coord]) -> DeltaReport:
        return self.update(repair=list(coords))

    # -- reporting --------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Operational counters: what ``repro serve``'s ``stats`` op
        returns.

        ``update_latency_us`` summarizes the rolling window of recent
        updates (nearest-rank percentiles); cache numbers come straight
        from the shared :class:`BlockEnableCache`.
        """
        engine = self._engine
        topo = engine.topology
        return {
            "topology": {
                "kind": "torus" if topo.wraps else "mesh",
                "width": topo.shape[0],
                "height": topo.shape[1],
            },
            "definition": engine.definition.value,
            "version": engine.version,
            "uptime_s": time.time() - self._started_at,
            "faults": engine.num_faults,
            "blocks": engine.num_blocks,
            "updates": engine.num_updates,
            "rounds_phase1_total": engine.total_rounds_phase1,
            "rounds_phase2_total": engine.total_rounds_phase2,
            "cache": engine.cache.stats(),
            "update_latency_us": latency_percentiles(list(self._latency_us)),
        }

    def verify_against_scratch(self) -> bool:
        """Whether the served labels equal from-scratch labeling."""
        return self._engine.verify_against_scratch()
