"""The in-process labeling service: converged labels as a live object.

:class:`LabelingService` wraps one
:class:`~repro.core.incremental.IncrementalLabeling` engine with the
operational surface a long-lived process needs: instrumented updates
(per-update spans, latency histograms, ``service_update`` events), a
rolling latency window for percentile reporting, and a ``stats()``
snapshot that the NDJSON server's ``stats`` op returns verbatim.

Sweeps and benchmarks use this class directly; ``repro serve`` puts a
socket in front of it (:mod:`repro.service.server`).  Either way the
answers are bit-for-bit the from-scratch fixpoint of the accumulated
fault set — the engine's property tests pin that, and
:meth:`verify_against_scratch` re-checks it on demand.

Durability (optional): pass ``wal_dir`` and every applied delta is
appended to a write-ahead log *before* the caller is answered, with
periodic snapshot checkpoints compacting the log (``snapshot_every``).
:meth:`LabelingService.recover` rebuilds a service from such a directory
after a crash — see :mod:`repro.service.recovery` for the replay and
bit-for-bit verification contract.  Requests carrying an idempotency key
(``client`` + ``seq``) are deduplicated against a per-client high-water
mark, turning the client's at-least-once retry loop into exactly-once
application.
"""

from __future__ import annotations

import time
from collections import deque
from typing import (
    Any,
    Deque,
    Dict,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.incremental import (
    BlockEnableCache,
    DeltaReport,
    IncrementalLabeling,
)
from repro.core.pipeline import LabelingResult
from repro.core.status import NodeStatus, SafetyDefinition
from repro.errors import ServiceError
from repro.faults.faultset import FaultSet
from repro.mesh.topology import Topology
from repro.obs.slo import SLOConfig, SLOTracker
from repro.obs.summarize import latency_percentiles
from repro.obs.telemetry import Telemetry
from repro.service.recovery import ClientState, RecoveredState, recover_state
from repro.service.wal import (
    DeltaRecord,
    SnapshotStore,
    WriteAheadLog,
    clear_clean_marker,
    write_clean_marker,
)
from repro.types import Coord

__all__ = ["BatchOutcome", "LabelingService"]


class BatchOutcome(NamedTuple):
    """Result of one (possibly batched, possibly deduplicated) update.

    ``deltas`` holds one ``(delta_dict, version)`` pair per requested
    delta, in request order; ``version`` is the engine version after the
    whole update; ``duplicate`` is True when the request was answered
    from the per-client dedup store without touching the engine.
    """

    deltas: Tuple[Tuple[Dict[str, Any], int], ...]
    version: int
    duplicate: bool


class LabelingService:
    """Online fault-delta answering over a maintained label state.

    Parameters
    ----------
    topology:
        Mesh or torus.
    definition:
        Phase-1 unsafe rule.
    faults:
        Optional initial fault set; absorbed as one injection (and
        logged, when durable).
    cache:
        Optional shared :class:`~repro.core.incremental.BlockEnableCache`.
    telemetry:
        Optional :class:`~repro.obs.telemetry.Telemetry`.  Each update
        runs under a ``service_update`` span, emits a ``service_update``
        event, and observes its latency into the
        ``service_update_latency_us`` histogram; durable appends and
        checkpoints add ``wal_append`` / ``snapshot_write`` events and
        the matching ``*_us`` histograms.
    latency_window:
        How many recent update latencies the rolling percentile window
        keeps.
    wal_dir:
        Optional write-ahead-log directory; enables durability.
    snapshot_every:
        Checkpoint (snapshot + WAL rotation) after this many effective
        deltas.  ``None`` disables automatic checkpoints
        (:meth:`checkpoint` still works on demand).
    fsync_every:
        Passed to :class:`~repro.service.wal.WriteAheadLog`: fsync the
        log every N appends (``None`` = only at checkpoints/close).
    crash_hook:
        Chaos-test seam, forwarded to the WAL and snapshot writers.
    slo:
        Optional :class:`~repro.obs.slo.SLOConfig`; the service grades
        request outcomes fed through :meth:`record_request` against it
        in a rolling window, surfaced as ``stats()["slo"]`` (and from
        there the ``stats`` op and the admin plane's ``/varz``).
    """

    def __init__(
        self,
        topology: Topology,
        definition: SafetyDefinition = SafetyDefinition.DEF_2B,
        faults: Optional[FaultSet | Iterable[Coord]] = None,
        cache: Optional[BlockEnableCache] = None,
        telemetry: Optional[Telemetry] = None,
        latency_window: int = 8192,
        wal_dir: Optional[str] = None,
        snapshot_every: Optional[int] = None,
        fsync_every: Optional[int] = None,
        crash_hook: Optional[Any] = None,
        slo: Optional[SLOConfig] = None,
    ):
        if snapshot_every is not None and snapshot_every < 1:
            raise ValueError(
                f"snapshot_every must be positive, got {snapshot_every}"
            )
        # An empty Telemetry (no sinks/metrics/spans) keeps every guard
        # false, so the untraced service pays only the branch.
        self._telemetry = telemetry if telemetry is not None else Telemetry()
        self._engine = IncrementalLabeling(
            topology, definition, cache=cache, telemetry=telemetry
        )
        self._latency_us: Deque[float] = deque(maxlen=latency_window)
        has_metrics = telemetry is not None and telemetry.metrics is not None
        self._latency_meter = (
            telemetry.histogram("service_update_latency_us")
            if has_metrics
            else None
        )
        self._wal_meter = (
            telemetry.histogram("wal_append_us") if has_metrics else None
        )
        self._snapshot_meter = (
            telemetry.histogram("snapshot_write_us") if has_metrics else None
        )
        self._started_at = time.time()
        self.slo = SLOTracker(slo if slo is not None else SLOConfig())
        self._clients: Dict[str, ClientState] = {}
        self._snapshot_every = snapshot_every
        self._since_snapshot = 0
        self.snapshots_written = 0
        self.recovery: Optional[RecoveredState] = None
        self._wal: Optional[WriteAheadLog] = None
        self._snapshots: Optional[SnapshotStore] = None
        if wal_dir is not None:
            self._attach_wal(wal_dir, fsync_every, crash_hook)
        if faults is not None:
            self.update(inject=list(faults))

    def _attach_wal(
        self,
        wal_dir: str,
        fsync_every: Optional[int],
        crash_hook: Optional[Any],
    ) -> None:
        clear_clean_marker(wal_dir)  # this process owns the dir now
        self._wal = WriteAheadLog(
            wal_dir, fsync_every=fsync_every, crash_hook=crash_hook
        )
        self._snapshots = SnapshotStore(wal_dir, crash_hook=crash_hook)

    @classmethod
    def recover(
        cls,
        wal_dir: str,
        topology: Optional[Topology] = None,
        definition: Optional[SafetyDefinition] = None,
        cache: Optional[BlockEnableCache] = None,
        telemetry: Optional[Telemetry] = None,
        latency_window: int = 8192,
        snapshot_every: Optional[int] = None,
        fsync_every: Optional[int] = None,
        crash_hook: Optional[Any] = None,
        verify: bool = True,
        slo: Optional[SLOConfig] = None,
    ) -> "LabelingService":
        """Rebuild a durable service from its WAL directory.

        Replays snapshot + WAL tail (asserting recorded versions) and —
        with ``verify=True``, the default — checks the result bit-for-bit
        against a from-scratch relabeling before serving anything.  The
        recovered service keeps appending to the same log; its
        :attr:`recovery` attribute records what the replay found.
        """
        state = recover_state(
            wal_dir,
            topology=topology,
            definition=definition,
            cache=cache,
            telemetry=telemetry,
            verify=verify,
        )
        service = cls(
            state.engine.topology,
            state.engine.definition,
            telemetry=telemetry,
            latency_window=latency_window,
            snapshot_every=snapshot_every,
            slo=slo,
        )
        service._engine = state.engine
        service._clients = dict(state.clients)
        service.recovery = state
        service._attach_wal(wal_dir, fsync_every, crash_hook)
        return service

    # -- views ------------------------------------------------------------------

    @property
    def engine(self) -> IncrementalLabeling:
        """The underlying incremental engine (shared state, not a copy)."""
        return self._engine

    @property
    def topology(self) -> Topology:
        return self._engine.topology

    @property
    def definition(self) -> SafetyDefinition:
        return self._engine.definition

    @property
    def version(self) -> int:
        return self._engine.version

    @property
    def faults(self) -> FaultSet:
        return self._engine.faults

    @property
    def durable(self) -> bool:
        return self._wal is not None

    def is_enabled(self, c: Coord) -> bool:
        return self._engine.is_enabled(c)

    def status_of(self, c: Coord) -> NodeStatus:
        return self._engine.status_of(c)

    def block_summaries(self) -> List[Dict[str, object]]:
        return self._engine.block_summaries()

    def snapshot(self, geometry_backend: str = "vectorized") -> LabelingResult:
        """Full :class:`LabelingResult` of the current state (cached per
        version)."""
        return self._engine.snapshot(geometry_backend, telemetry=self._telemetry)

    # -- updates ----------------------------------------------------------------

    def update(
        self,
        inject: Iterable[Coord] = (),
        repair: Iterable[Coord] = (),
    ) -> DeltaReport:
        """Absorb one fault-set delta; the instrumented front door.

        Semantics are exactly :meth:`IncrementalLabeling.apply`; this
        wrapper adds the span, the latency sample, the
        ``service_update`` event and — when durable — the WAL append
        (before returning, i.e. before any ack) plus the periodic
        checkpoint.
        """
        report = self._update_one(inject, repair, None, None, 0, 1)
        self._maybe_checkpoint()
        return report

    def inject(self, coords: Iterable[Coord]) -> DeltaReport:
        return self.update(inject=list(coords))

    def repair(self, coords: Iterable[Coord]) -> DeltaReport:
        return self.update(repair=list(coords))

    def apply_batch(
        self,
        deltas: Sequence[Tuple[Iterable[Coord], Iterable[Coord]]],
        client: Optional[str] = None,
        seq: Optional[int] = None,
    ) -> BatchOutcome:
        """Apply a pipelined batch of deltas as one idempotent update.

        With a ``client``/``seq`` idempotency key the batch is applied
        exactly once: a retry of the current high-water sequence number
        is answered from the stored outcome without touching the engine,
        and a sequence number *below* the high-water mark is rejected
        (the client only ever retries its latest request).
        """
        if (client is None) != (seq is None):
            raise ServiceError(
                "idempotent updates need both 'client' and 'seq'"
            )
        if client is not None:
            state = self._clients.get(client)
            if state is not None:
                if seq == state.seq:
                    return BatchOutcome(state.outcomes, state.version, True)
                if seq < state.seq:
                    raise ServiceError(
                        f"stale sequence {seq} for client {client!r} "
                        f"(high-water mark {state.seq})"
                    )
        outcomes: List[Tuple[Dict[str, Any], int]] = []
        size = len(deltas)
        for index, (inj, rep) in enumerate(deltas):
            report = self._update_one(inj, rep, client, seq, index, size)
            outcomes.append((report.to_dict(), self._engine.version))
        version = self._engine.version
        if client is not None and seq is not None:
            self._clients[client] = ClientState(
                seq=seq, outcomes=tuple(outcomes), version=version
            )
        self._maybe_checkpoint()
        return BatchOutcome(tuple(outcomes), version, False)

    def _update_one(
        self,
        inject: Iterable[Coord],
        repair: Iterable[Coord],
        client: Optional[str],
        seq: Optional[int],
        batch_index: int,
        batch_size: int,
    ) -> DeltaReport:
        tel = self._telemetry
        with tel.span("service_update"):
            t0 = time.perf_counter()
            delta = self._engine.apply(inject=inject, repair=repair)
            latency_us = 1e6 * (time.perf_counter() - t0)
        self._latency_us.append(latency_us)
        if self._latency_meter is not None:
            self._latency_meter.observe(latency_us)
        if tel.wants("info"):
            tel.emit(
                "service_update",
                injected=len(delta.injected),
                repaired=len(delta.repaired),
                rounds1=delta.rounds_phase1,
                rounds2=delta.rounds_phase2,
                latency_us=latency_us,
            )
        # WAL before ack.  Effective deltas are always logged; no-op
        # deltas are logged only when they carry an idempotency key
        # (the record is what rebuilds the dedup high-water mark).
        if self._wal is not None and (delta.effective or client is not None):
            t0 = time.perf_counter()
            nbytes = self._wal.append(
                DeltaRecord(
                    version=self._engine.version,
                    inject=delta.injected,
                    repair=delta.repaired,
                    client=client,
                    seq=seq,
                    batch_index=batch_index,
                    batch_size=batch_size,
                )
            )
            wal_us = 1e6 * (time.perf_counter() - t0)
            if delta.effective:
                self._since_snapshot += 1
            if self._wal_meter is not None:
                self._wal_meter.observe(wal_us)
            if tel.wants("debug"):
                tel.emit(
                    "wal_append",
                    version=self._engine.version,
                    bytes=nbytes,
                    latency_us=wal_us,
                )
        return delta

    # -- durability -------------------------------------------------------------

    def _maybe_checkpoint(self) -> None:
        if (
            self._snapshot_every is not None
            and self._since_snapshot >= self._snapshot_every
        ):
            self.checkpoint()

    def _durable_state(self) -> Dict[str, Any]:
        """The full service state a snapshot checkpoint captures."""
        engine = self._engine
        topo = engine.topology
        return {
            "schema": 1,
            "kind": "torus" if topo.wraps else "mesh",
            "width": topo.shape[0],
            "height": topo.shape[1],
            "definition": engine.definition.value,
            "version": engine.version,
            "faults": sorted([int(x), int(y)] for x, y in engine.faults.cells),
            "clients": {
                cid: {
                    "seq": st.seq,
                    "version": st.version,
                    "outcomes": [[d, v] for d, v in st.outcomes],
                }
                for cid, st in self._clients.items()
            },
        }

    def checkpoint(self) -> int:
        """Write a snapshot and rotate the WAL; returns snapshot bytes.

        No-op (returns 0) on a non-durable service.
        """
        if self._snapshots is None or self._wal is None:
            return 0
        t0 = time.perf_counter()
        nbytes = self._snapshots.write(self._durable_state())
        self._wal.rotate()
        elapsed_us = 1e6 * (time.perf_counter() - t0)
        self._since_snapshot = 0
        self.snapshots_written += 1
        if self._snapshot_meter is not None:
            self._snapshot_meter.observe(elapsed_us)
        tel = self._telemetry
        if tel.wants("info"):
            tel.emit(
                "snapshot_write",
                version=self._engine.version,
                faults=self._engine.num_faults,
                bytes=nbytes,
                latency_us=elapsed_us,
            )
        return nbytes

    def finalize(self) -> None:
        """Graceful-shutdown epilogue: fsync the WAL, write the
        clean-shutdown marker, close the log.  Idempotent; no-op on a
        non-durable service."""
        if self._wal is None:
            return
        self._wal.fsync()
        write_clean_marker(self._wal.wal_dir)
        self._wal.close()

    # -- reporting --------------------------------------------------------------

    def record_request(self, ok: bool, latency_us: float) -> None:
        """Feed one request outcome into the rolling SLO window.

        The server front end calls this for every answered *and*
        rejected request (oversized frame, deadline, load shed), so the
        error budget in :meth:`stats` sees the failures clients see.
        Thread-safe; in-process users may call it directly.
        """
        self.slo.record(ok, latency_us)

    def stats(self) -> Dict[str, object]:
        """Operational counters: what ``repro serve``'s ``stats`` op
        returns.

        ``update_latency_us`` summarizes the rolling window of recent
        updates (nearest-rank percentiles); cache numbers come straight
        from the shared :class:`BlockEnableCache`; ``slo`` grades the
        rolling request-outcome window (availability, error budget,
        latency objective — see :mod:`repro.obs.slo`).  Durable services
        add a ``wal`` block (appends, bytes, snapshots, dedup clients).
        """
        engine = self._engine
        topo = engine.topology
        stats: Dict[str, object] = {
            "topology": {
                "kind": "torus" if topo.wraps else "mesh",
                "width": topo.shape[0],
                "height": topo.shape[1],
            },
            "definition": engine.definition.value,
            "version": engine.version,
            "uptime_s": time.time() - self._started_at,
            "faults": engine.num_faults,
            "blocks": engine.num_blocks,
            "updates": engine.num_updates,
            "rounds_phase1_total": engine.total_rounds_phase1,
            "rounds_phase2_total": engine.total_rounds_phase2,
            "cache": engine.cache.stats(),
            "update_latency_us": latency_percentiles(list(self._latency_us)),
            "slo": self.slo.evaluate(),
        }
        if self._wal is not None:
            stats["wal"] = {
                "appended": self._wal.appended,
                "bytes_written": self._wal.bytes_written,
                "snapshots": self.snapshots_written,
                "since_snapshot": self._since_snapshot,
                "clients": len(self._clients),
            }
        return stats

    def verify_against_scratch(self) -> bool:
        """Whether the served labels equal from-scratch labeling."""
        return self._engine.verify_against_scratch()
