"""The NDJSON socket front end of the labeling service.

``repro serve`` keeps one :class:`~repro.service.labeling.LabelingService`
alive behind a stream socket (TCP or Unix-domain).  The wire protocol is
newline-delimited JSON: each request is one JSON object on one line, each
response one JSON object on one line, in order, over a connection that
may carry any number of requests.

Requests name an ``op``:

``ping``
    Liveness probe; echoes the engine version.
``update``
    ``{"op": "update", "inject": [[x, y], ...], "repair": [...]}`` —
    absorb a fault delta, return the :class:`DeltaReport` as JSON.
    ``{"op": "update", "batch": [{"inject": ..., "repair": ...}, ...]}``
    pipelines several deltas through one request; the response carries
    ``"deltas"``, one entry (with its post-apply ``"version"``) per
    delta.  Either form may attach an idempotency key — ``"client"``
    (string) plus ``"seq"`` (integer, strictly increasing per client) —
    making retries safe: a replay of the client's current sequence
    number is answered from the stored outcome (``"duplicate": true``)
    without re-applying anything.
``query``
    ``{"op": "query", "coords": [[x, y], ...]}`` — per-node status, or
    ``{"op": "query", "what": "blocks" | "regions"}`` for geometric
    summaries.
``snapshot``
    The full labeling summary plus block/region summaries (runs the
    geometric extraction; cached per version).
``stats``
    Operational counters (:meth:`LabelingService.stats`).
``shutdown``
    Acknowledge, then stop the server.

Every response carries ``"ok"``; failures carry ``"error"`` (the
exception message) and ``"error_type"`` and never tear down the
connection — bad requests are part of normal operation for a long-lived
process.  Responses to requests that carried ``"seq"`` echo it back, so
a client can discard stale responses after wire-level duplication.  With
telemetry attached, each request emits a ``service_request`` event (op,
outcome, latency), which is what ``repro obs summarize`` turns into
per-op latency percentiles, and increments the
``service_requests{op=...,outcome=...}`` counter the admin plane's
``/metrics`` endpoint exposes; every outcome — answered or rejected —
also feeds the service's rolling SLO window.  Requests may carry a
``"trace"`` object (id stable across retries, fresh span id + attempt
per try); the server binds it onto the spans the dispatch records, so a
client trace and a server trace stitch into one timeline
(:func:`repro.obs.spans.stitch_chrome_traces`).

Hardening: request lines longer than ``max_frame`` bytes and lines that
are not valid UTF-8 are answered with a structured error (the oversized
line is drained, bounded); connections idle past ``conn_timeout`` are
closed; when more than ``max_inflight`` requests are already queued or
executing, new ones are shed immediately with a retryable
``ServiceOverloadedError`` response instead of growing the queue without
bound.  :meth:`LabelingServer.drain` implements graceful shutdown: stop
accepting, let in-flight requests finish, then fsync the WAL and write
the clean-shutdown marker via :meth:`LabelingService.finalize`.

The server is deliberately small: a threading ``socketserver`` with one
lock around the service (updates are serialized; the engine is not
thread-safe).  It exists so sweeps, notebooks, or non-Python tooling can
share one warm engine instead of each paying a from-scratch labeling.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError, ServiceError
from repro.obs.telemetry import Telemetry
from repro.service.labeling import LabelingService

__all__ = ["LabelingServer", "handle_request", "serve_forever"]

#: Shared no-op telemetry for the untraced dispatch path (every guard
#: in it stays false, so the cost is a few predictable branches).
_NULL_TELEMETRY = Telemetry()


def _coord_list(value: Any, field: str) -> list:
    """Decode a request's coordinate list, strictly."""
    if value is None:
        return []
    if not isinstance(value, (list, tuple)):
        raise ServiceError(f"{field!r} must be a list of [x, y] pairs")
    out = []
    for item in value:
        if (
            not isinstance(item, (list, tuple))
            or len(item) != 2
            or not all(isinstance(v, int) and not isinstance(v, bool) for v in item)
        ):
            raise ServiceError(
                f"{field!r} entries must be [x, y] integer pairs, got {item!r}"
            )
        out.append((item[0], item[1]))
    return out


def _idempotency_key(
    request: Dict[str, Any],
) -> Tuple[Optional[str], Optional[int]]:
    client = request.get("client")
    seq = request.get("seq")
    if client is not None and not isinstance(client, str):
        raise ServiceError(f"'client' must be a string, got {client!r}")
    if seq is not None and (not isinstance(seq, int) or isinstance(seq, bool)):
        raise ServiceError(f"'seq' must be an integer, got {seq!r}")
    return client, seq


def _update(service: LabelingService, request: Dict[str, Any]) -> Dict[str, Any]:
    client, seq = _idempotency_key(request)
    if "batch" in request:
        batch = request["batch"]
        if not isinstance(batch, list) or not all(
            isinstance(item, dict) for item in batch
        ):
            raise ServiceError(
                "'batch' must be a list of {inject, repair} objects"
            )
        deltas = [
            (
                _coord_list(item.get("inject"), "inject"),
                _coord_list(item.get("repair"), "repair"),
            )
            for item in batch
        ]
        outcome = service.apply_batch(deltas, client=client, seq=seq)
        response = {
            "ok": True,
            "version": outcome.version,
            "deltas": [{**d, "version": v} for d, v in outcome.deltas],
        }
    else:
        outcome = service.apply_batch(
            [
                (
                    _coord_list(request.get("inject"), "inject"),
                    _coord_list(request.get("repair"), "repair"),
                )
            ],
            client=client,
            seq=seq,
        )
        response = {
            "ok": True,
            "version": outcome.version,
            "delta": outcome.deltas[0][0] if outcome.deltas else {},
        }
    if outcome.duplicate:
        response["duplicate"] = True
    return response


def _query(service: LabelingService, request: Dict[str, Any]) -> Dict[str, Any]:
    if "coords" in request:
        coords = _coord_list(request["coords"], "coords")
        nodes = []
        for c in coords:
            status = service.status_of(c)
            nodes.append(
                {
                    "coord": list(c),
                    "status": status.value,
                    "enabled": service.is_enabled(c),
                }
            )
        return {"nodes": nodes}
    what = request.get("what")
    if what == "blocks":
        return {"blocks": service.block_summaries()}
    if what == "regions":
        regions = service.snapshot().regions
        return {
            "regions": [
                {
                    "cells": len(r.cells),
                    "faults": r.num_faults,
                    "nonfaulty": r.num_nonfaulty,
                    "diameter": r.diameter,
                }
                for r in regions
            ]
        }
    raise ServiceError(
        "query needs 'coords' or 'what' in {'blocks', 'regions'}, "
        f"got {sorted(set(request) - {'op'})!r}"
    )


def _trace_args(request: Any) -> Dict[str, Any]:
    """Extract the request frame's trace context into span/event args.

    Clients attach ``{"trace": {"id", "span", "attempt"}}``; the id is
    stable across retries (one logical request), the span id is fresh
    per attempt, and the attempt counter distinguishes replays.  The
    mapping is lenient — a hand-rolled client with a partial or
    mis-typed trace object still gets served, it just traces less.
    """
    trace = request.get("trace") if isinstance(request, dict) else None
    if not isinstance(trace, dict):
        return {}
    args: Dict[str, Any] = {}
    if isinstance(trace.get("id"), str):
        args["trace"] = trace["id"]
    if isinstance(trace.get("span"), str):
        args["parent"] = trace["span"]
    attempt = trace.get("attempt")
    if isinstance(attempt, int) and not isinstance(attempt, bool):
        args["attempt"] = attempt
    return args


def handle_request(
    service: LabelingService,
    request: Dict[str, Any],
    lock: Optional[threading.Lock] = None,
    telemetry: Optional[Telemetry] = None,
) -> Tuple[Dict[str, Any], bool]:
    """Dispatch one decoded request; return ``(response, shutdown)``.

    Never raises for malformed requests or library errors — those become
    ``{"ok": False, "error": ...}`` responses.  Shared by the socket
    server and the in-process tests, so the protocol has exactly one
    implementation.

    Observability: the dispatch runs under a ``service_request`` span
    with the frame's trace context *bound* onto every span recorded
    inside it (so the engine spans an update causes carry the client's
    trace id — stitched client/server traces line up by id); the
    ``service_request`` event carries the same context; the
    ``service_requests{op=...,outcome=...}`` counter and the service's
    rolling SLO window see every outcome.
    """
    t0 = time.perf_counter()
    op = request.get("op") if isinstance(request, dict) else None
    op_label = op if isinstance(op, str) else "?"
    trace_args = _trace_args(request)
    tel = telemetry if telemetry is not None else _NULL_TELEMETRY
    shutdown = False
    with tel.span_context(**trace_args), tel.span("service_request", op=op_label):
        try:
            if not isinstance(request, dict):
                raise ServiceError("request must be a JSON object")
            if not isinstance(op, str):
                raise ServiceError("request needs a string 'op' field")
            guard = lock if lock is not None else threading.Lock()
            with guard:
                if op == "ping":
                    response: Dict[str, Any] = {
                        "ok": True,
                        "version": service.version,
                    }
                elif op == "update":
                    response = _update(service, request)
                elif op == "query":
                    response = {"ok": True, **_query(service, request)}
                elif op == "snapshot":
                    result = service.snapshot()
                    response = {
                        "ok": True,
                        "summary": result.summary(),
                        "blocks": service.block_summaries(),
                        "regions": _query(service, {"what": "regions"})["regions"],
                    }
                elif op == "stats":
                    response = {"ok": True, "stats": service.stats()}
                elif op == "shutdown":
                    response = {"ok": True, "version": service.version}
                    shutdown = True
                else:
                    raise ServiceError(f"unknown op {op!r}")
        except (ReproError, KeyError, TypeError, ValueError) as exc:
            response = {
                "ok": False,
                "error": str(exc),
                "error_type": type(exc).__name__,
            }
    if isinstance(request, dict) and "seq" in request:
        response["seq"] = request["seq"]
    latency_us = 1e6 * (time.perf_counter() - t0)
    counter = tel.counter(
        "service_requests",
        op=op_label,
        outcome="ok" if response["ok"] else "error",
    )
    if counter is not None:
        counter.inc()
    if tel.wants("info"):
        tel.emit(
            "service_request",
            op=op_label,
            ok=response["ok"],
            latency_us=latency_us,
            **trace_args,
        )
    service.record_request(response["ok"], latency_us)
    return response, shutdown


def _frame_error(message: str) -> Dict[str, Any]:
    return {"ok": False, "error": message, "error_type": "ServiceError"}


class _Handler(socketserver.StreamRequestHandler):
    """One connection: NDJSON lines in, NDJSON lines out."""

    def handle(self) -> None:  # pragma: no cover - exercised via sockets
        server: "LabelingServer" = self.server  # type: ignore[assignment]
        if server.conn_timeout is not None:
            self.connection.settimeout(server.conn_timeout)
        while True:
            try:
                line = self.rfile.readline(server.max_frame + 1)
            except socket.timeout:
                # An idle-past-deadline connection is a rejection the
                # client observes (its request, if any, dies unread):
                # the SLO error budget must see it.
                server.count_rejection("deadline")
                return
            except (OSError, ValueError):
                return
            if not line:
                return  # client closed cleanly
            if len(line) > server.max_frame and not line.endswith(b"\n"):
                intact = self._drain_oversized(server.max_frame)
                server.count_rejection("oversized")
                response: Dict[str, Any] = _frame_error(
                    f"request frame exceeds {server.max_frame} bytes"
                )
                shutdown = False
                if not intact:
                    return  # connection died (or kept flooding) mid-drain
            else:
                response, shutdown = self._dispatch(server, line)
                if response is None:
                    continue  # blank line keep-alive
            try:
                self.wfile.write(json.dumps(response).encode("utf-8") + b"\n")
                self.wfile.flush()
            except OSError:
                return
            server.count_request()
            if shutdown or server.exhausted():
                server.request_shutdown()
                return

    def _dispatch(
        self, server: "LabelingServer", line: bytes
    ) -> Tuple[Optional[Dict[str, Any]], bool]:
        stripped = line.strip()
        if not stripped:
            return None, False
        try:
            text = stripped.decode("utf-8")
        except UnicodeDecodeError as exc:
            server.count_rejection("not_utf8")
            return _frame_error(f"request frame is not UTF-8: {exc}"), False
        try:
            request = json.loads(text)
        except json.JSONDecodeError as exc:
            return _frame_error(f"not JSON: {exc}"), False
        if server.draining:
            return _frame_error("server is draining"), False
        if not server.acquire_slot():
            op = request.get("op") if isinstance(request, dict) else None
            server.count_rejection(
                "overloaded", op=op if isinstance(op, str) else "?"
            )
            response = {
                "ok": False,
                "error": (
                    f"server at max in-flight requests "
                    f"({server.max_inflight}); retry with backoff"
                ),
                "error_type": "ServiceOverloadedError",
                "retryable": True,
            }
            if isinstance(request, dict) and "seq" in request:
                response["seq"] = request["seq"]
            return response, False
        try:
            return handle_request(
                server.service, request, server.lock, server.telemetry
            )
        finally:
            server.release_slot()

    def _drain_oversized(self, max_frame: int) -> bool:
        """Discard the rest of an oversized line, bounded; whether the
        connection is worth keeping (newline reached within budget)."""
        budget = 64 * max_frame
        drained = 0
        try:
            while drained <= budget:
                chunk = self.rfile.readline(1 << 16)
                if not chunk:
                    return False
                drained += len(chunk)
                if chunk.endswith(b"\n"):
                    return True
        except (socket.timeout, OSError, ValueError):
            return False
        return False


class _TCPServer(socketserver.ThreadingMixIn, socketserver.TCPServer):
    allow_reuse_address = True
    daemon_threads = True


if hasattr(socketserver, "UnixStreamServer"):

    class _UnixServer(socketserver.ThreadingMixIn, socketserver.UnixStreamServer):
        daemon_threads = True

else:  # pragma: no cover - non-POSIX fallback
    _UnixServer = None  # type: ignore[assignment]


class LabelingServer:
    """A labeling service behind a TCP or Unix-domain stream socket.

    Parameters
    ----------
    service:
        The :class:`LabelingService` to expose.
    host, port:
        TCP bind address (``port=0`` picks an ephemeral port; see
        :attr:`address`).  Mutually exclusive with ``unix_path``.
    unix_path:
        Unix-domain socket path.
    telemetry:
        Optional telemetry; per-request ``service_request`` events.
    max_requests:
        Stop after this many responses (``None`` = run until
        ``shutdown`` or :meth:`shutdown`).  Lets smoke tests bound the
        process lifetime.
    max_frame:
        Per-request line-length bound; longer frames get a structured
        error instead of unbounded buffering.
    conn_timeout:
        Per-connection read deadline in seconds (``None`` disables):
        a connection idle past it is closed.
    max_inflight:
        Bound on requests queued or executing at once; excess requests
        are shed with a retryable ``ServiceOverloadedError`` response.
    """

    def __init__(
        self,
        service: LabelingService,
        host: str = "127.0.0.1",
        port: int = 0,
        unix_path: Optional[str] = None,
        telemetry: Optional[Telemetry] = None,
        max_requests: Optional[int] = None,
        max_frame: int = 1 << 20,
        conn_timeout: Optional[float] = 60.0,
        max_inflight: int = 64,
    ):
        if max_frame < 2:
            raise ValueError(f"max_frame must be at least 2, got {max_frame}")
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be positive, got {max_inflight}")
        self.service = service
        self.telemetry = telemetry
        self.lock = threading.Lock()
        self.max_frame = max_frame
        self.conn_timeout = conn_timeout
        self.max_inflight = max_inflight
        self.draining = False
        self._slots = threading.BoundedSemaphore(max_inflight)
        self._count_lock = threading.Lock()
        self._idle = threading.Condition(self._count_lock)
        self._inflight = 0
        self._requests_served = 0
        self._max_requests = max_requests
        if unix_path is not None:
            if _UnixServer is None:  # pragma: no cover
                raise ServiceError("unix sockets are not supported on this platform")
            self._server = _UnixServer(unix_path, _Handler)
            self.address: Any = unix_path
        else:
            self._server = _TCPServer((host, port), _Handler)
            self.address = self._server.server_address
        for name in (
            "service",
            "lock",
            "telemetry",
            "max_frame",
            "conn_timeout",
            "max_inflight",
            "draining",
        ):
            setattr(self._server, name, getattr(self, name))
        self._server.count_request = self.count_request  # type: ignore[attr-defined]
        self._server.count_rejection = self.count_rejection  # type: ignore[attr-defined]
        self._server.exhausted = self.exhausted  # type: ignore[attr-defined]
        self._server.request_shutdown = self.shutdown  # type: ignore[attr-defined]
        self._server.acquire_slot = self.acquire_slot  # type: ignore[attr-defined]
        self._server.release_slot = self.release_slot  # type: ignore[attr-defined]

    # -- bookkeeping shared with handlers ---------------------------------------

    def count_request(self) -> None:
        with self._count_lock:
            self._requests_served += 1

    def count_rejection(self, reason: str, op: str = "?") -> None:
        """Record a request rejected before dispatch (oversized frame,
        non-UTF-8 frame, connection deadline, load shed).

        Rejections never reach :func:`handle_request`, so this is the
        path that makes them visible: a
        ``service_requests{op=...,outcome=<reason>}`` counter increment,
        a ``service_request`` event (``ok=False``, zero dispatch
        latency, the reason as a field), and an error fed into the
        service's rolling SLO window — the error budget sees every
        failure a client sees.
        """
        tel = self.telemetry
        if tel is not None:
            counter = tel.counter("service_requests", op=op, outcome=reason)
            if counter is not None:
                counter.inc()
            if tel.wants("info"):
                tel.emit(
                    "service_request",
                    op=op,
                    ok=False,
                    latency_us=0.0,
                    reason=reason,
                )
        self.service.record_request(False, 0.0)

    def exhausted(self) -> bool:
        with self._count_lock:
            return (
                self._max_requests is not None
                and self._requests_served >= self._max_requests
            )

    def acquire_slot(self) -> bool:
        """Claim an in-flight slot without blocking; False = shed."""
        if not self._slots.acquire(blocking=False):
            return False
        with self._count_lock:
            self._inflight += 1
        return True

    def release_slot(self) -> None:
        with self._count_lock:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.notify_all()
        self._slots.release()

    @property
    def requests_served(self) -> int:
        with self._count_lock:
            return self._requests_served

    @property
    def inflight(self) -> int:
        with self._count_lock:
            return self._inflight

    # -- lifecycle --------------------------------------------------------------

    def serve_forever(self) -> None:
        """Block serving requests until :meth:`shutdown` (or the
        ``shutdown`` op / ``max_requests``)."""
        self._server.serve_forever(poll_interval=0.05)

    def serve_in_thread(self) -> threading.Thread:
        """Start serving on a daemon thread; returns the thread."""
        thread = threading.Thread(target=self.serve_forever, daemon=True)
        thread.start()
        return thread

    def shutdown(self) -> None:
        """Stop the serve loop (idempotent, callable from any thread)."""
        threading.Thread(target=self._server.shutdown, daemon=True).start()

    def drain(self, timeout: float = 10.0) -> bool:
        """Graceful shutdown: stop accepting, finish in-flight requests,
        then finalize the service (WAL fsync + clean-shutdown marker).

        New requests arriving on live connections during the drain get a
        structured ``server is draining`` error.  Returns whether every
        in-flight request finished within ``timeout``.
        """
        self.draining = True
        self._server.draining = True  # type: ignore[attr-defined]
        self.shutdown()
        deadline = time.monotonic() + timeout
        with self._idle:
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._idle.wait(remaining)
            drained = self._inflight == 0
        self.service.finalize()
        return drained

    def close(self) -> None:
        """Release the listening socket."""
        self._server.server_close()

    def __enter__(self) -> "LabelingServer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()
        self.close()


def serve_forever(server: LabelingServer) -> None:
    """Module-level convenience used by the CLI."""
    try:
        server.serve_forever()
    finally:
        server.close()
