"""The NDJSON socket front end of the labeling service.

``repro serve`` keeps one :class:`~repro.service.labeling.LabelingService`
alive behind a stream socket (TCP or Unix-domain).  The wire protocol is
newline-delimited JSON: each request is one JSON object on one line, each
response one JSON object on one line, in order, over a connection that
may carry any number of requests.

Requests name an ``op``:

``ping``
    Liveness probe; echoes the engine version.
``update``
    ``{"op": "update", "inject": [[x, y], ...], "repair": [...]}`` —
    absorb a fault delta, return the :class:`DeltaReport` as JSON.
``query``
    ``{"op": "query", "coords": [[x, y], ...]}`` — per-node status, or
    ``{"op": "query", "what": "blocks" | "regions"}`` for geometric
    summaries.
``snapshot``
    The full labeling summary plus block/region summaries (runs the
    geometric extraction; cached per version).
``stats``
    Operational counters (:meth:`LabelingService.stats`).
``shutdown``
    Acknowledge, then stop the server.

Every response carries ``"ok"``; failures carry ``"error"`` (the
exception message) and ``"error_type"`` and never tear down the
connection — bad requests are part of normal operation for a long-lived
process.  With telemetry attached, each request emits a
``service_request`` event (op, outcome, latency), which is what ``repro
obs summarize`` turns into per-op latency percentiles.

The server is deliberately small: a threading ``socketserver`` with one
lock around the service (updates are serialized; the engine is not
thread-safe).  It exists so sweeps, notebooks, or non-Python tooling can
share one warm engine instead of each paying a from-scratch labeling.
"""

from __future__ import annotations

import json
import socketserver
import threading
import time
from typing import Any, Dict, Optional, Tuple

from repro.errors import ReproError, ServiceError
from repro.obs.telemetry import Telemetry
from repro.service.labeling import LabelingService

__all__ = ["LabelingServer", "handle_request", "serve_forever"]


def _coord_list(value: Any, field: str) -> list:
    """Decode a request's coordinate list, strictly."""
    if value is None:
        return []
    if not isinstance(value, (list, tuple)):
        raise ServiceError(f"{field!r} must be a list of [x, y] pairs")
    out = []
    for item in value:
        if (
            not isinstance(item, (list, tuple))
            or len(item) != 2
            or not all(isinstance(v, int) and not isinstance(v, bool) for v in item)
        ):
            raise ServiceError(
                f"{field!r} entries must be [x, y] integer pairs, got {item!r}"
            )
        out.append((item[0], item[1]))
    return out


def _delta_dict(delta) -> Dict[str, Any]:
    return {
        "injected": [list(c) for c in delta.injected],
        "repaired": [list(c) for c in delta.repaired],
        "rounds_phase1": delta.rounds_phase1,
        "rounds_phase2": delta.rounds_phase2,
        "newly_unsafe": delta.newly_unsafe,
        "newly_safe": delta.newly_safe,
        "newly_disabled": delta.newly_disabled,
        "newly_activated": delta.newly_activated,
        "blocks_changed": delta.blocks_changed,
        "cache_hits": delta.cache_hits,
        "cache_misses": delta.cache_misses,
        "resynced": delta.resynced,
    }


def _query(service: LabelingService, request: Dict[str, Any]) -> Dict[str, Any]:
    if "coords" in request:
        coords = _coord_list(request["coords"], "coords")
        nodes = []
        for c in coords:
            status = service.status_of(c)
            nodes.append(
                {
                    "coord": list(c),
                    "status": status.value,
                    "enabled": service.is_enabled(c),
                }
            )
        return {"nodes": nodes}
    what = request.get("what")
    if what == "blocks":
        return {"blocks": service.block_summaries()}
    if what == "regions":
        regions = service.snapshot().regions
        return {
            "regions": [
                {
                    "cells": len(r.cells),
                    "faults": r.num_faults,
                    "nonfaulty": r.num_nonfaulty,
                    "diameter": r.diameter,
                }
                for r in regions
            ]
        }
    raise ServiceError(
        "query needs 'coords' or 'what' in {'blocks', 'regions'}, "
        f"got {sorted(set(request) - {'op'})!r}"
    )


def handle_request(
    service: LabelingService,
    request: Dict[str, Any],
    lock: Optional[threading.Lock] = None,
    telemetry: Optional[Telemetry] = None,
) -> Tuple[Dict[str, Any], bool]:
    """Dispatch one decoded request; return ``(response, shutdown)``.

    Never raises for malformed requests or library errors — those become
    ``{"ok": False, "error": ...}`` responses.  Shared by the socket
    server and the in-process tests, so the protocol has exactly one
    implementation.
    """
    t0 = time.perf_counter()
    op = request.get("op") if isinstance(request, dict) else None
    shutdown = False
    try:
        if not isinstance(request, dict):
            raise ServiceError("request must be a JSON object")
        if not isinstance(op, str):
            raise ServiceError("request needs a string 'op' field")
        guard = lock if lock is not None else threading.Lock()
        with guard:
            if op == "ping":
                response: Dict[str, Any] = {"ok": True, "version": service.version}
            elif op == "update":
                delta = service.update(
                    inject=_coord_list(request.get("inject"), "inject"),
                    repair=_coord_list(request.get("repair"), "repair"),
                )
                response = {
                    "ok": True,
                    "version": service.version,
                    "delta": _delta_dict(delta),
                }
            elif op == "query":
                response = {"ok": True, **_query(service, request)}
            elif op == "snapshot":
                result = service.snapshot()
                response = {
                    "ok": True,
                    "summary": result.summary(),
                    "blocks": service.block_summaries(),
                    "regions": _query(service, {"what": "regions"})["regions"],
                }
            elif op == "stats":
                response = {"ok": True, "stats": service.stats()}
            elif op == "shutdown":
                response = {"ok": True, "version": service.version}
                shutdown = True
            else:
                raise ServiceError(f"unknown op {op!r}")
    except (ReproError, KeyError, TypeError, ValueError) as exc:
        response = {
            "ok": False,
            "error": str(exc),
            "error_type": type(exc).__name__,
        }
    latency_us = 1e6 * (time.perf_counter() - t0)
    if telemetry is not None and telemetry.wants("info"):
        telemetry.emit(
            "service_request",
            op=op if isinstance(op, str) else "?",
            ok=response["ok"],
            latency_us=latency_us,
        )
    return response, shutdown


class _Handler(socketserver.StreamRequestHandler):
    """One connection: NDJSON lines in, NDJSON lines out."""

    def handle(self) -> None:  # pragma: no cover - exercised via sockets
        server: "LabelingServer" = self.server  # type: ignore[assignment]
        for line in self.rfile:
            line = line.strip()
            if not line:
                continue
            try:
                request = json.loads(line)
            except json.JSONDecodeError as exc:
                response, shutdown = (
                    {
                        "ok": False,
                        "error": f"not JSON: {exc}",
                        "error_type": "ServiceError",
                    },
                    False,
                )
            else:
                response, shutdown = handle_request(
                    server.service, request, server.lock, server.telemetry
                )
            self.wfile.write(json.dumps(response).encode("utf-8") + b"\n")
            self.wfile.flush()
            server.count_request()
            if shutdown or server.exhausted():
                server.request_shutdown()
                return


class _TCPServer(socketserver.ThreadingMixIn, socketserver.TCPServer):
    allow_reuse_address = True
    daemon_threads = True


if hasattr(socketserver, "UnixStreamServer"):

    class _UnixServer(socketserver.ThreadingMixIn, socketserver.UnixStreamServer):
        daemon_threads = True

else:  # pragma: no cover - non-POSIX fallback
    _UnixServer = None  # type: ignore[assignment]


class LabelingServer:
    """A labeling service behind a TCP or Unix-domain stream socket.

    Parameters
    ----------
    service:
        The :class:`LabelingService` to expose.
    host, port:
        TCP bind address (``port=0`` picks an ephemeral port; see
        :attr:`address`).  Mutually exclusive with ``unix_path``.
    unix_path:
        Unix-domain socket path.
    telemetry:
        Optional telemetry; per-request ``service_request`` events.
    max_requests:
        Stop after this many responses (``None`` = run until
        ``shutdown`` or :meth:`shutdown`).  Lets smoke tests bound the
        process lifetime.
    """

    def __init__(
        self,
        service: LabelingService,
        host: str = "127.0.0.1",
        port: int = 0,
        unix_path: Optional[str] = None,
        telemetry: Optional[Telemetry] = None,
        max_requests: Optional[int] = None,
    ):
        self.service = service
        self.telemetry = telemetry
        self.lock = threading.Lock()
        self._count_lock = threading.Lock()
        self._requests_served = 0
        self._max_requests = max_requests
        if unix_path is not None:
            if _UnixServer is None:  # pragma: no cover
                raise ServiceError("unix sockets are not supported on this platform")
            self._server = _UnixServer(unix_path, _Handler)
            self.address: Any = unix_path
        else:
            self._server = _TCPServer((host, port), _Handler)
            self.address = self._server.server_address
        self._server.service = service  # type: ignore[attr-defined]
        self._server.lock = self.lock  # type: ignore[attr-defined]
        self._server.telemetry = telemetry  # type: ignore[attr-defined]
        self._server.count_request = self.count_request  # type: ignore[attr-defined]
        self._server.exhausted = self.exhausted  # type: ignore[attr-defined]
        self._server.request_shutdown = self.shutdown  # type: ignore[attr-defined]

    # -- bookkeeping shared with handlers ---------------------------------------

    def count_request(self) -> None:
        with self._count_lock:
            self._requests_served += 1

    def exhausted(self) -> bool:
        with self._count_lock:
            return (
                self._max_requests is not None
                and self._requests_served >= self._max_requests
            )

    @property
    def requests_served(self) -> int:
        with self._count_lock:
            return self._requests_served

    # -- lifecycle --------------------------------------------------------------

    def serve_forever(self) -> None:
        """Block serving requests until :meth:`shutdown` (or the
        ``shutdown`` op / ``max_requests``)."""
        self._server.serve_forever(poll_interval=0.05)

    def serve_in_thread(self) -> threading.Thread:
        """Start serving on a daemon thread; returns the thread."""
        thread = threading.Thread(target=self.serve_forever, daemon=True)
        thread.start()
        return thread

    def shutdown(self) -> None:
        """Stop the serve loop (idempotent, callable from any thread)."""
        threading.Thread(target=self._server.shutdown, daemon=True).start()

    def close(self) -> None:
        """Release the listening socket."""
        self._server.server_close()

    def __enter__(self) -> "LabelingServer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()
        self.close()


def serve_forever(server: LabelingServer) -> None:
    """Module-level convenience used by the CLI."""
    try:
        server.serve_forever()
    finally:
        server.close()
