"""Thin setuptools shim.

All metadata lives in pyproject.toml; this file only exists so that
``pip install -e .`` works on environments whose setuptools lacks the
PEP-660 editable-wheel path (e.g. offline boxes without the ``wheel``
package installed).
"""

from setuptools import setup

setup()
