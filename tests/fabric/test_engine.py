"""Unit tests for the synchronous engine."""

from typing import Any, Mapping, Tuple

import pytest

from repro.errors import ProtocolError
from repro.fabric import NodeContext, NodeProgram, SynchronousEngine
from repro.mesh import Mesh2D


class EchoMax(NodeProgram):
    """Toy protocol: converge on the maximum node id via flooding.

    Classic distributed max-consensus: converges in eccentricity rounds,
    which gives the engine's round accounting something nontrivial.
    """

    def __init__(self, ctx: NodeContext):
        super().__init__(ctx)
        self.value = ctx.coord[0] * 1000 + ctx.coord[1]

    def start(self) -> Mapping:
        return {n: self.value for n in self.ctx.live_neighbors}

    def on_round(self, inbox: Mapping) -> Tuple[Mapping, bool]:
        best = max(inbox.values(), default=self.value)
        if best > self.value:
            self.value = best
            return {n: self.value for n in self.ctx.live_neighbors}, True
        return {}, False

    def snapshot(self) -> Any:
        return self.value


class Silent(NodeProgram):
    """Never sends, never changes: quiesces immediately."""

    def start(self):
        return {}

    def on_round(self, inbox):
        return {}, False

    def snapshot(self):
        return "idle"


class Misbehaving(NodeProgram):
    """Sends to a non-neighbour: the engine must reject it."""

    def start(self):
        return {(99, 99): "boom"}

    def on_round(self, inbox):
        return {}, False

    def snapshot(self):
        return None


class NeverQuiescent(NodeProgram):
    """Flips state forever: the engine must hit its round budget."""

    def __init__(self, ctx):
        super().__init__(ctx)
        self.bit = False

    def start(self):
        return {}

    def on_round(self, inbox):
        self.bit = not self.bit
        return {}, True

    def snapshot(self):
        return self.bit


class TestEngineBasics:
    def test_silent_network_quiesces_in_zero_rounds(self):
        eng = SynchronousEngine(Mesh2D(3, 3), frozenset(), Silent)
        res = eng.run()
        assert res.stats.rounds == 0
        assert all(v == "idle" for v in res.snapshots.values())

    def test_max_flooding_converges_to_global_max(self):
        eng = SynchronousEngine(Mesh2D(4, 4), frozenset(), EchoMax)
        res = eng.run()
        assert set(res.snapshots.values()) == {3 * 1000 + 3}

    def test_max_flooding_round_count_is_eccentricity(self):
        # The max starts at (4, 4); node (0, 0) learns it after 8 rounds
        # (Manhattan distance), so exactly 8 changing rounds occur.
        eng = SynchronousEngine(Mesh2D(5, 5), frozenset(), EchoMax)
        res = eng.run()
        assert res.stats.rounds == 8

    def test_faulty_nodes_host_no_program(self):
        faulty = {(1, 1)}
        eng = SynchronousEngine(Mesh2D(3, 3), faulty, EchoMax)
        res = eng.run()
        assert (1, 1) not in res.snapshots
        assert len(res.snapshots) == 8

    def test_faulty_wall_blocks_flooding(self):
        # A full column of faults at x=1 splits a 3-wide mesh; the west
        # column can never learn the east side's maximum.
        faulty = {(1, y) for y in range(3)}
        eng = SynchronousEngine(Mesh2D(3, 3), faulty, EchoMax)
        res = eng.run()
        assert res.snapshots[(0, 2)] == 2          # west column's own max
        assert res.snapshots[(2, 2)] == 2 * 1000 + 2

    def test_invalid_fault_coordinate_rejected(self):
        from repro.errors import TopologyError

        with pytest.raises(TopologyError):
            SynchronousEngine(Mesh2D(3, 3), {(5, 5)}, Silent)


class TestEngineContracts:
    def test_non_neighbor_send_rejected(self):
        eng = SynchronousEngine(Mesh2D(3, 3), frozenset(), Misbehaving)
        with pytest.raises(ProtocolError):
            eng.run()

    def test_round_budget_enforced(self):
        eng = SynchronousEngine(
            Mesh2D(3, 3), frozenset(), NeverQuiescent, max_rounds=10
        )
        with pytest.raises(ProtocolError):
            eng.run()

    def test_messages_to_faulty_nodes_dropped_silently(self):
        # EchoMax sends to all live neighbours only, so craft a program
        # that addresses everyone including the faulty node.
        class Blaster(Silent):
            def start(self):
                topo = Mesh2D(3, 3)
                return {n: 1 for n in topo.neighbors(self.ctx.coord)}

        eng = SynchronousEngine(Mesh2D(3, 3), {(1, 1)}, Blaster)
        res = eng.run()  # must not raise
        assert (1, 1) not in res.snapshots


class TestStatsAndTrace:
    def test_message_accounting(self):
        eng = SynchronousEngine(Mesh2D(2, 2), frozenset(), EchoMax)
        res = eng.run()
        # Round 1 delivers the 8 start() messages (4 nodes x 2 neighbours).
        assert res.stats.messages_per_round[0] == 8
        assert res.stats.total_messages >= 8

    def test_changes_per_round_monotone_to_zero(self):
        eng = SynchronousEngine(Mesh2D(4, 4), frozenset(), EchoMax)
        res = eng.run()
        assert res.stats.changes_per_round[-1] == 0
        assert res.stats.executed_rounds == res.stats.rounds + 1

    def test_trace_records_every_round(self):
        eng = SynchronousEngine(Mesh2D(3, 3), frozenset(), EchoMax, record_trace=True)
        res = eng.run()
        assert res.trace is not None
        # Frame 0 (initial) + one per executed round.
        assert len(res.trace) == res.stats.executed_rounds + 1
        first_round, first_snap = res.trace[0]
        assert first_round == 0
        assert first_snap[(0, 0)] == 0

    def test_no_trace_by_default(self):
        eng = SynchronousEngine(Mesh2D(2, 2), frozenset(), Silent)
        assert eng.run().trace is None
