"""Unit tests for :class:`repro.fabric.channel.ChannelModel`."""

import numpy as np
import pytest

from repro.fabric import ChannelModel


class TestValidation:
    def test_probability_ranges(self):
        with pytest.raises(ValueError, match="drop_prob"):
            ChannelModel(drop_prob=1.5, rng=np.random.default_rng(0))
        with pytest.raises(ValueError, match="dup_prob"):
            ChannelModel(dup_prob=-0.1, rng=np.random.default_rng(0))
        with pytest.raises(ValueError, match="jitter"):
            ChannelModel(jitter=-1, rng=np.random.default_rng(0))
        with pytest.raises(ValueError, match="max_drops"):
            ChannelModel(
                drop_prob=0.1, max_drops=-1, rng=np.random.default_rng(0)
            )

    def test_lossy_channel_requires_rng(self):
        with pytest.raises(ValueError, match="rng"):
            ChannelModel(drop_prob=0.5)

    def test_reliable_needs_no_rng(self):
        ch = ChannelModel.reliable()
        assert ch.is_reliable
        assert ch.is_fair


class TestReliable:
    def test_always_one_on_time_copy(self):
        ch = ChannelModel.reliable()
        for _ in range(100):
            assert ch.copies() == (0,)
        assert ch.drops == 0
        assert ch.duplicates == 0

    def test_no_rng_consumed_when_reliable(self):
        rng = np.random.default_rng(7)
        ch = ChannelModel(rng=rng)
        before = rng.bit_generator.state
        for _ in range(20):
            ch.copies()
        assert rng.bit_generator.state == before


class TestLossy:
    def test_certain_drop(self):
        ch = ChannelModel(drop_prob=1.0, rng=np.random.default_rng(0))
        assert ch.copies() == ()
        assert ch.drops == 1
        assert not ch.is_fair

    def test_certain_duplicate(self):
        ch = ChannelModel(dup_prob=1.0, rng=np.random.default_rng(0))
        offsets = ch.copies()
        assert offsets == (0, 1)
        assert ch.duplicates == 1

    def test_drop_budget_exhausts(self):
        ch = ChannelModel(
            drop_prob=1.0, max_drops=3, rng=np.random.default_rng(0)
        )
        assert ch.is_fair
        results = [ch.copies() for _ in range(6)]
        assert results[:3] == [(), (), ()]
        # after the budget every message gets through
        assert results[3:] == [(0,), (0,), (0,)]
        assert ch.drops == 3

    def test_jitter_bounds(self):
        ch = ChannelModel(jitter=3, rng=np.random.default_rng(5))
        seen = set()
        for _ in range(200):
            offsets = ch.copies()
            assert len(offsets) == 1
            assert 0 <= offsets[0] <= 3
            seen.add(offsets[0])
        assert seen == {0, 1, 2, 3}

    def test_seeded_reproducibility(self):
        a = ChannelModel(
            drop_prob=0.3, dup_prob=0.2, jitter=2, rng=np.random.default_rng(11)
        )
        b = ChannelModel(
            drop_prob=0.3, dup_prob=0.2, jitter=2, rng=np.random.default_rng(11)
        )
        assert [a.copies() for _ in range(300)] == [
            b.copies() for _ in range(300)
        ]

    def test_drop_rate_roughly_matches(self):
        ch = ChannelModel(drop_prob=0.25, rng=np.random.default_rng(3))
        n = 4000
        for _ in range(n):
            ch.copies()
        assert 0.2 < ch.drops / n < 0.3

    def test_repr(self):
        assert "reliable" in repr(ChannelModel.reliable())
        lossy = ChannelModel(drop_prob=0.5, rng=np.random.default_rng(0))
        assert "drop_prob=0.5" in repr(lossy)
