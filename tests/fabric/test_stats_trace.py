"""Unit tests for RunStats and RoundTrace."""

from repro.fabric import RoundTrace, RunStats


class TestRunStats:
    def test_defaults(self):
        s = RunStats()
        assert s.rounds == 0
        assert s.total_messages == 0
        assert s.executed_rounds == 0

    def test_totals(self):
        s = RunStats(
            rounds=2,
            messages_per_round=[10, 4, 0],
            changes_per_round=[3, 1, 0],
        )
        assert s.total_messages == 14
        assert s.executed_rounds == 3


class TestRoundTrace:
    def test_record_and_access(self):
        t = RoundTrace()
        t.record(0, {(0, 0): "a"})
        t.record(1, {(0, 0): "b"})
        assert len(t) == 2
        assert t[1] == (1, {(0, 0): "b"})

    def test_snapshots_are_copied(self):
        t = RoundTrace()
        snap = {(0, 0): 1}
        t.record(0, snap)
        snap[(0, 0)] = 2
        assert t[0][1][(0, 0)] == 1

    def test_frames_returns_copy_of_list(self):
        t = RoundTrace()
        t.record(0, {})
        frames = t.frames()
        frames.append((9, {}))
        assert len(t) == 1
