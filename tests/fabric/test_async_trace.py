"""RoundTrace recording on the asynchronous engine.

Frames are keyed by the delivery-event count — the async analogue of
the synchronous engine's per-round frames — with frame 0 capturing the
state after initialisation (start + static wake-up steps) but before
any delivery.
"""

import numpy as np

from repro.core.protocols import SafetyProgram
from repro.core.status import SafetyDefinition
from repro.fabric import AsynchronousEngine, RoundTrace
from repro.faults import FaultSet
from repro.mesh import Mesh2D

FAULTS = [(2, 2), (2, 3), (3, 2), (3, 3), (2, 4), (4, 2)]


def _engine(record_trace):
    topo = Mesh2D(9, 9)
    faults = FaultSet.from_coords(topo.shape, FAULTS)
    return AsynchronousEngine(
        topo,
        frozenset(faults),
        factory=lambda ctx: SafetyProgram(ctx, SafetyDefinition.DEF_2B),
        rng=np.random.default_rng(4),
        record_trace=record_trace,
    )


class TestAsyncRoundTrace:
    def test_off_by_default(self):
        assert _engine(False).run().trace is None

    def test_frames_keyed_by_delivery_events(self):
        result = _engine(True).run()
        trace = result.trace
        assert isinstance(trace, RoundTrace)
        keys = [key for key, _ in trace.frames()]
        assert keys[0] == 0  # post-initialisation frame
        assert keys == sorted(keys)
        assert len(set(keys)) == len(keys)
        assert all(k >= 1 for k in keys[1:])

    def test_final_frame_is_final_state(self):
        result = _engine(True).run()
        _, last = result.trace.frames()[-1]
        assert last == result.snapshots

    def test_unsafe_statuses_monotone_across_frames(self):
        result = _engine(True).run()
        frames = result.trace.frames()
        for (_, before), (_, after) in zip(frames, frames[1:]):
            for coord, was_unsafe in before.items():
                if was_unsafe and coord in after:
                    assert after[coord], f"{coord} reverted to safe"
