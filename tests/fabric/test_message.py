"""Unit tests for the Message envelope."""

from repro.fabric import Message


class TestMessage:
    def test_fields(self):
        m = Message(sender=(0, 0), recipient=(0, 1), round_no=3, payload="x")
        assert m.sender == (0, 0)
        assert m.recipient == (0, 1)
        assert m.round_no == 3
        assert m.payload == "x"

    def test_frozen(self):
        import dataclasses

        import pytest

        m = Message((0, 0), (0, 1), 0, None)
        with pytest.raises(dataclasses.FrozenInstanceError):
            m.payload = "y"

    def test_equality(self):
        a = Message((0, 0), (0, 1), 1, 42)
        b = Message((0, 0), (0, 1), 1, 42)
        assert a == b
