"""Per-epoch accounting invariants, pinned on both engines.

A dynamic run's epochs partition its work: the epoch message counts
must sum to ``RunStats.total_messages``, the changing-round counts to
``RunStats.rounds``, and ``recovery_rounds`` must exclude the first
epoch (the initial convergence is not recovery cost).
"""

import numpy as np
import pytest

from repro.core.distributed import async_unsafe, distributed_unsafe
from repro.faults import FaultSchedule, FaultSet
from repro.mesh import Mesh2D

#: A fault block big enough that phase 1 actually propagates, so every
#: epoch has nonzero work to account for.
FAULTS = [(2, 2), (2, 3), (3, 2), (3, 3), (2, 4), (4, 2)]

#: Two crash batches -> three epochs.
TWO_BATCHES = FaultSchedule([(2, (6, 6)), (2, (6, 7)), (5, (0, 5))])


def _run(engine):
    topo = Mesh2D(9, 9)
    faults = FaultSet.from_coords(topo.shape, FAULTS)
    if engine == "sync":
        _, stats, _ = distributed_unsafe(topo, faults, schedule=TWO_BATCHES)
    else:
        _, stats = async_unsafe(
            topo, faults, np.random.default_rng(11), schedule=TWO_BATCHES
        )
    return stats


@pytest.mark.parametrize("engine", ["sync", "async"])
class TestEpochAccounting:
    def test_three_epochs_with_crash_context(self, engine):
        stats = _run(engine)
        assert len(stats.epochs) == 3
        assert stats.epochs[0].crashed == ()
        assert stats.epochs[0].at_time == 0
        assert stats.epochs[1].crashed == ((6, 6), (6, 7))
        assert stats.epochs[1].at_time == 2
        assert stats.epochs[2].crashed == ((0, 5),)
        assert stats.epochs[2].at_time == 5

    def test_epoch_messages_sum_to_total(self, engine):
        stats = _run(engine)
        assert stats.total_messages > 0
        assert sum(e.messages for e in stats.epochs) == stats.total_messages

    def test_epoch_rounds_sum_to_changing_rounds(self, engine):
        stats = _run(engine)
        assert sum(e.rounds for e in stats.epochs) == stats.rounds

    def test_recovery_rounds_excludes_first_epoch(self, engine):
        stats = _run(engine)
        assert stats.recovery_rounds == sum(e.rounds for e in stats.epochs[1:])
        assert stats.recovery_rounds == stats.rounds - stats.epochs[0].rounds

    def test_to_dict_roundtrips_the_fields(self, engine):
        stats = _run(engine)
        d = stats.to_dict()
        assert d["total_messages"] == stats.total_messages
        assert d["executed_rounds"] == stats.executed_rounds
        assert d["recovery_rounds"] == stats.recovery_rounds
        assert len(d["epochs"]) == 3
        for ed, ep in zip(d["epochs"], stats.epochs):
            assert ed["crashed"] == [[x, y] for x, y in ep.crashed]
            assert ed["rounds"] == ep.rounds
            assert ed["messages"] == ep.messages
