"""Unit tests for NodeContext."""

from repro.fabric import NodeContext
from repro.mesh import Dimension, Mesh2D, Torus2D


class TestNodeContextMesh:
    def test_interior_node_all_live(self):
        ctx = NodeContext(Mesh2D(5, 5), (2, 2), frozenset())
        assert len(ctx.live_neighbors) == 4
        assert ctx.faulty_neighbors == ()
        assert ctx.missing_in_dim(Dimension.X) == 0
        assert ctx.missing_in_dim(Dimension.Y) == 0

    def test_corner_node_missing_links(self):
        ctx = NodeContext(Mesh2D(5, 5), (0, 0), frozenset())
        assert len(ctx.live_neighbors) == 2
        assert ctx.missing_in_dim(Dimension.X) == 1
        assert ctx.missing_in_dim(Dimension.Y) == 1

    def test_edge_node_missing_one_link(self):
        ctx = NodeContext(Mesh2D(5, 5), (0, 2), frozenset())
        assert ctx.missing_in_dim(Dimension.X) == 1
        assert ctx.missing_in_dim(Dimension.Y) == 0

    def test_faulty_neighbors_separated(self):
        ctx = NodeContext(Mesh2D(5, 5), (2, 2), frozenset({(1, 2), (2, 3)}))
        assert set(ctx.faulty_neighbors) == {(1, 2), (2, 3)}
        assert set(ctx.live_neighbors) == {(3, 2), (2, 1)}

    def test_faulty_in_dim(self):
        ctx = NodeContext(Mesh2D(5, 5), (2, 2), frozenset({(1, 2), (3, 2)}))
        assert ctx.faulty_in_dim(Dimension.X) == 2
        assert ctx.faulty_in_dim(Dimension.Y) == 0

    def test_live_neighbors_in_dim(self):
        ctx = NodeContext(Mesh2D(5, 5), (2, 2), frozenset({(1, 2)}))
        assert ctx.live_neighbors_in_dim(Dimension.X) == ((3, 2),)
        assert set(ctx.live_neighbors_in_dim(Dimension.Y)) == {(2, 3), (2, 1)}

    def test_distant_faults_are_invisible(self):
        # "Each nonfaulty node knows the status of its neighbors only."
        ctx = NodeContext(Mesh2D(5, 5), (0, 0), frozenset({(4, 4)}))
        assert ctx.faulty_neighbors == ()


class TestNodeContextTorus:
    def test_no_missing_links_on_torus(self):
        t = Torus2D(4, 4)
        for c in [(0, 0), (3, 3), (0, 2)]:
            ctx = NodeContext(t, c, frozenset())
            assert len(ctx.live_neighbors) == 4
            assert ctx.missing_in_dim(Dimension.X) == 0
            assert ctx.missing_in_dim(Dimension.Y) == 0

    def test_wrap_neighbor_fault_detected(self):
        ctx = NodeContext(Torus2D(4, 4), (0, 0), frozenset({(3, 0)}))
        assert (3, 0) in ctx.faulty_neighbors
        assert ctx.faulty_in_dim(Dimension.X) == 1
