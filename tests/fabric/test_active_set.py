"""Property: active-set stepping is invisible — the engine produces the
same snapshots, round counts and per-round message/change statistics as
literal full stepping, for both labeling protocols, both topologies,
chatty or quiet."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SafetyDefinition
from repro.core.distributed import distributed_enabled, distributed_unsafe
from repro.core.protocols import EnableProgram, SafetyProgram
from repro.errors import ProtocolError
from repro.fabric import SynchronousEngine
from repro.faults import FaultSet
from repro.mesh import Mesh2D, Torus2D

W = H = 8


@st.composite
def fault_sets(draw, max_faults=10):
    n = draw(st.integers(0, max_faults))
    coords = draw(
        st.lists(
            st.tuples(st.integers(0, W - 1), st.integers(0, H - 1)),
            min_size=n,
            max_size=n,
            unique=True,
        )
    )
    return FaultSet.from_coords((W, H), coords)


def run_both(topology, faults, definition, chatty):
    out = []
    for active in (False, True):
        unsafe, s1, _ = distributed_unsafe(
            topology, faults, definition, chatty=chatty, active_set=active
        )
        enabled, s2, _ = distributed_enabled(
            topology, faults, unsafe, chatty=chatty, active_set=active
        )
        out.append((unsafe, enabled, s1, s2))
    return out


class TestActiveSetEquivalence:
    @given(
        fault_sets(),
        st.sampled_from([Mesh2D(W, H), Torus2D(W, H)]),
        st.sampled_from(list(SafetyDefinition)),
        st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_identical_labels_and_statistics(
        self, faults, topology, definition, chatty
    ):
        (u_full, e_full, s1_full, s2_full), (u_act, e_act, s1_act, s2_act) = run_both(
            topology, faults, definition, chatty
        )
        assert np.array_equal(u_full, u_act)
        assert np.array_equal(e_full, e_act)
        for full, act in ((s1_full, s1_act), (s2_full, s2_act)):
            assert full.rounds == act.rounds
            assert full.messages_per_round == act.messages_per_round
            assert full.changes_per_round == act.changes_per_round

    @given(fault_sets(max_faults=8), st.sampled_from(list(SafetyDefinition)))
    @settings(max_examples=20, deadline=None)
    def test_debug_full_check_certifies_status_protocols(self, faults, definition):
        # The monotone status protocols must pass the skipped-node no-op
        # cross-check: this is the machine-checked form of the claim that
        # active-set stepping is exact for them.
        engine = SynchronousEngine(
            Mesh2D(W, H),
            frozenset(faults),
            factory=lambda ctx: SafetyProgram(ctx, definition),
            debug_full_check=True,
        )
        engine.run()  # must not raise


class TestActiveSetGuards:
    def test_debug_check_catches_non_quiescent_program(self):
        from repro.fabric.program import NodeProgram

        class TimeBomb(NodeProgram):
            """Node (0, 0) keeps the run alive; every other node stays
            silent for two rounds, then spontaneously changes — exactly
            the behaviour active-set stepping cannot honour, because a
            quiet node with an empty inbox gets skipped."""

            def __init__(self, ctx):
                super().__init__(ctx)
                self.clock = 0

            def start(self):
                return {}

            def on_round(self, inbox):
                self.clock += 1
                if self.ctx.coord == (0, 0):
                    return {}, self.clock <= 3  # driver: changes, sends nothing
                return {}, self.clock == 3  # sleeper: skipped, then fires

            def snapshot(self):
                return self.clock

        engine = SynchronousEngine(
            Mesh2D(2, 1), frozenset(), TimeBomb, debug_full_check=True
        )
        with pytest.raises(ProtocolError, match="active-set invariant"):
            engine.run()

    def test_full_stepping_still_available(self):
        faults = FaultSet.from_coords((W, H), [(1, 1), (1, 2), (2, 1)])
        unsafe, stats, _ = distributed_unsafe(
            Mesh2D(W, H), faults, active_set=False
        )
        assert stats.rounds >= 0 and unsafe[1, 1]

    def test_neighbor_sets_cached_once(self):
        calls = 0

        class Counting(Mesh2D):
            def neighbors(self, c):
                nonlocal calls
                calls += 1
                return super().neighbors(c)

        topo = Counting(4, 4)
        faults = FaultSet.from_coords((4, 4), [(1, 1)])
        distributed_unsafe(topo, faults)
        # NodeContext construction enumerates per-dimension neighbours
        # separately; the engine itself must query each node only once.
        assert calls <= topo.num_nodes
