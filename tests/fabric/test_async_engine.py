"""Unit tests for the asynchronous engine."""

import numpy as np
import pytest

from repro.core import SafetyDefinition, unsafe_fixpoint
from repro.core.distributed import async_enabled, async_unsafe
from repro.errors import ProtocolError
from repro.fabric import AsynchronousEngine
from repro.fabric.program import NodeProgram
from repro.faults import FaultSet
from repro.mesh import Mesh2D


class Silent(NodeProgram):
    def start(self):
        return {}

    def on_round(self, inbox):
        return {}, False

    def snapshot(self):
        return "idle"


class Chatterbox(NodeProgram):
    """Keeps re-sending forever: must trip the event budget."""

    def start(self):
        return {n: 0 for n in self.ctx.live_neighbors}

    def on_round(self, inbox):
        return {n: 0 for n in self.ctx.live_neighbors}, False

    def snapshot(self):
        return None


class TestAsyncEngineBasics:
    def test_silent_network_terminates(self):
        eng = AsynchronousEngine(
            Mesh2D(3, 3), frozenset(), Silent, np.random.default_rng(0)
        )
        res = eng.run()
        assert res.stats.rounds == 0
        assert len(res.snapshots) == 9

    def test_invalid_max_delay(self):
        with pytest.raises(ProtocolError):
            AsynchronousEngine(
                Mesh2D(3, 3), frozenset(), Silent, np.random.default_rng(0), max_delay=0
            )

    def test_event_budget_enforced(self):
        eng = AsynchronousEngine(
            Mesh2D(3, 3),
            frozenset(),
            Chatterbox,
            np.random.default_rng(0),
            max_events=50,
        )
        with pytest.raises(ProtocolError):
            eng.run()

    def test_deterministic_given_seed(self):
        m = Mesh2D(8, 8)
        faults = FaultSet.from_coords((8, 8), [(2, 2), (3, 3), (4, 4)])
        a, stats_a = async_unsafe(m, faults, np.random.default_rng(5))
        b, stats_b = async_unsafe(m, faults, np.random.default_rng(5))
        assert np.array_equal(a, b)
        assert stats_a.rounds == stats_b.rounds


class TestAsyncDrivers:
    def test_paper_example_same_labels_as_sync(self):
        m = Mesh2D(6, 6)
        faults = FaultSet.from_coords((6, 6), [(1, 3), (2, 1), (3, 2)])
        expected, _ = unsafe_fixpoint(m, faults.mask, SafetyDefinition.DEF_2B)
        got, _ = async_unsafe(m, faults, np.random.default_rng(0))
        assert np.array_equal(got, expected)

    def test_phase2_ghost_only_enable(self):
        # A corner node enabled purely by its two ghost links: the case
        # that requires the engine's initial local wake-up step.
        m = Mesh2D(5, 5)
        faults = FaultSet.from_coords((5, 5), [(0, 1), (1, 0)])
        unsafe, _ = unsafe_fixpoint(m, faults.mask)
        assert unsafe[0, 0]
        enabled, _ = async_enabled(m, faults, unsafe, np.random.default_rng(3))
        assert enabled[0, 0]

    def test_shape_validation(self):
        m = Mesh2D(5, 5)
        with pytest.raises(ValueError):
            async_enabled(
                m,
                FaultSet.none((5, 5)),
                np.zeros((4, 4), dtype=bool),
                np.random.default_rng(0),
            )

    def test_large_delays_still_converge(self):
        m = Mesh2D(10, 10)
        faults = FaultSet.from_coords(
            (10, 10), [(2, 2), (3, 3), (4, 4), (5, 5), (6, 6)]
        )
        expected, _ = unsafe_fixpoint(m, faults.mask)
        got, stats = async_unsafe(m, faults, np.random.default_rng(9), max_delay=20)
        assert np.array_equal(got, expected)
        assert stats.total_messages > 0
