"""Engine-level tests for dynamic faults, lossy channels, and the
engines' defensive paths (budget exhaustion, active-set cross-check).

The system-level self-stabilization properties live in
``tests/properties/test_selfstab_props.py``; this file pins the engine
mechanics: crash semantics, epoch accounting, heartbeat repair, and
bit-for-bit compatibility of the reliable/static configuration.
"""

from typing import Any, Mapping, Tuple

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.fabric import (
    AsynchronousEngine,
    ChannelModel,
    NodeContext,
    NodeProgram,
    SynchronousEngine,
)
from repro.faults import FaultSchedule
from repro.mesh import Mesh2D, Torus2D


class EchoMax(NodeProgram):
    """Max-consensus by flooding (same toy protocol as test_engine.py)."""

    def __init__(self, ctx: NodeContext):
        super().__init__(ctx)
        self.value = ctx.coord[0] * 1000 + ctx.coord[1]

    def start(self) -> Mapping:
        return {n: self.value for n in self.ctx.live_neighbors}

    def on_round(self, inbox: Mapping) -> Tuple[Mapping, bool]:
        best = max(inbox.values(), default=self.value)
        if best > self.value:
            self.value = best
            return {n: self.value for n in self.ctx.live_neighbors}, True
        return {}, False

    def snapshot(self) -> Any:
        return self.value


class FaultCounter(NodeProgram):
    """Snapshot = how many of my links are faulty/ghost; changes when a
    neighbour crashes, so crash visibility is directly observable."""

    def start(self):
        return {}

    def on_round(self, inbox):
        return {}, False

    def snapshot(self):
        return len(self.ctx.faulty_neighbors)


class NeverQuiescent(NodeProgram):
    def __init__(self, ctx):
        super().__init__(ctx)
        self.bit = False

    def start(self):
        return {}

    def on_round(self, inbox):
        self.bit = not self.bit
        return {}, True

    def snapshot(self):
        return self.bit


class SneakyQuietNode(NodeProgram):
    """Violates the active-set contract: node (0, 0) flips forever to
    keep the run alive (sending nothing, so nobody else is activated),
    while every other node — skipped from round 2 on — spontaneously
    changes on its third empty-inbox step."""

    def __init__(self, ctx):
        super().__init__(ctx)
        self.steps = 0

    def start(self):
        return {}

    def on_round(self, inbox):
        self.steps += 1
        if self.ctx.coord == (0, 0):
            return {}, True
        return {}, self.steps == 3

    def snapshot(self):
        return self.steps


class TestCrashSemantics:
    def test_crashed_node_loses_program(self):
        sched = FaultSchedule([(2, (1, 1))])
        eng = SynchronousEngine(Mesh2D(3, 3), frozenset(), EchoMax, schedule=sched)
        res = eng.run()
        assert (1, 1) not in res.snapshots
        assert len(res.snapshots) == 8

    def test_neighbors_observe_crash(self):
        sched = FaultSchedule([(2, (1, 1))])
        eng = SynchronousEngine(
            Mesh2D(3, 3), frozenset(), FaultCounter, schedule=sched
        )
        res = eng.run()
        # (1, 1)'s four neighbours each see one dead link; corners see none.
        assert res.snapshots[(0, 1)] == 1
        assert res.snapshots[(1, 0)] == 1
        assert res.snapshots[(0, 0)] == 0

    def test_crash_of_max_leaves_stale_value(self):
        # (2, 2) floods its maximal id before dying: in-flight messages
        # from a crashed node are still delivered, so the stale (but
        # valid at send time) value survives network-wide.
        sched = FaultSchedule([(2, (2, 2))])
        eng = SynchronousEngine(Mesh2D(3, 3), frozenset(), EchoMax, schedule=sched)
        res = eng.run()
        assert set(res.snapshots.values()) == {2 * 1000 + 2}

    def test_crash_before_any_round_silences_node(self):
        # Crash at time 1 strikes before round 1 executes — but the
        # node's start() messages are already in flight (the paper's
        # "cease to work" is about future behaviour, not time travel).
        sched = FaultSchedule([(1, (2, 2))])
        eng = SynchronousEngine(Mesh2D(3, 3), frozenset(), EchoMax, schedule=sched)
        res = eng.run()
        assert (2, 2) not in res.snapshots

    def test_crashing_already_faulty_node_is_noop(self):
        sched = FaultSchedule([(2, (1, 1))])
        eng = SynchronousEngine(Mesh2D(3, 3), {(1, 1)}, EchoMax, schedule=sched)
        res = eng.run()
        assert len(res.snapshots) == 8

    def test_late_crash_after_quiescence_reconverges(self):
        # The network converges, idles until the distant crash event
        # (compressed — no idle rounds recorded), then re-converges.
        sched = FaultSchedule([(50, (0, 0))])
        eng = SynchronousEngine(
            Mesh2D(3, 3), frozenset(), FaultCounter, schedule=sched
        )
        res = eng.run()
        assert res.snapshots[(0, 1)] == 1
        assert res.stats.executed_rounds < 20

    def test_epoch_stats_structure(self):
        sched = FaultSchedule([(2, (1, 1)), (6, (2, 0))])
        eng = SynchronousEngine(Mesh2D(3, 3), frozenset(), EchoMax, schedule=sched)
        res = eng.run()
        epochs = res.stats.epochs
        assert len(epochs) == 3
        assert epochs[0].crashed == ()
        assert epochs[1].crashed == ((1, 1),)
        assert epochs[1].at_time == 2
        assert epochs[2].crashed == ((2, 0),)
        assert sum(e.executed_rounds for e in epochs) == res.stats.executed_rounds
        assert sum(e.rounds for e in epochs) == res.stats.rounds
        assert res.stats.recovery_rounds == epochs[1].rounds + epochs[2].rounds

    def test_schedule_coordinates_validated(self):
        from repro.errors import TopologyError

        with pytest.raises(TopologyError):
            SynchronousEngine(
                Mesh2D(3, 3),
                frozenset(),
                EchoMax,
                schedule=FaultSchedule([(2, (7, 7))]),
            )

    def test_async_crash_semantics(self):
        sched = FaultSchedule([(2, (1, 1))])
        eng = AsynchronousEngine(
            Mesh2D(3, 3),
            frozenset(),
            FaultCounter,
            rng=np.random.default_rng(0),
            schedule=sched,
        )
        res = eng.run()
        assert (1, 1) not in res.snapshots
        assert res.snapshots[(0, 1)] == 1
        assert len(res.stats.epochs) == 2


class TestLossyChannel:
    def test_heartbeat_repairs_dropped_start_messages(self):
        # Drop the first 30 messages outright: several start() floods
        # are lost, yet everyone still converges on the global max.
        ch = ChannelModel(
            drop_prob=1.0, max_drops=30, rng=np.random.default_rng(0)
        )
        eng = SynchronousEngine(Mesh2D(3, 3), frozenset(), EchoMax, channel=ch)
        res = eng.run()
        assert set(res.snapshots.values()) == {2 * 1000 + 2}
        assert res.stats.dropped_messages == 30
        assert res.stats.heartbeats >= 1

    def test_duplicates_and_jitter_are_harmless(self):
        ch = ChannelModel(
            dup_prob=0.5, jitter=3, rng=np.random.default_rng(1)
        )
        eng = SynchronousEngine(Mesh2D(4, 4), frozenset(), EchoMax, channel=ch)
        res = eng.run()
        assert set(res.snapshots.values()) == {3 * 1000 + 3}
        assert res.stats.duplicated_messages > 0

    def test_unfair_channel_raises_protocol_error(self):
        ch = ChannelModel(drop_prob=1.0, rng=np.random.default_rng(2))
        eng = SynchronousEngine(
            Mesh2D(3, 3), frozenset(), EchoMax, max_rounds=25, channel=ch
        )
        with pytest.raises(ProtocolError, match="channel kept dropping"):
            eng.run()

    def test_async_lossy_converges(self):
        ch = ChannelModel(
            drop_prob=0.3,
            dup_prob=0.2,
            jitter=2,
            max_drops=200,
            rng=np.random.default_rng(3),
        )
        eng = AsynchronousEngine(
            Mesh2D(4, 4),
            frozenset(),
            EchoMax,
            rng=np.random.default_rng(4),
            channel=ch,
        )
        res = eng.run()
        assert set(res.snapshots.values()) == {3 * 1000 + 3}

    def test_async_unfair_channel_raises(self):
        ch = ChannelModel(drop_prob=1.0, rng=np.random.default_rng(5))
        eng = AsynchronousEngine(
            Mesh2D(3, 3),
            frozenset(),
            EchoMax,
            rng=np.random.default_rng(6),
            max_events=200,
            channel=ch,
        )
        with pytest.raises(ProtocolError, match="channel kept dropping"):
            eng.run()


class TestBitForBitCompatibility:
    def test_reliable_channel_and_empty_schedule_change_nothing(self):
        plain = SynchronousEngine(Mesh2D(5, 5), {(2, 2)}, EchoMax).run()
        decorated = SynchronousEngine(
            Mesh2D(5, 5),
            {(2, 2)},
            EchoMax,
            schedule=FaultSchedule.empty(),
            channel=ChannelModel.reliable(),
        ).run()
        assert plain.snapshots == decorated.snapshots
        assert plain.stats.rounds == decorated.stats.rounds
        assert plain.stats.messages_per_round == decorated.stats.messages_per_round
        assert plain.stats.changes_per_round == decorated.stats.changes_per_round
        assert decorated.stats.epochs == []

    def test_async_reliable_preserves_rng_stream(self):
        a = AsynchronousEngine(
            Mesh2D(4, 4), frozenset(), EchoMax, rng=np.random.default_rng(9)
        ).run()
        b = AsynchronousEngine(
            Mesh2D(4, 4),
            frozenset(),
            EchoMax,
            rng=np.random.default_rng(9),
            schedule=FaultSchedule.empty(),
            channel=ChannelModel.reliable(),
        ).run()
        assert a.snapshots == b.snapshots
        assert a.stats.rounds == b.stats.rounds
        assert a.stats.total_messages == b.stats.total_messages


class TestDefensivePaths:
    def test_sync_budget_message(self):
        eng = SynchronousEngine(
            Mesh2D(3, 3), frozenset(), NeverQuiescent, max_rounds=10
        )
        with pytest.raises(
            ProtocolError, match=r"did not quiesce within 10 rounds"
        ):
            eng.run()

    def test_async_budget_message(self):
        eng = AsynchronousEngine(
            Torus2D(3, 3),
            frozenset(),
            EchoMax,
            rng=np.random.default_rng(0),
            max_events=1,
        )
        with pytest.raises(
            ProtocolError, match=r"exceeded 1 delivery events"
        ):
            eng.run()

    def test_debug_full_check_accepts_wellbehaved_protocol(self):
        eng = SynchronousEngine(
            Mesh2D(4, 4), frozenset(), EchoMax, debug_full_check=True
        )
        res = eng.run()
        assert set(res.snapshots.values()) == {3 * 1000 + 3}

    def test_debug_full_check_catches_violation(self):
        eng = SynchronousEngine(
            Mesh2D(2, 2),
            frozenset(),
            SneakyQuietNode,
            max_rounds=30,
            debug_full_check=True,
        )
        with pytest.raises(
            ProtocolError, match="active-set invariant violated"
        ):
            eng.run()
