"""Unit tests for the distributed protocols and their drivers.

The load-bearing claim: the distributed backend produces bitwise the
same labels and the same round counts as the vectorized fixpoints.
"""

import numpy as np
import pytest

from repro.core import (
    SafetyDefinition,
    distributed_enabled,
    distributed_unsafe,
    enabled_fixpoint,
    unsafe_fixpoint,
)
from repro.faults import FaultSet, uniform_random
from repro.mesh import Mesh2D, Torus2D


class TestDistributedUnsafe:
    @pytest.mark.parametrize("definition", list(SafetyDefinition))
    def test_matches_vectorized_on_paper_example(self, definition):
        m = Mesh2D(6, 6)
        faults = FaultSet.from_coords((6, 6), [(1, 3), (2, 1), (3, 2)])
        d_unsafe, stats, _ = distributed_unsafe(m, faults, definition)
        v_unsafe, v_rounds = unsafe_fixpoint(m, faults.mask, definition)
        assert np.array_equal(d_unsafe, v_unsafe)
        assert stats.rounds == v_rounds

    @pytest.mark.parametrize("topo_cls", [Mesh2D, Torus2D])
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_vectorized_on_random(self, topo_cls, seed):
        rng = np.random.default_rng(seed)
        topo = topo_cls(12, 12)
        faults = uniform_random(topo.shape, 18, rng)
        d_unsafe, stats, _ = distributed_unsafe(topo, faults)
        v_unsafe, v_rounds = unsafe_fixpoint(topo, faults.mask)
        assert np.array_equal(d_unsafe, v_unsafe)
        assert stats.rounds == v_rounds

    def test_chatty_mode_same_labels_more_messages(self):
        m = Mesh2D(8, 8)
        faults = FaultSet.from_coords((8, 8), [(2, 2), (3, 3), (4, 4)])
        quiet, qstats, _ = distributed_unsafe(m, faults, chatty=False)
        loud, lstats, _ = distributed_unsafe(m, faults, chatty=True)
        assert np.array_equal(quiet, loud)
        assert qstats.rounds == lstats.rounds
        assert lstats.total_messages > qstats.total_messages


class TestDistributedEnabled:
    def test_matches_vectorized(self):
        m = Mesh2D(10, 10)
        rng = np.random.default_rng(11)
        faults = uniform_random((10, 10), 14, rng)
        unsafe, _ = unsafe_fixpoint(m, faults.mask)
        d_enabled, stats, _ = distributed_enabled(m, faults, unsafe)
        v_enabled, v_rounds = enabled_fixpoint(m, faults.mask, unsafe)
        assert np.array_equal(d_enabled, v_enabled)
        assert stats.rounds == v_rounds

    def test_shape_validation(self):
        m = Mesh2D(5, 5)
        faults = FaultSet.none((5, 5))
        with pytest.raises(ValueError):
            distributed_enabled(m, faults, np.zeros((4, 4), dtype=bool))

    def test_trace_recording(self):
        m = Mesh2D(6, 6)
        faults = FaultSet.from_coords((6, 6), [(1, 3), (2, 1), (3, 2)])
        unsafe, _ = unsafe_fixpoint(m, faults.mask)
        _, stats, trace = distributed_enabled(m, faults, unsafe, record_trace=True)
        assert trace is not None and len(trace) == stats.executed_rounds + 1
        # Monotonicity is visible in the trace: enabled sets only grow.
        prev = None
        for _, snap in trace.frames():
            cur = {c for c, v in snap.items() if v}
            if prev is not None:
                assert prev <= cur
            prev = cur


class TestProtocolRoundSemantics:
    def test_fault_free_zero_rounds(self):
        m = Mesh2D(6, 6)
        faults = FaultSet.none((6, 6))
        _, stats, _ = distributed_unsafe(m, faults)
        assert stats.rounds == 0

    def test_rounds_below_diameter(self):
        # Paper Figure 5: rounds are "much lower than the diameter".
        rng = np.random.default_rng(2)
        m = Mesh2D(16, 16)
        faults = uniform_random(m.shape, 26, rng)
        _, stats, _ = distributed_unsafe(m, faults)
        assert stats.rounds < m.diameter
