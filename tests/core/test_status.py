"""Unit tests for status enums and LabelGrid."""

import numpy as np
import pytest

from repro.core import LabelGrid, NodeStatus, SafetyDefinition
from repro.errors import GeometryError


def _grids(shape=(4, 4)):
    faulty = np.zeros(shape, dtype=bool)
    unsafe = np.zeros(shape, dtype=bool)
    enabled = np.ones(shape, dtype=bool)
    return faulty, unsafe, enabled


class TestSafetyDefinition:
    def test_separation_guarantees(self):
        # Paper: distance between blocks >= 3 under 2a, >= 2 under 2b.
        assert SafetyDefinition.DEF_2A.min_block_separation == 3
        assert SafetyDefinition.DEF_2B.min_block_separation == 2

    def test_values(self):
        assert SafetyDefinition("2a") is SafetyDefinition.DEF_2A


class TestNodeStatus:
    def test_routing_participation(self):
        # Paper: "only enabled nodes will participate in routing".
        assert NodeStatus.SAFE_ENABLED.participates_in_routing
        assert NodeStatus.UNSAFE_ENABLED.participates_in_routing
        assert not NodeStatus.FAULTY.participates_in_routing
        assert not NodeStatus.UNSAFE_DISABLED.participates_in_routing


class TestLabelGridInvariants:
    def test_valid_construction(self):
        faulty, unsafe, enabled = _grids()
        lg = LabelGrid(faulty, unsafe, enabled)
        assert lg.shape == (4, 4)

    def test_faulty_must_be_unsafe(self):
        faulty, unsafe, enabled = _grids()
        faulty[1, 1] = True
        enabled[1, 1] = False
        with pytest.raises(GeometryError):
            LabelGrid(faulty, unsafe, enabled)

    def test_faulty_must_not_be_enabled(self):
        faulty, unsafe, enabled = _grids()
        faulty[1, 1] = True
        unsafe[1, 1] = True
        with pytest.raises(GeometryError):
            LabelGrid(faulty, unsafe, enabled)

    def test_safe_must_be_enabled(self):
        faulty, unsafe, enabled = _grids()
        enabled[2, 2] = False  # safe (not unsafe) but disabled: invalid
        with pytest.raises(GeometryError):
            LabelGrid(faulty, unsafe, enabled)

    def test_shape_mismatch(self):
        faulty, unsafe, _ = _grids()
        with pytest.raises(GeometryError):
            LabelGrid(faulty, unsafe, np.ones((3, 3), dtype=bool))


class TestLabelGridDerived:
    def _example(self):
        # One fault at (1,1); (1,2) unsafe-disabled; (2,1) unsafe-enabled.
        faulty, unsafe, enabled = _grids()
        faulty[1, 1] = True
        unsafe[1, 1] = unsafe[1, 2] = unsafe[2, 1] = True
        enabled[1, 1] = enabled[1, 2] = False
        return LabelGrid(faulty, unsafe, enabled)

    def test_disabled_plane(self):
        lg = self._example()
        assert lg.disabled[1, 1] and lg.disabled[1, 2]
        assert not lg.disabled[2, 1]

    def test_activated_plane(self):
        lg = self._example()
        assert lg.activated[2, 1]
        assert not lg.activated[1, 1]
        assert int(lg.activated.sum()) == 1

    def test_status_of_each_case(self):
        lg = self._example()
        assert lg.status_of((1, 1)) is NodeStatus.FAULTY
        assert lg.status_of((1, 2)) is NodeStatus.UNSAFE_DISABLED
        assert lg.status_of((2, 1)) is NodeStatus.UNSAFE_ENABLED
        assert lg.status_of((0, 0)) is NodeStatus.SAFE_ENABLED

    def test_counts(self):
        lg = self._example()
        counts = lg.counts()
        assert counts["faulty"] == 1
        assert counts["unsafe_nonfaulty"] == 2
        assert counts["activated"] == 1
        assert counts["disabled_nonfaulty"] == 1
        assert counts["safe"] == 16 - 1 - 2  # total - faulty - unsafe_nonfaulty

    def test_cells_views(self):
        lg = self._example()
        assert len(lg.disabled_cells()) == 2
        assert len(lg.unsafe_cells()) == 3
