"""Unit tests for the two-phase pipeline entry point."""

import numpy as np
import pytest

from repro.core import SafetyDefinition, label_mesh
from repro.faults import FaultSet, uniform_random
from repro.mesh import Mesh2D, Torus2D


class TestLabelMesh:
    def test_result_carries_inputs(self):
        m = Mesh2D(8, 8)
        faults = FaultSet.from_coords((8, 8), [(2, 2)])
        r = label_mesh(m, faults, SafetyDefinition.DEF_2A)
        assert r.topology is m
        assert r.faults is faults
        assert r.definition is SafetyDefinition.DEF_2A
        assert r.backend == "vectorized"

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            label_mesh(Mesh2D(8, 8), FaultSet.none((7, 7)))

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            label_mesh(Mesh2D(4, 4), FaultSet.none((4, 4)), backend="quantum")

    def test_backends_agree(self):
        rng = np.random.default_rng(3)
        m = Mesh2D(12, 12)
        faults = uniform_random(m.shape, 20, rng)
        rv = label_mesh(m, faults, backend="vectorized")
        rd = label_mesh(m, faults, backend="distributed")
        assert np.array_equal(rv.labels.unsafe, rd.labels.unsafe)
        assert np.array_equal(rv.labels.enabled, rd.labels.enabled)
        assert (rv.rounds_phase1, rv.rounds_phase2) == (
            rd.rounds_phase1,
            rd.rounds_phase2,
        )
        assert rd.stats_phase1 is not None and rv.stats_phase1 is None

    def test_torus_supported(self):
        t = Torus2D(10, 10)
        faults = FaultSet.from_coords((10, 10), [(0, 0), (9, 9)])
        r = label_mesh(t, faults)
        assert len(r.blocks) == 1  # wrap-diagonal pair joins one block


class TestResultMetrics:
    def _paper_example(self):
        m = Mesh2D(6, 6)
        faults = FaultSet.from_coords((6, 6), [(1, 3), (2, 1), (3, 2)])
        return label_mesh(m, faults)

    def test_enabled_ratio_of_paper_example_is_one(self):
        r = self._paper_example()
        assert r.num_unsafe_nonfaulty == 6
        assert r.num_activated == 6
        assert r.enabled_ratio == 1.0

    def test_per_block_ratios(self):
        r = self._paper_example()
        assert r.per_block_enabled_ratios() == [1.0]

    def test_ratio_defined_without_unsafe_nodes(self):
        m = Mesh2D(6, 6)
        r = label_mesh(m, FaultSet.from_coords((6, 6), [(3, 3)]))
        assert r.num_unsafe_nonfaulty == 0
        assert r.enabled_ratio == 1.0
        assert r.per_block_enabled_ratios() == []

    def test_summary_keys(self):
        r = self._paper_example()
        s = r.summary()
        assert s["f"] == 3
        assert s["num_blocks"] == 1
        assert s["num_regions"] == 2
        assert s["rounds_phase1"] == 3 and s["rounds_phase2"] == 3
        assert s["enabled_ratio"] == 1.0

    def test_zero_ratio_case(self):
        # A center-gap block (Figure 2(b)) keeps its nonfaulty nodes
        # disabled: per-block ratio 0.
        coords = [
            (x, y)
            for x in range(1, 5)
            for y in range(1, 4)
            if not (y == 3 and 2 <= x < 4)
        ]
        m = Mesh2D(7, 6)
        r = label_mesh(m, FaultSet.from_coords((7, 6), coords))
        assert r.per_block_enabled_ratios() == [0.0]
        assert r.enabled_ratio == 0.0
