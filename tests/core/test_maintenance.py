"""Unit tests for dynamic fault maintenance."""

import numpy as np
import pytest

from repro.core import SafetyDefinition, label_mesh
from repro.core.maintenance import MaintainedLabeling
from repro.errors import FaultModelError
from repro.faults import FaultSet, uniform_random
from repro.mesh import Mesh2D, Torus2D


class TestConstruction:
    def test_starts_fault_free(self):
        m = MaintainedLabeling(Mesh2D(8, 8))
        assert len(m.faults) == 0
        assert m.blocks == [] and m.regions == []
        assert m.labels.enabled.all()

    def test_torus_rejected(self):
        with pytest.raises(FaultModelError):
            MaintainedLabeling(Torus2D(8, 8))


class TestInjection:
    def test_single_injection_matches_scratch(self):
        m = MaintainedLabeling(Mesh2D(10, 10))
        m.inject([(2, 2), (3, 3)])
        assert m.verify_against_scratch()

    def test_incremental_sequence_matches_scratch(self):
        m = MaintainedLabeling(Mesh2D(12, 12))
        rng = np.random.default_rng(0)
        for _ in range(6):
            batch = uniform_random((12, 12), 3, rng)
            m.inject(batch)
            assert m.verify_against_scratch()

    def test_empty_injection_free(self):
        m = MaintainedLabeling(Mesh2D(8, 8))
        report = m.inject([])
        assert report.rounds_phase1 == 0 and report.rounds_phase2 == 0

    def test_duplicate_faults_idempotent(self):
        m = MaintainedLabeling(Mesh2D(8, 8))
        m.inject([(3, 3)])
        before = m.labels
        report = m.inject([(3, 3)])
        assert report.newly_unsafe == 0
        assert np.array_equal(m.labels.unsafe, before.unsafe)

    def test_out_of_range_rejected(self):
        from repro.errors import TopologyError

        m = MaintainedLabeling(Mesh2D(8, 8))
        with pytest.raises(TopologyError):
            m.inject([(9, 0)])

    def test_accepts_faultset_or_list(self):
        m = MaintainedLabeling(Mesh2D(8, 8))
        m.inject(FaultSet.from_coords((8, 8), [(1, 1)]))
        m.inject([(5, 5)])
        assert len(m.faults) == 2


class TestReports:
    def test_growth_reported(self):
        m = MaintainedLabeling(Mesh2D(10, 10))
        # Two diagonal faults: the block becomes a 2x2 square with 2
        # nonfaulty nodes, which phase 2 immediately re-enables — so
        # they flip to unsafe but never lose enabled status.
        report = m.inject([(4, 4), (5, 5)])
        assert report.newly_unsafe == 2
        assert report.newly_activated == 0   # they were enabled all along
        assert report.newly_disabled == 0

    def test_new_fault_can_disable_activated_nodes(self):
        m = MaintainedLabeling(Mesh2D(10, 10))
        m.inject([(4, 4), (5, 5)])   # diagonal pair, gaps re-enabled
        # A fault landing on one of the activated gap nodes flips it to
        # faulty; its twin gap node loses support but still has two
        # enabled neighbours outside... extend the diagonal instead to
        # grow the region.
        report = m.inject([(6, 6)])
        assert m.verify_against_scratch()
        assert report.new_faults == ((6, 6),)

    def test_history_accumulates(self):
        m = MaintainedLabeling(Mesh2D(8, 8))
        m.inject([(1, 1)])
        m.inject([(6, 6)])
        assert len(m.history) == 2

    def test_snapshot_equivalent_to_scratch_result(self):
        m = MaintainedLabeling(Mesh2D(10, 10))
        rng = np.random.default_rng(2)
        m.inject(uniform_random((10, 10), 8, rng))
        snap = m.snapshot()
        scratch = label_mesh(Mesh2D(10, 10), m.faults)
        assert np.array_equal(snap.labels.enabled, scratch.labels.enabled)
        assert len(snap.blocks) == len(scratch.blocks)
        assert snap.backend == "maintained"


class TestRepair:
    def test_repair_restores_prior_labels(self):
        m = MaintainedLabeling(Mesh2D(12, 12))
        m.inject([(4, 4), (5, 5)])
        before = m.labels
        m.inject([(6, 6)])
        report = m.repair([(6, 6)])
        assert report.repaired == ((6, 6),)
        assert np.array_equal(m.labels.unsafe, before.unsafe)
        assert np.array_equal(m.labels.enabled, before.enabled)
        assert m.verify_against_scratch()

    def test_repair_everything_returns_to_pristine(self):
        m = MaintainedLabeling(Mesh2D(12, 12))
        rng = np.random.default_rng(7)
        batch = uniform_random((12, 12), 10, rng)
        m.inject(batch)
        report = m.repair(batch)
        assert len(m.faults) == 0
        assert m.labels.enabled.all() and not m.labels.unsafe.any()
        assert report.newly_safe > 0

    def test_repair_nonfaulty_is_noop(self):
        m = MaintainedLabeling(Mesh2D(8, 8))
        m.inject([(2, 2)])
        report = m.repair([(6, 6)])
        assert report.newly_safe == 0
        assert report.rounds_phase1 == 0 and report.rounds_phase2 == 0
        assert len(m.faults) == 1

    def test_repair_splits_a_block(self):
        # Healing the bridge fault of an L-shaped cluster must shrink or
        # split the standing block, exactly as scratch labeling would.
        m = MaintainedLabeling(Mesh2D(14, 14), SafetyDefinition.DEF_2A)
        m.inject([(4, 4), (5, 4), (6, 4), (6, 5), (6, 6)])
        m.repair([(6, 4)])
        assert m.verify_against_scratch()

    def test_repair_reports_in_history(self):
        m = MaintainedLabeling(Mesh2D(8, 8))
        m.inject([(3, 3)])
        m.repair([(3, 3)])
        assert len(m.history) == 2
        assert m.history[1].repaired == ((3, 3),)
        assert m.history[1].new_faults == ()

    def test_interleaved_inject_repair_matches_scratch(self):
        m = MaintainedLabeling(Mesh2D(12, 12))
        rng = np.random.default_rng(11)
        live = []
        for _ in range(30):
            if live and rng.random() < 0.5:
                c = live.pop(int(rng.integers(len(live))))
                m.repair([c])
            else:
                c = (int(rng.integers(12)), int(rng.integers(12)))
                if not m.engine.is_faulty(c):
                    live.append(c)
                m.inject([c])
            assert m.verify_against_scratch()


class TestWarmStartEfficiency:
    def test_incremental_rounds_never_exceed_scratch(self):
        # Build a large cluster, then add one nearby fault: the warm
        # start converges in no more rounds than from-scratch labeling.
        mesh = Mesh2D(16, 16)
        base = [(4, 4), (5, 5), (6, 6), (7, 7)]
        m = MaintainedLabeling(mesh)
        m.inject(base)
        report = m.inject([(8, 8)])
        scratch = label_mesh(mesh, m.faults)
        assert report.rounds_phase1 <= scratch.rounds_phase1

    def test_distant_fault_costs_no_phase1_rounds(self):
        # A fresh isolated fault changes nothing beyond itself.
        m = MaintainedLabeling(Mesh2D(16, 16))
        m.inject([(3, 3), (4, 4)])
        report = m.inject([(12, 12)])
        assert report.rounds_phase1 == 0

    @pytest.mark.parametrize("definition", list(SafetyDefinition))
    def test_both_definitions_supported(self, definition):
        m = MaintainedLabeling(Mesh2D(10, 10), definition)
        rng = np.random.default_rng(4)
        m.inject(uniform_random((10, 10), 10, rng))
        assert m.verify_against_scratch()
