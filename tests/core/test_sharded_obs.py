"""Sharding telemetry end to end: counters and spans from the
halo-exchange driver, Prometheus exposition, ``/varz``, and the
``obs summarize`` sharding section."""

import http.client
import json

import numpy as np

from repro.core.pipeline import label_mesh
from repro.faults import FaultSet
from repro.faults.generators import clustered
from repro.mesh import Mesh2D
from repro.obs import (
    AdminServer,
    JSONLSink,
    MemorySink,
    MetricsRegistry,
    SpanRecorder,
    Telemetry,
    render_prometheus,
)
from repro.obs.summarize import format_summary, summarize_trace


def _instance():
    topo = Mesh2D(24, 24)
    faults = clustered(
        topo.shape, 40, np.random.default_rng(5), clusters=3, spread=2.0
    )
    return topo, faults


def _get(address, path):
    host, port = address
    conn = http.client.HTTPConnection(host, port, timeout=5)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


class TestShardedCounters:
    def test_counters_and_events_emitted(self):
        sink = MemorySink()
        reg = MetricsRegistry()
        topo, faults = _instance()
        label_mesh(
            topo,
            faults,
            shard="8x8",
            telemetry=Telemetry(sinks=(sink,), metrics=reg),
        )
        snap = reg.snapshot()["counters"]
        tiles = {k: v for k, v in snap.items() if k.startswith("tiles_active")}
        exchanges = {
            k: v for k, v in snap.items() if k.startswith("halo_exchanges")
        }
        # Both phases ran tiles; clustered blocks span tiles, so at
        # least one halo exchange happened somewhere.
        assert sum(tiles.values()) >= 2 * 9  # 3x3 tiling, both phases
        assert sum(exchanges.values()) >= 1
        plans = sink.events("shard_plan")
        rounds = sink.events("shard_round")
        assert [e.fields["phase"] for e in plans] == ["unsafe", "enable"]
        assert all(e.fields["tiles_x"] == 3 for e in plans)
        assert rounds  # schema-validated by emit; at least one round
        assert all(e.fields["tiles"] >= 1 for e in rounds)

    def test_tile_round_spans_recorded(self):
        rec = SpanRecorder()
        topo, faults = _instance()
        label_mesh(topo, faults, shard="8x8", telemetry=Telemetry(spans=rec))
        names = [e["name"] for e in rec.to_chrome_trace()["traceEvents"]]
        assert "tile_round" in names
        assert "phase_unsafe" in names and "phase_enable" in names

    def test_shard_counters_reach_prometheus_and_varz(self):
        reg = MetricsRegistry()
        topo, faults = _instance()
        label_mesh(topo, faults, shard="8x8", telemetry=Telemetry(metrics=reg))
        text = render_prometheus(reg)
        assert "tiles_active" in text and "halo_exchanges" in text
        with AdminServer(
            metrics=reg, varz=lambda: reg.snapshot()["counters"]
        ) as admin:
            status, body = _get(admin.address, "/metrics")
            assert status == 200 and b"halo_exchanges" in body
            status, body = _get(admin.address, "/varz")
            assert status == 200
            doc = json.loads(body)
            assert any(k.startswith("tiles_active") for k in doc)
            assert any(k.startswith("halo_exchanges") for k in doc)


class TestSummarizeSharding:
    def test_summary_carries_sharding_section(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        topo, faults = _instance()
        tel = Telemetry(sinks=(JSONLSink(str(path)),))
        label_mesh(topo, faults, shard="8x8", telemetry=tel)
        tel.close()

        summary = summarize_trace(str(path))
        assert set(summary.sharding) == {"unsafe", "enable"}
        for entry in summary.sharding.values():
            assert entry["tiles"] == 9.0
            assert entry["rounds"] >= 1.0
            assert entry["tile_solves"] >= 1.0
        assert summary.to_dict()["sharding"] == summary.sharding

        text = format_summary(summary)
        assert "sharding:" in text
        assert "tile rounds" in text and "halo exchanges" in text

    def test_unsharded_trace_has_no_section(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        topo = Mesh2D(10, 10)
        faults = FaultSet.from_coords(topo.shape, [(2, 2), (2, 3)])
        tel = Telemetry(sinks=(JSONLSink(str(path)),))
        label_mesh(topo, faults, telemetry=tel)
        tel.close()
        summary = summarize_trace(str(path))
        assert summary.sharding == {}
        assert "sharding:" not in format_summary(summary)
