"""Unit tests for phase-1 safe/unsafe labeling (Definitions 2a/2b)."""

import numpy as np
import pytest

from repro.core import SafetyDefinition, unsafe_fixpoint, unsafe_step
from repro.errors import ConvergenceError
from repro.faults import FaultSet
from repro.mesh import Mesh2D, Torus2D

DEF_2A = SafetyDefinition.DEF_2A
DEF_2B = SafetyDefinition.DEF_2B


def faults(shape, coords):
    return FaultSet.from_coords(shape, coords).mask


class TestBasics:
    def test_no_faults_no_unsafe(self):
        m = Mesh2D(6, 6)
        unsafe, rounds = unsafe_fixpoint(m, faults((6, 6), []), DEF_2B)
        assert not unsafe.any() and rounds == 0

    def test_isolated_fault_stays_singleton(self):
        m = Mesh2D(6, 6)
        unsafe, rounds = unsafe_fixpoint(m, faults((6, 6), [(3, 3)]), DEF_2B)
        assert unsafe.sum() == 1 and unsafe[3, 3]
        assert rounds == 0

    def test_faulty_always_unsafe(self):
        m = Mesh2D(6, 6)
        f = faults((6, 6), [(0, 0), (5, 5), (2, 3)])
        unsafe, _ = unsafe_fixpoint(m, f, DEF_2A)
        assert (unsafe & f).sum() == f.sum()

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConvergenceError):
            unsafe_fixpoint(Mesh2D(5, 5), np.zeros((4, 4), dtype=bool))


class TestDefinitionDifference:
    def test_two_unsafe_neighbors_same_dimension(self):
        # Node (1, 0) between faults (0, 0) and (2, 0): unsafe under 2a
        # (two unsafe neighbours), safe under 2b (same dimension only).
        m = Mesh2D(6, 6)
        f = faults((6, 6), [(0, 0), (2, 0)])
        unsafe_a, _ = unsafe_fixpoint(m, f, DEF_2A)
        unsafe_b, _ = unsafe_fixpoint(m, f, DEF_2B)
        assert unsafe_a[1, 0]
        assert not unsafe_b[1, 0]

    def test_2b_subset_of_2a(self):
        # Enhanced rule imprisons no more nodes than the classic rule.
        m = Mesh2D(20, 20)
        rng = np.random.default_rng(9)
        from repro.faults import uniform_random

        for _ in range(10):
            f = uniform_random((20, 20), 25, rng).mask
            ua, _ = unsafe_fixpoint(m, f, DEF_2A)
            ub, _ = unsafe_fixpoint(m, f, DEF_2B)
            assert not (ub & ~ua).any()

    def test_diagonal_faults_form_square_under_both(self):
        # Paper: faults (u) and (u+1, u+1) fall in a single region.
        m = Mesh2D(6, 6)
        f = faults((6, 6), [(2, 2), (3, 3)])
        for d in (DEF_2A, DEF_2B):
            unsafe, _ = unsafe_fixpoint(m, f, d)
            expected = {(2, 2), (3, 3), (2, 3), (3, 2)}
            assert {tuple(c) for c in np.argwhere(unsafe)} == expected


class TestPaperExample:
    def test_three_faults_make_3x3_block(self):
        # Section 3: faults (1,3), (2,1), (3,2) yield the faulty block
        # {(i,j) | i,j in {1,2,3}} under the safe/unsafe rule.
        m = Mesh2D(6, 6)
        f = faults((6, 6), [(1, 3), (2, 1), (3, 2)])
        unsafe, _ = unsafe_fixpoint(m, f, DEF_2B)
        expected = {(i, j) for i in (1, 2, 3) for j in (1, 2, 3)}
        assert {tuple(c) for c in np.argwhere(unsafe)} == expected


class TestGhostBoundary:
    def test_corner_fault_does_not_recruit_under_2b(self):
        # (0,0) faulty: its neighbours each see one unsafe neighbour in
        # one dimension and a safe ghost in the other.
        m = Mesh2D(5, 5)
        unsafe, _ = unsafe_fixpoint(m, faults((5, 5), [(0, 0)]), DEF_2B)
        assert unsafe.sum() == 1

    def test_boundary_pair_recruits_inward(self):
        # Faults (0,0) and (1,1): (0,1) and (1,0) have unsafe neighbours
        # in both dimensions regardless of the boundary.
        m = Mesh2D(5, 5)
        unsafe, _ = unsafe_fixpoint(m, faults((5, 5), [(0, 0), (1, 1)]), DEF_2B)
        assert unsafe.sum() == 4

    def test_torus_wraps_unsafe_spread(self):
        # On a torus, faults at opposite edges are neighbours.
        t = Torus2D(6, 6)
        f = faults((6, 6), [(0, 0), (5, 5)])  # wrap-diagonal pair
        unsafe, _ = unsafe_fixpoint(t, f, DEF_2B)
        # (0,5) has x-neighbour (5,5) and y-neighbour (0,0) via wraps.
        assert unsafe[0, 5] and unsafe[5, 0]
        assert unsafe.sum() == 4

    def test_mesh_does_not_wrap(self):
        m = Mesh2D(6, 6)
        f = faults((6, 6), [(0, 0), (5, 5)])
        unsafe, _ = unsafe_fixpoint(m, f, DEF_2B)
        assert unsafe.sum() == 2


class TestFixpointProperties:
    def test_step_is_monotone(self):
        m = Mesh2D(8, 8)
        f = faults((8, 8), [(2, 2), (3, 3), (4, 2)])
        unsafe = f.copy()
        for _ in range(5):
            nxt = unsafe_step(m, f, unsafe, DEF_2B)
            assert (nxt | unsafe).sum() == nxt.sum()  # never un-labels
            unsafe = nxt

    def test_fixpoint_is_stable(self):
        m = Mesh2D(8, 8)
        f = faults((8, 8), [(2, 2), (3, 3), (4, 2), (2, 4)])
        unsafe, _ = unsafe_fixpoint(m, f, DEF_2A)
        again = unsafe_step(m, f, unsafe, DEF_2A)
        assert np.array_equal(again, unsafe)

    def test_rounds_bounded_by_block_diameter(self):
        # The paper: phase 1 needs at most max d(B) rounds.
        m = Mesh2D(12, 12)
        f = faults((12, 12), [(2, 2), (3, 3), (4, 4), (5, 5), (6, 6)])
        unsafe, rounds = unsafe_fixpoint(m, f, DEF_2B)
        from repro.core import extract_blocks

        blocks = extract_blocks(unsafe, f)
        max_diam = max(b.diameter for b in blocks)
        assert rounds <= max_diam

    def test_budget_exhaustion_raises(self):
        m = Mesh2D(12, 12)
        f = faults((12, 12), [(2, 2), (3, 3), (4, 4), (5, 5)])
        with pytest.raises(ConvergenceError):
            unsafe_fixpoint(m, f, DEF_2B, max_rounds=1)

    def test_step_out_buffer_matches_allocating_path(self):
        m = Mesh2D(8, 8)
        f = faults((8, 8), [(2, 2), (3, 3), (4, 2)])
        for definition in (DEF_2A, DEF_2B):
            fresh = unsafe_step(m, f, f, definition)
            buf = np.empty_like(f)
            returned = unsafe_step(m, f, f, definition, out=buf)
            assert returned is buf
            assert np.array_equal(fresh, buf)
