"""Unit tests for the theorem checkers (Section 4 claims)."""

import numpy as np
import pytest

from repro.core import SafetyDefinition, label_mesh
from repro.core.theorems import (
    RESULT_CHECKS,
    check_all,
    check_blocks_rectangular,
    check_corollary,
    check_lemma1,
    check_lemma2,
    check_lemma3,
    check_theorem1,
    check_theorem2,
)
from repro.faults import FaultSet, clustered, uniform_random
from repro.mesh import Mesh2D


def label(coords, shape=(10, 10), definition=SafetyDefinition.DEF_2B):
    return label_mesh(
        Mesh2D(*shape), FaultSet.from_coords(shape, coords), definition
    )


class TestCheckersOnPaperExample:
    def test_all_claims_hold(self):
        r = label([(1, 3), (2, 1), (3, 2)], shape=(6, 6))
        outcomes = check_all(r, include_quadrant_lemmas=True)
        assert all(o.holds for o in outcomes), [o for o in outcomes if not o]

    def test_outcome_truthiness(self):
        r = label([(2, 2)])
        ok = check_theorem1(r)
        assert ok and ok.holds and ok.detail == ""


class TestCheckersOnStructuredPatterns:
    def test_figure2b_block_stays_one_region(self):
        # Center-gap block: the region is the whole rectangle (closure
        # of the ring of faults fills the gap) — Theorem 2's tightest case.
        coords = [
            (x, y)
            for x in range(1, 5)
            for y in range(1, 4)
            if not (y == 3 and 2 <= x < 4)
        ]
        r = label(coords, shape=(7, 6))
        assert len(r.regions) == 1
        assert len(r.regions[0].cells) == 12
        assert check_theorem1(r).holds
        assert check_theorem2(r).holds
        assert check_lemma1(r).holds

    def test_figure2a_block_sheds_corner(self):
        # Corner-gap block: the region is an L (rectangle minus corner).
        coords = [
            (x, y)
            for x in range(1, 5)
            for y in range(1, 4)
            if not (y == 3 and 3 <= x < 5)
        ]
        r = label(coords, shape=(7, 6))
        assert len(r.regions) == 1
        assert len(r.regions[0].cells) == 10
        for chk in RESULT_CHECKS.values():
            assert chk(r).holds

    @pytest.mark.parametrize("definition", list(SafetyDefinition))
    def test_random_patterns_pass_everything(self, definition):
        rng = np.random.default_rng(31)
        for _ in range(6):
            faults = uniform_random((20, 20), 30, rng)
            r = label_mesh(Mesh2D(20, 20), faults, definition)
            for name, chk in RESULT_CHECKS.items():
                out = chk(r)
                assert out.holds, (name, out.detail)

    def test_clustered_patterns_pass_everything(self):
        rng = np.random.default_rng(32)
        for _ in range(4):
            faults = clustered((20, 20), 30, rng, clusters=2, spread=1.5)
            r = label_mesh(Mesh2D(20, 20), faults)
            outcomes = check_all(r, include_quadrant_lemmas=True)
            assert all(o.holds for o in outcomes), [o for o in outcomes if not o]


class TestCheckersDetectViolations:
    """The checkers must actually *fail* on corrupted results."""

    def _tamper(self, result, **label_overrides):
        # Rebuild a result with hand-corrupted labels, bypassing the
        # pipeline's extraction validation.
        import dataclasses

        from repro.core.regions import DisabledRegion
        from repro.geometry import CellSet

        regions = label_overrides.pop("regions")
        return dataclasses.replace(result, regions=regions)

    def test_theorem1_fails_on_concave_region(self):
        from repro.core.regions import DisabledRegion
        from repro.geometry import CellSet, shapes

        r = label([(2, 2)])
        u = shapes.u_shape((10, 10), (4, 4), 5, 4, 1)
        fake = DisabledRegion(cells=u, faults=CellSet.from_coords((10, 10), [(4, 4)]))
        tampered = self._tamper(r, regions=[fake])
        assert not check_theorem1(tampered).holds

    def test_lemma1_fails_on_nonfaulty_corner(self):
        from repro.core.regions import DisabledRegion
        from repro.geometry import CellSet, shapes

        r = label([(2, 2)])
        rect = shapes.rectangle((10, 10), (4, 4), 2, 2)
        fake = DisabledRegion(
            cells=rect, faults=CellSet.from_coords((10, 10), [(4, 4)])
        )
        tampered = self._tamper(r, regions=[fake])
        assert not check_lemma1(tampered).holds

    def test_theorem2_fails_on_inflated_region(self):
        from repro.core.regions import DisabledRegion
        from repro.geometry import CellSet, shapes

        r = label([(2, 2)])
        rect = shapes.rectangle((10, 10), (2, 2), 3, 1)
        fake = DisabledRegion(
            cells=rect, faults=CellSet.from_coords((10, 10), [(2, 2)])
        )
        tampered = self._tamper(r, regions=[fake])
        assert not check_theorem2(tampered).holds


class TestQuadrantLemmas:
    def test_lemma2_on_pipeline_regions(self):
        r = label([(2, 2), (3, 3), (2, 4), (4, 2)])
        for region in r.regions:
            assert check_lemma2(region).holds

    def test_lemma3_on_pipeline_regions(self):
        r = label([(2, 2), (3, 3), (4, 4)])
        for region in r.regions:
            assert check_lemma3(region).holds

    def test_lemma2_holds_even_on_concave_regions(self):
        # Lemma 2's proof is constructive and never uses convexity: the
        # (extreme-y, then extreme-x) node of a quadrant is always a
        # corner.  So the lemma holds for arbitrary regions — including
        # a U — and the checker must agree.
        from repro.core.regions import DisabledRegion
        from repro.geometry import CellSet, shapes

        u = shapes.u_shape((10, 10), (1, 1), 5, 4, 1)
        fake = DisabledRegion(
            cells=u, faults=CellSet.from_coords((10, 10), [(1, 1)])
        )
        assert check_lemma2(fake).holds


class TestCorollary:
    def test_corollary_on_sparse_block(self):
        r = label([(1, 3), (2, 1), (3, 2)], shape=(6, 6))
        assert check_corollary(r).holds

    @pytest.mark.parametrize("seed", range(3))
    def test_corollary_on_random(self, seed):
        rng = np.random.default_rng(seed + 50)
        faults = clustered((16, 16), 18, rng, clusters=2, spread=1.2)
        r = label_mesh(Mesh2D(16, 16), faults)
        assert check_corollary(r).holds
