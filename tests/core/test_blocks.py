"""Unit tests for faulty-block extraction."""

import numpy as np
import pytest

from repro.core import SafetyDefinition, extract_blocks, unsafe_fixpoint
from repro.errors import GeometryError
from repro.faults import FaultSet
from repro.geometry import Rect
from repro.mesh import Mesh2D


def blocks_for(coords, shape=(10, 10), definition=SafetyDefinition.DEF_2B):
    m = Mesh2D(*shape)
    f = FaultSet.from_coords(shape, coords).mask
    unsafe, _ = unsafe_fixpoint(m, f, definition)
    return extract_blocks(unsafe, f)


class TestExtraction:
    def test_no_faults_no_blocks(self):
        assert blocks_for([]) == []

    def test_isolated_faults_are_singleton_blocks(self):
        blocks = blocks_for([(1, 1), (5, 5), (8, 2)])
        assert len(blocks) == 3
        assert all(b.rect.area == 1 for b in blocks)
        assert all(b.num_faults == 1 and b.num_nonfaulty == 0 for b in blocks)

    def test_paper_example_single_block(self):
        blocks = blocks_for([(1, 3), (2, 1), (3, 2)], shape=(6, 6))
        assert len(blocks) == 1
        b = blocks[0]
        assert b.rect == Rect(1, 1, 3, 3)
        assert b.num_faults == 3 and b.num_nonfaulty == 6
        assert b.diameter == 4
        assert b.reducible

    def test_block_ordering_deterministic(self):
        blocks = blocks_for([(8, 8), (0, 0)])
        assert blocks[0].rect == Rect(0, 0, 0, 0)

    def test_faults_partition_across_blocks(self):
        blocks = blocks_for([(1, 1), (2, 2), (7, 7)])
        total_faults = sum(b.num_faults for b in blocks)
        assert total_faults == 3

    def test_non_reducible_block(self):
        blocks = blocks_for([(4, 4)])
        assert not blocks[0].reducible


class TestValidation:
    def test_fault_outside_unsafe_rejected(self):
        f = np.zeros((5, 5), dtype=bool)
        f[1, 1] = True
        with pytest.raises(GeometryError):
            extract_blocks(np.zeros((5, 5), dtype=bool), f)

    def test_non_rectangular_component_rejected(self):
        # Hand-craft a (corrupt) L-shaped unsafe component.
        unsafe = np.zeros((5, 5), dtype=bool)
        for c in [(0, 0), (1, 0), (0, 1)]:
            unsafe[c] = True
        f = np.zeros((5, 5), dtype=bool)
        f[0, 0] = True
        with pytest.raises(GeometryError):
            extract_blocks(unsafe, f)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(GeometryError):
            extract_blocks(
                np.zeros((5, 5), dtype=bool), np.zeros((4, 4), dtype=bool)
            )


class TestRectangularityAcrossPatterns:
    @pytest.mark.parametrize("definition", list(SafetyDefinition))
    @pytest.mark.parametrize("seed", range(5))
    def test_random_patterns_yield_rectangles(self, definition, seed):
        rng = np.random.default_rng(seed)
        from repro.faults import uniform_random

        m = Mesh2D(15, 15)
        f = uniform_random((15, 15), 20, rng).mask
        unsafe, _ = unsafe_fixpoint(m, f, definition)
        blocks = extract_blocks(unsafe, f)  # raises if non-rectangular
        # Blocks must tile the unsafe mask exactly.
        assert sum(len(b.cells) for b in blocks) == int(unsafe.sum())

    @pytest.mark.parametrize("definition", list(SafetyDefinition))
    def test_block_separation_guarantee(self, definition):
        rng = np.random.default_rng(77)
        from repro.faults import uniform_random

        m = Mesh2D(20, 20)
        need = definition.min_block_separation
        for _ in range(10):
            f = uniform_random((20, 20), 30, rng).mask
            unsafe, _ = unsafe_fixpoint(m, f, definition)
            blocks = extract_blocks(unsafe, f)
            for i in range(len(blocks)):
                for j in range(i + 1, len(blocks)):
                    assert blocks[i].rect.distance(blocks[j].rect) >= need
