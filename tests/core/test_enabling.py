"""Unit tests for phase-2 enabled/disabled labeling (Definition 3)."""

import numpy as np
import pytest

from repro.core import (
    SafetyDefinition,
    enabled_fixpoint,
    enabled_step,
    unsafe_fixpoint,
)
from repro.errors import ConvergenceError
from repro.faults import FaultSet
from repro.mesh import Mesh2D, Torus2D


def run_both_phases(topo, coords, definition=SafetyDefinition.DEF_2B):
    f = FaultSet.from_coords(topo.shape, coords).mask
    unsafe, _ = unsafe_fixpoint(topo, f, definition)
    enabled, rounds = enabled_fixpoint(topo, f, unsafe)
    return f, unsafe, enabled, rounds


class TestBasics:
    def test_fault_free_everything_enabled(self):
        m = Mesh2D(5, 5)
        f, unsafe, enabled, rounds = run_both_phases(m, [])
        assert enabled.all() and rounds == 0

    def test_faulty_never_enabled(self):
        m = Mesh2D(6, 6)
        f, _, enabled, _ = run_both_phases(m, [(1, 1), (2, 2), (4, 4)])
        assert not (enabled & f).any()

    def test_safe_nodes_start_and_stay_enabled(self):
        m = Mesh2D(6, 6)
        f, unsafe, enabled, _ = run_both_phases(m, [(2, 2), (3, 3)])
        assert (enabled | unsafe).all()

    def test_invalid_phase1_labels_rejected(self):
        m = Mesh2D(4, 4)
        f = FaultSet.from_coords((4, 4), [(1, 1)]).mask
        bad_unsafe = np.zeros((4, 4), dtype=bool)  # fault not unsafe
        with pytest.raises(ConvergenceError):
            enabled_fixpoint(m, f, bad_unsafe)

    def test_shape_mismatch_rejected(self):
        m = Mesh2D(4, 4)
        with pytest.raises(ConvergenceError):
            enabled_fixpoint(
                m, np.zeros((4, 4), dtype=bool), np.zeros((3, 3), dtype=bool)
            )


class TestPaperExample:
    def test_all_nonfaulty_nodes_enabled(self):
        # Section 3: with faults (1,3), (2,1), (3,2) "all the nonfaulty
        # nodes in the faulty block are enabled".
        m = Mesh2D(6, 6)
        f, unsafe, enabled, _ = run_both_phases(m, [(1, 3), (2, 1), (3, 2)])
        nonfaulty_unsafe = unsafe & ~f
        assert (enabled & nonfaulty_unsafe).sum() == nonfaulty_unsafe.sum()


class TestFigure2Scenarios:
    """The two block layouts of Figure 2 (well-definedness discussion)."""

    @staticmethod
    def _block_with_gap(gap_x):
        # A 4x3 all-faulty rectangle at (1,1)..(4,3) whose top row has a
        # 2-wide nonfaulty gap starting at x=gap_x.
        coords = [
            (x, y)
            for x in range(1, 5)
            for y in range(1, 4)
            if not (y == 3 and gap_x <= x < gap_x + 2)
        ]
        return coords

    def test_corner_gap_is_enabled(self):
        # Figure 2(a): the nonfaulty sub-block sits at the upper RIGHT
        # corner -> its corner node has two enabled neighbours outside
        # the block, so the whole gap cascades to enabled.
        m = Mesh2D(7, 6)
        coords = self._block_with_gap(gap_x=3)
        f, unsafe, enabled, _ = run_both_phases(m, coords)
        assert enabled[3, 3] and enabled[4, 3]

    def test_center_gap_stays_disabled(self):
        # Figure 2(b): the gap sits at the upper CENTER -> each gap node
        # has at most one enabled neighbour (above); Definition 3 keeps
        # the whole gap disabled (no double status).
        m = Mesh2D(7, 6)
        coords = self._block_with_gap(gap_x=2)
        f, unsafe, enabled, _ = run_both_phases(m, coords)
        assert not enabled[2, 3] and not enabled[3, 3]


class TestMonotonicity:
    def test_step_never_disables(self):
        m = Mesh2D(8, 8)
        coords = [(2, 2), (3, 3), (4, 2), (2, 4), (4, 4)]
        f = FaultSet.from_coords((8, 8), coords).mask
        unsafe, _ = unsafe_fixpoint(m, f, SafetyDefinition.DEF_2B)
        enabled = ~unsafe
        for _ in range(6):
            nxt = enabled_step(m, f, enabled)
            assert not (enabled & ~nxt).any()
            enabled = nxt

    def test_fixpoint_stable(self):
        m = Mesh2D(8, 8)
        f, unsafe, enabled, _ = run_both_phases(
            m, [(2, 2), (3, 3), (4, 2), (2, 4)]
        )
        assert np.array_equal(enabled_step(m, f, enabled), enabled)

    def test_budget_exhaustion_raises(self):
        # The paper example takes 3 enable rounds; a budget of 1 must fail.
        m = Mesh2D(6, 6)
        f = FaultSet.from_coords((6, 6), [(1, 3), (2, 1), (3, 2)]).mask
        unsafe, _ = unsafe_fixpoint(m, f, SafetyDefinition.DEF_2B)
        with pytest.raises(ConvergenceError):
            enabled_fixpoint(m, f, unsafe, max_rounds=1)

    def test_step_out_buffer_matches_allocating_path(self):
        m = Mesh2D(8, 8)
        coords = [(2, 2), (3, 3), (4, 2), (2, 4), (4, 4)]
        f = FaultSet.from_coords((8, 8), coords).mask
        unsafe, _ = unsafe_fixpoint(m, f, SafetyDefinition.DEF_2B)
        enabled = ~unsafe
        fresh = enabled_step(m, f, enabled)
        buf = np.empty_like(enabled)
        returned = enabled_step(m, f, enabled, out=buf)
        assert returned is buf
        assert np.array_equal(fresh, buf)


class TestGhostAndTorus:
    def test_boundary_unsafe_node_enables_via_ghosts(self):
        # A nonfaulty unsafe node on the mesh corner has two ghost
        # neighbours, which count as enabled.
        m = Mesh2D(5, 5)
        f, unsafe, enabled, _ = run_both_phases(m, [(0, 1), (1, 0)])
        assert unsafe[0, 0]
        assert enabled[0, 0]

    def test_same_pattern_on_torus_still_enables(self):
        t = Torus2D(5, 5)
        f, unsafe, enabled, _ = run_both_phases(t, [(0, 1), (1, 0)])
        assert unsafe[0, 0]
        # On the torus, (0,0)'s other neighbours (4,0) and (0,4) are safe
        # and enabled, so it enables too.
        assert enabled[0, 0]


class TestRecursiveRulePathology:
    def test_double_status_instance_has_two_solutions(self):
        # Figure 2(b) analogue: center gap admits both all-enabled and
        # all-disabled assignments under the naive recursive rule.
        from repro.core import recursive_enable_fixpoints

        m = Mesh2D(7, 6)
        coords = TestFigure2Scenarios._block_with_gap(gap_x=2)
        f = FaultSet.from_coords((7, 6), coords).mask
        unsafe, _ = unsafe_fixpoint(m, f, SafetyDefinition.DEF_2B)
        sols = recursive_enable_fixpoints(m, f, unsafe)
        assert len(sols) >= 2
        gap = [(2, 3), (3, 3)]
        assert any(all(s[c] for c in gap) for s in sols)
        assert any(not any(s[c] for c in gap) for s in sols)

    def test_corner_instance_has_unique_solution(self):
        # Figure 2(a) analogue: the corner gap cascades deterministically.
        from repro.core import recursive_enable_fixpoints

        m = Mesh2D(7, 6)
        coords = TestFigure2Scenarios._block_with_gap(gap_x=3)
        f = FaultSet.from_coords((7, 6), coords).mask
        unsafe, _ = unsafe_fixpoint(m, f, SafetyDefinition.DEF_2B)
        sols = recursive_enable_fixpoints(m, f, unsafe)
        assert len(sols) == 1

    def test_definition3_is_least_fixpoint(self):
        # Definition 3's outcome appears among the recursive solutions
        # and is the smallest one.
        from repro.core import recursive_enable_fixpoints

        m = Mesh2D(7, 6)
        coords = TestFigure2Scenarios._block_with_gap(gap_x=2)
        f = FaultSet.from_coords((7, 6), coords).mask
        unsafe, _ = unsafe_fixpoint(m, f, SafetyDefinition.DEF_2B)
        enabled, _ = enabled_fixpoint(m, f, unsafe)
        sols = recursive_enable_fixpoints(m, f, unsafe)
        assert any(np.array_equal(s, enabled) for s in sols)
        assert all(s.sum() >= enabled.sum() for s in sols)

    def test_enumeration_limit(self):
        from repro.core import recursive_enable_fixpoints

        m = Mesh2D(10, 10)
        coords = [(x, y) for x in range(1, 9) for y in range(1, 9)][:40]
        f = FaultSet.from_coords((10, 10), []).mask
        unsafe = FaultSet.from_coords((10, 10), coords).mask
        with pytest.raises(ConvergenceError):
            recursive_enable_fixpoints(m, f, unsafe, limit=10)
