"""Unit tests for disabled-region extraction."""

import numpy as np
import pytest

from repro.core import (
    SafetyDefinition,
    enabled_fixpoint,
    extract_regions,
    unsafe_fixpoint,
)
from repro.errors import GeometryError
from repro.faults import FaultSet
from repro.mesh import Mesh2D


def regions_for(coords, shape=(10, 10)):
    m = Mesh2D(*shape)
    f = FaultSet.from_coords(shape, coords).mask
    unsafe, _ = unsafe_fixpoint(m, f, SafetyDefinition.DEF_2B)
    enabled, _ = enabled_fixpoint(m, f, unsafe)
    return extract_regions(unsafe & ~enabled, f)


class TestExtraction:
    def test_paper_example_two_regions(self):
        # Section 3: the block splits into {(1,3)} and {(2,1),(3,2)}.
        regions = regions_for([(1, 3), (2, 1), (3, 2)], shape=(6, 6))
        sets = sorted(sorted(r.cells.coords()) for r in regions)
        assert sets == [[(1, 3)], [(2, 1), (3, 2)]]

    def test_diagonal_faults_are_one_region(self):
        # 8-connectivity groups corner-touching disabled nodes.
        regions = regions_for([(2, 2), (3, 3)], shape=(8, 8))
        assert len(regions) == 1
        assert regions[0].num_faults == 2
        assert regions[0].num_nonfaulty == 0

    def test_isolated_fault_region(self):
        regions = regions_for([(5, 5)])
        assert len(regions) == 1
        assert regions[0].diameter == 0

    def test_no_faults_no_regions(self):
        assert regions_for([]) == []

    def test_region_contains_its_faults(self):
        regions = regions_for([(1, 1), (2, 2), (6, 6), (7, 7)])
        for r in regions:
            assert r.faults <= r.cells


class TestValidation:
    def test_fault_not_disabled_rejected(self):
        f = np.zeros((5, 5), dtype=bool)
        f[2, 2] = True
        with pytest.raises(GeometryError):
            extract_regions(np.zeros((5, 5), dtype=bool), f)

    def test_faultless_region_rejected(self):
        disabled = np.zeros((5, 5), dtype=bool)
        disabled[0, 0] = True  # a disabled node with no fault anywhere
        with pytest.raises(GeometryError):
            extract_regions(disabled, np.zeros((5, 5), dtype=bool))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(GeometryError):
            extract_regions(
                np.zeros((5, 5), dtype=bool), np.zeros((4, 4), dtype=bool)
            )


class TestRegionsRefineBlocks:
    @pytest.mark.parametrize("seed", range(5))
    def test_regions_within_blocks_and_no_larger(self, seed):
        from repro.core import extract_blocks
        from repro.faults import uniform_random

        rng = np.random.default_rng(seed + 100)
        m = Mesh2D(16, 16)
        f = uniform_random((16, 16), 25, rng).mask
        unsafe, _ = unsafe_fixpoint(m, f, SafetyDefinition.DEF_2B)
        enabled, _ = enabled_fixpoint(m, f, unsafe)
        disabled = unsafe & ~enabled
        blocks = extract_blocks(unsafe, f)
        regions = extract_regions(disabled, f)
        # Every region lives inside exactly one block.
        for r in regions:
            containing = [
                b for b in blocks if (r.cells.mask & b.cells.mask).any()
            ]
            assert len(containing) == 1
            assert r.cells <= containing[0].cells
        # Regions never hold more nonfaulty nodes than their blocks.
        assert sum(r.num_nonfaulty for r in regions) <= sum(
            b.num_nonfaulty for b in blocks
        )
