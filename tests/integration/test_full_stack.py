"""Full-stack integration: one machine's life story.

A 24x24 machine accumulates faults over three events; after each event
the maintained labels are verified, and after the last one the refined
fault model carries unicast traffic (graph level), a broadcast, and
wormhole worms (flit level) — every layer of the library on one
consistent scenario.
"""

import numpy as np
import pytest

from repro.core import MaintainedLabeling, label_mesh
from repro.core.theorems import RESULT_CHECKS
from repro.faults import uniform_random
from repro.mesh import Mesh2D
from repro.network import WormholeNetwork, source_routed_traffic
from repro.routing import (
    BFSRouter,
    FaultModelView,
    WallRouter,
    broadcast,
    evaluate_router,
    sample_pairs,
)

MESH = Mesh2D(24, 24)


@pytest.fixture(scope="module")
def story():
    rng = np.random.default_rng(2026)
    maintained = MaintainedLabeling(MESH)
    for _ in range(3):
        maintained.inject(uniform_random(MESH.shape, 6, rng))
        assert maintained.verify_against_scratch()
    result = maintained.snapshot()
    return result, rng


class TestLifeStory:
    def test_final_labels_satisfy_every_claim(self, story):
        result, _ = story
        for name, check in RESULT_CHECKS.items():
            outcome = check(result)
            assert outcome.holds, (name, outcome.detail)

    def test_unicast_over_the_refined_model(self, story):
        result, rng = story
        view = FaultModelView.from_regions(result)
        pairs = sample_pairs(view, 60, rng)
        metrics = evaluate_router(WallRouter(view), pairs)
        oracle = evaluate_router(BFSRouter(view), pairs)
        assert metrics.delivery_rate >= 0.95 * oracle.delivery_rate

    def test_broadcast_covers_the_enabled_component(self, story):
        result, rng = story
        view = FaultModelView.from_regions(result)
        root, _ = view.random_enabled_pair(rng)
        b = broadcast(view, root)
        # Sparse faults keep the enabled subgraph connected.
        assert b.coverage == 1.0
        assert b.steps <= MESH.diameter + 4

    def test_wormhole_transport_end_to_end(self, story):
        result, rng = story
        view = FaultModelView.from_regions(result)
        router = WallRouter(view)
        pairs = sample_pairs(view, 40, rng)
        worms, unroutable = source_routed_traffic(
            router, pairs, rng, packet_length=3, injection_rate=0.3
        )
        net = WormholeNetwork(MESH, num_vcs=2, buffer_depth=2, watchdog=3000)
        res = net.run(worms, max_cycles=60_000)
        assert unroutable <= 2
        assert res.delivery_rate > 0.95
        assert not res.deadlocked
