"""Integration test: the worked example of Section 3, end to end.

"Consider an example of a 2-D mesh with three faulty nodes: (1,3),
(2,1), and (3,2).  Using the safe/unsafe rule, one faulty block
{(i,j) | i,j in {1,2,3}} is constructed.  Using the enabled/disabled
rule, the block is split into two disabled regions: {(1,3)} and
{(2,1),(3,2)}.  All the nonfaulty nodes in the faulty block are
enabled."
"""

import numpy as np
import pytest

from repro.core import SafetyDefinition, label_mesh
from repro.core.theorems import check_all
from repro.faults import FaultSet
from repro.geometry import Rect
from repro.mesh import Mesh2D

FAULTS = [(1, 3), (2, 1), (3, 2)]


@pytest.fixture(scope="module", params=["vectorized", "distributed"])
def result(request):
    mesh = Mesh2D(6, 6)
    faults = FaultSet.from_coords((6, 6), FAULTS)
    return label_mesh(mesh, faults, SafetyDefinition.DEF_2B, backend=request.param)


class TestWorkedExample:
    def test_one_faulty_block(self, result):
        assert len(result.blocks) == 1
        assert result.blocks[0].rect == Rect(1, 1, 3, 3)

    def test_block_composition(self, result):
        b = result.blocks[0]
        assert b.num_faults == 3
        assert b.num_nonfaulty == 6

    def test_two_disabled_regions(self, result):
        sets = sorted(sorted(r.cells.coords()) for r in result.regions)
        assert sets == [[(1, 3)], [(2, 1), (3, 2)]]

    def test_all_nonfaulty_nodes_enabled(self, result):
        assert result.num_activated == result.num_unsafe_nonfaulty == 6
        assert result.enabled_ratio == 1.0

    def test_every_claim_of_section4(self, result):
        outcomes = check_all(result, include_quadrant_lemmas=True)
        failures = [o for o in outcomes if not o.holds]
        assert not failures, failures

    def test_region_separation_guarantee(self, result):
        # The paper guarantees distance >= 2 between disabled regions;
        # here {(1,3)} sits exactly 3 away from {(2,1),(3,2)}.
        from repro.geometry import set_distance

        a, b = (r.cells for r in result.regions)
        assert set_distance(a, b) == 3
