"""Integration test: the Figure-1 family of constructions.

Figure 1 of the paper contrasts, for one fault pattern, the faulty
block under Definition 2a (panel a), under Definition 2b (panel b),
and the disabled regions after applying the enable rule to each
(panels c/d).  The exact node layout of the figure is not given in the
text, so we use a representative pattern with the same qualitative
behaviour and assert the orderings the figure demonstrates:

* Definition 2b produces fewer (or equal) imprisoned nonfaulty nodes
  and possibly more, smaller blocks than Definition 2a;
* the enable rule strictly refines both: disabled regions never hold
  more nonfaulty nodes than their blocks;
* every region is an orthogonal convex polygon regardless of the
  phase-1 definition.
"""

import numpy as np
import pytest

from repro.core import SafetyDefinition, label_mesh
from repro.core.theorems import check_all
from repro.faults import FaultSet
from repro.mesh import Mesh2D

# A clustered pattern producing a sizeable block with internal structure:
# a diagonal chain (whose block is a 4x4 square but whose disabled region
# is just the staircase) plus two satellites, in the spirit of Figure 1.
PATTERN = [(2, 2), (3, 3), (4, 4), (5, 5), (7, 2), (2, 7)]


@pytest.fixture(scope="module")
def results():
    mesh = Mesh2D(10, 10)
    faults = FaultSet.from_coords((10, 10), PATTERN)
    return {
        d: label_mesh(mesh, faults, d) for d in SafetyDefinition
    }


class TestFigure1Orderings:
    def test_2b_imprisons_no_more_than_2a(self, results):
        a = results[SafetyDefinition.DEF_2A]
        b = results[SafetyDefinition.DEF_2B]
        assert b.num_unsafe_nonfaulty <= a.num_unsafe_nonfaulty

    def test_2b_unsafe_subset_of_2a(self, results):
        a = results[SafetyDefinition.DEF_2A]
        b = results[SafetyDefinition.DEF_2B]
        assert not np.any(b.labels.unsafe & ~a.labels.unsafe)

    def test_enable_rule_refines_blocks(self, results):
        for r in results.values():
            disabled_nonfaulty = sum(reg.num_nonfaulty for reg in r.regions)
            block_nonfaulty = sum(b.num_nonfaulty for b in r.blocks)
            assert disabled_nonfaulty <= block_nonfaulty

    def test_regions_are_orthoconvex_for_both_definitions(self, results):
        for r in results.values():
            outcomes = check_all(r)
            assert all(o.holds for o in outcomes), [o for o in outcomes if not o]

    def test_pattern_actually_exercises_refinement(self, results):
        # Guard against a degenerate pattern: phase 2 must activate
        # at least one node here.
        r = results[SafetyDefinition.DEF_2B]
        assert r.num_activated > 0


class TestFigure1Rendering:
    def test_ascii_gallery_renders(self, results):
        from repro.viz import render_result

        for d, r in results.items():
            art = render_result(r)
            assert art.count("#") == len(PATTERN)

    def test_svg_gallery_renders(self, results):
        from repro.viz import svg_of_result

        for r in results.values():
            svg = svg_of_result(r)
            assert svg.count("<rect") == 100
