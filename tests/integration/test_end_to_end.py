"""End-to-end integration: fault injection -> labeling -> routing ->
partition, on the paper-sized machine."""

import numpy as np
import pytest

from repro.analysis import run_fig5, summarize
from repro.core import SafetyDefinition, label_mesh
from repro.core.theorems import RESULT_CHECKS
from repro.faults import clustered, uniform_random
from repro.mesh import Mesh2D
from repro.partition import cluster_cover, guillotine_cover
from repro.routing import (
    BFSRouter,
    FaultModelView,
    WallRouter,
    evaluate_router,
    sample_pairs,
)


class TestPaperSizedMachine:
    """The paper's 100x100 mesh with up to 100 faults."""

    @pytest.fixture(scope="class")
    def result(self):
        rng = np.random.default_rng(2001)
        mesh = Mesh2D(100, 100)
        faults = uniform_random(mesh.shape, 100, rng)
        return label_mesh(mesh, faults)

    def test_rounds_much_lower_than_diameter(self, result):
        assert result.rounds_phase1 <= 5
        assert result.rounds_phase2 <= 5
        assert result.topology.diameter == 198

    def test_all_claims_hold_at_scale(self, result):
        for name, check in RESULT_CHECKS.items():
            outcome = check(result)
            assert outcome.holds, (name, outcome.detail)

    def test_enabled_ratio_is_high(self, result):
        # Paper: "the average percentage ... stays very high".
        ratios = result.per_block_enabled_ratios()
        if ratios:
            assert summarize(ratios).mean > 0.8


class TestLabelThenRouteThenPartition:
    @pytest.fixture(scope="class")
    def setup(self):
        rng = np.random.default_rng(7)
        mesh = Mesh2D(32, 32)
        faults = clustered(mesh.shape, 40, rng, clusters=3, spread=1.5)
        result = label_mesh(mesh, faults)
        return result, rng

    def test_region_view_beats_block_view(self, setup):
        result, rng = setup
        vb = FaultModelView.from_blocks(result)
        vr = FaultModelView.from_regions(result)
        pairs = sample_pairs(vb, 100, rng)
        mb = evaluate_router(BFSRouter(vb), pairs)
        mr = evaluate_router(BFSRouter(vr), pairs)
        assert vr.num_enabled >= vb.num_enabled
        assert mr.delivery_rate >= mb.delivery_rate

    def test_wall_router_usable_on_refined_model(self, setup):
        result, rng = setup
        vr = FaultModelView.from_regions(result)
        pairs = sample_pairs(vr, 60, rng)
        m = evaluate_router(WallRouter(vr), pairs)
        assert m.delivery_rate >= 0.9 * m.reachability

    def test_partition_improves_or_ties_every_region(self, setup):
        result, _ = setup
        for region in result.regions:
            baseline = region.num_nonfaulty
            for cover_fn in (cluster_cover, guillotine_cover):
                cover = cover_fn(region.faults)
                assert cover.num_nonfaulty <= baseline


class TestFig5SmokeAtScale:
    def test_small_paper_sweep(self):
        curve = run_fig5(
            SafetyDefinition.DEF_2B,
            f_values=[0, 50, 100],
            trials=3,
            seed=1,
        )
        # Shape assertions from the paper's Figure 5.
        assert curve.points[0].rounds_fb.mean == 0.0
        assert all(p.rounds_fb.mean < 10 for p in curve.points)
        last = curve.points[-1]
        assert last.enabled_ratio.mean > 0.8
