"""Unit tests for fault-tolerant broadcast."""

import numpy as np
import pytest

from repro.core import label_mesh
from repro.errors import RoutingError
from repro.faults import FaultSet, clustered
from repro.mesh import Mesh2D
from repro.routing import FaultModelView, broadcast


def view_for(coords, shape=(10, 10), model="regions"):
    m = Mesh2D(*shape)
    res = label_mesh(m, FaultSet.from_coords(shape, coords))
    if model == "blocks":
        return FaultModelView.from_blocks(res)
    return FaultModelView.from_regions(res)


class TestBroadcastBasics:
    def test_fault_free_full_coverage(self):
        v = view_for([])
        r = broadcast(v, (0, 0))
        assert r.coverage == 1.0
        assert len(r.reached) == 100
        # Flooding depth from a corner equals the mesh diameter.
        assert r.steps == 18

    def test_center_root_shallower(self):
        v = view_for([])
        corner = broadcast(v, (0, 0))
        centre = broadcast(v, (5, 5))
        assert centre.steps < corner.steps

    def test_depths_consistent(self):
        v = view_for([(4, 4)])
        r = broadcast(v, (0, 0))
        assert r.depth_of((0, 0)) == 0
        assert r.depth_of((1, 0)) == 1
        assert r.depth_of((4, 4)) is None  # the fault itself

    def test_disabled_root_rejected(self):
        v = view_for([(4, 4)])
        with pytest.raises(RoutingError):
            broadcast(v, (4, 4))

    def test_partitioned_enabled_subgraph(self):
        # Wall of faults splits the mesh: coverage < 1.
        coords = [(5, y) for y in range(10)]
        v = view_for(coords)
        r = broadcast(v, (0, 0))
        assert r.coverage < 1.0
        assert all(c[0] < 5 for c in r.reached)


class TestModelComparison:
    @pytest.mark.parametrize("seed", range(4))
    def test_region_view_reaches_at_least_as_many(self, seed):
        rng = np.random.default_rng(seed)
        m = Mesh2D(20, 20)
        faults = clustered(m.shape, 25, rng, clusters=2, spread=1.5)
        res = label_mesh(m, faults)
        vb = FaultModelView.from_blocks(res)
        vr = FaultModelView.from_regions(res)
        root = (0, 0)
        if not vb.is_enabled(root):
            return
        rb = broadcast(vb, root)
        rr = broadcast(vr, root)
        assert len(rr.reached) >= len(rb.reached)

    def test_activated_nodes_join_the_broadcast(self):
        # A diagonal fault chain: the block imprisons 12 healthy nodes
        # of the 4x4 bounding square; the region view frees them and the
        # broadcast reaches them.  Depths of commonly enabled nodes
        # never worsen (and, for small convex obstacles, measurably do
        # not improve either — the refined model's payoff is endpoints,
        # not path lengths: exactly the paper's "activated nodes
        # participate" claim).
        coords = [(4, 4), (5, 5), (6, 6), (7, 7)]
        m = Mesh2D(12, 12)
        res = label_mesh(m, FaultSet.from_coords((12, 12), coords))
        vb = FaultModelView.from_blocks(res)
        vr = FaultModelView.from_regions(res)
        rb = broadcast(vb, (0, 5))
        rr = broadcast(vr, (0, 5))
        activated = [c for c in rr.reached if not vb.is_enabled(c)]
        assert len(activated) == 12
        for c in rr.reached:
            db = rb.depth_of(c)
            if db is not None:
                assert rr.depth_of(c) <= db
        assert len(rr.reached) == len(rb.reached) + 12
