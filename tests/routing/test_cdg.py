"""Unit tests for channels and the channel dependency graph."""

import numpy as np
import pytest

from repro.core import label_mesh
from repro.errors import RoutingError
from repro.faults import FaultSet
from repro.mesh import Mesh2D
from repro.routing import (
    Channel,
    FaultModelView,
    WallRouter,
    XYRouter,
    all_channels,
    channel_dependency_graph,
    deadlock_cycles,
    is_deadlock_free,
)


class TestChannel:
    def test_valid_channel(self):
        c = Channel((0, 0), (1, 0))
        assert c.physical == c

    def test_virtual_channel_distinct(self):
        a = Channel((0, 0), (1, 0), vc=0)
        b = Channel((0, 0), (1, 0), vc=1)
        assert a != b and b.physical == a

    def test_rejects_same_node(self):
        with pytest.raises(RoutingError):
            Channel((1, 1), (1, 1))

    def test_rejects_diagonal(self):
        with pytest.raises(RoutingError):
            Channel((0, 0), (1, 1))

    def test_accepts_wrap_link(self):
        Channel((0, 0), (4, 0))  # torus wrap along x

    def test_rejects_negative_vc(self):
        with pytest.raises(RoutingError):
            Channel((0, 0), (1, 0), vc=-1)


class TestAllChannels:
    def test_mesh_channel_count(self):
        # 3x3 mesh: 12 links, 24 directed channels.
        assert len(all_channels(Mesh2D(3, 3))) == 24

    def test_virtual_channel_multiplier(self):
        assert len(all_channels(Mesh2D(3, 3), num_vcs=2)) == 48

    def test_vc_count_validation(self):
        with pytest.raises(RoutingError):
            all_channels(Mesh2D(3, 3), num_vcs=0)


class TestDeadlockAnalysis:
    def test_xy_on_fault_free_mesh_is_deadlock_free(self):
        # The classic e-cube result, verified exhaustively on a 4x4.
        v = FaultModelView(Mesh2D(4, 4), np.ones((4, 4), dtype=bool))
        assert is_deadlock_free(XYRouter(v))

    def test_cdg_nodes_are_used_channels_only(self):
        v = FaultModelView(Mesh2D(3, 3), np.ones((3, 3), dtype=bool))
        g = channel_dependency_graph(XYRouter(v))
        assert all(isinstance(n, Channel) for n in g.nodes)
        assert g.number_of_nodes() <= 24

    def test_wall_router_on_one_channel_can_deadlock(self):
        # Detouring around a central fault region on a single virtual
        # channel creates cyclic channel dependencies — the reason the
        # fault-tolerant literature spends extra VCs.
        m = Mesh2D(5, 5)
        res = label_mesh(m, FaultSet.from_coords((5, 5), [(2, 2)]))
        v = FaultModelView.from_regions(res)
        g = channel_dependency_graph(WallRouter(v))
        assert deadlock_cycles(g), "expected cyclic dependencies around the fault"

    def test_deadlock_cycles_limit(self):
        m = Mesh2D(5, 5)
        res = label_mesh(m, FaultSet.from_coords((5, 5), [(2, 2)]))
        v = FaultModelView.from_regions(res)
        g = channel_dependency_graph(WallRouter(v))
        assert len(deadlock_cycles(g, limit=3)) <= 3

    def test_explicit_pair_list(self):
        v = FaultModelView(Mesh2D(4, 4), np.ones((4, 4), dtype=bool))
        g = channel_dependency_graph(XYRouter(v), pairs=[((0, 0), (3, 3))])
        # One XY path of 6 hops: 6 channels, 5 dependencies.
        assert g.number_of_nodes() == 6 and g.number_of_edges() == 5
