"""Unit tests for FaultModelView."""

import numpy as np
import pytest

from repro.core import label_mesh
from repro.errors import RoutingError
from repro.faults import FaultSet
from repro.mesh import Mesh2D
from repro.routing import FaultModelView


def paper_result():
    m = Mesh2D(6, 6)
    return label_mesh(m, FaultSet.from_coords((6, 6), [(1, 3), (2, 1), (3, 2)]))


class TestViews:
    def test_block_view_disables_all_unsafe(self):
        r = paper_result()
        v = FaultModelView.from_blocks(r)
        # 36 nodes - 9 unsafe (3 faults + 6 nonfaulty) = 27 enabled.
        assert v.num_enabled == 27
        assert not v.is_enabled((2, 2))

    def test_region_view_enables_activated_nodes(self):
        r = paper_result()
        v = FaultModelView.from_regions(r)
        # Only the 3 faults stay out.
        assert v.num_enabled == 33
        assert v.is_enabled((2, 2))
        assert not v.is_enabled((2, 1))

    def test_region_view_superset_of_block_view(self):
        r = paper_result()
        vb = FaultModelView.from_blocks(r)
        vr = FaultModelView.from_regions(r)
        assert not (vb.enabled & ~vr.enabled).any()

    def test_obstacles_match_model(self):
        r = paper_result()
        assert len(FaultModelView.from_blocks(r).obstacles) == 1
        assert len(FaultModelView.from_regions(r).obstacles) == 2

    def test_is_enabled_out_of_grid(self):
        r = paper_result()
        v = FaultModelView.from_regions(r)
        assert not v.is_enabled((-1, 0))
        assert not v.is_enabled((6, 6))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(RoutingError):
            FaultModelView(Mesh2D(4, 4), np.ones((5, 5), dtype=bool))

    def test_random_enabled_pair(self):
        r = paper_result()
        v = FaultModelView.from_regions(r)
        rng = np.random.default_rng(0)
        for _ in range(20):
            s, d = v.random_enabled_pair(rng)
            assert s != d and v.is_enabled(s) and v.is_enabled(d)

    def test_random_pair_needs_two_enabled(self):
        v = FaultModelView(Mesh2D(2, 1), np.array([[True], [False]]))
        with pytest.raises(RoutingError):
            v.random_enabled_pair(np.random.default_rng(0))
